/**
 * @file
 * Regenerates paper Fig. 11: amortization of the initial PPK profiling
 * execution. MPC's cumulative energy savings and speedup relative to
 * PPK when the application is re-executed 1, 10 and 100 times after
 * the initial run, plus the steady state (no profiling losses).
 *
 * Runs converge after a few executions (deterministic model), so the
 * 100-re-execution point simulates until convergence and extends the
 * cumulative averages with the converged run.
 */

#include <iostream>

#include "common/stats.hpp"
#include "harness.hpp"

using namespace gpupm;

namespace {

struct Amortized
{
    double energySavingsVsPpkPct;
    double speedupVsPpk;
};

/** Cumulative MPC-vs-PPK comparison after `re` re-executions. */
Amortized
after(const std::vector<sim::RunResult> &mpc_runs,
      const sim::RunResult &ppk, int re)
{
    // mpc_runs[0] is the profiling execution. Cumulative totals over
    // (1 + re) executions; runs beyond the simulated set repeat the
    // last (converged) run.
    Joules e = 0.0;
    Seconds t = 0.0;
    for (int i = 0; i <= re; ++i) {
        const auto &r =
            mpc_runs[std::min<std::size_t>(i, mpc_runs.size() - 1)];
        e += r.totalEnergy();
        t += r.totalTime();
    }
    const double n = re + 1;
    return {100.0 * (1.0 - (e / n) / ppk.totalEnergy()),
            ppk.totalTime() / (t / n)};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 11: amortization of initial profiling losses",
        "Fig. 11 of the paper");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    auto rf = h.randomForest();
    constexpr int simulated_runs = 8;

    TextTable t({"benchmark", "after 1 (dE% / spd)", "after 10",
                 "after 100", "steady state"});
    std::vector<double> e1, e10, e100, ess, s1, s10, s100, sss;
    for (const auto &bc : h.cases()) {
        auto ppk = h.runPpk(bc, rf);

        mpc::MpcGovernor gov(rf, {}, hw::paperApu());
        sim::Simulator sim{hw::paperApu()};
        std::vector<sim::RunResult> runs;
        for (int i = 0; i < simulated_runs; ++i)
            runs.push_back(sim.run(bc.app, gov, bc.target));

        const auto a1 = after(runs, ppk.run, 1);
        const auto a10 = after(runs, ppk.run, 10);
        const auto a100 = after(runs, ppk.run, 100);
        // Steady state: the converged run alone, no profiling cost.
        const auto &last = runs.back();
        const Amortized ss{
            100.0 * (1.0 - last.totalEnergy() / ppk.run.totalEnergy()),
            ppk.run.totalTime() / last.totalTime()};

        auto cell = [](const Amortized &a) {
            return fmt(a.energySavingsVsPpkPct, 1) + " / " +
                   fmt(a.speedupVsPpk, 3);
        };
        t.addRow({bc.app.name, cell(a1), cell(a10), cell(a100),
                  cell(ss)});
        e1.push_back(a1.energySavingsVsPpkPct);
        e10.push_back(a10.energySavingsVsPpkPct);
        e100.push_back(a100.energySavingsVsPpkPct);
        ess.push_back(ss.energySavingsVsPpkPct);
        s1.push_back(a1.speedupVsPpk);
        s10.push_back(a10.speedupVsPpk);
        s100.push_back(a100.speedupVsPpk);
        sss.push_back(ss.speedupVsPpk);
    }
    t.addRow({"AVERAGE",
              fmt(mean(e1), 1) + " / " + fmt(mean(s1), 3),
              fmt(mean(e10), 1) + " / " + fmt(mean(s10), 3),
              fmt(mean(e100), 1) + " / " + fmt(mean(s100), 3),
              fmt(mean(ess), 1) + " / " + fmt(mean(sss), 3)});
    t.print(std::cout);
    std::cout << "\n";

    bench::Harness::printPaperComparison(
        "amortization",
        "non-negligible gains after one re-execution; most of the full "
        "gains after ten",
        "average speedup vs PPK " + fmt(mean(s1), 3) + " after 1, " +
            fmt(mean(s10), 3) + " after 10, " + fmt(mean(sss), 3) +
            " steady state");
    return 0;
}
