/**
 * @file
 * Regenerates paper Fig. 4: the limit study comparing Predict Previous
 * Kernel (PPK) and Theoretically Optimal (TO), both with perfect
 * knowledge of every kernel's behaviour at every configuration and no
 * optimization overhead, against AMD Turbo Core.
 */

#include <iostream>

#include "common/stats.hpp"
#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 4: Predict Previous Kernel vs Theoretically Optimal "
        "(perfect prediction)",
        "Fig. 4 of the paper");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    policy::PpkOptions perfect;
    perfect.chargeOverhead = false;

    TextTable t({"benchmark", "PPK energy sav (%)", "PPK speedup",
                 "TO energy sav (%)", "TO speedup"});
    std::vector<double> gap_e, gap_s;
    for (const auto &bc : h.cases()) {
        auto ppk = h.runPpk(bc, h.groundTruth(), perfect);
        auto to = h.runOracle(bc);
        t.addRow({bc.app.name, fmt(ppk.energySavingsPct, 1),
                  fmt(ppk.speedup, 3), fmt(to.energySavingsPct, 1),
                  fmt(to.speedup, 3)});
        gap_e.push_back(to.energySavingsPct - ppk.energySavingsPct);
        gap_s.push_back(to.speedup - ppk.speedup);
    }
    t.print(std::cout);

    Accumulator max_e, max_s;
    for (double g : gap_e)
        max_e.add(g);
    for (double g : gap_s)
        max_s.add(g);
    std::cout << "\nTO advantage over PPK: up to "
              << fmt(max_e.max(), 1) << " pp energy, up to "
              << fmt(100.0 * max_s.max(), 1) << "% performance\n";

    bench::Harness::printPaperComparison(
        "limit-study gap",
        "PPK matches TO on regular apps; on irregular apps PPK wastes "
        "up to 48% energy and loses up to 46% performance",
        "PPK matches TO on mandelbulbGPU/NBody/lbm; large gaps on "
        "irregular apps (table above)");
    return 0;
}
