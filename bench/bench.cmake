add_library(gpupm_bench_harness STATIC bench/harness.cpp)
target_link_libraries(gpupm_bench_harness PUBLIC gpupm)

function(gpupm_bench name)
    add_executable(${name} bench/${name}.cpp)
    target_link_libraries(${name} PRIVATE gpupm_bench_harness)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

gpupm_bench(bench_table1_dvfs)
gpupm_bench(bench_table4_patterns)
gpupm_bench(bench_fig2_scaling)
gpupm_bench(bench_fig3_throughput)
gpupm_bench(bench_fig4_limit)
gpupm_bench(bench_fig8_mpc_vs_turbo)
gpupm_bench(bench_fig9_mpc_vs_ppk)
gpupm_bench(bench_fig10_gpu_energy)
gpupm_bench(bench_fig11_amortization)
gpupm_bench(bench_fig12_theoretical)
gpupm_bench(bench_fig13_prediction_error)
gpupm_bench(bench_fig14_overheads)
gpupm_bench(bench_fig15_horizon)
gpupm_bench(bench_rf_accuracy)
gpupm_bench(bench_ablation)
gpupm_bench(bench_tdp_study)

# google-benchmark microbenchmarks (runtime overhead calibration).
# All three benchmark binaries use bench_simd_main.hpp instead of
# BENCHMARK_MAIN(): it accepts --simd=<mode> (which the benchmark flag
# parser would reject) and stamps the resolved SIMD path into the JSON
# context so perf_compare.py can refuse cross-engine comparisons.
add_executable(bench_micro_runtime bench/bench_micro_runtime.cpp)
target_link_libraries(bench_micro_runtime PRIVATE gpupm_bench_harness
    benchmark::benchmark)
set_target_properties(bench_micro_runtime PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Fleet-server throughput vs the one-session-at-a-time baseline
# (baseline committed at docs/perf/BENCH_fleet.json).
add_executable(bench_fleet_throughput bench/bench_fleet_throughput.cpp)
target_link_libraries(bench_fleet_throughput PRIVATE gpupm_bench_harness
    benchmark::benchmark)
set_target_properties(bench_fleet_throughput PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Online learning: hot-swap pause + post-shift accuracy recovery
# (baseline committed at docs/perf/BENCH_online.json).
add_executable(bench_online_adapt bench/bench_online_adapt.cpp)
target_link_libraries(bench_online_adapt PRIVATE gpupm_bench_harness
    benchmark::benchmark)
set_target_properties(bench_online_adapt PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Fleet power capping: energy vs budget ladder, violation rate and
# Jain's fairness index (baseline at docs/perf/BENCH_powercap.json).
add_executable(bench_fleet_powercap bench/bench_fleet_powercap.cpp)
target_link_libraries(bench_fleet_powercap PRIVATE gpupm_bench_harness
    benchmark::benchmark)
set_target_properties(bench_fleet_powercap PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# `cmake --build build --target bench-compare` runs the microbenchmarks
# and diffs them against the checked-in baseline (see
# tools/perf_compare.py) and fails the build on any regression beyond
# the 20% threshold — above the ~15% run-to-run swing of the
# sub-microsecond benchmarks on an unpinned shared host, so it gates
# real regressions without tripping on noise. Tighten it (or pin the
# machine) when measuring a specific change.
if(NOT Python3_EXECUTABLE)
    set(Python3_EXECUTABLE python3)
endif()
add_custom_target(bench-compare
    COMMAND ${CMAKE_BINARY_DIR}/bench/bench_micro_runtime
        --benchmark_out=${CMAKE_BINARY_DIR}/bench/BENCH_candidate.json
        --benchmark_out_format=json
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/perf_compare.py
        ${CMAKE_SOURCE_DIR}/docs/perf/BENCH_micro.json
        ${CMAKE_BINARY_DIR}/bench/BENCH_candidate.json
        --threshold 20
    DEPENDS bench_micro_runtime
    COMMENT "Running microbenchmarks and comparing against docs/perf/BENCH_micro.json"
    VERBATIM)

# `cmake --build build --target bench-fleet-compare` runs the sharded
# fleet benchmarks (including the 100k-session massive study - allow a
# few minutes) and diffs rates *and latency percentiles* against the
# committed baseline. Rates gate at 25%; p99 gates at 150% because on
# a 1-core unpinned host the oversubscribed configs' tail is pure
# scheduler noise (identical code measured +78% p99 run-to-run at
# load 0.5) - the tail gate exists to catch order-of-magnitude
# regressions like an unbounded queue, not microsecond jitter.
# Regenerate the baseline with the same filter:
#   ./build/bench/bench_fleet_throughput --simd=auto \
#       --benchmark_filter='Sharded|Massive' \
#       --benchmark_out=docs/perf/BENCH_fleet_sharded.json \
#       --benchmark_out_format=json
add_custom_target(bench-fleet-compare
    COMMAND ${CMAKE_BINARY_DIR}/bench/bench_fleet_throughput
        --simd=auto
        --benchmark_filter=Sharded|Massive
        --benchmark_out=${CMAKE_BINARY_DIR}/bench/BENCH_fleet_candidate.json
        --benchmark_out_format=json
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/perf_compare.py
        ${CMAKE_SOURCE_DIR}/docs/perf/BENCH_fleet_sharded.json
        ${CMAKE_BINARY_DIR}/bench/BENCH_fleet_candidate.json
        --threshold 25 --percentile-threshold 150
    DEPENDS bench_fleet_throughput
    COMMENT "Running sharded fleet benchmarks and comparing against docs/perf/BENCH_fleet_sharded.json"
    VERBATIM)

# `cmake --build build --target bench-powercap-compare` runs the
# power-cap ladder and diffs rates against the committed baseline.
# The control-quality counters (power_over_cap, violation_rate,
# jain_index) ride along in the JSON for human review; the gate itself
# is on throughput (same 25% bar as the fleet benches - the workload
# and trace bookkeeping are deterministic, so only the wall-clock rate
# is noisy). Regenerate the baseline with:
#   ./build/bench/bench_fleet_powercap --simd=auto \
#       --benchmark_out=docs/perf/BENCH_powercap.json \
#       --benchmark_out_format=json
add_custom_target(bench-powercap-compare
    COMMAND ${CMAKE_BINARY_DIR}/bench/bench_fleet_powercap
        --simd=auto
        --benchmark_out=${CMAKE_BINARY_DIR}/bench/BENCH_powercap_candidate.json
        --benchmark_out_format=json
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/perf_compare.py
        ${CMAKE_SOURCE_DIR}/docs/perf/BENCH_powercap.json
        ${CMAKE_BINARY_DIR}/bench/BENCH_powercap_candidate.json
        --threshold 25
    DEPENDS bench_fleet_powercap
    COMMENT "Running powercap benchmarks and comparing against docs/perf/BENCH_powercap.json"
    VERBATIM)
