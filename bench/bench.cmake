add_library(gpupm_bench_harness STATIC bench/harness.cpp)
target_link_libraries(gpupm_bench_harness PUBLIC gpupm)

function(gpupm_bench name)
    add_executable(${name} bench/${name}.cpp)
    target_link_libraries(${name} PRIVATE gpupm_bench_harness)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

gpupm_bench(bench_table1_dvfs)
gpupm_bench(bench_table4_patterns)
gpupm_bench(bench_fig2_scaling)
gpupm_bench(bench_fig3_throughput)
gpupm_bench(bench_fig4_limit)
gpupm_bench(bench_fig8_mpc_vs_turbo)
gpupm_bench(bench_fig9_mpc_vs_ppk)
gpupm_bench(bench_fig10_gpu_energy)
gpupm_bench(bench_fig11_amortization)
gpupm_bench(bench_fig12_theoretical)
gpupm_bench(bench_fig13_prediction_error)
gpupm_bench(bench_fig14_overheads)
gpupm_bench(bench_fig15_horizon)
gpupm_bench(bench_rf_accuracy)
gpupm_bench(bench_ablation)
gpupm_bench(bench_tdp_study)

# google-benchmark microbenchmarks (runtime overhead calibration).
add_executable(bench_micro_runtime bench/bench_micro_runtime.cpp)
target_link_libraries(bench_micro_runtime PRIVATE gpupm_bench_harness
    benchmark::benchmark benchmark::benchmark_main)
set_target_properties(bench_micro_runtime PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
