/**
 * @file
 * Shared infrastructure for the experiment harnesses.
 *
 * Each bench_* binary regenerates one table or figure of the paper. The
 * harness centralizes the common plumbing: the Turbo Core baseline run,
 * predictor construction (the Random Forest is trained once and shared),
 * steady-state MPC execution (profile run + optimized runs, as in
 * Sec. VI-A), and formatted output with the paper's reported values
 * alongside ours.
 *
 * Harnesses fan their per-benchmark work across the sweep engine
 * (mapCases); every bench binary accepts --jobs N (default: hardware
 * concurrency; 1 preserves the exact serial path) and --seed S (the
 * root seed for all synthetic-randomness, e.g. the noisy predictors).
 * Output is bit-identical for every --jobs value.
 */

#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "exec/sweep.hpp"
#include "telemetry/telemetry.hpp"
#include "ml/error_model.hpp"
#include "ml/trainer.hpp"
#include "mpc/governor.hpp"
#include "policy/oracle.hpp"
#include "policy/ppk.hpp"
#include "policy/turbo_core.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmarks.hpp"

namespace gpupm::bench {

/** One benchmark with its Turbo Core reference run. */
struct BenchCase
{
    workload::Application app;
    sim::RunResult baseline;
    Throughput target = 0.0;
};

/** Result of running a scheme in steady state. */
struct SchemeResult
{
    sim::RunResult run;
    double energySavingsPct = 0.0; ///< vs Turbo Core.
    double gpuEnergySavingsPct = 0.0;
    double speedup = 0.0;
    mpc::MpcRunStats mpcStats{}; ///< Populated for MPC schemes.
    std::size_t mpcKernelCount = 0;
};

/**
 * Percentile view of one telemetry histogram, for bench reporting.
 * The google-benchmark binaries stamp these into the JSON as
 * latency_p50_ns / latency_p95_ns / latency_p99_ns counters, which is
 * what lets perf_compare.py diff tail latency between runs instead of
 * only mean rates.
 */
struct LatencySummary
{
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    /**
     * Summarize @p histogram from @p snapshot; all-zeros when the
     * histogram is absent or empty (a bench with no recorded samples
     * stamps zeros rather than failing).
     */
    static LatencySummary fromSnapshot(
        const telemetry::Snapshot &snapshot,
        const std::string &histogram);
};

/** Harness-wide execution options. */
struct HarnessOptions
{
    /** Sweep workers; 0 = hardware concurrency, 1 = serial path. */
    std::size_t jobs = 0;
    /** Root seed for synthetic randomness (noisy predictors). */
    std::uint64_t seed = 0xe44ULL;
    /**
     * Save/load the trained RF predictor at this path (empty = always
     * retrain). Training is deterministic, so the 17 bench binaries
     * produce identical predictors — with a cache only the first one
     * pays for the fit. On a cache hit the training report (OOB MAPE)
     * is unavailable; benches that print it should retrain.
     */
    std::string modelCache;
    /**
     * Write a Chrome trace-event JSON timeline of the bench run here
     * (empty = tracing stays disabled). Spans cover the whole Harness
     * lifetime; the file is written by the destructor.
     */
    std::string traceOut;
    /**
     * Inference engine for the trained predictor (see ml/simd.hpp).
     * Defaults to the process default (GPUPM_SIMD env, else scalar);
     * harnessOptionsFromArgs installs a `--simd` override as the new
     * process default so every predictor the bench builds - harness,
     * fleet sessions, online refits - runs the same engine.
     */
    ml::SimdMode simd = ml::defaultSimdMode();
};

/**
 * Parse the standard bench flags (--jobs, --seed, --model-cache,
 * --trace-out, --simd) from argv. Prints usage and exits on --help or
 * a malformed command line.
 */
HarnessOptions harnessOptionsFromArgs(int argc,
                                      const char *const *argv);

class Harness
{
  public:
    explicit Harness(const HarnessOptions &opts = {});
    /** Writes the --trace-out timeline, when one was requested. */
    ~Harness();

    const HarnessOptions &options() const { return _opts; }

    /** All 15 paper benchmarks with their baselines (cached). */
    const std::vector<BenchCase> &cases();

    /** One benchmark by name. */
    const BenchCase &benchCase(const std::string &name);

    /**
     * Fan fn over the 15 benchmark cases on the sweep engine;
     * result[i] always belongs to cases()[i]. fn must be thread-safe
     * (the scheme runners below are). Bit-identical at any --jobs.
     */
    template <typename R>
    std::vector<R>
    mapCases(const std::function<R(const BenchCase &)> &fn)
    {
        const auto &cs = cases();
        return _engine.map<R>(cs.size(),
                              [&](std::size_t i, Pcg32 &) {
                                  return fn(cs[i]);
                              });
    }

    /** The engine the harness fans work across. */
    exec::SweepEngine &engine() { return _engine; }

    /**
     * The trained Random Forest predictor (paper Sec. IV-A3), trained
     * once on first use and shared across harness calls.
     */
    std::shared_ptr<const ml::PerfPowerPredictor> randomForest();

    /** Perfect-knowledge predictor (Err_0%). */
    std::shared_ptr<const ml::PerfPowerPredictor> groundTruth();

    /**
     * Half-normal error predictor (Fig. 13), seeded from the harness
     * --seed flag so bench runs are reproducible at any --jobs.
     */
    std::shared_ptr<const ml::PerfPowerPredictor>
    noisyPredictor(double time_err, double power_err) const;

    /** PPK over a benchmark (single run; PPK does not learn). */
    SchemeResult
    runPpk(const BenchCase &bc,
           std::shared_ptr<const ml::PerfPowerPredictor> pred,
           const policy::PpkOptions &opts = {});

    /**
     * MPC in steady state: one profiling execution plus @p extra_runs
     * optimized executions; the last run is reported (Sec. VI-A).
     */
    SchemeResult
    runMpc(const BenchCase &bc,
           std::shared_ptr<const ml::PerfPowerPredictor> pred,
           const mpc::MpcOptions &opts = {}, int extra_runs = 2);

    /**
     * Theoretically Optimal over a benchmark. @p jobs parallelizes the
     * plan construction (use > 1 only outside mapCases, which already
     * saturates the machine with one benchmark per worker).
     */
    SchemeResult runOracle(const BenchCase &bc, std::size_t jobs = 1);

    /** Limit-study MPC options: full horizon, free, perfect-friendly. */
    static mpc::MpcOptions limitStudyOptions();

    /** Print a standard header naming the figure being regenerated. */
    static void printHeader(const std::string &title,
                            const std::string &paper_reference);

    /**
     * Print the closing shape-check line: what the paper reports vs
     * what this reproduction measured.
     */
    static void printPaperComparison(const std::string &what,
                                     const std::string &paper,
                                     const std::string &ours);

  private:
    SchemeResult finish(const BenchCase &bc, sim::RunResult run);

    HarnessOptions _opts;
    exec::SweepEngine _engine;
    /** Guards lazy construction of the shared state below. */
    std::mutex _initMutex;
    std::vector<BenchCase> _cases;
    std::shared_ptr<const ml::PerfPowerPredictor> _rf;
    std::shared_ptr<const ml::PerfPowerPredictor> _truth;
    ml::TrainingReport _trainingReport;
    bool _hasTrainingReport = false;

  public:
    const ml::TrainingReport &trainingReport() const
    {
        return _trainingReport;
    }

    /**
     * False when randomForest() was served from --model-cache (or has
     * not been requested yet): the report is then default-constructed
     * zeros, which would read as a perfect 0% MAPE.
     */
    bool hasTrainingReport() const { return _hasTrainingReport; }
};

} // namespace gpupm::bench
