/**
 * @file
 * Regenerates paper Fig. 14: MPC energy and performance overheads with
 * respect to Turbo Core, with the adaptive horizon bounding total loss
 * to alpha = 5%. Also reproduces the Sec. VI-E comparison between the
 * adaptive-horizon and full-horizon schemes once overheads are charged.
 *
 * Paper: average energy overhead 0.15% (max 0.53%, Spmv); average
 * performance overhead 0.3% (max 1.2%, Spmv).
 */

#include <iostream>

#include "common/stats.hpp"
#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 14: MPC optimization overheads (alpha = 0.05)",
        "Fig. 14 and Sec. VI-E of the paper");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    auto rf = h.randomForest();

    TextTable t({"benchmark", "energy overhead (%)",
                 "perf overhead (%)"});
    std::vector<double> eo, po;
    for (const auto &bc : h.cases()) {
        auto mpc = h.runMpc(bc, rf);
        const double e = sim::overheadEnergyPct(bc.baseline, mpc.run);
        const double p = sim::overheadTimePct(bc.baseline, mpc.run);
        t.addRow({bc.app.name, fmt(e, 3), fmt(p, 3)});
        eo.push_back(e);
        po.push_back(p);
    }
    t.addRow({"AVERAGE", fmt(mean(eo), 3), fmt(mean(po), 3)});
    t.print(std::cout);
    std::cout << "\n";

    Accumulator ea, pa;
    for (double e : eo)
        ea.add(e);
    for (double p : po)
        pa.add(p);
    bench::Harness::printPaperComparison(
        "MPC overheads",
        "0.15% energy (max 0.53%), 0.3% performance (max 1.2%)",
        fmt(ea.mean(), 2) + "% energy (max " + fmt(ea.max(), 2) +
            "), " + fmt(pa.mean(), 2) + "% performance (max " +
            fmt(pa.max(), 2) + ")");

    // Extension of Sec. VI-E's remark: when kernels are separated by
    // host CPU phases, an idle core runs the optimizer and its latency
    // hides inside the phase.
    std::cout << "\nWith host CPU phases between kernels "
                 "(Sec. VI-E remark):\n";
    {
        std::vector<double> exposed, hidden_frac;
        sim::Simulator psim{hw::paperApu()};
        for (const auto &bc : h.cases()) {
            auto phased = workload::withCpuPhases(bc.app, 0.5);
            policy::TurboCoreGovernor turbo{hw::paperApu()};
            auto pbase = psim.run(phased, turbo);
            mpc::MpcGovernor gov(rf, {}, hw::paperApu());
            psim.run(phased, gov, pbase.throughput());
            auto r = psim.run(phased, gov, pbase.throughput());
            exposed.push_back(sim::overheadTimePct(pbase, r));
            Seconds hid = 0.0, tot = 0.0;
            for (const auto &rec : r.records) {
                hid += rec.hiddenOverheadTime;
                tot += rec.hiddenOverheadTime + rec.overheadTime;
            }
            hidden_frac.push_back(tot > 0.0 ? 100.0 * hid / tot : 100.0);
        }
        std::cout << "  exposed perf overhead: " << fmt(mean(exposed), 3)
                  << "% (vs " << fmt(mean(po), 3)
                  << "% back-to-back); " << fmt(mean(hidden_frac), 1)
                  << "% of decision latency hidden in phases\n";
    }

    // Sec. VI-E: adaptive vs full horizon, overheads charged.
    std::cout << "\nAdaptive vs full horizon (overheads charged):\n";
    std::vector<double> ae, as, fe, fs;
    mpc::MpcOptions full;
    full.horizonMode = mpc::HorizonMode::Full;
    for (const auto &bc : h.cases()) {
        auto a = h.runMpc(bc, rf);
        auto f = h.runMpc(bc, rf, full);
        ae.push_back(a.energySavingsPct);
        as.push_back(a.speedup);
        fe.push_back(f.energySavingsPct);
        fs.push_back(f.speedup);
    }
    TextTable t2({"scheme", "energy sav (%)", "speedup"});
    t2.addRow({"adaptive horizon", fmt(mean(ae), 1), fmt(mean(as), 3)});
    t2.addRow({"full horizon", fmt(mean(fe), 1), fmt(mean(fs), 3)});
    t2.print(std::cout);
    bench::Harness::printPaperComparison(
        "full-horizon penalty",
        "full horizon: 15.4% savings at 12.8% perf loss vs adaptive "
        "24.8% at 1.8%",
        "adaptive " + fmt(mean(ae), 1) + "% at " +
            fmt(100.0 * (1.0 - mean(as)), 1) + "% loss vs full " +
            fmt(mean(fe), 1) + "% at " +
            fmt(100.0 * (1.0 - mean(fs)), 1) + "% loss");
    return 0;
}
