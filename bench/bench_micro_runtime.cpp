/**
 * @file
 * google-benchmark microbenchmarks of the runtime components that the
 * OverheadModel constants stand for: Random Forest inference, one
 * greedy hill-climb decision, one PPK exhaustive scan, the pattern
 * extractor's hot path, and the Theoretically Optimal planner.
 *
 * These measure this host, not the paper's A10-7850K; the point is the
 * relative cost structure (hill climb << exhaustive scan) that makes
 * MPC deployable between kernel launches.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "bench_simd_main.hpp"
#include "harness.hpp"
#include "kernel/perf_model.hpp"
#include "ml/features.hpp"
#include "mpc/hill_climb.hpp"
#include "mpc/pattern_extractor.hpp"
#include "policy/knapsack.hpp"
#include "workload/training.hpp"

using namespace gpupm;

namespace {

struct Fixture
{
    Fixture()
    {
        ml::TrainerOptions opts;
        opts.corpusSize = 24;
        opts.configStride = 3;
        opts.forest.numTrees = 60;
        rf = ml::trainRandomForestPredictor(opts);
        kernel = workload::trainingCorpus(1, 0x71e)[0];
        const auto c = hw::ConfigSpace::failSafe();
        const auto est = model.estimate(kernel, c);
        query.counters = model.counters(kernel, c, est);
        query.instructions = kernel.instructions();
        query.groundTruth = &kernel;
        headroom = est.time * 1.2;
    }

    kernel::GroundTruthModel model{hw::ApuParams::defaults()};
    hw::ConfigSpace space;
    ml::EnergyModel energy{hw::ApuParams::defaults()};
    std::unique_ptr<ml::RandomForestPredictor> rf;
    kernel::KernelParams kernel;
    ml::PredictionQuery query;
    Seconds headroom = 0.0;
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
BM_RandomForestInference(benchmark::State &state)
{
    auto &f = fixture();
    const auto c = hw::ConfigSpace::maxPerformance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.rf->predict(f.query, c));
    }
}
BENCHMARK(BM_RandomForestInference);

/**
 * The pre-FlatForest inference path, kept as the reference the flat
 * engine is measured against: per-query feature assembly plus two
 * pointer-chasing scalar forest walks.
 */
void
BM_ScalarForestReference(benchmark::State &state)
{
    auto &f = fixture();
    const auto c = hw::ConfigSpace::maxPerformance();
    const double proxy = ml::instructionProxy(f.query.counters);
    for (auto _ : state) {
        const auto feats = ml::makeFeatures(f.query.counters, c);
        ml::Prediction p;
        p.time = std::exp(f.rf->timeForest().predict(feats)) * proxy;
        p.gpuPower = f.rf->powerForest().predict(feats);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_ScalarForestReference);

/**
 * The flat engine itself: tree-major batched walks of both full
 * forests over the 336-config static space, features prebuilt. No
 * specialization, no memo - this is the raw per-config cost of a
 * (time, power) prediction pair, the number to compare against
 * BM_ScalarForestReference.
 */
void
BM_BatchedForestInference(benchmark::State &state)
{
    auto &f = fixture();
    const auto &cfgs = f.space.all();
    std::vector<ml::FeatureVector> feats;
    feats.reserve(cfgs.size());
    for (const auto &c : cfgs)
        feats.push_back(ml::makeFeatures(f.query.counters, c));
    std::vector<double> time_pred(cfgs.size()), power_pred(cfgs.size());
    for (auto _ : state) {
        f.rf->timeFlat().predictBatch(feats, time_pred);
        f.rf->powerFlat().predictBatch(feats, power_pred);
        benchmark::DoNotOptimize(time_pred.data());
        benchmark::DoNotOptimize(power_pred.data());
    }
    state.counters["configs"] = static_cast<double>(cfgs.size());
    // Rate counter + invert = seconds per (time, power) prediction pair.
    state.counters["s_per_predict"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(cfgs.size()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_BatchedForestInference);

/**
 * Predictor-level batch over the same 336 configs. Steady state for a
 * recurring kernel: the specialization cache hits and most configs are
 * served from the per-kernel prediction memo.
 */
void
BM_PredictorBatchSteadyState(benchmark::State &state)
{
    auto &f = fixture();
    const auto &cfgs = f.space.all();
    std::vector<ml::Prediction> preds(cfgs.size());
    for (auto _ : state) {
        f.rf->predictBatch(f.query, cfgs, preds);
        benchmark::DoNotOptimize(preds.data());
    }
    state.counters["configs"] = static_cast<double>(cfgs.size());
    state.counters["s_per_predict"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(cfgs.size()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_PredictorBatchSteadyState);

void
BM_EnergyEstimate(benchmark::State &state)
{
    auto &f = fixture();
    const auto c = hw::ConfigSpace::maxPerformance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.energy.estimate(*f.rf, f.query, c));
    }
}
BENCHMARK(BM_EnergyEstimate);

void
BM_HillClimbDecision(benchmark::State &state)
{
    auto &f = fixture();
    mpc::HillClimbOptimizer climber(f.space, f.energy);
    std::size_t evals = 0;
    std::size_t unique = 0;
    for (auto _ : state) {
        auto res = climber.optimize(*f.rf, f.query, f.headroom,
                                    hw::ConfigSpace::failSafe());
        evals = res.evaluations;
        unique = res.uniqueEvaluations;
        benchmark::DoNotOptimize(res);
    }
    state.counters["evaluations"] = static_cast<double>(evals);
    state.counters["unique_evaluations"] = static_cast<double>(unique);
}
BENCHMARK(BM_HillClimbDecision);

/**
 * A decision for a never-seen kernel: the counters change every
 * iteration, so each decision pays for forest specialization and
 * walks the residual forests for every evaluation instead of hitting
 * the per-kernel prediction memo. This is the MPC governor's
 * first-launch cost; BM_HillClimbDecision is its recurring-launch
 * cost.
 */
void
BM_HillClimbDecisionColdKernel(benchmark::State &state)
{
    auto &f = fixture();
    mpc::HillClimbOptimizer climber(f.space, f.energy);
    auto q = f.query;
    for (auto _ : state) {
        // A new kernel identity per decision (any counter bit change
        // misses the specialization cache).
        q.counters.globalWorkSize += 1.0;
        auto res = climber.optimize(*f.rf, q, f.headroom,
                                    hw::ConfigSpace::failSafe());
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_HillClimbDecisionColdKernel);

void
BM_ExhaustiveScanDecision(benchmark::State &state)
{
    auto &f = fixture();
    const auto &cfgs = f.space.all();
    std::vector<ml::EnergyEstimate> ests(cfgs.size());
    for (auto _ : state) {
        f.energy.estimateBatch(*f.rf, f.query, cfgs, ests);
        double best = 1e300;
        for (const auto &e : ests) {
            if (e.time <= f.headroom && e.energy < best)
                best = e.energy;
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["evaluations"] = static_cast<double>(f.space.size());
}
BENCHMARK(BM_ExhaustiveScanDecision);

/**
 * Synthetic regression dataset shaped like the trainer's: all features
 * populated, a nonlinear target, and heavy feature-value ties (config
 * features are drawn from small discrete sets), which is what makes
 * split-search tie handling and presorting matter.
 */
ml::Dataset
makeTrainingDataset(std::size_t n, std::uint64_t seed)
{
    ml::Dataset d;
    Pcg32 rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        ml::FeatureVector f{};
        double target = 1.0;
        for (int j = 0; j < ml::numFeatures; ++j) {
            // Half the features are "discrete" (few distinct levels).
            f[static_cast<std::size_t>(j)] =
                (j % 2) ? static_cast<double>(rng.nextBounded(7))
                        : rng.uniform(0.0, 10.0);
            target += (j % 3) ? f[static_cast<std::size_t>(j)]
                              : 0.5 * f[static_cast<std::size_t>(j)] *
                                    f[static_cast<std::size_t>(j)];
        }
        d.add(f, target + rng.gaussian(0.0, 0.5));
    }
    return d;
}

/**
 * Fit one forest on a trainer-shaped dataset: the split-search hot
 * loop in isolation (no corpus generation, no OOB reporting around
 * it). state.range(0) is the worker count.
 */
void
BM_TrainForest(benchmark::State &state)
{
    const auto data = makeTrainingDataset(4096, 0x7a41);
    ml::ForestOptions opts = ml::ForestOptions::regressionDefaults();
    opts.numTrees = 20;
    for (auto _ : state) {
        ml::RandomForest rf;
        rf.fit(data, opts);
        benchmark::DoNotOptimize(rf);
    }
    state.counters["trees"] = opts.numTrees;
    state.counters["rows"] = static_cast<double>(data.size());
}
BENCHMARK(BM_TrainForest)->Unit(benchmark::kMillisecond);

/**
 * The full offline pipeline every bench binary pays on startup:
 * corpus generation, dataset assembly, and both forest fits, at the
 * same corpus/stride the micro fixture uses.
 */
void
BM_TrainPredictorEndToEnd(benchmark::State &state)
{
    for (auto _ : state) {
        ml::TrainerOptions opts;
        opts.corpusSize = 24;
        opts.configStride = 3;
        opts.forest.numTrees = 60;
        auto rf = ml::trainRandomForestPredictor(opts);
        benchmark::DoNotOptimize(rf);
    }
}
BENCHMARK(BM_TrainPredictorEndToEnd)->Unit(benchmark::kMillisecond);

void
BM_SignatureAndLookup(benchmark::State &state)
{
    auto &f = fixture();
    mpc::PatternExtractor pe;
    pe.observe(f.query.counters, 1e-3, 20.0, 1e8, nullptr);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pe.observe(f.query.counters, 1e-3, 20.0, 1e8, nullptr));
    }
}
BENCHMARK(BM_SignatureAndLookup);

void
BM_GroundTruthEstimate(benchmark::State &state)
{
    auto &f = fixture();
    const auto c = hw::ConfigSpace::maxPerformance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.model.estimate(f.kernel, c));
    }
}
BENCHMARK(BM_GroundTruthEstimate);

void
BM_OraclePlanSpmv(benchmark::State &state)
{
    auto app = workload::makeBenchmark("Spmv");
    sim::Simulator sim{hw::paperApu()};
    policy::TurboCoreGovernor turbo{hw::paperApu()};
    auto base = sim.run(app, turbo);
    for (auto _ : state) {
        policy::TheoreticallyOptimalGovernor oracle(app, hw::paperApu());
        auto r = sim.run(app, oracle, base.throughput());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_OraclePlanSpmv)->Unit(benchmark::kMillisecond);

void
BM_McpSteadyStateRunSpmv(benchmark::State &state)
{
    auto &f = fixture();
    (void)f;
    auto app = workload::makeBenchmark("Spmv");
    sim::Simulator sim{hw::paperApu()};
    policy::TurboCoreGovernor turbo{hw::paperApu()};
    auto base = sim.run(app, turbo);
    auto truth = std::make_shared<ml::GroundTruthPredictor>(hw::ApuParams::defaults());
    mpc::MpcGovernor gov(truth, {}, hw::paperApu());
    sim.run(app, gov, base.throughput());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.run(app, gov, base.throughput()));
    }
}
BENCHMARK(BM_McpSteadyStateRunSpmv)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return bench::simdBenchmarkMain(argc, argv);
}
