/**
 * @file
 * google-benchmark microbenchmarks of the runtime components that the
 * OverheadModel constants stand for: Random Forest inference, one
 * greedy hill-climb decision, one PPK exhaustive scan, the pattern
 * extractor's hot path, and the Theoretically Optimal planner.
 *
 * These measure this host, not the paper's A10-7850K; the point is the
 * relative cost structure (hill climb << exhaustive scan) that makes
 * MPC deployable between kernel launches.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "harness.hpp"
#include "kernel/perf_model.hpp"
#include "mpc/hill_climb.hpp"
#include "mpc/pattern_extractor.hpp"
#include "policy/knapsack.hpp"
#include "workload/training.hpp"

using namespace gpupm;

namespace {

struct Fixture
{
    Fixture()
    {
        ml::TrainerOptions opts;
        opts.corpusSize = 24;
        opts.configStride = 3;
        opts.forest.numTrees = 60;
        rf = ml::trainRandomForestPredictor(opts);
        kernel = workload::trainingCorpus(1, 0x71e)[0];
        const auto c = hw::ConfigSpace::failSafe();
        const auto est = model.estimate(kernel, c);
        query.counters = model.counters(kernel, c, est);
        query.instructions = kernel.instructions();
        query.groundTruth = &kernel;
        headroom = est.time * 1.2;
    }

    kernel::GroundTruthModel model;
    hw::ConfigSpace space;
    ml::EnergyModel energy;
    std::unique_ptr<ml::RandomForestPredictor> rf;
    kernel::KernelParams kernel;
    ml::PredictionQuery query;
    Seconds headroom = 0.0;
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
BM_RandomForestInference(benchmark::State &state)
{
    auto &f = fixture();
    const auto c = hw::ConfigSpace::maxPerformance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.rf->predict(f.query, c));
    }
}
BENCHMARK(BM_RandomForestInference);

void
BM_EnergyEstimate(benchmark::State &state)
{
    auto &f = fixture();
    const auto c = hw::ConfigSpace::maxPerformance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.energy.estimate(*f.rf, f.query, c));
    }
}
BENCHMARK(BM_EnergyEstimate);

void
BM_HillClimbDecision(benchmark::State &state)
{
    auto &f = fixture();
    mpc::HillClimbOptimizer climber(f.space, f.energy);
    std::size_t evals = 0;
    for (auto _ : state) {
        auto res = climber.optimize(*f.rf, f.query, f.headroom,
                                    hw::ConfigSpace::failSafe());
        evals = res.evaluations;
        benchmark::DoNotOptimize(res);
    }
    state.counters["evaluations"] = static_cast<double>(evals);
}
BENCHMARK(BM_HillClimbDecision);

void
BM_ExhaustiveScanDecision(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        double best = 1e300;
        for (const auto &c : f.space.all()) {
            const auto e = f.energy.estimate(*f.rf, f.query, c);
            if (e.time <= f.headroom && e.energy < best)
                best = e.energy;
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["evaluations"] = static_cast<double>(f.space.size());
}
BENCHMARK(BM_ExhaustiveScanDecision);

void
BM_SignatureAndLookup(benchmark::State &state)
{
    auto &f = fixture();
    mpc::PatternExtractor pe;
    pe.observe(f.query.counters, 1e-3, 20.0, 1e8, nullptr);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pe.observe(f.query.counters, 1e-3, 20.0, 1e8, nullptr));
    }
}
BENCHMARK(BM_SignatureAndLookup);

void
BM_GroundTruthEstimate(benchmark::State &state)
{
    auto &f = fixture();
    const auto c = hw::ConfigSpace::maxPerformance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.model.estimate(f.kernel, c));
    }
}
BENCHMARK(BM_GroundTruthEstimate);

void
BM_OraclePlanSpmv(benchmark::State &state)
{
    auto app = workload::makeBenchmark("Spmv");
    sim::Simulator sim;
    policy::TurboCoreGovernor turbo;
    auto base = sim.run(app, turbo);
    for (auto _ : state) {
        policy::TheoreticallyOptimalGovernor oracle(app);
        auto r = sim.run(app, oracle, base.throughput());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_OraclePlanSpmv)->Unit(benchmark::kMillisecond);

void
BM_McpSteadyStateRunSpmv(benchmark::State &state)
{
    auto &f = fixture();
    (void)f;
    auto app = workload::makeBenchmark("Spmv");
    sim::Simulator sim;
    policy::TurboCoreGovernor turbo;
    auto base = sim.run(app, turbo);
    auto truth = std::make_shared<ml::GroundTruthPredictor>();
    mpc::MpcGovernor gov(truth);
    sim.run(app, gov, base.throughput());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.run(app, gov, base.throughput()));
    }
}
BENCHMARK(BM_McpSteadyStateRunSpmv)->Unit(benchmark::kMillisecond);

} // namespace
