/**
 * @file
 * Regenerates the paper's Sec. VI-D model-accuracy numbers: Mean
 * Absolute Percentage Error of the Random Forest performance and power
 * predictions over the 15 evaluation benchmarks' kernels at all 336
 * configurations.
 *
 * Paper: 25% performance MAPE, 12% power MAPE; the high performance
 * error is attributed to diverse scaling trends and outliers with
 * unexpected behaviour.
 */

#include <iostream>

#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Sec. VI-D: Random Forest prediction accuracy",
        "Mean Absolute Percentage Errors quoted in Sec. VI-D");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    auto rf_shared = h.randomForest();
    const auto &rf =
        static_cast<const ml::RandomForestPredictor &>(*rf_shared);

    if (h.hasTrainingReport()) {
        std::cout << "Training: " << h.trainingReport().datasetRows
                  << " rows; OOB time MAPE "
                  << fmt(h.trainingReport().timeOobMapePct, 1)
                  << "%, OOB power MAPE "
                  << fmt(h.trainingReport().powerOobMapePct, 1) << "%\n";
    } else {
        std::cout << "Training: report unavailable (predictor loaded "
                     "via --model-cache)\n";
    }
    std::cout << "Forest: " << rf.timeForest().treeCount()
              << " trees/target, "
              << rf.timeForest().totalNodes() +
                     rf.powerForest().totalNodes()
              << " total nodes\n\n";

    TextTable t({"benchmark", "time MAPE (%)", "power MAPE (%)"});
    double time_sum = 0.0, power_sum = 0.0;
    std::size_t n = 0;
    for (const auto &name : workload::benchmarkNames()) {
        auto app = workload::makeBenchmark(name);
        std::vector<kernel::KernelParams> ks;
        for (const auto &inv : app.trace)
            ks.push_back(inv.params);
        const auto ev = ml::evaluatePredictor(rf, ks);
        t.addRow({name, fmt(ev.timeMapePct, 1),
                  fmt(ev.powerMapePct, 1)});
        time_sum += ev.timeMapePct;
        power_sum += ev.powerMapePct;
        ++n;
    }
    t.addRow({"AVERAGE", fmt(time_sum / n, 1), fmt(power_sum / n, 1)});
    t.print(std::cout);
    std::cout << "\n";

    bench::Harness::printPaperComparison(
        "RF accuracy", "25% performance MAPE, 12% power MAPE",
        fmt(time_sum / n, 1) + "% performance, " +
            fmt(power_sum / n, 1) +
            "% power (our time error is higher: the synthetic kernels' "
            "hidden overlap/serial behaviour is deliberately "
            "unobservable from the eight Table III counters, the same "
            "outlier mechanism the paper describes; Fig. 13 shows MPC "
            "tolerates it)");
    return 0;
}
