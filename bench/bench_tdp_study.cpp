/**
 * @file
 * TDP-constrained study (extension).
 *
 * The paper's platform runs these GPGPU workloads within its 95 W TDP,
 * so Turbo Core's power-shifting logic (Sec. V-B: shed CPU P-states
 * first, shifting budget to the loaded GPU) never engages in the main
 * evaluation. This bench tightens the package budget to exercise it:
 * the baseline sheds CPU states, the telemetry confirms the envelope,
 * and MPC still holds its throughput target against the (now slower)
 * baseline.
 */

#include <iostream>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "harness.hpp"
#include "telemetry/telemetry.hpp"

using namespace gpupm;

int
main()
{
    bench::Harness::printHeader(
        "TDP-constrained operation (extension)",
        "exercises the Sec. V-B power-shifting behaviour the 95 W part "
        "never needs");

    auto truth = std::make_shared<ml::GroundTruthPredictor>(hw::ApuParams::defaults());

    TextTable t({"TDP (W)", "baseline CPU state (last)",
                 "baseline peak power (W)", "lag overshoots*",
                 "MPC energy sav (%)", "MPC speedup"});
    for (double tdp : {95.0, 49.0, 45.0}) {
        hw::ApuParams params;
        params.tdp = tdp;
        const auto model =
            hw::makeModel("tdp-" + fmt(tdp, 0), params);
        sim::Simulator sim(model);

        std::vector<double> e, s;
        std::string last_cpu;
        double peak = 0.0;
        int lag_overshoots = 0;
        for (const auto &name :
             {"mandelbulbGPU", "NBody", "Spmv", "kmeans"}) {
            auto app = workload::makeBenchmark(name);
            policy::TurboCoreGovernor turbo(model);
            auto base = sim.run(app, turbo);
            last_cpu = hw::toString(base.records.back().config.cpu);
            auto trace = telemetry::PowerTrace::fromRun(base, params);
            peak = std::max(peak, trace.peakPower());
            // A reactive per-kernel governor can only respond one
            // kernel late: count the kernels whose average power
            // exceeds the budget. Each must be the first kernel after
            // a low-power phase (the reactive-lag flaw the paper's
            // Sec. I criticizes); sustained violations would be a bug.
            int streak = 0;
            for (const auto &rec : base.records) {
                const Watts power =
                    (rec.kernelCpuEnergy + rec.kernelGpuEnergy) /
                    rec.kernelTime;
                if (power > tdp * 1.001) {
                    ++lag_overshoots;
                    ++streak;
                    GPUPM_ASSERT(streak <= 1,
                                 "sustained TDP violation in ", name);
                } else {
                    streak = 0;
                }
            }

            mpc::MpcGovernor gov(truth, {}, model);
            sim.run(app, gov, base.throughput());
            auto r = sim.run(app, gov, base.throughput());
            e.push_back(sim::energySavingsPct(base, r));
            s.push_back(sim::speedup(base, r));
        }
        t.addRow({fmt(tdp, 0), last_cpu, fmt(peak, 1),
                  std::to_string(lag_overshoots), fmt(mean(e), 1),
                  fmt(mean(s), 3)});
    }
    t.print(std::cout);
    std::cout << "(*) kernels whose average power exceeded the budget. "
                 "Each is the single kernel following a low-power "
                 "phase: the reactive governor decides from the "
                 "previous kernel's utilization and reacts one kernel "
                 "late - the same backward-looking lag the paper's "
                 "introduction criticizes. No violation lasts more "
                 "than one kernel.\n\n";

    bench::Harness::printPaperComparison(
        "power shifting",
        "Turbo Core sheds CPU DVFS states only when the package would "
        "exceed TDP (never on the studied workloads)",
        "95 W: CPU stays at P1; tightened budgets shed CPU states and "
        "the envelope holds (table above)");
    return 0;
}
