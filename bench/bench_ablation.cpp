/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  1. Search cost: greedy hill climbing vs the exhaustive per-kernel
 *     scan (the paper's 19x evaluation reduction and, combined with
 *     the search-order heuristic, 65x vs backtracking MPC).
 *  2. Horizon policy: adaptive vs full vs fixed lengths.
 *  3. Horizon pacing: the paper's uniform i*T/N schedule vs the
 *     profiled per-kernel schedule (our refinement).
 *  4. Performance-tracker feedback on/off under an imperfect
 *     predictor (Eq. 4/5's contribution).
 */

#include <iostream>

#include "common/stats.hpp"
#include "harness.hpp"
#include "kernel/perf_model.hpp"
#include "mpc/hill_climb.hpp"
#include "workload/training.hpp"

using namespace gpupm;

namespace {

void
searchCostAblation(bench::Harness &h)
{
    std::cout << "--- 1. Search cost: greedy hill climb vs exhaustive "
                 "scan ---\n";
    hw::ConfigSpace space;
    ml::EnergyModel energy{hw::ApuParams::defaults()};
    mpc::HillClimbOptimizer climber(space, energy);
    kernel::GroundTruthModel model{hw::ApuParams::defaults()};
    auto truth = h.groundTruth();

    const auto corpus = workload::trainingCorpus(40, 0xab1a7e);
    Accumulator evals, quality;
    for (const auto &k : corpus) {
        ml::PredictionQuery q;
        const auto c0 = hw::ConfigSpace::failSafe();
        const auto est = model.estimate(k, c0);
        q.counters = model.counters(k, c0, est);
        q.instructions = k.instructions();
        q.groundTruth = &k;

        const Seconds headroom = est.time * 1.25;
        const auto res =
            climber.optimize(*truth, q, headroom, c0);
        evals.add(static_cast<double>(res.evaluations));

        double best = 1e300;
        for (const auto &c : space.all()) {
            const auto e = energy.estimate(*truth, q, c);
            if (e.time <= headroom)
                best = std::min(best, e.energy);
        }
        quality.add(res.predictedEnergy / best);
    }
    TextTable t({"metric", "exhaustive", "greedy hill climb",
                 "reduction"});
    t.addRow({"energy evaluations / kernel",
              std::to_string(space.size()), fmt(evals.mean(), 1),
              fmt(space.size() / evals.mean(), 1) + "x"});
    t.addRow({"energy vs exhaustive optimum", "1.000x",
              fmt(quality.mean(), 3) + "x", "-"});
    t.print(std::cout);
    std::cout << "paper: 19x fewer evaluations; with the search-order "
                 "heuristic replacing backtracking, 65x lower total "
                 "search cost\n\n";
}

void
horizonAblation(bench::Harness &h)
{
    std::cout << "--- 2. Horizon policy (RF predictor, overheads "
                 "charged) ---\n";
    auto rf = h.randomForest();

    struct Mode
    {
        std::string name;
        mpc::MpcOptions opts;
    };
    std::vector<Mode> modes;
    modes.push_back({"adaptive (paper)", {}});
    {
        mpc::MpcOptions m;
        m.horizonMode = mpc::HorizonMode::Full;
        modes.push_back({"full horizon", m});
    }
    for (std::size_t fh : {2, 8}) {
        mpc::MpcOptions m;
        m.horizonMode = mpc::HorizonMode::Fixed;
        m.fixedHorizon = fh;
        modes.push_back({"fixed H=" + std::to_string(fh), m});
    }

    TextTable t({"horizon policy", "energy sav (%)", "speedup",
                 "overhead time (%)"});
    for (const auto &m : modes) {
        std::vector<double> e, s, o;
        for (const auto &bc : h.cases()) {
            auto r = h.runMpc(bc, rf, m.opts);
            e.push_back(r.energySavingsPct);
            s.push_back(r.speedup);
            o.push_back(sim::overheadTimePct(bc.baseline, r.run));
        }
        t.addRow({m.name, fmt(mean(e), 1), fmt(mean(s), 3),
                  fmt(mean(o), 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
pacingAblation(bench::Harness &h)
{
    std::cout << "--- 3. Horizon pacing: profiled schedule vs the "
                 "paper's uniform i*T/N ---\n";
    auto rf = h.randomForest();
    mpc::MpcOptions uniform;
    uniform.uniformPacing = true;

    TextTable t({"pacing", "energy sav (%)", "speedup",
                 "avg horizon (% of N)"});
    for (bool is_uniform : {false, true}) {
        std::vector<double> e, s, hz;
        for (const auto &bc : h.cases()) {
            auto r = h.runMpc(bc, rf,
                              is_uniform ? uniform : mpc::MpcOptions{});
            e.push_back(r.energySavingsPct);
            s.push_back(r.speedup);
            hz.push_back(100.0 * r.mpcStats.averageHorizonFraction(
                                     r.mpcKernelCount));
        }
        t.addRow({is_uniform ? "uniform (paper formula)"
                             : "profiled (default)",
                  fmt(mean(e), 1), fmt(mean(s), 3), fmt(mean(hz), 1)});
    }
    t.print(std::cout);
    std::cout << "uniform pacing starves the horizon for front-loaded "
                 "applications (long kernels first look like a "
                 "performance deficit)\n\n";
}

void
searchSpaceAblation(bench::Harness &h)
{
    std::cout << "--- 5. Search-space width (perfect prediction, "
                 "overheads charged) ---\n";
    auto truth = h.groundTruth();

    struct Space
    {
        std::string name;
        hw::ConfigSpaceOptions opts;
    };
    const std::vector<Space> spaces = {
        {"paper: 3 DPM x {2,4,6,8} CUs (336)",
         hw::ConfigSpaceOptions::paperDefault()},
        {"all 5 DPM states (560)", hw::ConfigSpaceOptions::fullGpuDvfs()},
        {"CU counts 1..8 (672)",
         hw::ConfigSpaceOptions::fineGrainedCus()},
    };

    TextTable t({"search space", "energy sav (%)", "speedup",
                 "overhead time (%)"});
    for (const auto &s : spaces) {
        mpc::MpcOptions opts;
        opts.searchSpace = s.opts;
        std::vector<double> e, sp, o;
        for (const auto &bc : h.cases()) {
            auto r = h.runMpc(bc, truth, opts);
            e.push_back(r.energySavingsPct);
            sp.push_back(r.speedup);
            o.push_back(sim::overheadTimePct(bc.baseline, r.run));
        }
        t.addRow({s.name, fmt(mean(e), 1), fmt(mean(sp), 3),
                  fmt(mean(o), 2)});
    }
    t.print(std::cout);
    std::cout << "the paper's 3-of-5 DPM restriction costs little: the "
                 "extra states sit between points the hill climber "
                 "already reaches\n\n";
}

void
feedbackAblation(bench::Harness &h)
{
    std::cout << "--- 4. Performance-tracker feedback (Eq. 4/5) under "
                 "Err_15%_10% prediction ---\n";
    auto noisy = h.noisyPredictor(0.15, 0.10);
    mpc::MpcOptions no_feedback;
    no_feedback.useFeedback = false;

    TextTable t({"feedback", "energy sav (%)", "speedup",
                 "min speedup"});
    for (bool fb : {true, false}) {
        std::vector<double> e, s;
        Accumulator smin;
        for (const auto &bc : h.cases()) {
            auto r = h.runMpc(bc, noisy,
                              fb ? mpc::MpcOptions{} : no_feedback);
            e.push_back(r.energySavingsPct);
            s.push_back(r.speedup);
            smin.add(r.speedup);
        }
        t.addRow({fb ? "on (paper)" : "off", fmt(mean(e), 1),
                  fmt(mean(s), 3), fmt(smin.min(), 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
transitionCostAblation(bench::Harness &h)
{
    std::cout << "--- 6. DVFS transition-cost sensitivity (perfect "
                 "prediction) ---\n";
    auto truth = h.groundTruth();

    struct Cost
    {
        std::string name;
        double scale;
    };
    const std::vector<Cost> costs = {
        {"free transitions", 0.0},
        {"default (100 us/V ramp)", 1.0},
        {"10x slower regulators", 10.0},
    };

    TextTable t({"transition cost", "energy sav (%)", "speedup",
                 "transition time (% of run)"});
    for (const auto &c : costs) {
        hw::ApuParams params;
        params.transition.rampPerVolt *= c.scale;
        params.transition.pllRelock *= c.scale;
        params.transition.cuGate *= c.scale;
        const auto model = hw::makeModel("ablation-" + c.name, params);
        sim::Simulator sim(model);

        std::vector<double> e, s, tt;
        for (const auto &name : workload::benchmarkNames()) {
            auto app = workload::makeBenchmark(name);
            policy::TurboCoreGovernor turbo(model);
            auto base = sim.run(app, turbo);
            mpc::MpcGovernor gov(truth, {}, model);
            sim.run(app, gov, base.throughput());
            auto r = sim.run(app, gov, base.throughput());
            e.push_back(sim::energySavingsPct(base, r));
            s.push_back(sim::speedup(base, r));
            tt.push_back(100.0 * r.transitionTime / r.totalTime());
        }
        t.addRow({c.name, fmt(mean(e), 1), fmt(mean(s), 3),
                  fmt(mean(tt), 2)});
    }
    t.print(std::cout);
    std::cout << "per-kernel reconfiguration stays cheap even with slow "
                 "regulators: MPC changes configs at phase boundaries, "
                 "not every kernel\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Ablations: search cost, horizon policy, pacing, feedback",
        "Secs. IV-A1a, IV-A4, VI-D/E of the paper + DESIGN.md Sec. 4");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    searchCostAblation(h);
    horizonAblation(h);
    pacingAblation(h);
    feedbackAblation(h);
    searchSpaceAblation(h);
    transitionCostAblation(h);
    return 0;
}
