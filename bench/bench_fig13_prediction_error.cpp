/**
 * @file
 * Regenerates paper Fig. 13: ramification of prediction inaccuracy.
 * MPC with the trained Random Forest vs hypothetical predictors with
 * half-normal errors: Err_15%_10% (Wu et al.), Err_5% (Paul et al.)
 * and Err_0% (perfect). Horizon equals the number of kernels; MPC
 * overheads excluded (Sec. VI-D methodology).
 *
 * Paper: results are not highly sensitive to prediction accuracy -
 * MPC queries the model 65x less than exhaustive search and corrects
 * through runtime feedback.
 */

#include <iostream>

#include "common/stats.hpp"
#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 13: sensitivity to prediction inaccuracy",
        "Fig. 13 and Sec. VI-D of the paper");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    const auto opts = bench::Harness::limitStudyOptions();

    struct Scheme
    {
        std::string name;
        std::shared_ptr<const ml::PerfPowerPredictor> pred;
        std::vector<double> energy, speedup;
    };
    std::vector<Scheme> schemes;
    schemes.push_back({"RF", h.randomForest(), {}, {}});
    schemes.push_back(
        {"Err_15%_10%", h.noisyPredictor(0.15, 0.10), {}, {}});
    schemes.push_back({"Err_5%", h.noisyPredictor(0.05, 0.05), {}, {}});
    schemes.push_back({"Err_0%", h.groundTruth(), {}, {}});

    // One job per benchmark; each job runs all four predictors so the
    // per-scheme accumulation below stays in benchmark order.
    const auto results = h.mapCases<std::vector<bench::SchemeResult>>(
        [&](const bench::BenchCase &bc) {
            std::vector<bench::SchemeResult> per_scheme;
            per_scheme.reserve(schemes.size());
            for (const auto &s : schemes)
                per_scheme.push_back(h.runMpc(bc, s.pred, opts, 2));
            return per_scheme;
        });

    TextTable t({"benchmark", "RF (dE% / spd)", "Err_15%_10%", "Err_5%",
                 "Err_0%"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &bc = h.cases()[i];
        std::vector<std::string> row = {bc.app.name};
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            const auto &r = results[i][si];
            schemes[si].energy.push_back(r.energySavingsPct);
            schemes[si].speedup.push_back(r.speedup);
            row.push_back(fmt(r.energySavingsPct, 1) + " / " +
                          fmt(r.speedup, 3));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg = {"AVERAGE"};
    for (const auto &s : schemes)
        avg.push_back(fmt(mean(s.energy), 1) + " / " +
                      fmt(mean(s.speedup), 3));
    t.addRow(avg);
    t.print(std::cout);
    std::cout << "\n";

    const double rf_e = mean(schemes[0].energy);
    const double perfect_e = mean(schemes[3].energy);
    bench::Harness::printPaperComparison(
        "prediction sensitivity",
        "other models save 27-28% vs RF's 25%; minor performance "
        "differences",
        "perfect prediction saves " + fmt(perfect_e, 1) +
            "% vs RF's " + fmt(rf_e, 1) +
            "% - same insensitivity, same mechanism (feedback + 65x "
            "fewer model queries)");
    return 0;
}
