/**
 * @file
 * Regenerates paper Tables II and IV: the kernel execution patterns and
 * categorization of the 15 studied benchmarks.
 */

#include <iostream>

#include "harness.hpp"
#include "workload/pattern.hpp"

using namespace gpupm;

int
main()
{
    bench::Harness::printHeader(
        "Tables II & IV: benchmark execution patterns",
        "Tables II and IV of the paper");

    TextTable t({"Benchmark", "Category", "Pattern", "N (launches)",
                 "distinct kernels"});
    for (const auto &app : workload::allBenchmarks()) {
        std::vector<char> tags;
        for (const auto &inv : app.trace)
            tags.push_back(inv.tag);
        std::vector<char> distinct = tags;
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        t.addRow({app.name, toString(app.category),
                  app.patternNotation,
                  std::to_string(app.kernelCount()),
                  std::to_string(distinct.size())});
    }
    t.print(std::cout);

    std::cout << "\nExpanded examples (Table II):\n";
    for (const auto &name : {"Spmv", "kmeans", "hybridsort"}) {
        auto app = workload::makeBenchmark(name);
        std::vector<char> tags;
        for (const auto &inv : app.trace)
            tags.push_back(inv.tag);
        std::cout << "  " << name << ": "
                  << std::string(tags.begin(), tags.end()) << "\n";
    }

    bench::Harness::printPaperComparison(
        "distribution", "75% of studied benchmarks irregular",
        "12 of 15 sampled benchmarks irregular (80%)");
    return 0;
}
