/**
 * @file
 * Regenerates paper Table I: the software-visible CPU, northbridge and
 * GPU DVFS states of the modeled AMD A10-7850K, plus the derived
 * quantities the power model adds (shared-rail minimums, effective
 * memory bandwidth).
 */

#include <iostream>

#include "harness.hpp"
#include "hw/dvfs.hpp"
#include "kernel/perf_model.hpp"

using namespace gpupm;

int
main()
{
    bench::Harness::printHeader(
        "Table I: CPU, Northbridge, and GPU DVFS states",
        "Table I of the paper (AMD A10-7850K)");

    TextTable cpu({"CPU P-state", "Voltage (V)", "Freq (GHz)"});
    for (int i = 0; i < hw::numCpuPStates; ++i) {
        auto s = static_cast<hw::CpuPState>(i);
        const auto &pt = hw::cpuDvfs(s);
        cpu.addRow({hw::toString(s), fmt(pt.voltage, 4),
                    fmt(pt.freq / 1000.0, 1)});
    }
    cpu.print(std::cout);
    std::cout << "\n";

    kernel::GroundTruthModel model{hw::ApuParams::defaults()};
    TextTable nb({"NB P-state", "Freq (GHz)", "Memory Freq (MHz)",
                  "min rail (V)*", "eff. BW (GB/s)*"});
    for (int i = 0; i < hw::numNbPStates; ++i) {
        auto s = static_cast<hw::NbPState>(i);
        const auto &pt = hw::nbDvfs(s);
        nb.addRow({hw::toString(s), fmt(pt.nbFreq / 1000.0, 1),
                   fmt(pt.memFreq, 0), fmt(pt.minRailVoltage, 4),
                   fmt(model.effectiveBandwidth(s) / 1e9, 1)});
    }
    nb.print(std::cout);
    std::cout << "\n";

    TextTable gpu({"GPU P-state", "Voltage (V)", "Freq (MHz)",
                   "searchable"});
    hw::ConfigSpace space;
    for (int i = 0; i < hw::numGpuPStates; ++i) {
        auto s = static_cast<hw::GpuPState>(i);
        const auto &pt = hw::gpuDvfs(s);
        hw::HwConfig probe{hw::CpuPState::P1, hw::NbPState::NB0, s, 8};
        gpu.addRow({hw::toString(s), fmt(pt.voltage, 4),
                    fmt(pt.freq, 0),
                    space.contains(probe) ? "yes" : "no"});
    }
    gpu.print(std::cout);

    std::cout << "\n(*) modeling additions; Table I values themselves "
                 "are reproduced exactly.\n"
              << "Search space: 7 CPU x 4 NB x 3 GPU x {2,4,6,8} CUs = "
              << space.size() << " configurations (paper Sec. V).\n";
    return 0;
}
