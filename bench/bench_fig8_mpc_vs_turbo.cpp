/**
 * @file
 * Regenerates paper Fig. 8 and the headline result: PPK and MPC - both
 * driven by the trained Random Forest predictor, with all optimization
 * overheads charged - against the AMD Turbo Core baseline.
 *
 * Paper: MPC achieves 24.8% energy savings with a 1.8% performance
 * loss; PPK suffers 8-26% performance loss on irregular benchmarks.
 */

#include <iostream>

#include "common/stats.hpp"
#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 8: PPK and MPC vs AMD Turbo Core (RF prediction, "
        "overheads included)",
        "Fig. 8 and Sec. VI-A of the paper");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    auto rf = h.randomForest();

    struct Row
    {
        bench::SchemeResult ppk, mpc;
    };
    const auto rows = h.mapCases<Row>([&](const bench::BenchCase &bc) {
        return Row{h.runPpk(bc, rf), h.runMpc(bc, rf)};
    });

    TextTable t({"benchmark", "PPK energy sav (%)", "PPK speedup",
                 "MPC energy sav (%)", "MPC speedup"});
    std::vector<double> pe, ps, me, ms;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &bc = h.cases()[i];
        const auto &ppk = rows[i].ppk;
        const auto &mpc = rows[i].mpc;
        t.addRow({bc.app.name, fmt(ppk.energySavingsPct, 1),
                  fmt(ppk.speedup, 3), fmt(mpc.energySavingsPct, 1),
                  fmt(mpc.speedup, 3)});
        pe.push_back(ppk.energySavingsPct);
        ps.push_back(ppk.speedup);
        me.push_back(mpc.energySavingsPct);
        ms.push_back(mpc.speedup);
    }
    t.addRow({"AVERAGE", fmt(mean(pe), 1), fmt(mean(ps), 3),
              fmt(mean(me), 1), fmt(mean(ms), 3)});
    t.print(std::cout);
    std::cout << "\n";

    bench::Harness::printPaperComparison(
        "MPC vs Turbo Core",
        "24.8% energy savings, 1.8% performance loss",
        fmt(mean(me), 1) + "% energy savings, " +
            fmt(100.0 * (1.0 - mean(ms)), 1) + "% performance loss");
    bench::Harness::printPaperComparison(
        "PPK on irregular apps", "8-26% performance loss",
        "see per-benchmark speedups above");
    return 0;
}
