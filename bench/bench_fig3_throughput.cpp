/**
 * @file
 * Regenerates paper Fig. 3: per-invocation kernel instruction
 * throughput of Spmv, kmeans and hybridsort, normalized to each
 * application's overall throughput, measured under the Turbo Core
 * baseline.
 */

#include <iostream>

#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 3: kernel throughput during execution",
        "Fig. 3 of the paper (Spmv, kmeans, hybridsort)");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    for (const auto &name : {"Spmv", "kmeans", "hybridsort"}) {
        const auto &bc = h.benchCase(name);
        const Throughput overall = bc.baseline.throughput();

        std::cout << name << " (normalized to overall throughput "
                  << fmt(overall / 1e9, 2) << " Ginsts/s)\n";
        TextTable t({"invocation", "kernel", "normalized throughput"});
        for (const auto &rec : bc.baseline.records) {
            t.addRow({std::to_string(rec.index + 1),
                      std::string(1, rec.tag),
                      fmt(rec.kernelThroughput() / overall, 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    bench::Harness::printPaperComparison(
        "phase shapes",
        "Spmv high->low, kmeans low->high, hybridsort varies per "
        "invocation (incl. same-kernel inputs F1..F9)",
        "same transitions (see traces above)");
    return 0;
}
