/**
 * @file
 * google-benchmark throughput study of the fleet decision server
 * (serve::runFleet) against the naive one-session-at-a-time baseline.
 *
 * The baseline disables everything the serve subsystem adds: no
 * per-session kernel cache (kernelCacheCap = 0, so every decision
 * re-walks the forests through the predictor's one-entry thread_local
 * memo, which thrashes under session interleaving) and no inference
 * broker. The served configuration is the server's default: per-session
 * multi-kernel prediction memos plus cross-session batched FlatForest
 * walks. Both run the identical fleet workload and produce
 * byte-identical traces (pinned by test_fleet_determinism); only the
 * decisions-per-second differ.
 *
 * The committed baseline lives at docs/perf/BENCH_fleet.json
 * (sessions = 1, 8, 64); regenerate with:
 *
 *     ./build/bench/bench_fleet_throughput \
 *         --benchmark_out=docs/perf/BENCH_fleet.json \
 *         --benchmark_out_format=json
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_simd_main.hpp"
#include "ml/trainer.hpp"
#include "serve/server.hpp"

using namespace gpupm;

namespace {

/** The bench-standard forest (same shape as bench_micro_runtime). */
std::shared_ptr<const ml::RandomForestPredictor>
forest()
{
    static std::shared_ptr<const ml::RandomForestPredictor> rf = [] {
        ml::TrainerOptions opts;
        opts.corpusSize = 24;
        opts.configStride = 3;
        opts.forest.numTrees = 60;
        return std::shared_ptr<const ml::RandomForestPredictor>(
            ml::trainRandomForestPredictor(opts));
    }();
    return rf;
}

serve::FleetOptions
fleet(std::size_t sessions)
{
    serve::FleetOptions opts;
    // Regular repeating benchmarks: the serving workload the session
    // cache is designed for. Sessions interleave on the workers, so
    // the raw predictor's one-entry thread_local memo thrashes while
    // the per-session caches keep hitting.
    opts.apps = {"mandelbulbGPU", "NBody"};
    opts.sessionCount = sessions;
    opts.cpuPhaseJitter = 0.3;
    opts.seed = 0x90d1ULL;
    return opts;
}

void
report(benchmark::State &state, const serve::FleetResult &last,
       std::size_t decisions)
{
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * decisions));
    state.counters["decisions_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations() * decisions),
        benchmark::Counter::kIsRate);
    const auto it =
        last.metrics.histograms.find("broker.batch_requests");
    state.counters["batch_mean_requests"] =
        it != last.metrics.histograms.end() ? it->second.mean : 1.0;
}

/**
 * Naive serving: one worker steps sessions round-robin with no session
 * cache and no broker - what hosting N tenants on the raw predictor
 * costs.
 */
void
BM_FleetNaiveSequential(benchmark::State &state)
{
    const auto sessions = static_cast<std::size_t>(state.range(0));
    auto opts = fleet(sessions);
    opts.server.jobs = 1;
    opts.server.batching = false;
    opts.session.kernelCacheCap = 0;

    forest(); // train outside the timed region
    serve::FleetResult last;
    for (auto _ : state)
        last = serve::runFleet(forest(), opts);
    report(state, last, last.decisions);
}
// UseRealTime: the fleet runs on the server's worker threads while the
// driver blocks, so wall clock (not the driver's CPU time) is the
// meaningful denominator for the rate counters.
BENCHMARK(BM_FleetNaiveSequential)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * The fleet server's default path: per-session kernel memos, misses
 * coalesced across sessions by the inference broker.
 */
void
BM_FleetServed(benchmark::State &state)
{
    const auto sessions = static_cast<std::size_t>(state.range(0));
    auto opts = fleet(sessions);
    // Eight workers regardless of core count: on a small host the
    // oversubscription costs nothing (decisions time-slice) and keeps
    // several decisions in flight, which is what lets the broker
    // coalesce their evaluations (see batch_mean_requests).
    opts.server.jobs = 8;

    forest(); // train outside the timed region
    serve::FleetResult last;
    for (auto _ : state)
        last = serve::runFleet(forest(), opts);
    report(state, last, last.decisions);
}
BENCHMARK(BM_FleetServed)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return bench::simdBenchmarkMain(argc, argv);
}
