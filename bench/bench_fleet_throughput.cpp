/**
 * @file
 * google-benchmark throughput study of the fleet decision server
 * (serve::runFleet) against the naive one-session-at-a-time baseline.
 *
 * The baseline disables everything the serve subsystem adds: no
 * per-session kernel cache (kernelCacheCap = 0, so every decision
 * re-walks the forests through the predictor's one-entry thread_local
 * memo, which thrashes under session interleaving) and no inference
 * broker. The served configuration is the server's default: per-session
 * multi-kernel prediction memos plus cross-session batched FlatForest
 * walks. Both run the identical fleet workload and produce
 * byte-identical traces (pinned by test_fleet_determinism); only the
 * decisions-per-second differ.
 *
 * Two sharded studies ride on the same workload: BM_FleetSharded
 * splits the 64-session fleet over tenant-hash shards (per-shard
 * session managers, brokers and queues, drained by one work-stealing
 * pool), and BM_FleetMassive holds a 100k-session synthetic fleet with
 * overload shedding enabled - the scale study behind the "Fleet
 * serving" numbers in README/DESIGN. Every benchmark stamps decision
 * latency percentiles (latency_p50/p95/p99_ns) and the massive run its
 * shed_rate, so perf_compare.py tracks tails, not just rates.
 *
 * The committed baseline lives at docs/perf/BENCH_fleet.json
 * (sessions = 1, 8, 64); the sharded/massive baseline at
 * docs/perf/BENCH_fleet_sharded.json. Regenerate with:
 *
 *     ./build/bench/bench_fleet_throughput \
 *         --benchmark_out=docs/perf/BENCH_fleet.json \
 *         --benchmark_out_format=json
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_simd_main.hpp"
#include "harness.hpp"
#include "ml/trainer.hpp"
#include "serve/server.hpp"

using namespace gpupm;

namespace {

/** The bench-standard forest (same shape as bench_micro_runtime). */
std::shared_ptr<const ml::RandomForestPredictor>
forest()
{
    static std::shared_ptr<const ml::RandomForestPredictor> rf = [] {
        ml::TrainerOptions opts;
        opts.corpusSize = 24;
        opts.configStride = 3;
        opts.forest.numTrees = 60;
        return std::shared_ptr<const ml::RandomForestPredictor>(
            ml::trainRandomForestPredictor(opts));
    }();
    return rf;
}

serve::FleetOptions
fleet(std::size_t sessions)
{
    serve::FleetOptions opts;
    // Regular repeating benchmarks: the serving workload the session
    // cache is designed for. Sessions interleave on the workers, so
    // the raw predictor's one-entry thread_local memo thrashes while
    // the per-session caches keep hitting.
    opts.apps = {"mandelbulbGPU", "NBody"};
    opts.sessionCount = sessions;
    opts.cpuPhaseJitter = 0.3;
    opts.seed = 0x90d1ULL;
    return opts;
}

void
report(benchmark::State &state, const serve::FleetResult &last,
       std::size_t decisions)
{
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * decisions));
    state.counters["decisions_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations() * decisions),
        benchmark::Counter::kIsRate);
    const auto it =
        last.metrics.histograms.find("broker.batch_requests");
    state.counters["batch_mean_requests"] =
        it != last.metrics.histograms.end() ? it->second.mean : 1.0;
    const auto lat = bench::LatencySummary::fromSnapshot(
        last.metrics, "serve.decision_latency_ns");
    state.counters["latency_p50_ns"] = lat.p50;
    state.counters["latency_p95_ns"] = lat.p95;
    state.counters["latency_p99_ns"] = lat.p99;
    state.counters["shed_rate"] =
        last.decisions > 0
            ? static_cast<double>(last.degradedDecisions) /
                  static_cast<double>(last.decisions)
            : 0.0;
}

/**
 * Naive serving: one worker steps sessions round-robin with no session
 * cache and no broker - what hosting N tenants on the raw predictor
 * costs.
 */
void
BM_FleetNaiveSequential(benchmark::State &state)
{
    const auto sessions = static_cast<std::size_t>(state.range(0));
    auto opts = fleet(sessions);
    opts.server.jobs = 1;
    opts.server.batching = false;
    opts.session.kernelCacheCap = 0;

    forest(); // train outside the timed region
    serve::FleetResult last;
    for (auto _ : state)
        last = serve::runFleet(forest(), opts);
    report(state, last, last.decisions);
}
// UseRealTime: the fleet runs on the server's worker threads while the
// driver blocks, so wall clock (not the driver's CPU time) is the
// meaningful denominator for the rate counters.
BENCHMARK(BM_FleetNaiveSequential)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * The fleet server's default path: per-session kernel memos, misses
 * coalesced across sessions by the inference broker.
 */
void
BM_FleetServed(benchmark::State &state)
{
    const auto sessions = static_cast<std::size_t>(state.range(0));
    auto opts = fleet(sessions);
    // Eight workers regardless of core count: on a small host the
    // oversubscription costs nothing (decisions time-slice) and keeps
    // several decisions in flight, which is what lets the broker
    // coalesce their evaluations (see batch_mean_requests).
    opts.server.jobs = 8;

    forest(); // train outside the timed region
    serve::FleetResult last;
    for (auto _ : state)
        last = serve::runFleet(forest(), opts);
    report(state, last, last.decisions);
}
BENCHMARK(BM_FleetServed)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * The sharded server on the served workload: tenant-hash shards split
 * the session-manager and broker locks, the one pool work-steals
 * across shard queues. Args are {shards, jobs} at a fixed 64
 * sessions - on a single-core host the winning config trades worker
 * oversubscription (broker coalescing) against context-switch cost,
 * so both axes are in the committed baseline.
 */
void
BM_FleetSharded(benchmark::State &state)
{
    const auto shards = static_cast<std::size_t>(state.range(0));
    const auto jobs = static_cast<std::size_t>(state.range(1));
    auto opts = fleet(64);
    opts.server.jobs = jobs;
    opts.server.shards = shards;

    forest(); // train outside the timed region
    serve::FleetResult last;
    for (auto _ : state)
        last = serve::runFleet(forest(), opts);
    report(state, last, last.decisions);
}
BENCHMARK(BM_FleetSharded)
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({8, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Scale study: 100k concurrent sessions drawn from a pool of small
 * synthetic applications, sharded 8 ways with overload shedding armed.
 * One iteration is one complete fleet (hundreds of thousands of
 * decisions); the interesting outputs are the latency percentiles and
 * shed_rate counters, not the per-iteration wall time.
 */
void
BM_FleetMassive(benchmark::State &state)
{
    const auto sessions = static_cast<std::size_t>(state.range(0));
    serve::FleetOptions opts;
    opts.sessionCount = sessions;
    opts.syntheticKernels = 2;
    opts.seed = 0x90d1ULL;
    opts.session.optimizedRuns = 1;
    opts.session.kernelCacheCap = 2;
    opts.server.jobs = 8;
    opts.server.shards = 8;
    opts.server.shed.enabled = true;
    opts.server.shed.targetDepth = 512;

    forest(); // train outside the timed region
    serve::FleetResult last;
    for (auto _ : state)
        last = serve::runFleet(forest(), opts);
    report(state, last, last.decisions);
    state.counters["sessions"] =
        static_cast<double>(last.sessions);
}
BENCHMARK(BM_FleetMassive)
    ->Arg(100000)
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return bench::simdBenchmarkMain(argc, argv);
}
