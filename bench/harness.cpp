#include "harness.hpp"

#include <iostream>

#include "common/logging.hpp"

namespace gpupm::bench {

Harness::Harness() = default;

const std::vector<BenchCase> &
Harness::cases()
{
    if (_cases.empty()) {
        for (const auto &name : workload::benchmarkNames()) {
            BenchCase bc;
            bc.app = workload::makeBenchmark(name);
            policy::TurboCoreGovernor turbo;
            bc.baseline = _sim.run(bc.app, turbo);
            bc.target = bc.baseline.throughput();
            _cases.push_back(std::move(bc));
        }
    }
    return _cases;
}

const BenchCase &
Harness::benchCase(const std::string &name)
{
    for (const auto &bc : cases()) {
        if (bc.app.name == name)
            return bc;
    }
    GPUPM_FATAL("no benchmark named '", name, "'");
}

std::shared_ptr<const ml::PerfPowerPredictor>
Harness::randomForest()
{
    if (!_rf) {
        std::cerr << "[harness] training Random Forest predictor ("
                  << ml::TrainerOptions{}.corpusSize
                  << " corpus kernels x 336 configurations)..."
                  << std::endl;
        _rf = ml::trainRandomForestPredictor({}, &_trainingReport);
        std::cerr << "[harness] trained: OOB time MAPE "
                  << fmt(_trainingReport.timeOobMapePct, 1)
                  << "%, power MAPE "
                  << fmt(_trainingReport.powerOobMapePct, 1) << "%"
                  << std::endl;
    }
    return _rf;
}

std::shared_ptr<const ml::PerfPowerPredictor>
Harness::groundTruth()
{
    if (!_truth)
        _truth = std::make_shared<ml::GroundTruthPredictor>();
    return _truth;
}

std::shared_ptr<const ml::PerfPowerPredictor>
Harness::noisyPredictor(double time_err, double power_err)
{
    return std::make_shared<ml::NoisyOraclePredictor>(time_err,
                                                      power_err);
}

SchemeResult
Harness::finish(const BenchCase &bc, sim::RunResult run)
{
    SchemeResult out;
    out.energySavingsPct = sim::energySavingsPct(bc.baseline, run);
    out.gpuEnergySavingsPct = sim::gpuEnergySavingsPct(bc.baseline, run);
    out.speedup = sim::speedup(bc.baseline, run);
    out.run = std::move(run);
    return out;
}

SchemeResult
Harness::runPpk(const BenchCase &bc,
                std::shared_ptr<const ml::PerfPowerPredictor> pred,
                const policy::PpkOptions &opts)
{
    policy::PpkGovernor gov(std::move(pred), opts);
    return finish(bc, _sim.run(bc.app, gov, bc.target));
}

SchemeResult
Harness::runMpc(const BenchCase &bc,
                std::shared_ptr<const ml::PerfPowerPredictor> pred,
                const mpc::MpcOptions &opts, int extra_runs)
{
    GPUPM_ASSERT(extra_runs >= 1, "need at least one optimized run");
    mpc::MpcGovernor gov(std::move(pred), opts);
    _sim.run(bc.app, gov, bc.target); // profiling execution
    sim::RunResult last;
    for (int i = 0; i < extra_runs; ++i)
        last = _sim.run(bc.app, gov, bc.target);
    auto out = finish(bc, std::move(last));
    out.mpcStats = gov.runStats();
    out.mpcKernelCount = gov.kernelCount();
    return out;
}

SchemeResult
Harness::runOracle(const BenchCase &bc)
{
    policy::TheoreticallyOptimalGovernor gov(bc.app);
    return finish(bc, _sim.run(bc.app, gov, bc.target));
}

mpc::MpcOptions
Harness::limitStudyOptions()
{
    mpc::MpcOptions opts;
    opts.chargeOverhead = false;
    opts.overhead = policy::OverheadModel::free();
    opts.horizonMode = mpc::HorizonMode::Full;
    return opts;
}

void
Harness::printHeader(const std::string &title,
                     const std::string &paper_reference)
{
    std::cout << "\n=== " << title << " ===\n"
              << "Reproduces: " << paper_reference << "\n\n";
}

void
Harness::printPaperComparison(const std::string &what,
                              const std::string &paper,
                              const std::string &ours)
{
    std::cout << "[shape check] " << what << ": paper " << paper
              << " | this reproduction " << ours << "\n";
}

} // namespace gpupm::bench
