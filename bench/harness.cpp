#include "harness.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/flags.hpp"
#include "common/logging.hpp"
#include "ml/serialize.hpp"
#include "trace/chrome_export.hpp"
#include "trace/trace.hpp"

namespace gpupm::bench {

HarnessOptions
harnessOptionsFromArgs(int argc, const char *const *argv)
{
    FlagParser flags("standard bench harness flags");
    flags.addInt("jobs", 0,
                 "sweep workers (0 = hardware concurrency, 1 = serial)");
    flags.addInt("seed", 0xe44,
                 "root seed for synthetic randomness");
    flags.addPath("model-cache", "",
                  "save/load the trained RF predictor at this path "
                  "(skips identical retraining across bench binaries)");
    flags.addPath("trace-out", "",
                  "write a Chrome trace-event JSON timeline of this "
                  "bench run here");
    flags.addString("simd", toString(ml::defaultSimdMode()),
                    "forest inference engine: scalar (float64, "
                    "default), auto, avx2, fallback (see ml/simd.hpp)");
    if (!flags.parse(argc, argv)) {
        std::cerr << (flags.helpRequested() ? "" : flags.error() + "\n")
                  << flags.usage();
        std::exit(flags.helpRequested() ? 0 : 2);
    }
    HarnessOptions opts;
    opts.jobs = static_cast<std::size_t>(std::max(0, flags.getInt("jobs")));
    opts.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    opts.modelCache = flags.getPath("model-cache");
    opts.traceOut = flags.getPath("trace-out");
    const auto simd = ml::parseSimdMode(flags.getString("simd"));
    if (!simd) {
        std::cerr << "invalid --simd value '" << flags.getString("simd")
                  << "' (want scalar|auto|avx2|fallback)\n";
        std::exit(2);
    }
    // Install as the process default: predictors are built in many
    // places (harness training, model-cache loads, fleet sessions,
    // online refit fallbacks) and all consult defaultSimdMode().
    ml::setDefaultSimdMode(*simd);
    opts.simd = *simd;
    return opts;
}

LatencySummary
LatencySummary::fromSnapshot(const telemetry::Snapshot &snapshot,
                             const std::string &histogram)
{
    LatencySummary out;
    const auto it = snapshot.histograms.find(histogram);
    if (it == snapshot.histograms.end())
        return out;
    out.count = it->second.count;
    out.p50 = it->second.p50;
    out.p95 = it->second.p95;
    out.p99 = it->second.p99;
    return out;
}

Harness::Harness(const HarnessOptions &opts)
    : _opts(opts), _engine({opts.jobs, opts.seed})
{
    if (!_opts.traceOut.empty())
        trace::Tracer::start();
}

Harness::~Harness()
{
    if (_opts.traceOut.empty())
        return;
    trace::Tracer::stop();
    const auto events = trace::Tracer::collect();
    std::ofstream os(_opts.traceOut, std::ios::binary);
    if (!os) {
        GPUPM_WARN("cannot write trace '", _opts.traceOut, "'");
        return;
    }
    trace::writeChromeTrace(os, events);
    std::cerr << "[harness] span timeline (" << events.size()
              << " events) written to " << _opts.traceOut << std::endl;
}

const std::vector<BenchCase> &
Harness::cases()
{
    {
        std::lock_guard lock(_initMutex);
        if (!_cases.empty())
            return _cases;
    }
    // Build outside the lock: the fan-out below runs on the engine, and
    // a worker job re-entering cases()/benchCase() must not deadlock.
    const auto names = workload::benchmarkNames();
    auto built = _engine.map<BenchCase>(
        names.size(), [&](std::size_t i, Pcg32 &) {
            BenchCase bc;
            bc.app = workload::makeBenchmark(names[i]);
            policy::TurboCoreGovernor turbo{hw::paperApu()};
            sim::Simulator sim{hw::paperApu()};
            bc.baseline = sim.run(bc.app, turbo);
            bc.target = bc.baseline.throughput();
            return bc;
        });
    std::lock_guard lock(_initMutex);
    if (_cases.empty())
        _cases = std::move(built);
    return _cases;
}

const BenchCase &
Harness::benchCase(const std::string &name)
{
    for (const auto &bc : cases()) {
        if (bc.app.name == name)
            return bc;
    }
    GPUPM_FATAL("no benchmark named '", name, "'");
}

std::shared_ptr<const ml::PerfPowerPredictor>
Harness::randomForest()
{
    std::lock_guard lock(_initMutex);
    if (!_rf) {
        if (!_opts.modelCache.empty()) {
            if (std::ifstream in(_opts.modelCache); in) {
                _rf = ml::loadRandomForest(in);
                std::cerr << "[harness] loaded RF predictor from cache "
                          << _opts.modelCache
                          << " (training report unavailable)"
                          << std::endl;
                return _rf;
            }
        }
        ml::TrainerOptions topts;
        topts.jobs = _opts.jobs;
        std::cerr << "[harness] training Random Forest predictor ("
                  << topts.corpusSize
                  << " corpus kernels x 336 configurations)..."
                  << std::endl;
        auto trained =
            ml::trainRandomForestPredictor(topts, &_trainingReport);
        _hasTrainingReport = true;
        std::cerr << "[harness] trained: OOB time MAPE "
                  << fmt(_trainingReport.timeOobMapePct, 1)
                  << "%, power MAPE "
                  << fmt(_trainingReport.powerOobMapePct, 1) << "%"
                  << std::endl;
        if (!_opts.modelCache.empty()) {
            std::ofstream out(_opts.modelCache);
            if (out) {
                ml::saveRandomForest(*trained, out);
                std::cerr << "[harness] saved RF predictor to "
                          << _opts.modelCache << std::endl;
            } else {
                GPUPM_WARN("cannot write model cache '", _opts.modelCache,
                           "' - continuing without caching");
            }
        }
        _rf = std::move(trained);
    }
    return _rf;
}

std::shared_ptr<const ml::PerfPowerPredictor>
Harness::groundTruth()
{
    std::lock_guard lock(_initMutex);
    if (!_truth)
        _truth = std::make_shared<ml::GroundTruthPredictor>(hw::ApuParams::defaults());
    return _truth;
}

std::shared_ptr<const ml::PerfPowerPredictor>
Harness::noisyPredictor(double time_err, double power_err) const
{
    return std::make_shared<ml::NoisyOraclePredictor>(
        time_err, power_err, _opts.seed,
        hw::ApuParams::defaults());
}

SchemeResult
Harness::finish(const BenchCase &bc, sim::RunResult run)
{
    SchemeResult out;
    out.energySavingsPct = sim::energySavingsPct(bc.baseline, run);
    out.gpuEnergySavingsPct = sim::gpuEnergySavingsPct(bc.baseline, run);
    out.speedup = sim::speedup(bc.baseline, run);
    out.run = std::move(run);
    return out;
}

SchemeResult
Harness::runPpk(const BenchCase &bc,
                std::shared_ptr<const ml::PerfPowerPredictor> pred,
                const policy::PpkOptions &opts)
{
    // Local simulator per call: the scheme runners are invoked
    // concurrently from mapCases workers.
    sim::Simulator sim{hw::paperApu()};
    policy::PpkGovernor gov(std::move(pred), opts, hw::paperApu());
    return finish(bc, sim.run(bc.app, gov, bc.target));
}

SchemeResult
Harness::runMpc(const BenchCase &bc,
                std::shared_ptr<const ml::PerfPowerPredictor> pred,
                const mpc::MpcOptions &opts, int extra_runs)
{
    GPUPM_ASSERT(extra_runs >= 1, "need at least one optimized run");
    sim::Simulator sim{hw::paperApu()};
    mpc::MpcGovernor gov(std::move(pred), opts, hw::paperApu());
    sim.run(bc.app, gov, bc.target); // profiling execution
    sim::RunResult last;
    for (int i = 0; i < extra_runs; ++i)
        last = sim.run(bc.app, gov, bc.target);
    auto out = finish(bc, std::move(last));
    out.mpcStats = gov.runStats();
    out.mpcKernelCount = gov.kernelCount();
    return out;
}

SchemeResult
Harness::runOracle(const BenchCase &bc, std::size_t jobs)
{
    sim::Simulator sim{hw::paperApu()};
    policy::TheoreticallyOptimalGovernor gov(bc.app, hw::paperApu(),
                                             6000, {}, jobs);
    return finish(bc, sim.run(bc.app, gov, bc.target));
}

mpc::MpcOptions
Harness::limitStudyOptions()
{
    mpc::MpcOptions opts;
    opts.chargeOverhead = false;
    opts.overhead = policy::OverheadModel::free();
    opts.horizonMode = mpc::HorizonMode::Full;
    return opts;
}

void
Harness::printHeader(const std::string &title,
                     const std::string &paper_reference)
{
    std::cout << "\n=== " << title << " ===\n"
              << "Reproduces: " << paper_reference << "\n\n";
}

void
Harness::printPaperComparison(const std::string &what,
                              const std::string &paper,
                              const std::string &ours)
{
    std::cout << "[shape check] " << what << ": paper " << paper
              << " | this reproduction " << ours << "\n";
}

} // namespace gpupm::bench
