/**
 * @file
 * Regenerates paper Fig. 10: GPU-plane (GPU + NB + DRAM interface)
 * energy savings of PPK and MPC over Turbo Core, including the static
 * GPU energy consumed while the host runs the optimizers.
 *
 * Paper: MPC averages 10% GPU energy savings (lbm peaks at 51% thanks
 * to its peak-type kernels); MPC beats PPK by 5.1% GPU energy while
 * also being 9.6% faster.
 */

#include <iostream>

#include "common/stats.hpp"
#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 10: GPU energy savings over AMD Turbo Core",
        "Fig. 10 of the paper");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    auto rf = h.randomForest();

    TextTable t({"benchmark", "PPK GPU energy sav (%)",
                 "MPC GPU energy sav (%)"});
    std::vector<double> pg, mg;
    for (const auto &bc : h.cases()) {
        auto ppk = h.runPpk(bc, rf);
        auto mpc = h.runMpc(bc, rf);
        t.addRow({bc.app.name, fmt(ppk.gpuEnergySavingsPct, 1),
                  fmt(mpc.gpuEnergySavingsPct, 1)});
        pg.push_back(ppk.gpuEnergySavingsPct);
        mg.push_back(mpc.gpuEnergySavingsPct);
    }
    t.addRow({"AVERAGE", fmt(mean(pg), 1), fmt(mean(mg), 1)});
    t.print(std::cout);
    std::cout << "\n";

    // For reference, the achievable GPU savings with perfect
    // knowledge (Theoretically Optimal).
    std::vector<double> tg;
    for (const auto &bc : h.cases())
        tg.push_back(h.runOracle(bc).gpuEnergySavingsPct);
    std::cout << "Theoretically Optimal average GPU energy savings: "
              << fmt(mean(tg), 1) << "%\n\n";

    bench::Harness::printPaperComparison(
        "MPC GPU-plane savings", "10% average (51% peak for lbm)",
        fmt(mean(mg), 1) + "% average with the RF predictor; " +
            fmt(mean(tg), 1) +
            "% achievable with perfect prediction (our RF's "
            "configuration-scaling error costs most of the GPU-side "
            "headroom; chip-wide results in Fig. 8 are unaffected)");
    return 0;
}
