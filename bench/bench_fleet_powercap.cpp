/**
 * @file
 * google-benchmark study of the fleet power-cap arbitration subsystem:
 * a 16-session fleet is run uncapped and against a ladder of fleet
 * budgets, and every run stamps the measured fleet power, its fraction
 * of the budget, the cap-violation rate, the cap-limited decision
 * rate, and Jain's fairness index over per-session mean power.
 *
 * What the numbers mean:
 *  - fleet_power_w: sum over sessions of (session energy / session
 *    wall time) - the aggregate draw of the fleet were the sessions
 *    co-resident, which is exactly what the arbiter budgets for.
 *  - power_over_cap: fleet power / budget. The acceptance contract is
 *    that a *binding* cap (one below the uncapped draw but above the
 *    fleet's DVFS floor) converges to within 5% of the budget, i.e.
 *    power_over_cap in [0.95, 1.05]; the uncapped run stamps 0.
 *  - violation_rate: decisions whose measured step power exceeded the
 *    session's enforced cap, over all decisions. Nonzero under a tight
 *    cap (the controller is reactive, not clairvoyant); the windowed
 *    throttle is what pulls the *average* under the budget.
 *  - jain_index: (sum p_i)^2 / (n * sum p_i^2) over per-session mean
 *    power - 1.0 is perfectly even, 1/n is maximally skewed. The
 *    equal-share policy on a homogeneous fleet should stay near 1.
 *
 * The committed baseline lives at docs/perf/BENCH_powercap.json; the
 * bench-powercap-compare target gates it. Regenerate with:
 *
 *     ./build/bench/bench_fleet_powercap \
 *         --benchmark_out=docs/perf/BENCH_powercap.json \
 *         --benchmark_out_format=json
 */

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_simd_main.hpp"
#include "harness.hpp"
#include "ml/trainer.hpp"
#include "serve/server.hpp"

using namespace gpupm;

namespace {

constexpr std::size_t kSessions = 16;

/** The bench-standard forest (same shape as bench_micro_runtime). */
std::shared_ptr<const ml::RandomForestPredictor>
forest()
{
    static std::shared_ptr<const ml::RandomForestPredictor> rf = [] {
        ml::TrainerOptions opts;
        opts.corpusSize = 24;
        opts.configStride = 3;
        opts.forest.numTrees = 60;
        return std::shared_ptr<const ml::RandomForestPredictor>(
            ml::trainRandomForestPredictor(opts));
    }();
    return rf;
}

serve::FleetOptions
cappedFleet(Watts budget)
{
    serve::FleetOptions opts;
    opts.apps = {"mandelbulbGPU", "NBody"};
    opts.sessionCount = kSessions;
    opts.cpuPhaseJitter = 0.3;
    opts.seed = 0x90d1ULL;
    opts.server.jobs = 4;
    // Enough optimized runs for the windowed throttle to settle: the
    // controller acts once per violation window, so convergence is
    // measured on the tail (see tailPower), not the transient.
    opts.session.optimizedRuns = 24;
    // Re-optimize every decision instead of replaying per-kernel
    // cached choices: a cached config picked under yesterday's cap is
    // exactly what a power study must not replay, and the full
    // hill-climb is what tracks the moving per-session cap.
    opts.session.kernelCacheCap = 0;
    opts.server.powercap.budgetWatts = budget;
    opts.server.powercap.window = 8;
    return opts;
}

/**
 * Per-session mean power (energy / wall) recovered from the trace,
 * restricted to runs >= @p fromRun (0 = the whole stream).
 */
std::map<serve::SessionId, double>
sessionPower(const serve::FleetResult &result, std::size_t fromRun)
{
    std::map<serve::SessionId, double> energy;
    std::map<serve::SessionId, double> wall;
    for (const auto &rec : result.trace) {
        if (rec.run < fromRun)
            continue;
        const double e = rec.cpuEnergy + rec.gpuEnergy;
        energy[rec.session] += e;
        if (rec.measuredPower > 0.0)
            wall[rec.session] += e / rec.measuredPower;
    }
    std::map<serve::SessionId, double> power;
    for (const auto &[id, e] : energy)
        if (wall[id] > 0.0)
            power[id] = e / wall[id];
    return power;
}

void
report(benchmark::State &state, const serve::FleetResult &last,
       Watts budget)
{
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * last.decisions));
    state.counters["decisions_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations() * last.decisions),
        benchmark::Counter::kIsRate);

    const auto power = sessionPower(last, 0);
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const auto &[id, p] : power) {
        sum += p;
        sum_sq += p * p;
    }
    const double n = static_cast<double>(power.size());
    state.counters["fleet_power_w"] = sum;
    state.counters["jain_index"] =
        n > 0.0 && sum_sq > 0.0 ? (sum * sum) / (n * sum_sq) : 0.0;

    // Convergence: the fleet draw over the last third of the runs,
    // after the windowed throttle has settled.
    const auto tail = sessionPower(last, 17);
    double tail_sum = 0.0;
    for (const auto &[id, p] : tail)
        tail_sum += p;
    state.counters["tail_power_w"] = tail_sum;
    state.counters["power_over_cap"] =
        budget > 0.0 ? tail_sum / budget : 0.0;

    const double decisions = static_cast<double>(last.decisions);
    state.counters["violation_rate"] =
        decisions > 0.0
            ? static_cast<double>(last.capViolations) / decisions
            : 0.0;
    state.counters["cap_limited_rate"] =
        decisions > 0.0
            ? static_cast<double>(last.capLimitedDecisions) / decisions
            : 0.0;
}

/**
 * Fleet energy vs cap: range(0) is the fleet budget in watts
 * (0 = uncapped reference).
 */
void
BM_FleetPowercap(benchmark::State &state)
{
    const auto budget = static_cast<Watts>(state.range(0));
    auto opts = cappedFleet(budget);

    forest(); // train outside the timed region
    serve::FleetResult last;
    for (auto _ : state)
        last = serve::runFleet(forest(), opts);
    report(state, last, budget);
}
BENCHMARK(BM_FleetPowercap)
    // The fleet's achievable band is narrow - the MPC is already
    // energy-optimal uncapped (~605 W) and its min-power floor with
    // CPU phases measures ~580 W - so the ladder brackets that band:
    ->Arg(0)   // uncapped reference draw
    ->Arg(600) // binding + feasible: the 5%-convergence acceptance rung
    ->Arg(560) // at the floor: converges just over budget (~3%)
    ->Arg(500) // infeasible: throttle pins at floor, violations persist
    ->Unit(benchmark::kMillisecond);

/** Usage-proportional split on the same fleet (fairness contrast). */
void
BM_FleetPowercapUsageSplit(benchmark::State &state)
{
    const auto budget = static_cast<Watts>(state.range(0));
    auto opts = cappedFleet(budget);
    opts.server.powercap.policy =
        powercap::SplitPolicy::UsageProportional;

    forest();
    serve::FleetResult last;
    for (auto _ : state)
        last = serve::runFleet(forest(), opts);
    report(state, last, budget);
}
BENCHMARK(BM_FleetPowercapUsageSplit)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return bench::simdBenchmarkMain(argc, argv);
}
