/**
 * @file
 * Regenerates paper Fig. 15: the average MPC prediction-horizon length
 * chosen by the adaptive generator, as a percentage of the total
 * number of kernels N in each application.
 *
 * Paper: long-kernel benchmarks (NBody, lbm, EigenValue, XSBench)
 * explore the full horizon; short-kernel benchmarks shrink it to
 * bound the optimization overhead.
 */

#include <iostream>

#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 15: average adaptive horizon length (% of N)",
        "Fig. 15 of the paper");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    auto rf = h.randomForest();

    TextTable t({"benchmark", "N", "avg horizon (% of N)",
                 "avg kernel time (ms)"});
    for (const auto &bc : h.cases()) {
        auto mpc = h.runMpc(bc, rf);
        const double frac = mpc.mpcStats.averageHorizonFraction(
            mpc.mpcKernelCount);
        const double avg_kernel_ms =
            1e3 * bc.baseline.kernelTime / bc.app.kernelCount();
        t.addRow({bc.app.name, std::to_string(bc.app.kernelCount()),
                  fmt(100.0 * frac, 1), fmt(avg_kernel_ms, 2)});
    }
    t.print(std::cout);
    std::cout << "\n";

    bench::Harness::printPaperComparison(
        "horizon shape",
        "NBody/lbm/EigenValue/XSBench ~full horizon (long kernels); "
        "others significantly shrunk",
        "same correlation between kernel length and horizon (table "
        "above)");
    return 0;
}
