/**
 * @file
 * Regenerates paper Fig. 12: comparison with the theoretical limit.
 * MPC runs in limit-study form (perfect prediction, no overheads, full
 * horizon) against the Theoretically Optimal exhaustive plan.
 *
 * Paper: MPC achieves 92% of the maximum theoretical energy savings
 * and 93% of the potential performance gain.
 */

#include <iostream>

#include "common/stats.hpp"
#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 12: MPC vs Theoretically Optimal (perfect prediction, "
        "no overheads, full horizon)",
        "Fig. 12 and Sec. VI-C of the paper");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));

    // One sweep job per benchmark: the limit-study MPC runs and the
    // oracle's exhaustive plan both execute inside the job, so the
    // whole figure scales with --jobs while the row order (and every
    // digit) stays identical to the serial run.
    struct Row
    {
        bench::SchemeResult mpc, to;
    };
    auto truth = h.groundTruth();
    const auto rows = h.mapCases<Row>([&](const bench::BenchCase &bc) {
        return Row{h.runMpc(bc, truth,
                            bench::Harness::limitStudyOptions(), 3),
                   h.runOracle(bc)};
    });

    TextTable t({"benchmark", "MPC energy sav (%)", "MPC speedup",
                 "TO energy sav (%)", "TO speedup"});
    std::vector<double> frac_e, me, te, ms, ts;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &bc = h.cases()[i];
        const auto &mpc = rows[i].mpc;
        const auto &to = rows[i].to;
        t.addRow({bc.app.name, fmt(mpc.energySavingsPct, 1),
                  fmt(mpc.speedup, 3), fmt(to.energySavingsPct, 1),
                  fmt(to.speedup, 3)});
        me.push_back(mpc.energySavingsPct);
        te.push_back(to.energySavingsPct);
        ms.push_back(mpc.speedup);
        ts.push_back(to.speedup);
        if (to.energySavingsPct > 1.0)
            frac_e.push_back(mpc.energySavingsPct /
                             to.energySavingsPct);
    }
    t.addRow({"AVERAGE", fmt(mean(me), 1), fmt(mean(ms), 3),
              fmt(mean(te), 1), fmt(mean(ts), 3)});
    t.print(std::cout);
    std::cout << "\n";

    bench::Harness::printPaperComparison(
        "fraction of theoretical savings",
        "92% of maximum energy savings, 93% of performance gain",
        fmt(100.0 * mean(frac_e), 0) + "% of TO energy savings; " +
            fmt(100.0 * mean(ms) / mean(ts), 0) +
            "% of TO performance");
    return 0;
}
