/**
 * @file
 * Regenerates paper Fig. 2: performance trends and energy-optimal
 * points of the four GPGPU kernel archetypes as the NB DVFS state and
 * the number of active CUs vary.
 *
 * For each kernel the series are speedup vs [NB3, 2 CUs] at fixed
 * [P1, DPM4], one row per NB state, one column per CU count; the
 * energy-optimal configuration over the whole 336-point space is
 * marked underneath.
 */

#include <iostream>
#include <limits>

#include "harness.hpp"
#include "kernel/perf_model.hpp"

using namespace gpupm;

int
main()
{
    bench::Harness::printHeader(
        "Figure 2: kernel scaling archetypes",
        "Fig. 2 of the paper (MaxFlops, readGlobalMemoryCoalesced, "
        "writeCandidates, astar)");

    kernel::GroundTruthModel model{hw::ApuParams::defaults()};
    hw::ConfigSpace space;

    for (const auto &k : workload::figure2Kernels()) {
        std::cout << k.name << " (" << toString(k.archetype) << ")\n";

        hw::HwConfig ref{hw::CpuPState::P1, hw::NbPState::NB3,
                         hw::GpuPState::DPM4, 2};
        const Seconds t_ref = model.estimate(k, ref).time;

        TextTable t({"NB state", "2 CUs", "4 CUs", "6 CUs", "8 CUs"});
        for (int nb = hw::numNbPStates - 1; nb >= 0; --nb) {
            std::vector<std::string> row = {
                hw::toString(static_cast<hw::NbPState>(nb))};
            for (int cus : {2, 4, 6, 8}) {
                hw::HwConfig c{hw::CpuPState::P1,
                               static_cast<hw::NbPState>(nb),
                               hw::GpuPState::DPM4, cus};
                row.push_back(fmt(t_ref / model.estimate(k, c).time, 2));
            }
            t.addRow(row);
        }
        t.print(std::cout);

        // Energy-optimal configuration over the full search space.
        const hw::HwConfig *best = nullptr;
        double best_energy = std::numeric_limits<double>::infinity();
        for (const auto &c : space.all()) {
            const double e = model.energy(k, c);
            if (e < best_energy) {
                best_energy = e;
                best = &c;
            }
        }
        std::cout << "  energy-optimal: " << best->toString() << "\n\n";
    }

    bench::Harness::printPaperComparison(
        "archetype shapes",
        "compute scales w/ CUs; memory saturates past NB2; peak "
        "regresses at 8 CUs; unscalable flat",
        "same four shapes (see tables above)");
    return 0;
}
