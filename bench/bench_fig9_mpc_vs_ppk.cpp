/**
 * @file
 * Regenerates paper Fig. 9: MPC's energy savings and speedup relative
 * to PPK (both RF-driven, overheads charged).
 *
 * Paper: MPC outperforms PPK by 9.6% while reducing energy by 6.6%;
 * on the 12 irregular benchmarks by 12% performance / 7.5% energy.
 */

#include <iostream>

#include "common/stats.hpp"
#include "harness.hpp"

using namespace gpupm;

int
main(int argc, char **argv)
{
    bench::Harness::printHeader(
        "Figure 9: MPC vs PPK (RF prediction, overheads included)",
        "Fig. 9 of the paper");

    bench::Harness h(bench::harnessOptionsFromArgs(argc, argv));
    auto rf = h.randomForest();

    TextTable t({"benchmark", "energy sav vs PPK (%)",
                 "speedup vs PPK"});
    std::vector<double> de_all, sp_all, de_irr, sp_irr;
    for (const auto &bc : h.cases()) {
        auto ppk = h.runPpk(bc, rf);
        auto mpc = h.runMpc(bc, rf);
        const double de =
            100.0 * (1.0 - mpc.run.totalEnergy() /
                               ppk.run.totalEnergy());
        const double sp =
            ppk.run.totalTime() / mpc.run.totalTime();
        t.addRow({bc.app.name, fmt(de, 1), fmt(sp, 3)});
        de_all.push_back(de);
        sp_all.push_back(sp);
        if (bc.app.category != workload::Category::Regular) {
            de_irr.push_back(de);
            sp_irr.push_back(sp);
        }
    }
    t.addRow({"AVERAGE (all 15)", fmt(mean(de_all), 1),
              fmt(mean(sp_all), 3)});
    t.addRow({"AVERAGE (12 irregular)", fmt(mean(de_irr), 1),
              fmt(mean(sp_irr), 3)});
    t.print(std::cout);
    std::cout << "\n";

    bench::Harness::printPaperComparison(
        "MPC vs PPK (all)",
        "6.6% energy reduction, 9.6% performance improvement",
        fmt(mean(de_all), 1) + "% energy, " +
            fmt(100.0 * (mean(sp_all) - 1.0), 1) + "% performance");
    bench::Harness::printPaperComparison(
        "MPC vs PPK (irregular)",
        "7.5% energy reduction, 12% performance improvement",
        fmt(mean(de_irr), 1) + "% energy, " +
            fmt(100.0 * (mean(sp_irr) - 1.0), 1) + "% performance");
    return 0;
}
