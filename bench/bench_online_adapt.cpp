/**
 * @file
 * google-benchmark study of the online-learning loop: hot-swap
 * publication cost and post-shift accuracy recovery.
 *
 * Two claims are measured:
 *
 *  1. Swap pause (BM_BrokerEvaluate): publication is one atomic store,
 *     so a publish storm racing broker flushes must not block or slow
 *     evaluation. The swapstorm:1 variant runs a thread republishing
 *     generations as fast as it can while clients evaluate; the
 *     blocked_evaluates counter - evaluations that took refit-scale
 *     time (> 50 ms) - has a target of ZERO, and throughput should
 *     match swapstorm:0 within noise.
 *
 *  2. Accuracy recovery (BM_FleetAdaptsToShift): the fleet runs on
 *     hardware whose DRAM bus is a quarter the width the forest was
 *     trained against (an injected workload/hardware shift), so the
 *     offline model mispredicts memory-bound kernels persistently.
 *     With --online-learn the drift detector triggers, the learner
 *     refits from the fleet's own observed decisions, and the
 *     per-decision |time error| of late runs (mape_last_pct) must drop
 *     well below the static model's (mape_static_pct counter of the
 *     control variant online:0).
 *
 * The committed baseline lives at docs/perf/BENCH_online.json;
 * regenerate with:
 *
 *     ./build/bench/bench_online_adapt \
 *         --benchmark_out=docs/perf/BENCH_online.json \
 *         --benchmark_out_format=json
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "bench_simd_main.hpp"
#include "common/rng.hpp"
#include "ml/trainer.hpp"
#include "online/forest_handle.hpp"
#include "serve/broker.hpp"
#include "serve/server.hpp"
#include "trace/decision.hpp"

using namespace gpupm;

namespace {

/** The bench-standard forest (same shape as bench_fleet_throughput). */
std::shared_ptr<const ml::RandomForestPredictor>
forest()
{
    static std::shared_ptr<const ml::RandomForestPredictor> rf = [] {
        ml::TrainerOptions opts;
        opts.corpusSize = 24;
        opts.configStride = 3;
        opts.forest.numTrees = 60;
        return std::shared_ptr<const ml::RandomForestPredictor>(
            ml::trainRandomForestPredictor(opts));
    }();
    return rf;
}

/** A second distinct generation for the publish storm to swap in. */
std::shared_ptr<const ml::RandomForestPredictor>
altForest()
{
    static std::shared_ptr<const ml::RandomForestPredictor> rf = [] {
        ml::TrainerOptions opts;
        opts.corpusSize = 24;
        opts.configStride = 3;
        opts.forest.numTrees = 60;
        opts.seed = 0x7a42ULL;
        return std::shared_ptr<const ml::RandomForestPredictor>(
            ml::trainRandomForestPredictor(opts));
    }();
    return rf;
}

/**
 * Broker evaluation throughput, optionally under a publish storm
 * (state.range(0) != 0). Single client thread - the metric is per-call
 * latency of the flush path, not queueing effects.
 */
void
BM_BrokerEvaluate(benchmark::State &state)
{
    constexpr std::size_t kRows = 16;
    online::ForestHandle handle(forest());
    serve::InferenceBroker broker(handle);

    std::vector<ml::FeatureVector> rows(kRows);
    Pcg32 rng(0xbe7cULL, 0x5eedULL | 1);
    for (auto &f : rows)
        for (auto &v : f)
            v = rng.uniform(0.0, 1.0);
    std::vector<double> tl(kRows), gp(kRows);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> publishes{0};
    std::thread storm;
    if (state.range(0) != 0) {
        storm = std::thread([&] {
            bool flip = false;
            while (!stop.load(std::memory_order_acquire)) {
                handle.publish(flip ? altForest() : forest());
                flip = !flip;
                publishes.fetch_add(1, std::memory_order_relaxed);
                // Keep the storm from starving the client on small
                // machines; thousands of publishes per second is
                // already orders beyond any real retrain cadence.
                std::this_thread::yield();
            }
        });
    }

    std::uint64_t blocked = 0;
    serve::InferenceBroker::DecisionScope scope(broker);
    for (auto _ : state) {
        const auto t0 = std::chrono::steady_clock::now();
        broker.evaluate(rows, tl, gp);
        const auto dt = std::chrono::steady_clock::now() - t0;
        // Refit-scale pause (a flush waiting out a retrain/publish):
        // must never happen. The bound is far above scheduler jitter on
        // a loaded single-core host but far below any forest refit.
        if (dt > std::chrono::milliseconds(50))
            ++blocked;
        benchmark::DoNotOptimize(tl.data());
    }

    stop.store(true, std::memory_order_release);
    if (storm.joinable())
        storm.join();

    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRows));
    state.counters["blocked_evaluates"] =
        static_cast<double>(blocked);
    state.counters["publishes"] = static_cast<double>(publishes.load());
}
BENCHMARK(BM_BrokerEvaluate)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("swapstorm")
    ->Unit(benchmark::kMicrosecond);

/** Mean |time error| (%) of run @p run's scored decisions. */
double
runMape(const std::vector<trace::DecisionRecord> &records,
        std::size_t run)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &r : records) {
        if (r.run != run || !r.observed || r.predictedTime < 0.0)
            continue;
        sum += std::fabs(r.timeErrorPct);
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

constexpr std::size_t kOptimizedRuns = 8;

/** Fleet on shifted hardware: DRAM bus a quarter the trained width. */
serve::FleetOptions
shiftedFleet(bool online_learn, trace::DecisionSink *sink)
{
    serve::FleetOptions opts;
    opts.apps = {"color", "mis"};
    opts.sessionCount = 4;
    opts.session.optimizedRuns = kOptimizedRuns;
    opts.cpuPhaseJitter = 0.3;
    opts.seed = 0x90d1ULL;
    hw::ApuParams shifted = hw::ApuParams::defaults();
    shifted.memBusBytes /= 4.0; // the injected shift
    opts.server.model = hw::makeModel("shifted-dram", shifted);
    opts.decisionSink = sink;
    opts.onlineLearn = online_learn;
    // Eager adaptation for the short bench fleet: trigger on small
    // windows, refit from the first few dozen observed rows, and swap
    // synchronously so the recovery split (early vs late runs) is
    // deterministic.
    opts.online.drift.window = 8;
    opts.online.drift.minSamples = 4;
    opts.online.drift.sustain = 2;
    opts.online.minRows = 48;
    opts.online.forest.numTrees = 30;
    opts.online.synchronous = true;
    return opts;
}

/**
 * Post-shift accuracy recovery; online:1 adapts, online:0 is the
 * static control. Wall time includes the fleet run and (online:1) the
 * inline refits.
 */
void
BM_FleetAdaptsToShift(benchmark::State &state)
{
    const bool online = state.range(0) != 0;
    double first = 0.0, last = 0.0, swaps = 0.0, gen = 0.0;
    for (auto _ : state) {
        trace::DecisionLog log;
        const auto result =
            serve::runFleet(forest(), shiftedFleet(online, &log));
        auto records = log.take();
        first = runMape(records, 1);
        last = runMape(records, kOptimizedRuns);
        swaps = static_cast<double>(result.online.swaps);
        gen = static_cast<double>(result.forestGeneration);
        benchmark::DoNotOptimize(result.decisions);
    }
    state.counters[online ? "mape_first_pct" : "mape_static_first_pct"] =
        first;
    state.counters[online ? "mape_last_pct" : "mape_static_pct"] = last;
    state.counters["swaps"] = swaps;
    state.counters["generation"] = gen;
}
BENCHMARK(BM_FleetAdaptsToShift)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("online")
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return bench::simdBenchmarkMain(argc, argv);
}
