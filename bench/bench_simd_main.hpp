/**
 * @file
 * Custom main() for the google-benchmark binaries: a `--simd=` flag
 * plus provenance context in the JSON output.
 *
 * benchmark::Initialize rejects flags it does not know, so the plain
 * BENCHMARK_MAIN() cannot accept `--simd=avx2`. This main strips the
 * flag first, installs the mode as the process default (every
 * predictor the fixtures train consults ml::defaultSimdMode()), and
 * then emits three context keys into `--benchmark_out` JSON:
 *
 *   gpupm_simd       requested mode  (scalar | auto | avx2 | fallback)
 *   gpupm_simd_path  resolved path   (scalar | fallback | avx2)
 *   gpupm_quant      number domain   (float64 | int16)
 *
 * tools/perf_compare.py refuses to diff runs whose resolved path or
 * quantization domain differ (a quantized run "beating" a float
 * baseline is a mode change, not a regression fix), so keeping these
 * keys truthful is load-bearing. Files missing the keys - the
 * pre-quantization baselines - read as scalar/float64.
 */

#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "ml/simd.hpp"

namespace gpupm::bench {

inline int
simdBenchmarkMain(int argc, char **argv)
{
    ml::SimdMode mode = ml::defaultSimdMode(); // GPUPM_SIMD env
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--simd=", 7) == 0) {
            const auto parsed = ml::parseSimdMode(arg + 7);
            if (!parsed) {
                std::cerr << "invalid --simd value '" << (arg + 7)
                          << "' (want scalar|auto|avx2|fallback)\n";
                return 2;
            }
            mode = *parsed;
            continue; // strip: benchmark::Initialize would reject it
        }
        argv[kept++] = argv[i];
    }
    argc = kept;
    ml::setDefaultSimdMode(mode);

    const auto path = ml::resolveSimdPath(mode);
    benchmark::AddCustomContext("gpupm_simd", ml::toString(mode));
    benchmark::AddCustomContext("gpupm_simd_path", ml::toString(path));
    benchmark::AddCustomContext(
        "gpupm_quant",
        path == ml::SimdPath::Float64 ? "float64" : "int16");

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace gpupm::bench
