/**
 * @file
 * gpupm-client: load generator and protocol checker for `gpupm serve`.
 *
 * Opens N tenant sessions spread round-robin over C TCP connections,
 * keeps exactly one Step in flight per session (the same closed-loop
 * discipline as the in-process fleet driver), and measures client-side
 * request latency. On exit it asks the server for its counters and
 * prints p50/p95/p99 step latency plus the reject breakdown.
 *
 * --verify turns the generator into a determinism checker: sessions
 * that opened the same benchmark with the same run count must stream
 * bit-identical decisions (the wire carries IEEE-754 bit patterns, so
 * equality is exact, not approximate). Any divergence - or any
 * protocol error - makes the exit code nonzero, which is what the CI
 * serve-smoke job keys off.
 *
 * Single-threaded: one poll() loop owns every socket. Rejects with
 * reason QueueFull are retried on the next round trip, so a shedding
 * server slows the client down instead of failing it.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/flags.hpp"
#include "serve/wire.hpp"
#include "workload/benchmarks.hpp"

using namespace gpupm;
using namespace gpupm::serve;

namespace {

using Clock = std::chrono::steady_clock;

struct ClientSession
{
    std::uint64_t tenant = 0;
    std::string bench;
    /** Catalog hardware-model name; empty = server default. */
    std::string hwModel;
    /** Deadline slack factor; 0 = uniform-alpha QoS. */
    double deadline = 0.0;
    std::size_t conn = 0;
    std::uint64_t id = 0; ///< Server-assigned; 0 until Opened.
    std::uint32_t remaining = 0;
    bool inflight = false;
    bool done = false;
    Clock::time_point stepSent{};
    /** Decision stream for --verify (session field zeroed). */
    std::vector<wire::DecisionMsg> decisions;
};

struct Conn
{
    int fd = -1;
    wire::FrameReader reader;
    std::vector<std::uint8_t> writeBuf;
};

int
connectTo(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::cerr << "socket() failed: " << std::strerror(errno)
                  << "\n";
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        std::cerr << "invalid host '" << host << "'\n";
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::cerr << "connect(" << host << ":" << port
                  << ") failed: " << std::strerror(errno) << "\n";
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

double
percentileNs(std::vector<std::uint64_t> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<double>(sorted[lo]) * (1.0 - frac) +
           static_cast<double>(sorted[hi]) * frac;
}

/** Decision equality for --verify: exact, including float bits. */
bool
sameDecision(const wire::DecisionMsg &a, const wire::DecisionMsg &b)
{
    const auto bits = [](double v) {
        std::uint64_t u;
        std::memcpy(&u, &v, sizeof(u));
        return u;
    };
    return a.run == b.run && a.index == b.index &&
           a.configIndex == b.configIndex &&
           a.kernelTag == b.kernelTag && a.degraded == b.degraded &&
           bits(a.kernelTime) == bits(b.kernelTime) &&
           bits(a.overheadTime) == bits(b.overheadTime) &&
           bits(a.cpuEnergy) == bits(b.cpuEnergy) &&
           bits(a.gpuEnergy) == bits(b.gpuEnergy) &&
           a.evaluations == b.evaluations;
}

std::vector<std::string>
splitCommaList(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : s) {
        if (c == ',') {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item.push_back(c);
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagParser flags(
        "gpupm-client: closed-loop load generator for gpupm serve");
    flags.addString("connect", "127.0.0.1:7070", "server host:port");
    flags.addInt("sessions", 8, "tenant sessions to open", 1, 1 << 20);
    flags.addInt("connections", 2, "TCP connections to spread over", 1,
                 4096);
    flags.addString("bench", "all",
                    "benchmark name, comma list, or 'all' (assigned "
                    "round-robin over sessions)");
    flags.addInt("runs", 2, "MPC executions after profiling", 1, 10000);
    flags.addInt("steps", 0,
                 "cap steps per session (0 = play every session to "
                 "completion)",
                 0, 1 << 24);
    flags.addBool("verify",
                  "require bit-identical decision streams from "
                  "same-benchmark sessions (exit nonzero on mismatch)");
    flags.addString("hw-models", "",
                    "comma list of catalog hardware-model names "
                    "assigned round-robin over sessions (empty = "
                    "server default; heterogeneous fleets)");
    flags.addString("deadlines", "",
                    "comma list of deadline slack factors assigned "
                    "round-robin over sessions (0 entries keep "
                    "uniform-alpha QoS)");
    flags.addBool("legacy-open",
                  "send version-1 Open frames (no model/QoS tail; "
                  "protocol-compatibility testing)");
    flags.addBool("quiet", "suppress the per-run summary");
    if (!flags.parse(argc, argv)) {
        std::cerr << (flags.helpRequested() ? "" : flags.error() + "\n")
                  << flags.usage();
        return flags.helpRequested() ? 0 : 2;
    }

    const std::string target = flags.getString("connect");
    const auto colon = target.rfind(':');
    if (colon == std::string::npos) {
        std::cerr << "--connect wants host:port\n";
        return 2;
    }
    const std::string host = target.substr(0, colon);
    const int port = std::atoi(target.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
        std::cerr << "invalid port in --connect '" << target << "'\n";
        return 2;
    }

    std::vector<std::string> benches;
    if (flags.getString("bench") == "all")
        benches = workload::benchmarkNames();
    else
        benches = splitCommaList(flags.getString("bench"));
    if (benches.empty()) {
        std::cerr << "no benchmarks given\n";
        return 2;
    }

    const auto nSessions =
        static_cast<std::size_t>(flags.getInt("sessions"));
    const auto nConns = std::min(
        static_cast<std::size_t>(flags.getInt("connections")),
        nSessions);
    const auto stepCap =
        static_cast<std::uint32_t>(flags.getInt("steps"));
    const bool verify = flags.getBool("verify");

    std::vector<Conn> conns(nConns);
    for (std::size_t i = 0; i < nConns; ++i) {
        conns[i].fd =
            connectTo(host, static_cast<std::uint16_t>(port));
        if (conns[i].fd < 0)
            return 1;
    }

    const auto hwModels =
        splitCommaList(flags.getString("hw-models"));
    std::vector<double> deadlines;
    for (const auto &d : splitCommaList(flags.getString("deadlines"))) {
        char *end = nullptr;
        const double factor = std::strtod(d.c_str(), &end);
        if (end == d.c_str() || *end != '\0' || factor < 0.0) {
            std::cerr << "--deadlines entries must be non-negative "
                         "numbers, got '"
                      << d << "'\n";
            return 2;
        }
        deadlines.push_back(factor);
    }
    const bool legacyOpen = flags.getBool("legacy-open");
    if (legacyOpen && (!hwModels.empty() || !deadlines.empty())) {
        std::cerr << "--legacy-open cannot carry --hw-models or "
                     "--deadlines (v1 frames have no tail)\n";
        return 2;
    }

    std::vector<ClientSession> sessions(nSessions);
    std::map<std::uint64_t, std::size_t> byId; // server id -> index
    for (std::size_t i = 0; i < nSessions; ++i) {
        auto &s = sessions[i];
        s.tenant = i + 1;
        s.bench = benches[i % benches.size()];
        if (!hwModels.empty())
            s.hwModel = hwModels[i % hwModels.size()];
        if (!deadlines.empty())
            s.deadline = deadlines[i % deadlines.size()];
        s.conn = i % nConns;
        wire::OpenMsg open;
        open.tenant = s.tenant;
        open.optimizedRuns =
            static_cast<std::uint32_t>(flags.getInt("runs"));
        open.kernelCacheCap = 0; // Server default.
        open.bench = s.bench;
        if (legacyOpen)
            open.version = 1;
        open.hwModel = s.hwModel;
        if (s.deadline > 0.0) {
            open.qosKind = wire::WireQosKind::Deadline;
            open.qosValue = s.deadline;
        }
        wire::encodeOpen(conns[s.conn].writeBuf, open);
    }

    std::vector<std::uint64_t> latencies;
    std::uint64_t rejectsQueueFull = 0;
    std::uint64_t decisionsSeen = 0;
    bool protocolFailure = false;
    bool statsRequested = false;
    wire::StatsMsg serverStats;
    bool statsReceived = false;
    std::size_t doneSessions = 0;
    const auto started = Clock::now();

    auto sendStep = [&](ClientSession &s) {
        wire::StepMsg step;
        step.session = s.id;
        wire::encodeStep(conns[s.conn].writeBuf, step);
        s.inflight = true;
        s.stepSent = Clock::now();
    };

    auto finishSession = [&](ClientSession &s) {
        if (!s.done) {
            s.done = true;
            ++doneSessions;
        }
    };

    auto handleFrame = [&](std::size_t connIdx,
                           const wire::Frame &frame) {
        switch (frame.type) {
        case wire::MsgType::Opened: {
            const auto m = wire::decodeOpened(frame.payload);
            if (!m || m->tenant == 0 ||
                m->tenant > sessions.size()) {
                protocolFailure = true;
                return;
            }
            auto &s = sessions[m->tenant - 1];
            s.id = m->session;
            s.remaining = stepCap > 0
                              ? std::min(stepCap, m->totalDecisions)
                              : m->totalDecisions;
            byId[s.id] = m->tenant - 1;
            if (s.remaining == 0)
                finishSession(s);
            else
                sendStep(s);
            return;
        }
        case wire::MsgType::Decision: {
            const auto m = wire::decodeDecision(frame.payload);
            if (!m || byId.count(m->session) == 0) {
                protocolFailure = true;
                return;
            }
            auto &s = sessions[byId[m->session]];
            latencies.push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - s.stepSent)
                    .count()));
            s.inflight = false;
            ++decisionsSeen;
            if (s.remaining > 0)
                --s.remaining;
            if (verify) {
                wire::DecisionMsg d = *m;
                d.session = 0;
                s.decisions.push_back(d);
            }
            if (s.remaining > 0)
                sendStep(s);
            else
                finishSession(s);
            return;
        }
        case wire::MsgType::Reject: {
            const auto m = wire::decodeReject(frame.payload);
            if (!m) {
                protocolFailure = true;
                return;
            }
            if (m->reason == wire::RejectReason::QueueFull &&
                byId.count(m->session) != 0) {
                // Load shed at admission: retry on the next loop.
                ++rejectsQueueFull;
                sendStep(sessions[byId[m->session]]);
                return;
            }
            if (m->reason == wire::RejectReason::Finished &&
                byId.count(m->session) != 0) {
                auto &s = sessions[byId[m->session]];
                s.inflight = false;
                finishSession(s);
                return;
            }
            std::cerr << "fatal reject: session " << m->session
                      << " reason "
                      << static_cast<int>(m->reason) << "\n";
            protocolFailure = true;
            return;
        }
        case wire::MsgType::Stats: {
            const auto m = wire::decodeStats(frame.payload);
            if (!m) {
                protocolFailure = true;
                return;
            }
            serverStats = *m;
            statsReceived = true;
            return;
        }
        case wire::MsgType::Error: {
            const auto m = wire::decodeError(frame.payload);
            std::cerr << "server error: "
                      << (m ? m->message : "<undecodable>") << "\n";
            protocolFailure = true;
            return;
        }
        default:
            (void)connIdx;
            protocolFailure = true;
            return;
        }
    };

    // One poll loop drives opens, steps, the final stats exchange.
    while (!protocolFailure) {
        if (doneSessions == sessions.size() && !statsRequested) {
            wire::encodeStatsReq(conns[0].writeBuf);
            statsRequested = true;
        }
        if (statsReceived)
            break;

        std::vector<pollfd> fds(conns.size());
        for (std::size_t i = 0; i < conns.size(); ++i) {
            fds[i].fd = conns[i].fd;
            fds[i].events = POLLIN;
            if (!conns[i].writeBuf.empty())
                fds[i].events |= POLLOUT;
        }
        const int n = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), 10000);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            std::cerr << (n == 0 ? "timeout waiting for the server\n"
                                 : "poll() failed\n");
            protocolFailure = true;
            break;
        }
        for (std::size_t i = 0; i < conns.size(); ++i) {
            if ((fds[i].revents & (POLLERR | POLLHUP)) != 0) {
                std::cerr << "connection " << i << " dropped\n";
                protocolFailure = true;
                break;
            }
            if ((fds[i].revents & POLLOUT) != 0 &&
                !conns[i].writeBuf.empty()) {
                const ssize_t w = ::send(
                    conns[i].fd, conns[i].writeBuf.data(),
                    conns[i].writeBuf.size(), MSG_NOSIGNAL);
                if (w > 0)
                    conns[i].writeBuf.erase(
                        conns[i].writeBuf.begin(),
                        conns[i].writeBuf.begin() + w);
                else if (w < 0 && errno != EAGAIN &&
                         errno != EWOULDBLOCK) {
                    protocolFailure = true;
                    break;
                }
            }
            if ((fds[i].revents & POLLIN) != 0) {
                std::uint8_t buf[65536];
                const ssize_t r =
                    ::recv(conns[i].fd, buf, sizeof(buf), 0);
                if (r <= 0) {
                    std::cerr << "connection " << i << " closed\n";
                    protocolFailure = true;
                    break;
                }
                conns[i].reader.append(
                    buf, static_cast<std::size_t>(r));
                while (auto frame = conns[i].reader.next()) {
                    handleFrame(i, *frame);
                    if (protocolFailure)
                        break;
                }
                if (conns[i].reader.corrupt())
                    protocolFailure = true;
            }
            if (protocolFailure)
                break;
        }
    }

    const double wall =
        std::chrono::duration<double>(Clock::now() - started).count();
    for (auto &c : conns)
        if (c.fd >= 0)
            ::close(c.fd);

    // --verify: same (bench, runs) => bit-identical decision stream.
    bool verifyFailed = false;
    if (verify && !protocolFailure) {
        // Identical streams are only promised for sessions with the
        // same benchmark AND the same hardware model and QoS.
        std::map<std::string, std::size_t> reference;
        for (std::size_t i = 0; i < sessions.size(); ++i) {
            const auto &s = sessions[i];
            const std::string key = s.bench + "|" + s.hwModel + "|" +
                                    std::to_string(s.deadline);
            auto [it, fresh] = reference.emplace(key, i);
            if (fresh)
                continue;
            const auto &ref = sessions[it->second];
            bool same = ref.decisions.size() == s.decisions.size();
            for (std::size_t k = 0; same && k < s.decisions.size();
                 ++k)
                same = sameDecision(ref.decisions[k], s.decisions[k]);
            if (!same) {
                std::cerr << "verify FAILED: sessions " << ref.id
                          << " and " << s.id << " (bench " << s.bench
                          << ") diverged\n";
                verifyFailed = true;
            }
        }
    }

    if (!flags.getBool("quiet")) {
        std::sort(latencies.begin(), latencies.end());
        std::cout << "client: " << decisionsSeen << " decisions over "
                  << sessions.size() << " sessions, "
                  << rejectsQueueFull << " queue-full retries\n";
        std::cout << "latency: p50 "
                  << percentileNs(latencies, 50.0) / 1e3 << " us, p95 "
                  << percentileNs(latencies, 95.0) / 1e3 << " us, p99 "
                  << percentileNs(latencies, 99.0) / 1e3 << " us\n";
        if (wall > 0.0)
            std::cout << "throughput: "
                      << static_cast<double>(decisionsSeen) / wall
                      << " decisions/s\n";
        if (statsReceived) {
            std::cout << "server counters:\n";
            for (const auto &[key, value] : serverStats.entries)
                std::cout << "  " << key << " = " << value << "\n";
            if (serverStats.fleetBudgetWatts > 0.0) {
                std::cout << "powercap: budget "
                          << serverStats.fleetBudgetWatts
                          << " W, violations "
                          << serverStats.capViolations
                          << ", arbiter ticks "
                          << serverStats.arbiterTicks << "\n";
            }
            if (serverStats.deadlineMisses > 0)
                std::cout << "deadline misses: "
                          << serverStats.deadlineMisses << "\n";
        }
        if (verify && !verifyFailed && !protocolFailure)
            std::cout << "verify: OK (same-benchmark sessions are "
                         "bit-identical)\n";
    }

    return (protocolFailure || verifyFailed) ? 1 : 0;
}
