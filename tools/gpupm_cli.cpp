/**
 * @file
 * gpupm command-line driver.
 *
 * Subcommands:
 *   list                      list the built-in benchmarks
 *   info                      DVFS tables and search-space summary
 *   train [flags]             train a Random Forest and save it
 *   run [flags]               run governors over benchmarks
 *   sweep [flags]             fan benchmark x governor jobs over a pool
 *   fleet [flags]             serve N concurrent governor sessions
 *   serve [flags]             expose the fleet server over TCP (epoll)
 *   replay [flags]            re-drive a decision JSONL dump offline
 *
 * Examples:
 *   gpupm run --bench Spmv --governor mpc --predictor perfect
 *   gpupm run --bench all --governor mpc --predictor rf --model m.rf
 *   gpupm run --bench kmeans --governor mpc --trace kmeans.csv
 *   gpupm train --out model.rf --corpus 128 --jobs 8
 *   gpupm sweep --bench all --governors turbo,ppk,mpc --jobs 8
 *   gpupm fleet --sessions 16 --jobs 8 --model m.rf --trace fleet.jsonl
 *   gpupm fleet --sessions 16 --jobs 8 --trace-out timeline.json \
 *       --trace-decisions decisions.jsonl
 *   gpupm fleet --sessions 16 --online-learn --drift-threshold 20
 *   gpupm fleet --sessions 100000 --shards 8 --jobs 8 --shed
 *   gpupm serve --listen 127.0.0.1:0 --shards 4 --jobs 4
 *   gpupm run --bench Spmv --governor pi --hw-model eco-apu
 *   gpupm fleet --sessions 8 --hw-models paper-apu,eco-apu \
 *       --deadlines 0,1.25
 *   gpupm replay --trace fleet.jsonl --expect-identical
 */

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "exec/replay.hpp"
#include "exec/sweep_jobs.hpp"
#include "hw/model.hpp"
#include "ml/error_model.hpp"
#include "ml/serialize.hpp"
#include "ml/trainer.hpp"
#include "mpc/governor.hpp"
#include "online/adaptive_predictor.hpp"
#include "online/learner.hpp"
#include "policy/oracle.hpp"
#include "policy/pi_governor.hpp"
#include "powercap/arbiter.hpp"
#include "powercap/thermal_governor.hpp"
#include "policy/ppk.hpp"
#include "policy/turbo_core.hpp"
#include "serve/net_server.hpp"
#include "serve/server.hpp"
#include "sim/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/chrome_export.hpp"
#include "trace/decision.hpp"
#include "trace/jsonl_export.hpp"
#include "trace/trace.hpp"
#include "workload/benchmarks.hpp"

using namespace gpupm;

namespace {

int
cmdList()
{
    TextTable t({"benchmark", "category", "pattern", "launches"});
    for (const auto &app : workload::allBenchmarks()) {
        t.addRow({app.name, toString(app.category), app.patternNotation,
                  std::to_string(app.kernelCount())});
    }
    t.print(std::cout);
    return 0;
}

int
cmdInfo()
{
    hw::ConfigSpace space;
    std::cout << "Modeled platform: AMD A10-7850K-class APU\n"
              << "Search space: " << space.size()
              << " configurations (7 CPU x 4 NB x 3 GPU x 4 CU)\n"
              << "Fail-safe: " << hw::ConfigSpace::failSafe().toString()
              << "\nBoost:     "
              << hw::ConfigSpace::maxPerformance().toString() << "\n"
              << "TDP: " << fmt(hw::ApuParams::defaults().tdp, 0)
              << " W\n"
              << "Hardware catalog:";
    for (const auto &name : hw::HardwareCatalog::instance().names()) {
        const auto m = hw::HardwareCatalog::instance().get(name);
        std::cout << " " << name << " (" << fmt(m->tdp(), 0) << " W, "
                  << m->space().size() << " configs)";
    }
    std::cout << "\n";
    return 0;
}

/** Shared --hw-model flag: pick a registered hardware model. */
void
addHwModelFlag(FlagParser &flags)
{
    flags.addChoice("hw-model", hw::paperApuName,
                    "hardware model from the catalog",
                    hw::HardwareCatalog::instance().names());
}

hw::HardwareModelPtr
getHwModel(const FlagParser &flags)
{
    // Parse-time choice validation guarantees the name resolves.
    return hw::HardwareCatalog::instance().get(
        flags.getString("hw-model"));
}

/**
 * Shared --trace-out / --trace-decisions plumbing for the subcommands
 * that execute governors. Construct after a successful parse: a
 * requested timeline starts the span tracer immediately so the whole
 * run is covered. finish() writes whichever artifacts were asked for.
 */
class TraceOutputs
{
  public:
    static void
    addFlags(FlagParser &flags)
    {
        flags.addPath("trace-out", "",
                      "write a Chrome trace-event JSON timeline here "
                      "(load in chrome://tracing or Perfetto)");
        flags.addPath("trace-decisions", "",
                      "write per-decision provenance records here "
                      "(JSON lines)");
    }

    explicit TraceOutputs(const FlagParser &flags)
        : _out(flags.getPath("trace-out")),
          _decisions(flags.getPath("trace-decisions"))
    {
        if (!_out.empty())
            trace::Tracer::start();
    }

    /** Sink for governor provenance; null when not requested. */
    trace::DecisionLog *
    log()
    {
        return _decisions.empty() ? nullptr : &_log;
    }

    int
    finish()
    {
        if (!_out.empty()) {
            trace::Tracer::stop();
            const auto events = trace::Tracer::collect();
            std::ofstream os(_out, std::ios::binary);
            if (!os) {
                std::cerr << "cannot write " << _out << "\n";
                return 1;
            }
            trace::writeChromeTrace(os, events);
            std::cout << "span timeline (" << events.size()
                      << " events) written to " << _out << "\n";
            if (const auto n = trace::Tracer::dropped())
                std::cerr << "warning: " << n
                          << " span events dropped (ring full)\n";
        }
        if (!_decisions.empty()) {
            auto records = _log.take();
            trace::sortDecisions(records);
            std::ofstream os(_decisions, std::ios::binary);
            if (!os) {
                std::cerr << "cannot write " << _decisions << "\n";
                return 1;
            }
            trace::writeDecisionJsonl(os, records);
            std::cout << records.size()
                      << " decision records written to " << _decisions
                      << "\n";
        }
        return 0;
    }

  private:
    std::string _out;
    std::string _decisions;
    trace::DecisionLog _log;
};

/**
 * Shared --online-learn flag family for the subcommands that can close
 * the loop: drift-triggered Random Forest retraining with RCU hot-swap
 * (requires --predictor rf).
 */
void
addOnlineFlags(FlagParser &flags)
{
    flags.addBool("online-learn",
                  "enable drift-triggered forest retraining with "
                  "zero-pause hot-swap (requires --predictor rf)");
    flags.addInt("drift-window", 32,
                 "per-kernel rolling error-window length", 2, 1 << 16);
    flags.addDouble("drift-threshold", 25.0,
                    "rolling time-MAPE (%) that arms a drift trigger");
    flags.addInt("drift-sustain", 4,
                 "consecutive over-threshold observations to trigger", 1,
                 1 << 16);
    flags.addInt("online-min-rows", 256,
                 "training rows required before a trigger may refit", 1,
                 1 << 24);
}

online::OnlineOptions
parseOnlineOptions(const FlagParser &flags)
{
    online::OnlineOptions o;
    o.drift.window =
        static_cast<std::size_t>(flags.getInt("drift-window"));
    o.drift.minSamples = std::min(o.drift.minSamples, o.drift.window);
    o.drift.timeThresholdPct = flags.getDouble("drift-threshold");
    o.drift.sustain =
        static_cast<std::size_t>(flags.getInt("drift-sustain"));
    o.minRows = static_cast<std::size_t>(flags.getInt("online-min-rows"));
    return o;
}

/**
 * Shared --simd flag for every subcommand that builds or loads a
 * predictor. applySimdFlag installs the chosen mode as the process
 * default, which all predictor construction sites consult: fresh
 * training (TrainerOptions::simd), --model loads (serialize.cpp's
 * default constructor argument), and online-refit fallbacks.
 */
void
addSimdFlag(FlagParser &flags)
{
    flags.addString("simd", toString(ml::defaultSimdMode()),
                    "forest inference engine: scalar (float64, "
                    "bit-exact golden path), auto, avx2, fallback; "
                    "GPUPM_SIMD env sets the default");
}

bool
applySimdFlag(const FlagParser &flags)
{
    const auto mode = ml::parseSimdMode(flags.getString("simd"));
    if (!mode) {
        std::cerr << "invalid --simd value '" << flags.getString("simd")
                  << "' (want scalar|auto|avx2|fallback)\n";
        return false;
    }
    ml::setDefaultSimdMode(*mode);
    return true;
}

/**
 * Shared --shards / --shed flag family for the fleet subcommands:
 * tenant-hash sharding of the decision server plus the per-shard
 * windowed-error overload controller (serve/shed.hpp).
 */
void
addShardFlags(FlagParser &flags)
{
    flags.addInt("shards", 1,
                 "tenant-hash server shards (each owns its own session "
                 "manager, broker and request queue)",
                 1, 4096);
    flags.addBool("shed",
                  "enable per-shard overload shedding: sustained queue "
                  "pressure degrades decisions to the fail-safe config");
    flags.addInt("shed-window", 64,
                 "admission samples per shed decision window", 1,
                 1 << 20);
    flags.addInt("shed-depth", 256,
                 "per-shard queue-depth setpoint; sustained depth above "
                 "this sheds",
                 1, 1 << 20);
    flags.addInt("shed-sustain", 2,
                 "consecutive over-target windows required to shed", 1,
                 1 << 16);
    flags.addInt("shed-recover", 2,
                 "consecutive calm windows required to recover", 1,
                 1 << 16);
}

serve::ShedOptions
parseShedOptions(const FlagParser &flags)
{
    serve::ShedOptions s;
    s.enabled = flags.getBool("shed");
    s.window = static_cast<std::size_t>(flags.getInt("shed-window"));
    s.targetDepth =
        static_cast<std::size_t>(flags.getInt("shed-depth"));
    s.sustain = static_cast<std::size_t>(flags.getInt("shed-sustain"));
    s.recover = static_cast<std::size_t>(flags.getInt("shed-recover"));
    return s;
}

/**
 * Shared --power-cap flag family for the fleet subcommands: the fleet
 * budget arbiter (powercap/arbiter.hpp) plus the per-session reactive
 * thermal cap governor (powercap/thermal_governor.hpp). Both default
 * to 0 = disabled; explicit values are range-checked at parse time.
 */
void
addPowercapFlags(FlagParser &flags)
{
    flags.addDouble("power-cap", 0.0,
                    "total fleet power budget in watts (0 = uncapped)",
                    0.001, 1e6);
    flags.addString("cap-policy", "equal",
                    "budget split policy: equal | usage | weighted");
    flags.addInt("cap-window", 16,
                 "per-session decisions per cap-violation window", 1,
                 1 << 20);
    flags.addInt("cap-sustain", 2,
                 "consecutive over-cap windows required to throttle",
                 1, 1 << 16);
    flags.addInt("cap-recover", 2,
                 "consecutive calm windows required to recover", 1,
                 1 << 16);
    flags.addInt("cap-tick", 256,
                 "fleet decisions between arbiter re-split ticks", 1,
                 1 << 24);
    flags.addDouble("thermal-cap", 0.0,
                    "die temperature limit in C for the reactive "
                    "thermal cap governor (0 = off)",
                    0.001, 1000.0);
    flags.addDouble("thermal-step", 2.0,
                    "thermal governor PWR_INC/PWR_DEC step in watts",
                    0.001, 1e6);
    flags.addBool("thermal-wavg",
                  "smooth the thermal governor's temperature input "
                  "with a weighted moving average");
}

/**
 * @return false (after printing the problem) on an invalid
 *     --cap-policy; the range checks on the numeric flags were already
 *     enforced by FlagParser::parse.
 */
bool
parsePowercapOptions(const FlagParser &flags,
                     powercap::ArbiterOptions *arbiter,
                     powercap::ThermalCapOptions *thermal)
{
    arbiter->budgetWatts = flags.getDouble("power-cap");
    const std::string policy = flags.getString("cap-policy");
    if (policy == "equal") {
        arbiter->policy = powercap::SplitPolicy::EqualShare;
    } else if (policy == "usage") {
        arbiter->policy = powercap::SplitPolicy::UsageProportional;
    } else if (policy == "weighted") {
        arbiter->policy = powercap::SplitPolicy::PriorityWeighted;
    } else {
        std::cerr << "unknown --cap-policy '" << policy
                  << "' (expected equal, usage or weighted)\n";
        return false;
    }
    arbiter->window =
        static_cast<std::size_t>(flags.getInt("cap-window"));
    arbiter->sustain =
        static_cast<std::size_t>(flags.getInt("cap-sustain"));
    arbiter->recover =
        static_cast<std::size_t>(flags.getInt("cap-recover"));
    arbiter->tickEvery =
        static_cast<std::size_t>(flags.getInt("cap-tick"));

    const double limit = flags.getDouble("thermal-cap");
    thermal->enabled = limit > 0.0;
    if (thermal->enabled) {
        thermal->limit = limit;
        thermal->stepWatts = flags.getDouble("thermal-step");
        thermal->weightedAvg = flags.getBool("thermal-wavg");
    }
    return true;
}

int
cmdTrain(int argc, const char *const *argv)
{
    FlagParser flags("gpupm train: fit the Random Forest predictor");
    flags.addPath("out", "model.rf", "output model path");
    flags.addInt("corpus", 128, "training kernels");
    flags.addInt("trees", 60, "trees per forest");
    flags.addInt("stride", 1, "use every k-th configuration");
    flags.addInt("jobs", 0,
                 "dataset-generation and forest-fitting workers (0 = "
                 "hardware concurrency, 1 = serial; output is identical)",
                 0, 4096);
    addSimdFlag(flags);
    if (!flags.parse(argc, argv)) {
        std::cerr << (flags.helpRequested() ? "" : flags.error() + "\n")
                  << flags.usage();
        return flags.helpRequested() ? 0 : 2;
    }
    if (!applySimdFlag(flags))
        return 2;

    ml::TrainerOptions opts;
    opts.corpusSize = static_cast<std::size_t>(flags.getInt("corpus"));
    opts.forest.numTrees = flags.getInt("trees");
    opts.configStride = flags.getInt("stride");
    opts.jobs = static_cast<std::size_t>(std::max(0, flags.getInt("jobs")));
    ml::TrainingReport report;
    std::cout << "training on " << opts.corpusSize << " kernels...\n";
    auto rf = ml::trainRandomForestPredictor(opts, &report);
    std::cout << "OOB time MAPE " << fmt(report.timeOobMapePct, 1)
              << "%, power MAPE " << fmt(report.powerOobMapePct, 1)
              << "% over " << report.datasetRows << " rows\n";

    const std::string out = flags.getPath("out");
    std::ofstream os(out);
    if (!os) {
        std::cerr << "cannot write " << out << "\n";
        return 1;
    }
    ml::saveRandomForest(*rf, os);
    std::cout << "model saved to " << out << "\n";
    return 0;
}

std::shared_ptr<const ml::PerfPowerPredictor>
makePredictor(const std::string &kind, const std::string &model_path,
              const hw::ApuParams &params)
{
    if (kind == "perfect")
        return std::make_shared<ml::GroundTruthPredictor>(params);
    if (kind == "err15")
        return std::make_shared<ml::NoisyOraclePredictor>(0.15, 0.10,
                                                          0xe44ULL, params);
    if (kind == "err5")
        return std::make_shared<ml::NoisyOraclePredictor>(0.05, 0.05,
                                                          0xe44ULL, params);
    if (kind == "rf") {
        if (!model_path.empty()) {
            std::ifstream is(model_path);
            if (!is) {
                std::cerr << "cannot read model " << model_path << "\n";
                return nullptr;
            }
            return ml::loadRandomForest(is);
        }
        std::cerr << "training Random Forest (pass --model to reuse a "
                     "saved one)...\n";
        return ml::trainRandomForestPredictor();
    }
    std::cerr << "unknown predictor '" << kind
              << "' (perfect|rf|err15|err5)\n";
    return nullptr;
}

int
cmdRun(int argc, const char *const *argv)
{
    FlagParser flags("gpupm run: execute governors over benchmarks");
    flags.addString("bench", "all", "benchmark name or 'all'");
    flags.addChoice("governor", "mpc", "decision policy",
                    {"turbo", "ppk", "mpc", "oracle", "pi"});
    flags.addString("predictor", "perfect", "perfect|rf|err15|err5");
    flags.addString("model", "", "saved .rf model (with --predictor rf)");
    addHwModelFlag(flags);
    flags.addString("horizon", "adaptive", "adaptive|full|fixed");
    flags.addInt("fixed-horizon", 4, "length for --horizon fixed");
    flags.addDouble("alpha", 0.05, "performance-loss bound");
    flags.addDouble("deadline", 0.0,
                    "deadline-QoS slack factor over the baseline run "
                    "time (> 0 enables deadline QoS; 0 = uniform "
                    "alpha)",
                    0.0, 1e6);
    flags.addInt("runs", 2, "MPC executions after profiling");
    flags.addDouble("phases", 0.0, "CPU-phase fraction between kernels");
    flags.addPath("trace", "", "write 1 ms telemetry CSV here");
    flags.addBool("no-overhead", "do not charge decision latency");
    flags.addDouble("power-cap", 0.0,
                    "per-run power cap in watts for the MPC governor "
                    "(0 = uncapped)",
                    0.001, 1e6);
    addSimdFlag(flags);
    addOnlineFlags(flags);
    TraceOutputs::addFlags(flags);
    if (!flags.parse(argc, argv)) {
        std::cerr << (flags.helpRequested() ? "" : flags.error() + "\n")
                  << flags.usage();
        return flags.helpRequested() ? 0 : 2;
    }
    if (!applySimdFlag(flags))
        return 2;

    TraceOutputs trace_outputs(flags);

    const std::string gov_kind = flags.getString("governor");
    std::shared_ptr<const ml::PerfPowerPredictor> predictor;
    if (gov_kind == "ppk" || gov_kind == "mpc") {
        predictor = makePredictor(flags.getString("predictor"),
                                  flags.getString("model"),
                                  getHwModel(flags)->params());
        if (!predictor)
            return 2;
    }

    // Close the loop: route MPC predictions through a hot-swappable
    // handle and interpose the drift-triggered learner in the
    // provenance path. Synchronous refits keep the single-threaded run
    // path deterministic (swaps land at known decision boundaries).
    std::optional<online::ForestHandle> forest_handle;
    std::optional<online::OnlineLearner> learner;
    if (flags.getBool("online-learn")) {
        auto rf = std::dynamic_pointer_cast<
            const ml::RandomForestPredictor>(predictor);
        if (gov_kind != "mpc" || !rf) {
            std::cerr << "--online-learn requires --governor mpc with "
                         "--predictor rf\n";
            return 2;
        }
        forest_handle.emplace(std::move(rf));
        predictor =
            std::make_shared<online::AdaptivePredictor>(*forest_handle);
        online::OnlineOptions oopts = parseOnlineOptions(flags);
        oopts.synchronous = true;
        learner.emplace(*forest_handle, oopts, trace_outputs.log());
    }

    std::vector<std::string> names;
    if (flags.getString("bench") == "all")
        names = workload::benchmarkNames();
    else
        names.push_back(flags.getString("bench"));

    mpc::MpcOptions mpc_opts;
    mpc_opts.qos.alpha = flags.getDouble("alpha");
    if (flags.getDouble("deadline") > 0.0)
        mpc_opts.qos = mpc::QosSpec::deadline(flags.getDouble("deadline"));
    if (flags.getString("horizon") == "full")
        mpc_opts.horizonMode = mpc::HorizonMode::Full;
    else if (flags.getString("horizon") == "fixed")
        mpc_opts.horizonMode = mpc::HorizonMode::Fixed;
    mpc_opts.fixedHorizon =
        static_cast<std::size_t>(flags.getInt("fixed-horizon"));
    if (flags.getBool("no-overhead")) {
        mpc_opts.chargeOverhead = false;
        mpc_opts.overhead = policy::OverheadModel::free();
    }

    const hw::HardwareModelPtr hw_model = getHwModel(flags);
    sim::Simulator sim{hw_model};
    TextTable t({"benchmark", "scheme", "energy (J)", "time (ms)",
                 "energy savings", "speedup"});
    sim::RunResult last;
    for (const auto &name : names) {
        auto app = workload::makeBenchmark(name);
        if (flags.getDouble("phases") > 0.0)
            app = workload::withCpuPhases(app, flags.getDouble("phases"));

        policy::TurboCoreGovernor turbo{hw_model};
        auto baseline = sim.run(app, turbo);
        const Throughput target =
            mpc_opts.qos.scaleTarget(baseline.throughput());

        sim::RunResult r;
        if (gov_kind == "turbo") {
            r = baseline;
        } else if (gov_kind == "ppk") {
            policy::PpkGovernor gov(predictor, {}, hw_model);
            r = sim.run(app, gov, target);
        } else if (gov_kind == "mpc") {
            mpc::MpcGovernor gov(predictor, mpc_opts, hw_model);
            gov.setPowerCap(flags.getDouble("power-cap"));
            gov.setDecisionSink(learner ? static_cast<trace::DecisionSink *>(
                                              &*learner)
                                        : trace_outputs.log());
            sim.run(app, gov, target);
            for (int i = 0; i < flags.getInt("runs"); ++i)
                r = sim.run(app, gov, target);
        } else if (gov_kind == "pi") {
            policy::PiGovernor gov(hw_model);
            r = sim.run(app, gov, target);
        } else if (gov_kind == "oracle") {
            policy::TheoreticallyOptimalGovernor gov(app, hw_model);
            r = sim.run(app, gov, target);
        } else {
            std::cerr << "unknown governor '" << gov_kind << "'\n";
            return 2;
        }

        t.addRow({name, r.governorName, fmt(r.totalEnergy(), 3),
                  fmt(r.totalTime() * 1e3, 2),
                  fmtPct(sim::energySavingsPct(baseline, r)),
                  fmt(sim::speedup(baseline, r), 3)});
        last = r;
    }
    t.print(std::cout);

    if (learner) {
        const auto st = learner->stats();
        std::cout << "online: " << st.observed << " observed, "
                  << st.triggers << " drift triggers, " << st.retrains
                  << " retrains, " << st.swaps
                  << " swaps (serving generation "
                  << forest_handle->ordinal() << ")\n";
    }

    const std::string trace_path = flags.getPath("trace");
    if (!trace_path.empty()) {
        std::ofstream os(trace_path);
        if (!os) {
            std::cerr << "cannot write " << trace_path << "\n";
            return 1;
        }
        telemetry::PowerTrace::fromRun(last, hw_model->params())
            .writeCsv(os);
        std::cout << "telemetry of the last run written to "
                  << trace_path << "\n";
    }
    return trace_outputs.finish();
}

std::vector<std::string>
splitCommaList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
cmdSweep(int argc, const char *const *argv)
{
    FlagParser flags(
        "gpupm sweep: fan benchmark x governor jobs across a "
        "work-stealing pool (deterministic: output is bit-identical "
        "for every --jobs value)");
    flags.addString("bench", "all", "benchmark name or 'all'");
    flags.addString("governors", "turbo,ppk,mpc",
                    "comma list of turbo|ppk|mpc|oracle");
    flags.addString("predictor", "perfect", "perfect|rf|err15|err5");
    flags.addString("model", "", "saved .rf model (with --predictor rf)");
    addHwModelFlag(flags);
    flags.addInt("jobs", 0,
                 "worker threads (0 = hardware concurrency, 1 = serial)",
                 0, 4096);
    flags.addInt("seed", 0x5eed, "root seed for per-job RNG streams");
    flags.addInt("runs", 2, "MPC executions after profiling", 1, 10000);
    addSimdFlag(flags);
    TraceOutputs::addFlags(flags);
    if (!flags.parse(argc, argv)) {
        std::cerr << (flags.helpRequested() ? "" : flags.error() + "\n")
                  << flags.usage();
        return flags.helpRequested() ? 0 : 2;
    }
    if (!applySimdFlag(flags))
        return 2;

    TraceOutputs trace_outputs(flags);

    const auto governors = splitCommaList(flags.getString("governors"));
    if (governors.empty()) {
        std::cerr << "no governors given\n";
        return 2;
    }

    bool needs_predictor = false;
    for (const auto &g : governors)
        needs_predictor |= (g == "ppk" || g == "mpc");
    std::shared_ptr<const ml::PerfPowerPredictor> predictor;
    if (needs_predictor) {
        predictor = makePredictor(flags.getString("predictor"),
                                  flags.getString("model"),
                                  getHwModel(flags)->params());
        if (!predictor)
            return 2;
    }

    std::vector<std::string> names;
    if (flags.getString("bench") == "all")
        names = workload::benchmarkNames();
    else
        names.push_back(flags.getString("bench"));

    // The job grid, in deterministic (benchmark-major) order. Each
    // managed-policy job measures its own Turbo baseline internally.
    std::vector<exec::SimJob> jobs;
    for (const auto &name : names) {
        const auto app = workload::makeBenchmark(name);
        for (const auto &g : governors) {
            exec::SimJob job;
            job.app = app;
            job.predictor = predictor;
            job.mpcRuns = std::max(1, flags.getInt("runs"));
            // Session = job index: provenance from concurrent jobs
            // stays attributable and sorts deterministically.
            job.decisionSink = trace_outputs.log();
            job.traceSession = jobs.size();
            if (g == "turbo")
                job.policy = exec::SimJob::Policy::Turbo;
            else if (g == "ppk")
                job.policy = exec::SimJob::Policy::Ppk;
            else if (g == "mpc")
                job.policy = exec::SimJob::Policy::Mpc;
            else if (g == "oracle")
                job.policy = exec::SimJob::Policy::Oracle;
            else {
                std::cerr << "unknown governor '" << g << "'\n";
                return 2;
            }
            jobs.push_back(std::move(job));
        }
    }

    exec::SweepOptions sopts;
    sopts.jobs = static_cast<std::size_t>(std::max(0, flags.getInt("jobs")));
    sopts.rootSeed = static_cast<std::uint64_t>(flags.getInt("seed"));
    exec::SweepEngine engine(sopts);
    std::cerr << "[sweep] " << jobs.size() << " jobs on "
              << engine.jobs() << " workers\n";
    const auto results = exec::runSweep(engine, jobs, getHwModel(flags));

    TextTable t({"benchmark", "scheme", "energy (J)", "time (ms)",
                 "throughput (Ginst/s)"});
    for (const auto &r : results) {
        t.addRow({r.appName, r.governorName, fmt(r.totalEnergy(), 3),
                  fmt(r.totalTime() * 1e3, 2),
                  fmt(r.throughput() / 1e9, 3)});
    }
    t.print(std::cout);
    return trace_outputs.finish();
}

int
cmdFleet(int argc, const char *const *argv)
{
    FlagParser flags(
        "gpupm fleet: serve N concurrent governor sessions through a "
        "bounded request queue, coalescing their Random Forest "
        "evaluations into shared batched inference (deterministic: the "
        "decision trace is byte-identical for every --jobs value)");
    flags.addString("bench", "all",
                    "benchmark name, comma list, or 'all' (assigned "
                    "round-robin over sessions)");
    flags.addString("predictor", "rf", "perfect|rf|err15|err5");
    flags.addString("model", "", "saved .rf model (with --predictor rf)");
    addHwModelFlag(flags);
    flags.addString("hw-models", "",
                    "comma list of catalog model names cycled over "
                    "sessions in creation order (overrides --hw-model "
                    "per session; heterogeneous fleets)");
    flags.addString("deadlines", "",
                    "comma list of deadline slack factors cycled over "
                    "sessions (0 entries keep uniform-alpha QoS)");
    flags.addInt("sessions", 8, "concurrent governor sessions", 1,
                 1 << 20);
    flags.addInt("jobs", 1, "worker threads draining the request queue",
                 1, 4096);
    flags.addInt("synthetic", 0,
                 "draw sessions from a pool of synthetic random "
                 "applications with up to this many kernels (0 = use "
                 "--bench; massive fleets want small synthetic apps)",
                 0, 1 << 20);
    addShardFlags(flags);
    addPowercapFlags(flags);
    flags.addString("cap-weights", "",
                    "comma list of per-session priority weights, "
                    "cycled over sessions (with --cap-policy weighted)");
    flags.addInt("runs", 2, "MPC executions after profiling", 1, 10000);
    flags.addInt("queue", 1024, "request-queue capacity", 1, 1 << 20);
    flags.addInt("max-batch", 512, "broker flush threshold in queries",
                 1, 1 << 20);
    flags.addInt("cache", 32,
                 "per-session kernel prediction-cache cap (0 disables "
                 "caching and batching for that session)",
                 0, 1 << 20);
    flags.addInt("seed", 0x5eed, "root seed for per-session RNG streams");
    flags.addDouble("phase-jitter", 0.0,
                    "upper bound on per-session CPU-phase fractions "
                    "(each session draws its own)");
    flags.addBool("no-batching",
                  "disable the cross-session inference broker");
    flags.addBool("deterministic",
                  "print only byte-reproducible output (suppress "
                  "wall-clock metrics)");
    flags.addPath("trace", "",
                  "write the decision trace (JSON lines) here");
    addSimdFlag(flags);
    addOnlineFlags(flags);
    TraceOutputs::addFlags(flags);
    if (!flags.parse(argc, argv)) {
        std::cerr << (flags.helpRequested() ? "" : flags.error() + "\n")
                  << flags.usage();
        return flags.helpRequested() ? 0 : 2;
    }
    if (!applySimdFlag(flags))
        return 2;

    TraceOutputs trace_outputs(flags);

    auto predictor = makePredictor(flags.getString("predictor"),
                                   flags.getString("model"),
                                   getHwModel(flags)->params());
    if (!predictor)
        return 2;

    serve::FleetOptions fopts;
    fopts.server.model = getHwModel(flags);
    for (const auto &m : splitCommaList(flags.getString("hw-models"))) {
        // Resolved here (fatal with candidates on a typo) so a bad
        // name fails before the fleet spins up.
        fopts.hwModels.push_back(
            hw::HardwareCatalog::instance().get(m)->name());
    }
    for (const auto &d : splitCommaList(flags.getString("deadlines"))) {
        char *end = nullptr;
        const double factor = std::strtod(d.c_str(), &end);
        if (end == d.c_str() || *end != '\0' || factor < 0.0) {
            std::cerr << "--deadlines entries must be non-negative "
                         "numbers, got '"
                      << d << "'\n";
            return 2;
        }
        fopts.deadlines.push_back(factor);
    }
    fopts.server.jobs = static_cast<std::size_t>(flags.getInt("jobs"));
    fopts.server.shards =
        static_cast<std::size_t>(flags.getInt("shards"));
    fopts.server.shed = parseShedOptions(flags);
    if (!parsePowercapOptions(flags, &fopts.server.powercap,
                              &fopts.session.thermalCap))
        return 2;
    for (const auto &w : splitCommaList(flags.getString("cap-weights"))) {
        char *end = nullptr;
        const double weight = std::strtod(w.c_str(), &end);
        if (end == w.c_str() || *end != '\0' || !(weight > 0.0)) {
            std::cerr << "--cap-weights entries must be positive "
                         "numbers, got '"
                      << w << "'\n";
            return 2;
        }
        fopts.capWeights.push_back(weight);
    }
    fopts.server.queueCapacity =
        static_cast<std::size_t>(flags.getInt("queue"));
    fopts.server.broker.maxBatch =
        static_cast<std::size_t>(flags.getInt("max-batch"));
    fopts.server.batching = !flags.getBool("no-batching");
    fopts.session.optimizedRuns =
        static_cast<std::size_t>(flags.getInt("runs"));
    fopts.session.kernelCacheCap =
        static_cast<std::size_t>(flags.getInt("cache"));
    fopts.sessionCount = static_cast<std::size_t>(flags.getInt("sessions"));
    fopts.syntheticKernels =
        static_cast<std::size_t>(flags.getInt("synthetic"));
    fopts.cpuPhaseJitter = flags.getDouble("phase-jitter");
    fopts.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    fopts.decisionSink = trace_outputs.log();
    fopts.onlineLearn = flags.getBool("online-learn");
    fopts.online = parseOnlineOptions(flags);
    if (fopts.onlineLearn &&
        flags.getString("predictor") != "rf") {
        std::cerr << "--online-learn requires --predictor rf\n";
        return 2;
    }
    if (flags.getString("bench") != "all")
        fopts.apps = splitCommaList(flags.getString("bench"));

    const auto result = serve::runFleet(std::move(predictor), fopts);

    std::cout << "fleet: " << result.sessions << " sessions, "
              << result.decisions << " decisions\n";
    if (!fopts.hwModels.empty()) {
        // sessionsPerModel is an ordered map and session creation is
        // deterministic, so this line is byte-reproducible.
        std::cout << "models:";
        for (const auto &[name, count] : result.sessionsPerModel)
            std::cout << " " << name << "=" << count;
        std::cout << "\n";
    }
    if (!fopts.deadlines.empty()) {
        std::cout << "deadlines: " << result.deadlineMisses
                  << " missed runs\n";
    }
    if (fopts.server.powercap.enabled()) {
        // Cap accounting is part of the deterministic decision stream
        // (violations and arbiter ticks are functions of the trace, not
        // of worker scheduling), so this line stays byte-reproducible.
        std::cout << "powercap: budget "
                  << fmt(fopts.server.powercap.budgetWatts, 1)
                  << " W, " << result.capLimitedDecisions
                  << " cap-limited decisions, " << result.capViolations
                  << " violations, " << result.arbiterTicks
                  << " arbiter ticks\n";
    }
    if (!flags.getBool("deterministic")) {
        if (fopts.onlineLearn) {
            // Async retrain timing depends on scheduling, so the online
            // summary stays out of the byte-reproducible output.
            const auto &st = result.online;
            std::cout << "online: " << st.observed << " observed, "
                      << st.triggers << " drift triggers, "
                      << st.retrains << " retrains, " << st.swaps
                      << " swaps (serving generation "
                      << result.forestGeneration << ")\n";
        }
        std::cout << "throughput: "
                  << fmt(result.decisionsPerSecond, 0)
                  << " decisions/s over "
                  << fmt(result.wallSeconds * 1e3, 1) << " ms\n";
        const auto &h = result.metrics.histograms;
        if (auto it = h.find("serve.decision_latency_ns"); it != h.end())
            std::cout << "decision latency: p50 "
                      << fmt(it->second.p50 / 1e3, 1) << " us, p99 "
                      << fmt(it->second.p99 / 1e3, 1) << " us\n";
        if (auto it = h.find("broker.batch_requests"); it != h.end())
            std::cout << "broker: mean " << fmt(it->second.mean, 2)
                      << " requests/flush over " << it->second.count
                      << " flushes\n";
        if (auto it = h.find("serve.queue_depth"); it != h.end())
            std::cout << "queue depth: mean " << fmt(it->second.mean, 2)
                      << ", p99 " << fmt(it->second.p99, 1) << "\n";
        if (fopts.server.shed.enabled) {
            const auto &sc = result.metrics.counters;
            const auto cnt = [&](const char *k) {
                const auto it = sc.find(k);
                return it != sc.end() ? it->second : std::uint64_t{0};
            };
            std::cout << "shed: " << result.degradedDecisions
                      << " degraded decisions, "
                      << cnt("serve.shed_enters") << " enters, "
                      << cnt("serve.shed_exits") << " exits\n";
        }
        if (fopts.server.shards > 1) {
            const auto it =
                result.metrics.counters.find("serve.queue_steals");
            std::cout << "shards: " << fopts.server.shards
                      << ", queue steals "
                      << (it != result.metrics.counters.end()
                              ? it->second
                              : std::uint64_t{0})
                      << "\n";
        }
        // Row counts depend on cache/memo hit patterns, which vary
        // with worker scheduling - hence outside --deterministic.
        const auto &c = result.metrics.counters;
        const auto rows = [&](const char *k) {
            const auto it = c.find(k);
            return it != c.end() ? it->second : std::uint64_t{0};
        };
        std::cout << "inference: --simd "
                  << flags.getString("simd") << ", rows scalar "
                  << rows("ml.rows_scalar") << ", fallback "
                  << rows("ml.rows_fallback") << ", avx2 "
                  << rows("ml.rows_avx2") << "\n";
    }

    const std::string trace_path = flags.getPath("trace");
    if (!trace_path.empty()) {
        std::ofstream os(trace_path, std::ios::binary);
        if (!os) {
            std::cerr << "cannot write " << trace_path << "\n";
            return 1;
        }
        os << serve::serializeFleetTrace(result.trace);
        std::cout << "decision trace written to " << trace_path << "\n";
    }
    return trace_outputs.finish();
}

int
cmdReplay(int argc, const char *const *argv)
{
    FlagParser flags(
        "gpupm replay: re-drive a recorded decision JSONL dump "
        "through a governor offline - with the original predictor and "
        "options the MPC decisions reproduce byte-identically; with a "
        "different governor, hardware model or QoS the divergence "
        "count quantifies the counterfactual");
    flags.addPath("trace", "", "decision JSONL dump to replay "
                               "(required; from --trace/"
                               "--trace-decisions)");
    flags.addChoice("governor", "mpc", "replaying policy",
                    {"mpc", "turbo", "pi"});
    flags.addChoice("predictor", "rf", "mpc only; must match the "
                                       "recording run's predictor "
                                       "(offline replay has no kernel "
                                       "ground truth, so only rf works)",
                    {"rf"});
    flags.addString("model", "", "saved .rf model (with --predictor rf)");
    addHwModelFlag(flags);
    flags.addString("horizon", "adaptive", "adaptive|full|fixed");
    flags.addInt("fixed-horizon", 4, "length for --horizon fixed");
    flags.addDouble("alpha", 0.05, "performance-loss bound");
    flags.addDouble("deadline", 0.0,
                    "deadline-QoS slack factor (> 0 enables deadline "
                    "QoS; 0 = uniform alpha)",
                    0.0, 1e6);
    flags.addBool("no-overhead", "do not charge decision latency");
    flags.addBool("expect-identical",
                  "exit nonzero unless every replayed decision matches "
                  "the recorded one (CI determinism check)");
    addSimdFlag(flags);
    if (!flags.parse(argc, argv)) {
        std::cerr << (flags.helpRequested() ? "" : flags.error() + "\n")
                  << flags.usage();
        return flags.helpRequested() ? 0 : 2;
    }
    if (!applySimdFlag(flags))
        return 2;

    const std::string trace_path = flags.getPath("trace");
    if (trace_path.empty()) {
        std::cerr << "--trace is required\n" << flags.usage();
        return 2;
    }
    std::ifstream is(trace_path, std::ios::binary);
    if (!is) {
        std::cerr << "cannot read " << trace_path << "\n";
        return 1;
    }
    auto records = trace::readDecisionJsonl(is);
    if (records.empty()) {
        std::cerr << "no decision records in " << trace_path << "\n";
        return 1;
    }

    exec::ReplayOptions ropts;
    ropts.model = getHwModel(flags);
    const std::string gov_kind = flags.getString("governor");
    if (gov_kind == "turbo")
        ropts.governor = exec::ReplayGovernor::Turbo;
    else if (gov_kind == "pi")
        ropts.governor = exec::ReplayGovernor::Pi;
    else
        ropts.governor = exec::ReplayGovernor::Mpc;
    ropts.mpc.qos.alpha = flags.getDouble("alpha");
    if (flags.getDouble("deadline") > 0.0)
        ropts.mpc.qos =
            mpc::QosSpec::deadline(flags.getDouble("deadline"));
    ropts.qos = ropts.mpc.qos;
    if (flags.getString("horizon") == "full")
        ropts.mpc.horizonMode = mpc::HorizonMode::Full;
    else if (flags.getString("horizon") == "fixed")
        ropts.mpc.horizonMode = mpc::HorizonMode::Fixed;
    ropts.mpc.fixedHorizon =
        static_cast<std::size_t>(flags.getInt("fixed-horizon"));
    if (flags.getBool("no-overhead")) {
        ropts.mpc.chargeOverhead = false;
        ropts.mpc.overhead = policy::OverheadModel::free();
    }

    std::shared_ptr<const ml::PerfPowerPredictor> predictor;
    if (ropts.governor == exec::ReplayGovernor::Mpc) {
        // Counter-driven replay carries no kernel ground truth, so the
        // oracle predictors (perfect/err*) cannot run here - only rf,
        // enforced by the flag's choice list above.
        predictor = makePredictor(flags.getString("predictor"),
                                  flags.getString("model"),
                                  ropts.model->params());
        if (!predictor)
            return 2;
    }

    const auto report =
        exec::replayRecords(std::move(records), predictor, ropts);

    std::cout << "replay: " << report.decisions << " decisions through "
              << report.governors << " " << report.governorName
              << " governor(s) on " << ropts.model->name() << "\n"
              << "divergences: " << report.divergences.size() << "\n";
    if (!report.divergences.empty()) {
        const auto &d = report.divergences.front();
        std::cout << "first divergence at record " << d.recordIndex
                  << ": recorded config " << d.configRecorded
                  << ", replayed " << d.configReplayed << "\n";
    }
    if (flags.getBool("expect-identical") && !report.identical()) {
        std::cerr << "replay diverged from the recorded decisions\n";
        return 1;
    }
    return 0;
}

serve::NetServer *g_netServer = nullptr;

extern "C" void
serveSignalHandler(int)
{
    // NetServer::stop is async-signal-safe (atomic store + eventfd
    // write), so a Ctrl-C drains connections and exits cleanly.
    if (g_netServer != nullptr)
        g_netServer->stop();
}

int
cmdServe(int argc, const char *const *argv)
{
    FlagParser flags(
        "gpupm serve: expose the sharded fleet decision server over a "
        "TCP wire protocol (length-prefixed binary frames, epoll event "
        "loop; drive it with gpupm-client)");
    flags.addString("listen", "127.0.0.1:0",
                    "host:port to bind (port 0 = kernel-assigned; the "
                    "bound port is printed on startup)");
    flags.addString("predictor", "rf", "perfect|rf|err15|err5");
    flags.addString("model", "", "saved .rf model (with --predictor rf)");
    flags.addInt("jobs", 1, "worker threads draining the shard queues",
                 1, 4096);
    flags.addInt("runs", 2,
                 "default MPC executions after profiling (Open frames "
                 "may override)",
                 1, 10000);
    flags.addInt("queue", 1024, "per-shard request-queue capacity", 1,
                 1 << 20);
    flags.addInt("max-batch", 512, "broker flush threshold in queries",
                 1, 1 << 20);
    flags.addInt("cache", 32,
                 "default per-session kernel prediction-cache cap", 0,
                 1 << 20);
    flags.addInt("max-sessions", 4096,
                 "per-shard resident-session LRU cap", 1, 1 << 24);
    addHwModelFlag(flags);
    addShardFlags(flags);
    addPowercapFlags(flags);
    addSimdFlag(flags);
    if (!flags.parse(argc, argv)) {
        std::cerr << (flags.helpRequested() ? "" : flags.error() + "\n")
                  << flags.usage();
        return flags.helpRequested() ? 0 : 2;
    }
    if (!applySimdFlag(flags))
        return 2;

    const std::string listen = flags.getString("listen");
    const auto colon = listen.rfind(':');
    if (colon == std::string::npos) {
        std::cerr << "--listen wants host:port, got '" << listen
                  << "'\n";
        return 2;
    }
    const std::string host = listen.substr(0, colon);
    int port = 0;
    try {
        port = std::stoi(listen.substr(colon + 1));
    } catch (...) {
        port = -1;
    }
    if (port < 0 || port > 65535) {
        std::cerr << "invalid port in --listen '" << listen << "'\n";
        return 2;
    }

    auto predictor = makePredictor(flags.getString("predictor"),
                                   flags.getString("model"),
                                   getHwModel(flags)->params());
    if (!predictor)
        return 2;

    serve::FleetServerOptions sopts;
    sopts.model = getHwModel(flags);
    sopts.jobs = static_cast<std::size_t>(flags.getInt("jobs"));
    sopts.shards = static_cast<std::size_t>(flags.getInt("shards"));
    sopts.shed = parseShedOptions(flags);
    serve::NetServerOptions nopts;
    if (!parsePowercapOptions(flags, &sopts.powercap,
                              &nopts.session.thermalCap))
        return 2;
    // Live tenants come and go, so the network server re-splits the
    // budget from measured usage rather than registration-time demand
    // (forfeiting byte-reproducibility, which TCP timing already
    // forfeits).
    sopts.powercap.liveUsage = true;
    sopts.queueCapacity =
        static_cast<std::size_t>(flags.getInt("queue"));
    sopts.sessions.maxSessions =
        static_cast<std::size_t>(flags.getInt("max-sessions"));
    sopts.broker.maxBatch =
        static_cast<std::size_t>(flags.getInt("max-batch"));
    serve::FleetServer server(std::move(predictor), sopts);

    nopts.host = host;
    nopts.port = static_cast<std::uint16_t>(port);
    nopts.session.optimizedRuns =
        static_cast<std::size_t>(flags.getInt("runs"));
    nopts.session.kernelCacheCap =
        static_cast<std::size_t>(flags.getInt("cache"));
    serve::NetServer net(server, nopts);

    g_netServer = &net;
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    // Scripted callers (the CI smoke test) parse this line for the
    // resolved port, so keep the format stable and flush immediately.
    std::cout << "listening on " << host << ":" << net.port() << " ("
              << sopts.shards << " shards, " << sopts.jobs << " jobs)"
              << std::endl;

    net.run();
    g_netServer = nullptr;

    const auto snap = server.metrics();
    const auto cnt = [&](const char *k) {
        const auto it = snap.counters.find(k);
        return it != snap.counters.end() ? it->second
                                         : std::uint64_t{0};
    };
    std::cout << "served " << cnt("serve.decisions") << " decisions ("
              << cnt("serve.shed_degraded_decisions")
              << " degraded) over " << net.accepted()
              << " connections, " << cnt("serve.rejected_requests")
              << " rejected\n";
    if (const auto *arbiter = server.capArbiter()) {
        std::cout << "powercap: budget "
                  << fmt(arbiter->budgetWatts(), 1) << " W, "
                  << arbiter->violations() << " violations, "
                  << arbiter->ticks() << " arbiter ticks\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: gpupm "
                     "<list|info|train|run|sweep|fleet|serve|replay> "
                     "[flags]\n"
                     "       gpupm <subcommand> --help\n";
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "info")
        return cmdInfo();
    if (cmd == "train")
        return cmdTrain(argc - 1, argv + 1);
    if (cmd == "run")
        return cmdRun(argc - 1, argv + 1);
    if (cmd == "sweep")
        return cmdSweep(argc - 1, argv + 1);
    if (cmd == "fleet")
        return cmdFleet(argc - 1, argv + 1);
    if (cmd == "serve")
        return cmdServe(argc - 1, argv + 1);
    if (cmd == "replay")
        return cmdReplay(argc - 1, argv + 1);
    std::cerr << "unknown subcommand '" << cmd << "'\n";
    return 2;
}
