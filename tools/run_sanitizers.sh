#!/usr/bin/env bash
# Build and run the test suite under ThreadSanitizer and
# AddressSanitizer(+UBSan). Extra arguments are forwarded to ctest,
# e.g. to check only the concurrency suites quickly:
#
#   tools/run_sanitizers.sh -R 'ThreadPool|SweepDeterminism|Fuzz'
#
# or just the inference engine's suites (-R matches gtest suite names,
# e.g. FlatForest.FuzzBitIdenticalToScalar, not test file names):
#
#   tools/run_sanitizers.sh -R 'FlatForest|RandomForest|Trainer'
#
# or the fleet-serving path (request queue, broker, sharded server,
# shed controller, wire protocol and the epoll net server — the set CI
# runs under its scoped TSan leg):
#
#   tools/run_sanitizers.sh -R 'RequestQueue|InferenceBroker|FleetServer|FleetServerSharded|FleetDeterminism|SessionManager|ShedController|Wire|NetServer|Telemetry'
#
# A single sanitizer can be selected with --only (used by CI, where
# TSan and ASan run as separate jobs):
#
#   tools/run_sanitizers.sh --only asan -R 'FleetServer'
#
# Each sanitizer gets its own build tree (build-tsan/, build-asan/) so
# the regular build/ stays untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

only=""
if [[ "${1:-}" == "--only" ]]; then
    only="${2:?--only needs 'tsan' or 'asan'}"
    case "$only" in
        tsan|asan) ;;
        *) echo "error: --only expects 'tsan' or 'asan', got '$only'" >&2
           exit 2 ;;
    esac
    shift 2
fi

jobs=$(nproc 2>/dev/null || echo 2)

run_one() {
    local name="$1" flag="$2"
    shift 2
    echo "=== ${name}: configure + build ==="
    cmake -B "build-${name}" -S . "-D${flag}=ON" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    cmake --build "build-${name}" -j "${jobs}"
    echo "=== ${name}: ctest ==="
    ctest --test-dir "build-${name}" --output-on-failure -j "${jobs}" "$@"
}

[[ -z "$only" || "$only" == tsan ]] && run_one tsan GPUPM_TSAN "$@"
[[ -z "$only" || "$only" == asan ]] && run_one asan GPUPM_ASAN "$@"
echo "=== sanitizers clean ==="
