#!/usr/bin/env python3
"""Validate gpupm trace artifacts (CI trace-smoke job).

Checks a Chrome trace-event JSON file against the subset of the Trace
Event Format the exporter promises (loadable by chrome://tracing /
Perfetto), and a decision JSONL dump for per-line well-formedness,
required fields and canonical (app, session, run, index) ordering.
Stdlib only.

Usage: validate_trace.py --chrome timeline.json --jsonl decisions.jsonl
"""

import argparse
import json
import sys

CHROME_CATEGORIES = {"sim", "mpc", "ml", "exec", "serve", "bench",
                     "online"}
DECISION_TAGS = {"P", "W", "F", "B"}
REQUIRED_DECISION_KEYS = {
    "app", "session", "run", "index", "tag", "profiling", "signature",
    "horizon", "headroom", "config", "predictedTime", "predictedEnergy",
    "evaluations", "uniqueEvaluations", "overheadTime", "candidates",
    "observed",
}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_chrome(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit != 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    for i, ev in enumerate(events):
        for key in ("name", "cat", "ph", "pid", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"{path}: event {i} missing '{key}'")
        if ev["ph"] != "X":
            fail(f"{path}: event {i} ph={ev['ph']!r}, expected 'X'")
        if ev["cat"] not in CHROME_CATEGORIES:
            fail(f"{path}: event {i} unknown cat {ev['cat']!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"{path}: event {i} args is not an object")
    starts = [(ev["ts"], ev["tid"]) for ev in events]
    if starts != sorted(starts):
        fail(f"{path}: events not sorted by (ts, tid)")
    print(f"validate_trace: {path}: {len(events)} events OK")


def check_jsonl(path):
    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: bad JSON: {e}")
            missing = REQUIRED_DECISION_KEYS - rec.keys()
            if missing:
                fail(f"{path}:{lineno}: missing {sorted(missing)}")
            if rec["tag"] not in DECISION_TAGS:
                fail(f"{path}:{lineno}: unknown tag {rec['tag']!r}")
            int(rec["signature"], 16)  # hex string, not a number
            if rec["observed"]:
                for key in ("measuredTime", "measuredGpuPower",
                            "timeErrorPct", "counters", "instructions",
                            "nonKernelTime", "target"):
                    if key not in rec:
                        fail(f"{path}:{lineno}: observed without {key}")
                if len(rec["counters"]) != 8:
                    fail(f"{path}:{lineno}: counters arity "
                         f"{len(rec['counters'])} != 8")
            records.append(rec)
    if not records:
        fail(f"{path}: no decision records")
    keys = [(r["app"], r["session"], r["run"], r["index"])
            for r in records]
    if keys != sorted(keys):
        fail(f"{path}: records not in canonical order")
    print(f"validate_trace: {path}: {len(records)} decision records OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--chrome", help="Chrome trace-event JSON file")
    ap.add_argument("--jsonl", help="decision JSONL dump")
    args = ap.parse_args()
    if not args.chrome and not args.jsonl:
        ap.error("nothing to validate")
    if args.chrome:
        check_chrome(args.chrome)
    if args.jsonl:
        check_jsonl(args.jsonl)


if __name__ == "__main__":
    main()
