#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag regressions.

Usage:
    tools/perf_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Benchmarks are matched by name; aggregate entries (mean/median/stddev
rows emitted with --benchmark_repetitions) are ignored in favour of the
plain run. For every benchmark present in both files the real-time
delta is printed, and the script exits non-zero if any shared benchmark
slowed down by more than the threshold (default 20%, chosen above
typical run-to-run noise on an unpinned machine so callers such as the
bench-compare target can gate on the exit status). Benchmarks present in
only one file are listed but never fail the comparison, so adding or
retiring a benchmark does not break CI.

Latency percentiles: benchmarks that stamp latency_p50_ns /
latency_p95_ns / latency_p99_ns counters (the fleet benches do) get a
per-percentile comparison too. Tail latency is far noisier than mean
rate, so percentiles gate on their own --percentile-threshold (default
50%, p99 only); p50/p95 deltas are always printed but informational.

Both files must come from the same inference engine: the bench mains
stamp the resolved SIMD path and quantization domain into the JSON
context (gpupm_simd_path / gpupm_quant; files predating the keys read
as scalar/float64), and mismatched runs are refused with exit code 2 -
a quantized AVX2 candidate "beating" a float baseline is an engine
change, not a like-for-like result. Pass --allow-simd-mismatch for the
deliberate cross-engine comparison (e.g. quantifying the quantized
speedup itself).

Capture inputs with:
    bench_micro_runtime --benchmark_min_time=0.5 \
        --benchmark_out=out.json --benchmark_out_format=json

Only the python3 standard library is used.
"""

import argparse
import json
import sys


def load_context(path):
    """(simd_path, quant) recorded in the run's context block."""
    with open(path) as f:
        doc = json.load(f)
    ctx = doc.get("context", {})
    return (ctx.get("gpupm_simd_path", "scalar"),
            ctx.get("gpupm_quant", "float64"))


PERCENTILE_KEYS = ("latency_p50_ns", "latency_p95_ns", "latency_p99_ns")


def load_benchmarks(path):
    """(name -> real_time ns, name -> {percentile counter -> ns})."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    pcts = {}
    for b in doc.get("benchmarks", []):
        # Skip mean/median/stddev aggregates from repetition runs.
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            print(f"warning: {b['name']}: unknown unit {unit}, skipped",
                  file=sys.stderr)
            continue
        out[b["name"]] = float(b["real_time"]) * scale
        # Percentile counters are stamped in ns regardless of time_unit.
        p = {k: float(b[k]) for k in PERCENTILE_KEYS
             if k in b and float(b[k]) > 0.0}
        if p:
            pcts[b["name"]] = p
    return out, pcts


def fmt_ns(ns):
    for limit, unit in ((1e9, "s"), (1e6, "ms"), (1e3, "us")):
        if ns >= limit:
            return f"{ns / limit:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="regression threshold in percent (default 20)")
    ap.add_argument("--percentile-threshold", type=float, default=50.0,
                    help="p99 latency regression threshold in percent "
                         "(default 50; p50/p95 are informational)")
    ap.add_argument("--allow-simd-mismatch", action="store_true",
                    help="compare runs from different inference "
                         "engines (deliberate cross-engine studies)")
    args = ap.parse_args()

    base_engine = load_context(args.baseline)
    cand_engine = load_context(args.candidate)
    if base_engine != cand_engine:
        msg = (f"inference engines differ: baseline is "
               f"{base_engine[0]}/{base_engine[1]}, candidate is "
               f"{cand_engine[0]}/{cand_engine[1]}")
        if not args.allow_simd_mismatch:
            print(f"error: {msg}; rerun both on one engine or pass "
                  f"--allow-simd-mismatch", file=sys.stderr)
            return 2
        print(f"warning: {msg} (--allow-simd-mismatch)",
              file=sys.stderr)

    base, base_pcts = load_benchmarks(args.baseline)
    cand, cand_pcts = load_benchmarks(args.candidate)
    shared = sorted(set(base) & set(cand))
    if not shared:
        print("error: no benchmarks in common", file=sys.stderr)
        return 2

    width = max(len(n) for n in shared)
    regressions = []
    for name in shared:
        b, c = base[name], cand[name]
        delta = 100.0 * (c - b) / b if b > 0 else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            marker = "  improved"
        print(f"{name:<{width}}  {fmt_ns(b):>9} -> {fmt_ns(c):>9} "
              f"{delta:+7.1f}%{marker}")

    for name in sorted(set(base) - set(cand)):
        print(f"{name:<{width}}  only in baseline")
    for name in sorted(set(cand) - set(base)):
        print(f"{name:<{width}}  only in candidate")

    pct_shared = sorted(set(base_pcts) & set(cand_pcts) & set(shared))
    if pct_shared:
        print("\nlatency percentiles:")
        for name in pct_shared:
            for key in PERCENTILE_KEYS:
                if key not in base_pcts[name] or \
                        key not in cand_pcts[name]:
                    continue
                b, c = base_pcts[name][key], cand_pcts[name][key]
                delta = 100.0 * (c - b) / b
                marker = ""
                if key == "latency_p99_ns" and \
                        delta > args.percentile_threshold:
                    marker = "  REGRESSION"
                    regressions.append((f"{name}:{key}", delta))
                elif delta < -args.percentile_threshold:
                    marker = "  improved"
                label = key.replace("latency_", "").replace("_ns", "")
                print(f"{name:<{width}}  {label}  "
                      f"{fmt_ns(b):>9} -> {fmt_ns(c):>9} "
                      f"{delta:+7.1f}%{marker}")

    if regressions:
        # Name every offender with its own delta so a CI log tail is
        # enough to see what regressed and by how much - percentile
        # offenders carry their :latency_pNN_ns suffix and gated on
        # --percentile-threshold rather than --threshold.
        offenders = ", ".join(f"{name} ({delta:+.1f}%)"
                              for name, delta in regressions)
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%: {offenders}",
              file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}% "
          f"across {len(shared)} shared benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
