file(REMOVE_RECURSE
  "CMakeFiles/gpupm_mpc.dir/governor.cpp.o"
  "CMakeFiles/gpupm_mpc.dir/governor.cpp.o.d"
  "CMakeFiles/gpupm_mpc.dir/hill_climb.cpp.o"
  "CMakeFiles/gpupm_mpc.dir/hill_climb.cpp.o.d"
  "CMakeFiles/gpupm_mpc.dir/horizon.cpp.o"
  "CMakeFiles/gpupm_mpc.dir/horizon.cpp.o.d"
  "CMakeFiles/gpupm_mpc.dir/pattern_extractor.cpp.o"
  "CMakeFiles/gpupm_mpc.dir/pattern_extractor.cpp.o.d"
  "CMakeFiles/gpupm_mpc.dir/performance_tracker.cpp.o"
  "CMakeFiles/gpupm_mpc.dir/performance_tracker.cpp.o.d"
  "CMakeFiles/gpupm_mpc.dir/pool.cpp.o"
  "CMakeFiles/gpupm_mpc.dir/pool.cpp.o.d"
  "CMakeFiles/gpupm_mpc.dir/search_order.cpp.o"
  "CMakeFiles/gpupm_mpc.dir/search_order.cpp.o.d"
  "libgpupm_mpc.a"
  "libgpupm_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
