# Empty compiler generated dependencies file for gpupm_mpc.
# This may be replaced when dependencies are built.
