file(REMOVE_RECURSE
  "libgpupm_mpc.a"
)
