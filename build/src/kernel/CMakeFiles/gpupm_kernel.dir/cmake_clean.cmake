file(REMOVE_RECURSE
  "CMakeFiles/gpupm_kernel.dir/apu.cpp.o"
  "CMakeFiles/gpupm_kernel.dir/apu.cpp.o.d"
  "CMakeFiles/gpupm_kernel.dir/counters.cpp.o"
  "CMakeFiles/gpupm_kernel.dir/counters.cpp.o.d"
  "CMakeFiles/gpupm_kernel.dir/kernel.cpp.o"
  "CMakeFiles/gpupm_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/gpupm_kernel.dir/perf_model.cpp.o"
  "CMakeFiles/gpupm_kernel.dir/perf_model.cpp.o.d"
  "libgpupm_kernel.a"
  "libgpupm_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
