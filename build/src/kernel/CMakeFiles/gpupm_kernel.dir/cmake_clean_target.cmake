file(REMOVE_RECURSE
  "libgpupm_kernel.a"
)
