# Empty compiler generated dependencies file for gpupm_kernel.
# This may be replaced when dependencies are built.
