
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/apu.cpp" "src/kernel/CMakeFiles/gpupm_kernel.dir/apu.cpp.o" "gcc" "src/kernel/CMakeFiles/gpupm_kernel.dir/apu.cpp.o.d"
  "/root/repo/src/kernel/counters.cpp" "src/kernel/CMakeFiles/gpupm_kernel.dir/counters.cpp.o" "gcc" "src/kernel/CMakeFiles/gpupm_kernel.dir/counters.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/kernel/CMakeFiles/gpupm_kernel.dir/kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/gpupm_kernel.dir/kernel.cpp.o.d"
  "/root/repo/src/kernel/perf_model.cpp" "src/kernel/CMakeFiles/gpupm_kernel.dir/perf_model.cpp.o" "gcc" "src/kernel/CMakeFiles/gpupm_kernel.dir/perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/gpupm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
