file(REMOVE_RECURSE
  "CMakeFiles/gpupm_common.dir/flags.cpp.o"
  "CMakeFiles/gpupm_common.dir/flags.cpp.o.d"
  "CMakeFiles/gpupm_common.dir/logging.cpp.o"
  "CMakeFiles/gpupm_common.dir/logging.cpp.o.d"
  "CMakeFiles/gpupm_common.dir/rng.cpp.o"
  "CMakeFiles/gpupm_common.dir/rng.cpp.o.d"
  "CMakeFiles/gpupm_common.dir/stats.cpp.o"
  "CMakeFiles/gpupm_common.dir/stats.cpp.o.d"
  "CMakeFiles/gpupm_common.dir/table.cpp.o"
  "CMakeFiles/gpupm_common.dir/table.cpp.o.d"
  "libgpupm_common.a"
  "libgpupm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
