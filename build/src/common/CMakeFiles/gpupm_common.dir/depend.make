# Empty dependencies file for gpupm_common.
# This may be replaced when dependencies are built.
