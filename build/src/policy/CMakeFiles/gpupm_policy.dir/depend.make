# Empty dependencies file for gpupm_policy.
# This may be replaced when dependencies are built.
