file(REMOVE_RECURSE
  "CMakeFiles/gpupm_policy.dir/knapsack.cpp.o"
  "CMakeFiles/gpupm_policy.dir/knapsack.cpp.o.d"
  "CMakeFiles/gpupm_policy.dir/oracle.cpp.o"
  "CMakeFiles/gpupm_policy.dir/oracle.cpp.o.d"
  "CMakeFiles/gpupm_policy.dir/overhead.cpp.o"
  "CMakeFiles/gpupm_policy.dir/overhead.cpp.o.d"
  "CMakeFiles/gpupm_policy.dir/ppk.cpp.o"
  "CMakeFiles/gpupm_policy.dir/ppk.cpp.o.d"
  "CMakeFiles/gpupm_policy.dir/static_governor.cpp.o"
  "CMakeFiles/gpupm_policy.dir/static_governor.cpp.o.d"
  "CMakeFiles/gpupm_policy.dir/turbo_core.cpp.o"
  "CMakeFiles/gpupm_policy.dir/turbo_core.cpp.o.d"
  "libgpupm_policy.a"
  "libgpupm_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
