file(REMOVE_RECURSE
  "libgpupm_policy.a"
)
