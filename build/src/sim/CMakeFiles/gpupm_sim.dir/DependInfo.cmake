
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/governor.cpp" "src/sim/CMakeFiles/gpupm_sim.dir/governor.cpp.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/governor.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/gpupm_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/gpupm_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/telemetry.cpp" "src/sim/CMakeFiles/gpupm_sim.dir/telemetry.cpp.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/gpupm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/gpupm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gpupm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/gpupm_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
