file(REMOVE_RECURSE
  "libgpupm_sim.a"
)
