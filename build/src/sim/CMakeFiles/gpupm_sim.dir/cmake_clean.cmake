file(REMOVE_RECURSE
  "CMakeFiles/gpupm_sim.dir/governor.cpp.o"
  "CMakeFiles/gpupm_sim.dir/governor.cpp.o.d"
  "CMakeFiles/gpupm_sim.dir/metrics.cpp.o"
  "CMakeFiles/gpupm_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/gpupm_sim.dir/simulator.cpp.o"
  "CMakeFiles/gpupm_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/gpupm_sim.dir/telemetry.cpp.o"
  "CMakeFiles/gpupm_sim.dir/telemetry.cpp.o.d"
  "libgpupm_sim.a"
  "libgpupm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
