# Empty dependencies file for gpupm_ml.
# This may be replaced when dependencies are built.
