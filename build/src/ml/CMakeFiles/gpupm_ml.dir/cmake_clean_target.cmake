file(REMOVE_RECURSE
  "libgpupm_ml.a"
)
