file(REMOVE_RECURSE
  "CMakeFiles/gpupm_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/gpupm_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/gpupm_ml.dir/energy.cpp.o"
  "CMakeFiles/gpupm_ml.dir/energy.cpp.o.d"
  "CMakeFiles/gpupm_ml.dir/error_model.cpp.o"
  "CMakeFiles/gpupm_ml.dir/error_model.cpp.o.d"
  "CMakeFiles/gpupm_ml.dir/features.cpp.o"
  "CMakeFiles/gpupm_ml.dir/features.cpp.o.d"
  "CMakeFiles/gpupm_ml.dir/predictor.cpp.o"
  "CMakeFiles/gpupm_ml.dir/predictor.cpp.o.d"
  "CMakeFiles/gpupm_ml.dir/random_forest.cpp.o"
  "CMakeFiles/gpupm_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/gpupm_ml.dir/serialize.cpp.o"
  "CMakeFiles/gpupm_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/gpupm_ml.dir/trainer.cpp.o"
  "CMakeFiles/gpupm_ml.dir/trainer.cpp.o.d"
  "libgpupm_ml.a"
  "libgpupm_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
