
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/gpupm_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/gpupm_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/energy.cpp" "src/ml/CMakeFiles/gpupm_ml.dir/energy.cpp.o" "gcc" "src/ml/CMakeFiles/gpupm_ml.dir/energy.cpp.o.d"
  "/root/repo/src/ml/error_model.cpp" "src/ml/CMakeFiles/gpupm_ml.dir/error_model.cpp.o" "gcc" "src/ml/CMakeFiles/gpupm_ml.dir/error_model.cpp.o.d"
  "/root/repo/src/ml/features.cpp" "src/ml/CMakeFiles/gpupm_ml.dir/features.cpp.o" "gcc" "src/ml/CMakeFiles/gpupm_ml.dir/features.cpp.o.d"
  "/root/repo/src/ml/predictor.cpp" "src/ml/CMakeFiles/gpupm_ml.dir/predictor.cpp.o" "gcc" "src/ml/CMakeFiles/gpupm_ml.dir/predictor.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/gpupm_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/gpupm_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/gpupm_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/gpupm_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/trainer.cpp" "src/ml/CMakeFiles/gpupm_ml.dir/trainer.cpp.o" "gcc" "src/ml/CMakeFiles/gpupm_ml.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/gpupm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/gpupm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gpupm_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
