# Empty compiler generated dependencies file for gpupm_hw.
# This may be replaced when dependencies are built.
