file(REMOVE_RECURSE
  "libgpupm_hw.a"
)
