file(REMOVE_RECURSE
  "CMakeFiles/gpupm_hw.dir/config.cpp.o"
  "CMakeFiles/gpupm_hw.dir/config.cpp.o.d"
  "CMakeFiles/gpupm_hw.dir/dvfs.cpp.o"
  "CMakeFiles/gpupm_hw.dir/dvfs.cpp.o.d"
  "CMakeFiles/gpupm_hw.dir/power_model.cpp.o"
  "CMakeFiles/gpupm_hw.dir/power_model.cpp.o.d"
  "CMakeFiles/gpupm_hw.dir/thermal.cpp.o"
  "CMakeFiles/gpupm_hw.dir/thermal.cpp.o.d"
  "CMakeFiles/gpupm_hw.dir/transition.cpp.o"
  "CMakeFiles/gpupm_hw.dir/transition.cpp.o.d"
  "libgpupm_hw.a"
  "libgpupm_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
