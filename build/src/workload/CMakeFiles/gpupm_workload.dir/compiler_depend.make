# Empty compiler generated dependencies file for gpupm_workload.
# This may be replaced when dependencies are built.
