
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmarks.cpp" "src/workload/CMakeFiles/gpupm_workload.dir/benchmarks.cpp.o" "gcc" "src/workload/CMakeFiles/gpupm_workload.dir/benchmarks.cpp.o.d"
  "/root/repo/src/workload/pattern.cpp" "src/workload/CMakeFiles/gpupm_workload.dir/pattern.cpp.o" "gcc" "src/workload/CMakeFiles/gpupm_workload.dir/pattern.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/gpupm_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/gpupm_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/training.cpp" "src/workload/CMakeFiles/gpupm_workload.dir/training.cpp.o" "gcc" "src/workload/CMakeFiles/gpupm_workload.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/gpupm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/gpupm_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
