file(REMOVE_RECURSE
  "libgpupm_workload.a"
)
