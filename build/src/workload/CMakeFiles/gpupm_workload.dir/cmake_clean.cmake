file(REMOVE_RECURSE
  "CMakeFiles/gpupm_workload.dir/benchmarks.cpp.o"
  "CMakeFiles/gpupm_workload.dir/benchmarks.cpp.o.d"
  "CMakeFiles/gpupm_workload.dir/pattern.cpp.o"
  "CMakeFiles/gpupm_workload.dir/pattern.cpp.o.d"
  "CMakeFiles/gpupm_workload.dir/trace.cpp.o"
  "CMakeFiles/gpupm_workload.dir/trace.cpp.o.d"
  "CMakeFiles/gpupm_workload.dir/training.cpp.o"
  "CMakeFiles/gpupm_workload.dir/training.cpp.o.d"
  "libgpupm_workload.a"
  "libgpupm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
