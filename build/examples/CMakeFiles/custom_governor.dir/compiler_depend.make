# Empty compiler generated dependencies file for custom_governor.
# This may be replaced when dependencies are built.
