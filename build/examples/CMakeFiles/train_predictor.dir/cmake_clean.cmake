file(REMOVE_RECURSE
  "CMakeFiles/train_predictor.dir/train_predictor.cpp.o"
  "CMakeFiles/train_predictor.dir/train_predictor.cpp.o.d"
  "train_predictor"
  "train_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
