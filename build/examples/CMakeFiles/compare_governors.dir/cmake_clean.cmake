file(REMOVE_RECURSE
  "CMakeFiles/compare_governors.dir/compare_governors.cpp.o"
  "CMakeFiles/compare_governors.dir/compare_governors.cpp.o.d"
  "compare_governors"
  "compare_governors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
