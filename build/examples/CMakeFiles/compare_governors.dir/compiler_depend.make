# Empty compiler generated dependencies file for compare_governors.
# This may be replaced when dependencies are built.
