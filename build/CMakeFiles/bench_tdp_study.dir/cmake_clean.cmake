file(REMOVE_RECURSE
  "CMakeFiles/bench_tdp_study.dir/bench/bench_tdp_study.cpp.o"
  "CMakeFiles/bench_tdp_study.dir/bench/bench_tdp_study.cpp.o.d"
  "bench/bench_tdp_study"
  "bench/bench_tdp_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tdp_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
