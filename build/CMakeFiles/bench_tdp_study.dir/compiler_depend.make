# Empty compiler generated dependencies file for bench_tdp_study.
# This may be replaced when dependencies are built.
