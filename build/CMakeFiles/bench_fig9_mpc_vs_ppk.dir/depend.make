# Empty dependencies file for bench_fig9_mpc_vs_ppk.
# This may be replaced when dependencies are built.
