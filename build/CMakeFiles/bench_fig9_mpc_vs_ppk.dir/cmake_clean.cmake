file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_mpc_vs_ppk.dir/bench/bench_fig9_mpc_vs_ppk.cpp.o"
  "CMakeFiles/bench_fig9_mpc_vs_ppk.dir/bench/bench_fig9_mpc_vs_ppk.cpp.o.d"
  "bench/bench_fig9_mpc_vs_ppk"
  "bench/bench_fig9_mpc_vs_ppk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mpc_vs_ppk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
