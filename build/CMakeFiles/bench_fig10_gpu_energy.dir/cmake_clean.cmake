file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gpu_energy.dir/bench/bench_fig10_gpu_energy.cpp.o"
  "CMakeFiles/bench_fig10_gpu_energy.dir/bench/bench_fig10_gpu_energy.cpp.o.d"
  "bench/bench_fig10_gpu_energy"
  "bench/bench_fig10_gpu_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gpu_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
