file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mpc_vs_turbo.dir/bench/bench_fig8_mpc_vs_turbo.cpp.o"
  "CMakeFiles/bench_fig8_mpc_vs_turbo.dir/bench/bench_fig8_mpc_vs_turbo.cpp.o.d"
  "bench/bench_fig8_mpc_vs_turbo"
  "bench/bench_fig8_mpc_vs_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mpc_vs_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
