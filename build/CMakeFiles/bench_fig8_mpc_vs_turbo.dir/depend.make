# Empty dependencies file for bench_fig8_mpc_vs_turbo.
# This may be replaced when dependencies are built.
