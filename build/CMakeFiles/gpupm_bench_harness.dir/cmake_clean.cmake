file(REMOVE_RECURSE
  "CMakeFiles/gpupm_bench_harness.dir/bench/harness.cpp.o"
  "CMakeFiles/gpupm_bench_harness.dir/bench/harness.cpp.o.d"
  "libgpupm_bench_harness.a"
  "libgpupm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
