# Empty dependencies file for gpupm_bench_harness.
# This may be replaced when dependencies are built.
