file(REMOVE_RECURSE
  "libgpupm_bench_harness.a"
)
