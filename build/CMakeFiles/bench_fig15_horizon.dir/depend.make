# Empty dependencies file for bench_fig15_horizon.
# This may be replaced when dependencies are built.
