file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_horizon.dir/bench/bench_fig15_horizon.cpp.o"
  "CMakeFiles/bench_fig15_horizon.dir/bench/bench_fig15_horizon.cpp.o.d"
  "bench/bench_fig15_horizon"
  "bench/bench_fig15_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
