file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_overheads.dir/bench/bench_fig14_overheads.cpp.o"
  "CMakeFiles/bench_fig14_overheads.dir/bench/bench_fig14_overheads.cpp.o.d"
  "bench/bench_fig14_overheads"
  "bench/bench_fig14_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
