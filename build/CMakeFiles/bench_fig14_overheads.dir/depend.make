# Empty dependencies file for bench_fig14_overheads.
# This may be replaced when dependencies are built.
