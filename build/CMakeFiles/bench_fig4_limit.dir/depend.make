# Empty dependencies file for bench_fig4_limit.
# This may be replaced when dependencies are built.
