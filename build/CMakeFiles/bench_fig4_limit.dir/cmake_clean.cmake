file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_limit.dir/bench/bench_fig4_limit.cpp.o"
  "CMakeFiles/bench_fig4_limit.dir/bench/bench_fig4_limit.cpp.o.d"
  "bench/bench_fig4_limit"
  "bench/bench_fig4_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
