# Empty compiler generated dependencies file for bench_fig11_amortization.
# This may be replaced when dependencies are built.
