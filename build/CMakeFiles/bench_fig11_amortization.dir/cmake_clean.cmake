file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_amortization.dir/bench/bench_fig11_amortization.cpp.o"
  "CMakeFiles/bench_fig11_amortization.dir/bench/bench_fig11_amortization.cpp.o.d"
  "bench/bench_fig11_amortization"
  "bench/bench_fig11_amortization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
