file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_throughput.dir/bench/bench_fig3_throughput.cpp.o"
  "CMakeFiles/bench_fig3_throughput.dir/bench/bench_fig3_throughput.cpp.o.d"
  "bench/bench_fig3_throughput"
  "bench/bench_fig3_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
