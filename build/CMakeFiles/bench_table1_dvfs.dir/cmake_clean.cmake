file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dvfs.dir/bench/bench_table1_dvfs.cpp.o"
  "CMakeFiles/bench_table1_dvfs.dir/bench/bench_table1_dvfs.cpp.o.d"
  "bench/bench_table1_dvfs"
  "bench/bench_table1_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
