file(REMOVE_RECURSE
  "CMakeFiles/gpupm_cli.dir/tools/gpupm_cli.cpp.o"
  "CMakeFiles/gpupm_cli.dir/tools/gpupm_cli.cpp.o.d"
  "gpupm"
  "gpupm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
