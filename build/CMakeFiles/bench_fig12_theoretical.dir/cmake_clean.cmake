file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_theoretical.dir/bench/bench_fig12_theoretical.cpp.o"
  "CMakeFiles/bench_fig12_theoretical.dir/bench/bench_fig12_theoretical.cpp.o.d"
  "bench/bench_fig12_theoretical"
  "bench/bench_fig12_theoretical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_theoretical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
