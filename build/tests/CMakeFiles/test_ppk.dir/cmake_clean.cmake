file(REMOVE_RECURSE
  "CMakeFiles/test_ppk.dir/test_ppk.cpp.o"
  "CMakeFiles/test_ppk.dir/test_ppk.cpp.o.d"
  "test_ppk"
  "test_ppk.pdb"
  "test_ppk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
