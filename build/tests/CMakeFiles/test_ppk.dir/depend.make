# Empty dependencies file for test_ppk.
# This may be replaced when dependencies are built.
