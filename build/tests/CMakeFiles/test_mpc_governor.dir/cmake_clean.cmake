file(REMOVE_RECURSE
  "CMakeFiles/test_mpc_governor.dir/test_mpc_governor.cpp.o"
  "CMakeFiles/test_mpc_governor.dir/test_mpc_governor.cpp.o.d"
  "test_mpc_governor"
  "test_mpc_governor.pdb"
  "test_mpc_governor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
