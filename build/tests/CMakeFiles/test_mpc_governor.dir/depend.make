# Empty dependencies file for test_mpc_governor.
# This may be replaced when dependencies are built.
