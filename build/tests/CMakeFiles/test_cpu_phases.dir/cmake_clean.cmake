file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_phases.dir/test_cpu_phases.cpp.o"
  "CMakeFiles/test_cpu_phases.dir/test_cpu_phases.cpp.o.d"
  "test_cpu_phases"
  "test_cpu_phases.pdb"
  "test_cpu_phases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
