# Empty dependencies file for test_cpu_phases.
# This may be replaced when dependencies are built.
