# Empty dependencies file for test_hill_climb.
# This may be replaced when dependencies are built.
