file(REMOVE_RECURSE
  "CMakeFiles/test_hill_climb.dir/test_hill_climb.cpp.o"
  "CMakeFiles/test_hill_climb.dir/test_hill_climb.cpp.o.d"
  "test_hill_climb"
  "test_hill_climb.pdb"
  "test_hill_climb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hill_climb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
