
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_hill_climb.cpp" "tests/CMakeFiles/test_hill_climb.dir/test_hill_climb.cpp.o" "gcc" "tests/CMakeFiles/test_hill_climb.dir/test_hill_climb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpc/CMakeFiles/gpupm_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/gpupm_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpupm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gpupm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gpupm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/gpupm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/gpupm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
