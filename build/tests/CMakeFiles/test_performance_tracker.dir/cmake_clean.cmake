file(REMOVE_RECURSE
  "CMakeFiles/test_performance_tracker.dir/test_performance_tracker.cpp.o"
  "CMakeFiles/test_performance_tracker.dir/test_performance_tracker.cpp.o.d"
  "test_performance_tracker"
  "test_performance_tracker.pdb"
  "test_performance_tracker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_performance_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
