# Empty dependencies file for test_performance_tracker.
# This may be replaced when dependencies are built.
