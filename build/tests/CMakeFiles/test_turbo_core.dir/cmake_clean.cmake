file(REMOVE_RECURSE
  "CMakeFiles/test_turbo_core.dir/test_turbo_core.cpp.o"
  "CMakeFiles/test_turbo_core.dir/test_turbo_core.cpp.o.d"
  "test_turbo_core"
  "test_turbo_core.pdb"
  "test_turbo_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turbo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
