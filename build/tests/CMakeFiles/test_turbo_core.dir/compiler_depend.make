# Empty compiler generated dependencies file for test_turbo_core.
# This may be replaced when dependencies are built.
