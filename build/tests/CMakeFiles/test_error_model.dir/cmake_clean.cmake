file(REMOVE_RECURSE
  "CMakeFiles/test_error_model.dir/test_error_model.cpp.o"
  "CMakeFiles/test_error_model.dir/test_error_model.cpp.o.d"
  "test_error_model"
  "test_error_model.pdb"
  "test_error_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
