# Empty dependencies file for test_pattern_extractor.
# This may be replaced when dependencies are built.
