file(REMOVE_RECURSE
  "CMakeFiles/test_pattern_extractor.dir/test_pattern_extractor.cpp.o"
  "CMakeFiles/test_pattern_extractor.dir/test_pattern_extractor.cpp.o.d"
  "test_pattern_extractor"
  "test_pattern_extractor.pdb"
  "test_pattern_extractor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pattern_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
