# Empty compiler generated dependencies file for test_governor_paths.
# This may be replaced when dependencies are built.
