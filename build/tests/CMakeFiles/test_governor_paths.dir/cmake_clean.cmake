file(REMOVE_RECURSE
  "CMakeFiles/test_governor_paths.dir/test_governor_paths.cpp.o"
  "CMakeFiles/test_governor_paths.dir/test_governor_paths.cpp.o.d"
  "test_governor_paths"
  "test_governor_paths.pdb"
  "test_governor_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_governor_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
