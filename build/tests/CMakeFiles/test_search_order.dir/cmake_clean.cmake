file(REMOVE_RECURSE
  "CMakeFiles/test_search_order.dir/test_search_order.cpp.o"
  "CMakeFiles/test_search_order.dir/test_search_order.cpp.o.d"
  "test_search_order"
  "test_search_order.pdb"
  "test_search_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
