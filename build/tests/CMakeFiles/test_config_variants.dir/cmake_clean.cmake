file(REMOVE_RECURSE
  "CMakeFiles/test_config_variants.dir/test_config_variants.cpp.o"
  "CMakeFiles/test_config_variants.dir/test_config_variants.cpp.o.d"
  "test_config_variants"
  "test_config_variants.pdb"
  "test_config_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
