file(REMOVE_RECURSE
  "CMakeFiles/test_apu.dir/test_apu.cpp.o"
  "CMakeFiles/test_apu.dir/test_apu.cpp.o.d"
  "test_apu"
  "test_apu.pdb"
  "test_apu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
