/**
 * @file
 * Kernel pattern extractor (paper Sec. IV-A2).
 *
 * Identifies kernels at runtime by the log-binned signature of their
 * eight performance counters, learns the application's kernel execution
 * ordering, and serves the optimizer with the expected future kernels
 * plus their stored counters (updated with feedback after every
 * execution). Within a run it also detects repetitive orderings the way
 * Totoni et al.'s dynamic pattern extractor does, so expectations can
 * form before a full application execution has been seen.
 *
 * Per dissimilar kernel the store keeps the eight counters plus time
 * and power as doubles - the 80 bytes/kernel footprint the paper cites.
 */

#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "hw/config.hpp"
#include "kernel/counters.hpp"
#include "kernel/kernel.hpp"

namespace gpupm::mpc {

/** Stored state for one dissimilar kernel (one signature). */
struct StoredKernel
{
    kernel::Signature signature;
    /** Latest observed counters (refreshed by feedback). */
    kernel::KernelCounters counters;
    /** Latest observed execution time and GPU power. */
    Seconds time = 0.0;
    Watts gpuPower = 0.0;
    InstCount instructions = 0.0;
    /** Ground-truth handle forwarded to oracle-family predictors. */
    const kernel::KernelParams *truth = nullptr;
    /** Last configuration the optimizer chose for this kernel. */
    std::optional<hw::HwConfig> lastChosenConfig;
};

class PatternExtractor
{
  public:
    /** Mark an application (re-)execution boundary. */
    void beginRun();

    /**
     * Record an executed kernel. Registers the signature if new,
     * refreshes the stored counters/time/power otherwise.
     *
     * @return The store id of the kernel.
     */
    std::size_t observe(const kernel::KernelCounters &counters,
                        Seconds time, Watts gpu_power, InstCount insts,
                        const kernel::KernelParams *truth);

    /**
     * Expected store ids for invocations [first, first+count) of the
     * current run. Sources, in priority order: the sequence learned
     * from the previous full run (as long as the current run still
     * matches it), then in-run periodicity. Returns fewer than
     * @p count entries (possibly none) when the future is unknown.
     */
    std::vector<std::size_t> expectedWindow(std::size_t first,
                                            std::size_t count) const;

    /** Whether a full previous-run sequence is available and matching. */
    bool hasLearnedSequence() const;

    /** Length of the learned sequence (N), 0 if none. */
    std::size_t learnedSequenceLength() const;

    /** The learned sequence of store ids from the previous run. */
    const std::vector<std::size_t> &learnedSequence() const
    {
        return _learnedSeq;
    }

    const StoredKernel &record(std::size_t id) const;
    StoredKernel &mutableRecord(std::size_t id);
    std::size_t storeSize() const { return _store.size(); }

    /**
     * Smallest period p (p <= seq.size()/2) such that the sequence is
     * suffix-periodic: seq[j] == seq[j-p] for all j >= p. nullopt if
     * no repetition is visible yet.
     */
    static std::optional<std::size_t>
    detectPeriod(std::span<const std::size_t> seq);

  private:
    std::unordered_map<kernel::Signature, std::size_t> _index;
    std::vector<StoredKernel> _store;
    std::vector<std::size_t> _currentSeq;
    std::vector<std::size_t> _learnedSeq;
    /** Current run has deviated from the learned sequence. */
    bool _sequenceBroken = false;
};

} // namespace gpupm::mpc
