/**
 * @file
 * Multi-application governor pool.
 *
 * A deployed power manager serves whatever application the user runs
 * next; the paper's framework keeps per-application state (patterns,
 * search order, profiling statistics). The pool owns one MpcGovernor
 * per application, creating it on first encounter and routing the
 * decide/observe stream to the governor of the application currently
 * executing - so learned state survives across interleaved runs of
 * different applications, as in the paper's repeated-execution study.
 */

#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "mpc/governor.hpp"

namespace gpupm::mpc {

class MpcGovernorPool : public sim::Governor
{
  public:
    MpcGovernorPool(std::shared_ptr<const ml::PerfPowerPredictor>
                        predictor,
                    const MpcOptions &opts, hw::HardwareModelPtr model);

    std::string name() const override { return "MPC pool"; }

    void beginRun(const std::string &app_name,
                  Throughput target) override;

    sim::Decision decide(std::size_t index) override;

    void observe(const sim::Observation &obs) override;

    /** Number of applications encountered so far. */
    std::size_t applicationCount() const { return _governors.size(); }

    /** Whether the named application has been seen. */
    bool knows(const std::string &app_name) const;

    /**
     * The governor serving @p app_name; fatal if never encountered.
     * Exposed for statistics (runStats, kernelCount).
     */
    const MpcGovernor &governorFor(const std::string &app_name) const;

  private:
    std::shared_ptr<const ml::PerfPowerPredictor> _predictor;
    MpcOptions _opts;
    hw::HardwareModelPtr _model;
    std::unordered_map<std::string, std::unique_ptr<MpcGovernor>>
        _governors;
    MpcGovernor *_active = nullptr;
};

} // namespace gpupm::mpc
