/**
 * @file
 * Performance tracker (paper Sec. IV-A1b, Eqs. 4 and 5).
 *
 * Maintains the cumulative instruction count and execution time of
 * completed kernels (including charged optimization overheads) and
 * derives the execution-time headroom available to the optimizer:
 *
 *   E[T_i] <= (sum_j I_j + E[I_i]) / (I_total / T_total) - sum_j T_j
 *
 * Significant slack lets the optimizer aggressively save energy; little
 * slack forces conservative, higher-performance configurations.
 */

#pragma once

#include "common/units.hpp"

namespace gpupm::mpc {

class PerformanceTracker
{
  public:
    /** Start a run against a throughput target (insts/s). */
    void reset(Throughput target);

    /** Record a completed kernel: instructions and elapsed time. */
    void record(InstCount insts, Seconds time);

    /**
     * Time headroom for a kernel expected to retire @p expected_insts
     * instructions (Eq. 5). May be negative when behind target.
     */
    Seconds headroom(InstCount expected_insts) const;

    /** Accumulated throughput so far; 0 before any kernel. */
    Throughput achievedThroughput() const;

    /** Whether the run so far is at or above the target. */
    bool onTarget() const;

    Throughput target() const { return _target; }
    InstCount instructions() const { return _insts; }
    Seconds time() const { return _time; }

  private:
    Throughput _target = 0.0;
    InstCount _insts = 0.0;
    Seconds _time = 0.0;
};

} // namespace gpupm::mpc
