/**
 * @file
 * Configuration of the MPC power-management governor.
 */

#pragma once

#include "hw/config.hpp"
#include "policy/overhead.hpp"

namespace gpupm::mpc {

/** How the prediction horizon is chosen per kernel. */
enum class HorizonMode
{
    /** Paper Sec. IV-A4: bound total performance loss to alpha. */
    Adaptive,
    /** Always optimize over all remaining known kernels (Sec. VI-E). */
    Full,
    /** Constant horizon length (ablation). */
    Fixed,
};

struct MpcOptions
{
    /** Performance-loss bound for the adaptive horizon (paper: 5%). */
    double alpha = 0.05;

    HorizonMode horizonMode = HorizonMode::Adaptive;

    /** Horizon length when horizonMode == Fixed. */
    std::size_t fixedHorizon = 4;

    /** Charge modeled decision latency (off for limit studies). */
    bool chargeOverhead = true;

    /**
     * Pace the adaptive-horizon budget with the paper's uniform
     * i*T_total/N term instead of the profiled per-kernel schedule.
     * Uniform pacing starves the horizon when an application's longest
     * kernels come first (the pace deficit looks like performance
     * loss); kept as an option for the ablation bench.
     */
    bool uniformPacing = false;

    /**
     * Use measured kernel times as feedback in the performance tracker
     * (paper Eq. 4/5). When disabled (ablation), the tracker trusts its
     * own predictions and cannot recover from mispredictions.
     */
    bool useFeedback = true;

    policy::OverheadModel overhead{};

    /** Search space; the paper's 336-point space by default. */
    hw::ConfigSpaceOptions searchSpace{};
};

} // namespace gpupm::mpc
