/**
 * @file
 * Configuration of the MPC power-management governor.
 */

#pragma once

#include <optional>

#include "common/logging.hpp"
#include "hw/config.hpp"
#include "policy/overhead.hpp"

namespace gpupm::mpc {

/**
 * Per-session quality-of-service objective.
 *
 * The paper evaluates one objective only: track the Turbo Core baseline
 * throughput while bounding the optimization overhead to a uniform
 * alpha (5%). Deadline-style sessions instead accept a bounded slowdown
 * over their baseline — a deadline factor of 1.25 means "each run may
 * take up to 1.25x the baseline run time" — which scales the throughput
 * target the tracker chases and hands the freed slack to the optimizer
 * as headroom (slack-driven energy savings). Runs that still exceed the
 * allowance count as deadline misses.
 */
struct QosSpec
{
    enum class Kind
    {
        /** Track the baseline target; alpha bounds overhead loss. */
        UniformAlpha,
        /** Bounded slowdown over baseline; misses are counted. */
        Deadline,
    };

    Kind kind = Kind::UniformAlpha;

    /** Performance-loss bound for the adaptive horizon (paper: 5%). */
    double alpha = 0.05;

    /**
     * Deadline kind only: allowed run-time factor over the baseline
     * (> 0; values above 1 relax the target, below 1 tighten it).
     */
    double deadlineFactor = 1.0;

    static QosSpec
    uniform(double alpha)
    {
        QosSpec q;
        q.kind = Kind::UniformAlpha;
        q.alpha = alpha;
        return q;
    }

    static QosSpec
    deadline(double factor)
    {
        if (!(factor > 0.0)) {
            GPUPM_FATAL("deadline factor must be > 0, got ", factor);
        }
        QosSpec q;
        q.kind = Kind::Deadline;
        q.deadlineFactor = factor;
        return q;
    }

    /**
     * The throughput target implied by this QoS for a measured baseline
     * throughput. UniformAlpha tracks the baseline exactly (bit-for-bit
     * the pre-QosSpec behaviour); Deadline divides it by the allowed
     * slowdown factor.
     */
    Throughput
    scaleTarget(Throughput baseline) const
    {
        return kind == Kind::Deadline ? baseline / deadlineFactor
                                      : baseline;
    }
};

/** How the prediction horizon is chosen per kernel. */
enum class HorizonMode
{
    /** Paper Sec. IV-A4: bound total performance loss to alpha. */
    Adaptive,
    /** Always optimize over all remaining known kernels (Sec. VI-E). */
    Full,
    /** Constant horizon length (ablation). */
    Fixed,
};

struct MpcOptions
{
    /** Quality-of-service objective (uniform alpha or deadline). */
    QosSpec qos{};

    HorizonMode horizonMode = HorizonMode::Adaptive;

    /** Horizon length when horizonMode == Fixed. */
    std::size_t fixedHorizon = 4;

    /** Charge modeled decision latency (off for limit studies). */
    bool chargeOverhead = true;

    /**
     * Pace the adaptive-horizon budget with the paper's uniform
     * i*T_total/N term instead of the profiled per-kernel schedule.
     * Uniform pacing starves the horizon when an application's longest
     * kernels come first (the pace deficit looks like performance
     * loss); kept as an option for the ablation bench.
     */
    bool uniformPacing = false;

    /**
     * Use measured kernel times as feedback in the performance tracker
     * (paper Eq. 4/5). When disabled (ablation), the tracker trusts its
     * own predictions and cannot recover from mispredictions.
     */
    bool useFeedback = true;

    policy::OverheadModel overhead{};

    /**
     * Search-space override. Unset (the default) means "search the
     * hardware model's own space"; set only for ablations that restrict
     * or widen the space independently of the model.
     */
    std::optional<hw::ConfigSpaceOptions> searchSpace;
};

} // namespace gpupm::mpc
