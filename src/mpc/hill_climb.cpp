#include "mpc/hill_climb.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.hpp"

namespace gpupm::mpc {

namespace {

struct Eval
{
    Seconds time;
    Joules energy;
};

} // namespace

HillClimbOptimizer::HillClimbOptimizer(const hw::ConfigSpace &space,
                                       const ml::EnergyModel &energy)
    : _space(space), _energy(energy)
{
}

HillClimbResult
HillClimbOptimizer::optimize(const ml::PerfPowerPredictor &pred,
                             const ml::PredictionQuery &q,
                             Seconds headroom,
                             const hw::HwConfig &start) const
{
    std::size_t evals = 0;
    auto evaluate = [&](const hw::HwConfig &c) {
        ++evals;
        const auto e = _energy.estimate(pred, q, c);
        return Eval{e.time, e.energy};
    };

    hw::HwConfig cur = start;
    Eval cur_eval = evaluate(cur);
    bool cur_ok = cur_eval.time <= headroom;

    // A move is an improvement if it establishes/keeps feasibility with
    // lower energy, or - while infeasible - recovers meaningful time
    // (the 0.5% floor keeps the racer from burning CPU power on
    // microsecond launch-latency gains).
    auto better = [&](const Eval &cand) {
        const bool cand_ok = cand.time <= headroom;
        if (cur_ok)
            return cand_ok && cand.energy < cur_eval.energy;
        if (cand_ok)
            return true;
        return cand.time < cur_eval.time * 0.995;
    };

    // Energy sensitivity per knob: one single-step probe each, toward
    // the lower-performance level when possible.
    std::array<std::pair<double, hw::Knob>, hw::numKnobs> sens;
    for (std::size_t ki = 0; ki < hw::allKnobs.size(); ++ki) {
        const hw::Knob k = hw::allKnobs[ki];
        const int level = _space.levelOf(cur, k);
        const int probe_level = level > 0 ? level - 1 : level + 1;
        double s = 0.0;
        if (probe_level >= 0 && probe_level < _space.levels(k)) {
            const auto probe =
                evaluate(_space.withLevel(cur, k, probe_level));
            s = std::fabs(probe.energy - cur_eval.energy);
        }
        sens[ki] = {s, k};
    }
    std::sort(sens.begin(), sens.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });

    for (const auto &[unused, knob] : sens) {
        (void)unused;
        // Pick the climbing direction by probing both neighbours, then
        // keep stepping while the move keeps improving.
        for (int dir : {-1, +1}) {
            bool moved_this_dir = false;
            for (;;) {
                const int next = _space.levelOf(cur, knob) + dir;
                if (next < 0 || next >= _space.levels(knob))
                    break;
                const auto cand_cfg = _space.withLevel(cur, knob, next);
                const auto cand = evaluate(cand_cfg);
                if (!better(cand))
                    break;
                cur = cand_cfg;
                cur_eval = cand;
                cur_ok = cur_eval.time <= headroom;
                moved_this_dir = true;
            }
            // If we improved going down, don't also try up: the start
            // point is already better than its upper neighbour.
            if (moved_this_dir)
                break;
        }
    }

    HillClimbResult out;
    out.config = cur;
    out.predictedTime = cur_eval.time;
    out.predictedEnergy = cur_eval.energy;
    out.evaluations = evals;
    out.feasible = cur_ok;
    return out;
}

} // namespace gpupm::mpc
