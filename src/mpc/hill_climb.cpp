#include "mpc/hill_climb.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/logging.hpp"

namespace gpupm::mpc {

namespace {

struct Eval
{
    Seconds time;
    Joules energy;
};

} // namespace

HillClimbOptimizer::HillClimbOptimizer(const hw::ConfigSpace &space,
                                       const ml::EnergyModel &energy)
    : _space(space), _energy(energy)
{
}

HillClimbResult
HillClimbOptimizer::optimize(
    const ml::PerfPowerPredictor &pred, const ml::PredictionQuery &q,
    Seconds headroom, const hw::HwConfig &start,
    std::vector<trace::CandidateEval> *candidates, Watts powerCap) const
{
    std::size_t evals = 0;
    std::size_t unique_evals = 0;

    const bool capped = std::isfinite(powerCap);

    // Predicted average power of a candidate over its kernel execution.
    auto power = [](const Eval &e) {
        return e.time > 0.0 ? e.energy / e.time : 0.0;
    };

    // Minimum-predicted-power configuration seen so far, the
    // deterministic fail-safe when nothing fits under the cap. Ties
    // break toward the lower dense config index so the fail-safe is
    // independent of evaluation order.
    Eval min_eval{0.0, 0.0};
    hw::HwConfig min_cfg{};
    std::size_t min_dense = 0;
    bool min_set = false;
    auto track_min = [&](const hw::HwConfig &c, const Eval &e) {
        if (!capped)
            return;
        const double p = power(e);
        const std::size_t d = hw::denseConfigIndex(c);
        if (!min_set || p < power(min_eval) ||
            (p == power(min_eval) && d < min_dense)) {
            min_cfg = c;
            min_eval = e;
            min_dense = d;
            min_set = true;
        }
    };

    auto trace_eval = [&](const hw::HwConfig &c, const Eval &e,
                          bool memo_hit) {
        if (candidates) {
            candidates->push_back(
                {static_cast<std::uint32_t>(hw::denseConfigIndex(c)),
                 e.time, e.energy, memo_hit});
        }
    };

    // Per-decision eval memo keyed by the universal dense config index:
    // sensitivity probes and climbing steps frequently revisit the same
    // configuration (each knob's first downward step repeats its probe),
    // and revisits must not re-run the predictor. Requests are still
    // counted per call so the charged overhead matches the paper's
    // evaluation accounting.
    std::vector<std::int16_t> slot(hw::denseConfigCount, -1);
    std::vector<Eval> cache;
    cache.reserve(64);

    auto remember = [&](const hw::HwConfig &c,
                        const ml::EnergyEstimate &est) {
        slot[hw::denseConfigIndex(c)] =
            static_cast<std::int16_t>(cache.size());
        cache.push_back(Eval{est.time, est.energy});
    };

    auto evaluate = [&](const hw::HwConfig &c) {
        ++evals;
        const auto d = hw::denseConfigIndex(c);
        if (slot[d] >= 0) {
            const Eval &e = cache[static_cast<std::size_t>(slot[d])];
            trace_eval(c, e, true);
            return e;
        }
        ++unique_evals;
        remember(c, _energy.estimate(pred, q, c));
        track_min(c, cache.back());
        trace_eval(c, cache.back(), false);
        return cache.back();
    };

    hw::HwConfig cur = start;

    // Sensitivity phase, batched: the start configuration plus one
    // single-step probe per knob (toward the lower-performance level
    // when possible) go through the predictor's batched path together,
    // so the forest is walked tree-major over all five queries.
    std::array<hw::HwConfig, 1 + hw::numKnobs> batch_cfg;
    std::array<ml::EnergyEstimate, 1 + hw::numKnobs> batch_est;
    std::array<int, hw::numKnobs> probe_slot; // batch index or -1
    std::size_t batch_n = 0;
    batch_cfg[batch_n++] = cur;
    for (std::size_t ki = 0; ki < hw::allKnobs.size(); ++ki) {
        const hw::Knob k = hw::allKnobs[ki];
        const int level = _space.levelOf(cur, k);
        const int probe_level = level > 0 ? level - 1 : level + 1;
        if (probe_level >= 0 && probe_level < _space.levels(k)) {
            probe_slot[ki] = static_cast<int>(batch_n);
            batch_cfg[batch_n++] = _space.withLevel(cur, k, probe_level);
        } else {
            probe_slot[ki] = -1;
        }
    }
    _energy.estimateBatch(
        pred, q, std::span<const hw::HwConfig>(batch_cfg.data(), batch_n),
        std::span<ml::EnergyEstimate>(batch_est.data(), batch_n));
    evals += batch_n;
    unique_evals += batch_n; // start and probes are pairwise distinct
    for (std::size_t i = 0; i < batch_n; ++i) {
        remember(batch_cfg[i], batch_est[i]);
        track_min(batch_cfg[i], Eval{batch_est[i].time, batch_est[i].energy});
        trace_eval(batch_cfg[i],
                   Eval{batch_est[i].time, batch_est[i].energy}, false);
    }

    Eval cur_eval{batch_est[0].time, batch_est[0].energy};
    bool cur_ok = cur_eval.time <= headroom;

    // Candidates are ranked in tiers: under-cap and on-time (minimize
    // energy), under-cap but late (race), over-cap (descend predicted
    // power until something fits). With an infinite cap the over-cap
    // tier is unreachable and the ordering is exactly the uncapped one.
    auto tier = [&](const Eval &e) {
        if (capped && power(e) > powerCap)
            return 2;
        return e.time <= headroom ? 0 : 1;
    };

    // A move is an improvement if it reaches a better tier, or - within
    // a tier - lowers energy (feasible), recovers meaningful time while
    // late (the 0.5% floor keeps the racer from burning CPU power on
    // microsecond launch-latency gains), or sheds predicted power while
    // over the cap.
    auto better = [&](const Eval &cand) {
        const int cand_tier = tier(cand);
        const int cur_tier = tier(cur_eval);
        if (cand_tier != cur_tier)
            return cand_tier < cur_tier;
        if (cand_tier == 0)
            return cand.energy < cur_eval.energy;
        if (cand_tier == 1)
            return cand.time < cur_eval.time * 0.995;
        return power(cand) < power(cur_eval);
    };

    // Energy sensitivity per knob from the batched probes.
    std::array<std::pair<double, hw::Knob>, hw::numKnobs> sens;
    for (std::size_t ki = 0; ki < hw::allKnobs.size(); ++ki) {
        double s = 0.0;
        if (probe_slot[ki] >= 0) {
            s = std::fabs(
                batch_est[static_cast<std::size_t>(probe_slot[ki])]
                    .energy -
                cur_eval.energy);
        }
        sens[ki] = {s, hw::allKnobs[ki]};
    }
    std::sort(sens.begin(), sens.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });

    for (const auto &[unused, knob] : sens) {
        (void)unused;
        // Pick the climbing direction by probing both neighbours, then
        // keep stepping while the move keeps improving.
        for (int dir : {-1, +1}) {
            bool moved_this_dir = false;
            for (;;) {
                const int next = _space.levelOf(cur, knob) + dir;
                if (next < 0 || next >= _space.levels(knob))
                    break;
                const auto cand_cfg = _space.withLevel(cur, knob, next);
                const auto cand = evaluate(cand_cfg);
                if (!better(cand))
                    break;
                cur = cand_cfg;
                cur_eval = cand;
                cur_ok = cur_eval.time <= headroom;
                moved_this_dir = true;
            }
            // If we improved going down, don't also try up: the start
            // point is already better than its upper neighbour.
            if (moved_this_dir)
                break;
        }
    }

    bool cap_ok = true;
    if (capped && power(cur_eval) > powerCap) {
        // Deterministic fail-safe: nothing the climb settled on fits
        // under the cap, so hand back the minimum-predicted-power
        // configuration the search evaluated. It may still be over the
        // cap (capOk = false then); the caller decides how to react.
        GPUPM_ASSERT(min_set, "capped search evaluated no candidates");
        cur = min_cfg;
        cur_eval = min_eval;
        cur_ok = cur_eval.time <= headroom;
        cap_ok = power(cur_eval) <= powerCap;
    }

    HillClimbResult out;
    out.config = cur;
    out.predictedTime = cur_eval.time;
    out.predictedEnergy = cur_eval.energy;
    out.evaluations = evals;
    out.uniqueEvaluations = unique_evals;
    out.feasible = cur_ok;
    out.capOk = cap_ok;
    return out;
}

} // namespace gpupm::mpc
