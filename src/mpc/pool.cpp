#include "mpc/pool.hpp"

#include "common/logging.hpp"

namespace gpupm::mpc {

MpcGovernorPool::MpcGovernorPool(
    std::shared_ptr<const ml::PerfPowerPredictor> predictor,
    const MpcOptions &opts, hw::HardwareModelPtr model)
    : _predictor(std::move(predictor)), _opts(opts),
      _model(std::move(model))
{
    GPUPM_ASSERT(_predictor != nullptr, "pool needs a predictor");
}

void
MpcGovernorPool::beginRun(const std::string &app_name, Throughput target)
{
    auto it = _governors.find(app_name);
    if (it == _governors.end()) {
        it = _governors
                 .emplace(app_name, std::make_unique<MpcGovernor>(
                                        _predictor, _opts, _model))
                 .first;
    }
    _active = it->second.get();
    _active->beginRun(app_name, target);
}

sim::Decision
MpcGovernorPool::decide(std::size_t index)
{
    GPUPM_ASSERT(_active != nullptr, "decide before beginRun");
    return _active->decide(index);
}

void
MpcGovernorPool::observe(const sim::Observation &obs)
{
    GPUPM_ASSERT(_active != nullptr, "observe before beginRun");
    _active->observe(obs);
}

bool
MpcGovernorPool::knows(const std::string &app_name) const
{
    return _governors.contains(app_name);
}

const MpcGovernor &
MpcGovernorPool::governorFor(const std::string &app_name) const
{
    auto it = _governors.find(app_name);
    if (it == _governors.end())
        GPUPM_FATAL("pool has never seen application '", app_name, "'");
    return *it->second;
}

} // namespace gpupm::mpc
