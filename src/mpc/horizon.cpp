#include "mpc/horizon.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace gpupm::mpc {

void
AdaptiveHorizonGenerator::configure(std::size_t n, double nbar,
                                    Seconds t_ppk, Seconds t_total,
                                    double alpha,
                                    std::vector<Seconds> profiled_times)
{
    GPUPM_ASSERT(n > 0, "horizon generator needs N > 0");
    GPUPM_ASSERT(nbar >= 1.0, "Nbar must be >= 1, got ", nbar);
    GPUPM_ASSERT(t_total > 0.0, "baseline time must be positive");
    _n = n;
    _nbar = nbar;
    _tppk = t_ppk;
    _ttotal = t_total;
    _alpha = alpha;

    _pacePrefix.clear();
    if (!profiled_times.empty()) {
        GPUPM_ASSERT(profiled_times.size() == n,
                     "pacing schedule must have one entry per kernel");
        Seconds sum = 0.0;
        for (Seconds t : profiled_times) {
            GPUPM_ASSERT(t >= 0.0, "negative profiled time");
            sum += t;
        }
        GPUPM_ASSERT(sum > 0.0, "profiled times sum to zero");
        const double scale = t_total / sum;
        Seconds prefix = 0.0;
        _pacePrefix.reserve(n);
        for (Seconds t : profiled_times) {
            prefix += t * scale;
            _pacePrefix.push_back(prefix);
        }
    }
    beginRun();
}

void
AdaptiveHorizonGenerator::beginRun()
{
    _elapsed = 0.0;
    _horizonSum = 0.0;
    _decisions = 0;
}

std::size_t
AdaptiveHorizonGenerator::horizonFor(std::size_t index)
{
    GPUPM_ASSERT(configured(), "horizon generator not configured");
    const double i = static_cast<double>(index + 1); // paper is 1-based
    const double nd = static_cast<double>(_n);
    const double tbar = _ttotal / nd;

    // Baseline pace through kernel i and the expected time of kernel i
    // itself: the paper's uniform i*Tbar, or the profiled schedule.
    double pace, expected_i;
    if (_pacePrefix.empty() || index >= _pacePrefix.size()) {
        pace = i * tbar;
        expected_i = tbar;
    } else {
        pace = _pacePrefix[index];
        expected_i = index == 0
                         ? _pacePrefix[0]
                         : _pacePrefix[index] - _pacePrefix[index - 1];
    }

    double h;
    if (_tppk <= 0.0) {
        // Free optimization (limit studies): nothing bounds the horizon.
        h = nd;
    } else {
        const double budget = (1.0 + _alpha) * pace - expected_i - _elapsed;
        h = (nd / _nbar) * budget / _tppk;
    }

    const double clamped = std::clamp(std::floor(h), 0.0, nd);
    auto out = static_cast<std::size_t>(clamped);
    _horizonSum += clamped;
    ++_decisions;
    return out;
}

void
AdaptiveHorizonGenerator::record(Seconds kernel_time, Seconds mpc_overhead)
{
    GPUPM_ASSERT(kernel_time >= 0.0 && mpc_overhead >= 0.0,
                 "negative time accounting");
    _elapsed += kernel_time + mpc_overhead;
}

double
AdaptiveHorizonGenerator::averageHorizonFraction() const
{
    if (_decisions == 0 || _n == 0)
        return 0.0;
    return _horizonSum /
           (static_cast<double>(_decisions) * static_cast<double>(_n));
}

} // namespace gpupm::mpc
