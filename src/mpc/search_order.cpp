#include "mpc/search_order.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gpupm::mpc {

namespace {

std::vector<bool>
aboveTargetMask(const std::vector<ProfiledKernel> &profile,
                Throughput target)
{
    std::vector<bool> above(profile.size());
    for (std::size_t i = 0; i < profile.size(); ++i)
        above[i] = profile[i].cumulativeThroughput >= target;
    return above;
}

} // namespace

std::vector<std::size_t>
buildSearchOrder(const std::vector<ProfiledKernel> &profile,
                 Throughput target)
{
    GPUPM_ASSERT(!profile.empty(), "empty profile");
    const auto above = aboveTargetMask(profile, target);

    std::vector<std::size_t> above_group, below_group;
    for (std::size_t i = 0; i < profile.size(); ++i)
        (above[i] ? above_group : below_group).push_back(i);

    std::stable_sort(above_group.begin(), above_group.end(),
                     [&](std::size_t a, std::size_t b) {
                         return profile[a].kernelThroughput <
                                profile[b].kernelThroughput;
                     });
    std::stable_sort(below_group.begin(), below_group.end(),
                     [&](std::size_t a, std::size_t b) {
                         return profile[a].kernelThroughput >
                                profile[b].kernelThroughput;
                     });

    above_group.insert(above_group.end(), below_group.begin(),
                       below_group.end());
    return above_group;
}

std::vector<std::size_t>
windowSearchOrder(const std::vector<std::size_t> &global_order,
                  std::size_t first, std::size_t count)
{
    std::vector<std::size_t> out;
    for (auto idx : global_order) {
        if (idx >= first && idx < first + count)
            out.push_back(idx);
    }
    return out;
}

double
averageHorizonLength(const std::vector<ProfiledKernel> &profile,
                     Throughput target)
{
    GPUPM_ASSERT(!profile.empty(), "empty profile");
    const auto above = aboveTargetMask(profile, target);
    const std::size_t n = profile.size();

    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t run = 0;
        for (std::size_t j = i; j < n && above[j] == above[i]; ++j)
            ++run;
        total += static_cast<double>(run);
    }
    return total / static_cast<double>(n);
}

} // namespace gpupm::mpc
