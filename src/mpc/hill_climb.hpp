/**
 * @file
 * Greedy hill-climbing configuration search (paper Sec. IV-A1a).
 *
 * Instead of scanning the full configuration space, the optimizer
 * estimates the energy sensitivity of each knob (CPU, NB, GPU DVFS and
 * CU count), sorts knobs by decreasing sensitivity, and climbs each
 * knob while the predicted energy keeps decreasing and the predicted
 * execution time stays within the available headroom. This reduces the
 * number of energy evaluations from |cpu|x|nb|x|gpu|x|cu| = 336 to the
 * order of |cpu|+|nb|+|gpu|+|cu| = 18, the 19x factor cited in the
 * paper.
 */

#pragma once

#include <limits>
#include <vector>

#include "hw/config.hpp"
#include "ml/energy.hpp"
#include "trace/decision.hpp"

namespace gpupm::mpc {

/** Outcome of one greedy optimization. */
struct HillClimbResult
{
    hw::HwConfig config;
    Seconds predictedTime = 0.0;
    Joules predictedEnergy = 0.0;
    /**
     * Evaluation requests made by the search (what the overhead model
     * charges for). Counted per request, memo hits included, so the
     * charged decision latency is independent of the memoization.
     */
    std::size_t evaluations = 0;
    /**
     * Distinct configurations actually run through the predictor: the
     * requests minus per-decision memo hits. This is the real predictor
     * work a deployment would pay.
     */
    std::size_t uniqueEvaluations = 0;
    /** predictedTime <= headroom; the caller falls back otherwise. */
    bool feasible = false;
    /**
     * Predicted power <= the power cap. False means not even the
     * minimum-power candidate the search evaluated fits under the cap
     * (the result then *is* that minimum-power candidate - the
     * deterministic fail-safe). Always true with an infinite cap.
     */
    bool capOk = true;
};

class HillClimbOptimizer
{
  public:
    HillClimbOptimizer(const hw::ConfigSpace &space,
                       const ml::EnergyModel &energy);

    /**
     * Minimize predicted energy subject to predicted time <= headroom.
     *
     * @param pred Performance/power predictor.
     * @param q Kernel being optimized.
     * @param headroom Time budget for this kernel (may be negative when
     *        the run is behind target; the search then races).
     * @param start Starting configuration.
     * @param candidates When non-null, every scored configuration is
     *        appended in evaluation order (provenance capture). Pure
     *        observation: the search is identical either way.
     * @param powerCap Session power cap in watts: candidates whose
     *        predicted average power exceeds it are infeasible. When
     *        nothing the search evaluates fits, the result is the
     *        minimum-predicted-power candidate (ties broken toward
     *        the lower dense config index) with capOk = false - a
     *        deterministic fail-safe. The default (infinity) is
     *        bit-identical to the uncapped search.
     */
    HillClimbResult optimize(
        const ml::PerfPowerPredictor &pred, const ml::PredictionQuery &q,
        Seconds headroom, const hw::HwConfig &start,
        std::vector<trace::CandidateEval> *candidates = nullptr,
        Watts powerCap = std::numeric_limits<Watts>::infinity()) const;

  private:
    const hw::ConfigSpace &_space;
    const ml::EnergyModel &_energy;
};

} // namespace gpupm::mpc
