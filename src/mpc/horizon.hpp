/**
 * @file
 * Adaptive prediction-horizon generator (paper Sec. IV-A4).
 *
 * Chooses a horizon length H_i for each upcoming kernel so that the
 * total performance penalty - estimated MPC optimization overhead plus
 * the time already spent - stays within a factor alpha of the baseline
 * execution time so far:
 *
 *   H_i * (Nbar/N) * T_PPK + sum_{j<i}(T_j + T_MPC,j) + T_total/N
 *   ------------------------------------------------------------ <= 1+alpha
 *                     i * T_total / N
 *
 * Solving for H_i and flooring gives the horizon, bounded to [0, N].
 * All inputs come from the initial profiling invocation: N, the average
 * per-kernel horizon Nbar implied by the search order, and the total
 * PPK optimization time T_PPK.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace gpupm::mpc {

class AdaptiveHorizonGenerator
{
  public:
    /**
     * Install the profiling-run statistics.
     *
     * @param n Number of kernels N in the application.
     * @param nbar Average per-kernel horizon length (search order).
     * @param t_ppk Total PPK optimization time of the profiling run.
     * @param t_total Baseline (target) execution time of the whole app.
     * @param alpha Performance-loss bound (paper: 0.05).
     * @param profiled_times Per-invocation times from the profiling
     *        run. When non-empty, the pacing term uses these (rescaled
     *        so they sum to t_total) instead of the paper's uniform
     *        i*T_total/N, which systematically starves the horizon for
     *        applications whose longest kernels come first. Pass empty
     *        to get the paper's exact uniform pacing.
     */
    void configure(std::size_t n, double nbar, Seconds t_ppk,
                   Seconds t_total, double alpha,
                   std::vector<Seconds> profiled_times = {});

    /** Reset per-run accumulators (call at each application start). */
    void beginRun();

    /**
     * Horizon for the upcoming kernel with 0-based index @p index.
     * Also logs the choice for the average-horizon statistic.
     */
    std::size_t horizonFor(std::size_t index);

    /** Record actuals after the kernel completes. */
    void record(Seconds kernel_time, Seconds mpc_overhead);

    /** Average chosen horizon as a fraction of N (paper Fig. 15). */
    double averageHorizonFraction() const;

    bool configured() const { return _n > 0; }
    std::size_t n() const { return _n; }

  private:
    std::size_t _n = 0;
    double _nbar = 1.0;
    Seconds _tppk = 0.0;
    Seconds _ttotal = 0.0;
    double _alpha = 0.05;

    /** Prefix sums of the pacing schedule: pace(i) = sum_{j<=i} That_j. */
    std::vector<Seconds> _pacePrefix;

    Seconds _elapsed = 0.0; ///< sum_{j<i}(T_j + T_MPC,j) this run.
    double _horizonSum = 0.0;
    std::size_t _decisions = 0;
};

} // namespace gpupm::mpc
