/**
 * @file
 * MPC search-order heuristic (paper Sec. IV-A1a, Fig. 7).
 *
 * Using per-kernel throughput information from the profiling run, each
 * kernel invocation is assigned to the "above-target" cluster (the
 * accumulated application throughput after it was at or above the
 * overall target) or the "below-target" cluster. The above-target group
 * is ordered by increasing individual kernel throughput, the below-
 * target group by decreasing throughput; their concatenation is the
 * order in which the window's kernels are optimized. Optimizing the
 * hardest-to-satisfy kernels first, with headroom carrying over, is
 * what lets MPC guard high-throughput kernels against over-aggressive
 * energy savings and exploit future high-throughput phases.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace gpupm::mpc {

/** Profile of one kernel invocation from the profiling run. */
struct ProfiledKernel
{
    Throughput kernelThroughput = 0.0; ///< I_i / T_i of the invocation.
    Throughput cumulativeThroughput = 0.0; ///< Running sum(I)/sum(T).
    Seconds time = 0.0; ///< Kernel execution time in the profiling run.
};

/**
 * Build the global search order over invocation indices.
 *
 * @param profile Per-invocation profiling data, in execution order.
 * @param target The overall target throughput.
 * @return Permutation of [0, profile.size()): above-target cluster
 *         sorted by increasing throughput, then below-target cluster
 *         sorted by decreasing throughput.
 */
std::vector<std::size_t>
buildSearchOrder(const std::vector<ProfiledKernel> &profile,
                 Throughput target);

/**
 * Restrict the global search order to a window of invocation indices
 * [first, first+count), preserving the search-order ranking.
 */
std::vector<std::size_t>
windowSearchOrder(const std::vector<std::size_t> &global_order,
                  std::size_t first, std::size_t count);

/**
 * Average per-kernel horizon length N-bar (paper Sec. IV-A4): for each
 * invocation i, the natural window is the run of consecutive
 * invocations starting at i that stay within i's cluster; N-bar is the
 * mean of those run lengths. In the Fig. 7 example (clusters 1-3 and
 * 4-6) the per-kernel horizons are 3,2,1,3,2,1 and N-bar = 2.
 */
double
averageHorizonLength(const std::vector<ProfiledKernel> &profile,
                     Throughput target);

} // namespace gpupm::mpc
