#include "mpc/governor.hpp"

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "common/logging.hpp"
#include "kernel/counters.hpp"
#include "trace/trace.hpp"

namespace gpupm::mpc {

namespace {

/** "No configuration found" sentinel for fallbackDecide's scan. */
constexpr std::size_t cfgsNone = static_cast<std::size_t>(-1);

} // namespace

MpcGovernor::MpcGovernor(
    std::shared_ptr<const ml::PerfPowerPredictor> predictor,
    const MpcOptions &opts, hw::HardwareModelPtr model)
    : _predictor(std::move(predictor)), _opts(opts),
      _model(std::move(model)), _energy(_model->params()),
      _ownedSpace(opts.searchSpace
                      ? std::optional<hw::ConfigSpace>(
                            hw::ConfigSpace(*opts.searchSpace))
                      : std::nullopt),
      _space(_ownedSpace ? *_ownedSpace : _model->space()),
      _climber(_space, _energy),
      _ppk(_predictor,
           policy::PpkOptions{opts.chargeOverhead, opts.overhead,
                              opts.searchSpace},
           _model)
{
    GPUPM_ASSERT(_predictor != nullptr, "MPC needs a predictor");
}

void
MpcGovernor::beginRun(const std::string &app_name, Throughput target)
{
    GPUPM_ASSERT(target > 0.0, "MPC needs a positive performance target");
    GPUPM_ASSERT(_appName.empty() || _appName == app_name,
                 "one MpcGovernor instance serves one application; got '",
                 app_name, "' after '", _appName, "'");
    _appName = app_name;
    _traceRunIndex = _runsBegun++;
    _tracePending = false;

    _pattern.beginRun();

    const bool was_profiling = !_optimizing;
    if (was_profiling && _pattern.hasLearnedSequence())
        finalizeProfile(target);

    _tracker.reset(target);
    if (_horizon.configured())
        _horizon.beginRun();
    _ppk.beginRun(app_name, target);
    _stats = {};
    _pendingCharged = 0.0;
    _pendingModeled = 0.0;
}

void
MpcGovernor::finalizeProfile(Throughput target)
{
    GPUPM_ASSERT(!_profile.empty(), "profiling produced no data");
    _n = _pattern.learnedSequenceLength();
    _searchOrder = buildSearchOrder(_profile, target);
    const double nbar = averageHorizonLength(_profile, target);
    const Seconds t_total_baseline = _profiledInsts / target;

    std::vector<Seconds> pace;
    if (!_opts.uniformPacing) {
        pace.reserve(_profile.size());
        for (const auto &pk : _profile)
            pace.push_back(pk.time);
    }
    _horizon.configure(_n, nbar, _tppk, t_total_baseline,
                       _opts.qos.alpha, std::move(pace));
    _optimizing = true;
}

std::size_t
MpcGovernor::horizonFor(std::size_t index)
{
    switch (_opts.horizonMode) {
      case HorizonMode::Adaptive:
        return _horizon.horizonFor(index);
      case HorizonMode::Full:
        return _n;
      case HorizonMode::Fixed:
        return _opts.fixedHorizon;
    }
    GPUPM_PANIC("bad horizon mode");
}

sim::Decision
MpcGovernor::decide(std::size_t index)
{
    trace::Span span(trace::Category::Mpc, "mpc.decide");
    if (_sink) {
        _traceRec = {};
        _traceRec.app = _appName;
        _traceRec.session = _traceSession;
        _traceRec.run = _traceRunIndex;
        _traceRec.index = index;
        _tracePending = true;
    }

    if (!_optimizing) {
        // Profiling execution: plain PPK while the pattern extractor
        // learns the application (Sec. V-B).
        auto d = _ppk.decide(index);
        _pendingCharged = d.overheadTime;
        _pendingModeled =
            _ppk.lastEvaluationCount() > 0
                ? _opts.overhead.cost(_ppk.lastEvaluationCount())
                : 0.0;
        _stats.overheadTime += d.overheadTime;
        _stats.evaluations += _ppk.lastEvaluationCount();
        _stats.uniqueEvaluations += _ppk.lastEvaluationCount();
        if (_onDecision) {
            _onDecision({index, 0, _ppk.lastEvaluationCount(),
                         _ppk.lastEvaluationCount(), true, d.config,
                         d.overheadTime});
        }
        if (_tracePending) {
            _traceRec.tag = 'P';
            _traceRec.profiling = true;
            _traceRec.evaluations = _ppk.lastEvaluationCount();
            _traceRec.uniqueEvaluations = _ppk.lastEvaluationCount();
            _traceRec.configIndex = hw::denseConfigIndex(d.config);
            _traceRec.overheadTime = d.overheadTime;
        }
        span.arg("evals",
                 static_cast<double>(_ppk.lastEvaluationCount()));
        return d;
    }

    const std::size_t evals_before = _stats.evaluations;
    const std::size_t unique_before = _stats.uniqueEvaluations;
    const std::size_t h = horizonFor(index);
    _stats.horizonSum += static_cast<double>(h);
    ++_stats.decisions;
    _capLimited = false;

    sim::Decision d;
    if (!_pattern.hasLearnedSequence()) {
        d = fallbackDecide();
    } else if (h == 0) {
        // Overhead budget exhausted: no model evaluations. Reuse the
        // configuration chosen the last time this kernel appeared, but
        // only while the run is on target - the tracker check is free,
        // and racing at the boost configuration when behind is what
        // keeps the total loss inside the alpha bound.
        const auto ids = _pattern.expectedWindow(index, 1);
        // Race configuration: boost the GPU side, keep the busy-waiting
        // CPU low (it only contributes launch latency).
        hw::HwConfig cfg = _model->race();
        if (std::isfinite(_powerCap) && !_tracker.onTarget()) {
            // A finite cap suppresses the race: with no evaluation
            // budget there is no way to prove the boost configuration
            // fits, so hold the fail-safe anchor instead of risking a
            // cap violation the arbiter would punish the whole session
            // for.
            cfg = _model->failSafe();
            _capLimited = true;
        }
        if (_tracker.onTarget()) {
            cfg = _model->failSafe();
            if (!ids.empty()) {
                const auto &rec = _pattern.record(ids[0]);
                if (rec.lastChosenConfig)
                    cfg = *rec.lastChosenConfig;
            }
        }
        d.config = cfg;
        d.overheadTime = 0.0;
        _pendingModeled = 0.0;
        if (_tracePending)
            _traceRec.tag = 'B';
    } else {
        d = optimizeWindow(index, h);
    }

    _pendingCharged = d.overheadTime;
    _stats.overheadTime += d.overheadTime;
    if (_onDecision) {
        _onDecision({index, h, _stats.evaluations - evals_before,
                     _stats.uniqueEvaluations - unique_before, false,
                     d.config, d.overheadTime, _capLimited});
    }
    if (_tracePending) {
        _traceRec.horizon = h;
        _traceRec.evaluations = _stats.evaluations - evals_before;
        _traceRec.uniqueEvaluations =
            _stats.uniqueEvaluations - unique_before;
        _traceRec.configIndex = hw::denseConfigIndex(d.config);
        _traceRec.overheadTime = d.overheadTime;
        if (std::isfinite(_powerCap)) {
            _traceRec.powerCap = _powerCap;
            _traceRec.capLimited = _capLimited;
        }
    }
    span.arg("horizon", static_cast<double>(h));
    span.arg("evals",
             static_cast<double>(_stats.evaluations - evals_before));
    return d;
}

sim::Decision
MpcGovernor::fallbackDecide()
{
    // Pattern unavailable (broken sequence): degrade gracefully to a
    // PPK-style exhaustive scan over the last observed kernel.
    const std::size_t store = _pattern.storeSize();
    if (store == 0) {
        _pendingModeled = 0.0;
        if (_tracePending)
            _traceRec.tag = 'F';
        return {_model->failSafe(), 0.0};
    }
    // The most recently observed kernel is the best "previous" guess.
    const auto &rec = _pattern.record(store - 1);

    ml::PredictionQuery q;
    q.counters = rec.counters;
    q.instructions = rec.instructions;
    q.groundTruth = rec.truth;

    const Seconds headroom = _tracker.headroom(rec.instructions);
    std::size_t best_i = cfgsNone, fastest_i = cfgsNone;
    std::size_t min_power_i = cfgsNone;
    double best_energy = std::numeric_limits<double>::infinity();
    double fastest_time = std::numeric_limits<double>::infinity();
    double min_power = std::numeric_limits<double>::infinity();

    // Batched exhaustive scan: one predictor sweep over the space.
    const auto &cfgs = _space.all();
    thread_local std::vector<ml::EnergyEstimate> ests;
    ests.resize(cfgs.size());
    _energy.estimateBatch(*_predictor, q, cfgs, ests);

    // Cap filtering mirrors the hill-climb's tiers: over-cap
    // configurations are excluded from both the energy winner and the
    // racer, and the minimum-predicted-power configuration is the
    // deterministic fail-safe when nothing fits (first index wins ties
    // since the scan order is fixed).
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const auto &est = ests[i];
        const double p = est.time > 0.0 ? est.energy / est.time : 0.0;
        if (p < min_power) {
            min_power = p;
            min_power_i = i;
        }
        if (p > _powerCap)
            continue;
        if (est.time < fastest_time) {
            fastest_time = est.time;
            fastest_i = i;
        }
        if (est.time <= headroom && est.energy < best_energy) {
            best_energy = est.energy;
            best_i = i;
        }
    }
    _stats.evaluations += _space.size();
    _stats.uniqueEvaluations += _space.size();
    _pendingModeled = _opts.overhead.cost(_space.size());

    std::size_t chosen_i = best_i != cfgsNone ? best_i : fastest_i;
    if (chosen_i == cfgsNone) {
        chosen_i = min_power_i;
        _capLimited = true;
    }
    sim::Decision d;
    d.config = cfgs[chosen_i];
    d.overheadTime = _opts.chargeOverhead ? _pendingModeled : 0.0;
    if (_tracePending) {
        _traceRec.tag = 'F';
        _traceRec.headroom = headroom;
        _traceRec.hasHeadroom = true;
        _traceRec.predictedTime = ests[chosen_i].time;
        _traceRec.predictedEnergy = ests[chosen_i].energy;
    }
    return d;
}

sim::Decision
MpcGovernor::optimizeWindow(std::size_t index, std::size_t horizon)
{
    const auto ids = _pattern.expectedWindow(index, horizon);
    if (ids.empty())
        return fallbackDecide();

    const auto order =
        windowSearchOrder(_searchOrder, index, ids.size());
    GPUPM_ASSERT(!order.empty(), "window search order is empty");

    // Planned cumulative state: actuals from the tracker, extended by
    // the expected time/instructions of window kernels as they are
    // optimized, so excess headroom carries across the window (Fig. 7).
    // Kernels not yet optimized are reserved at their stored (feedback-
    // updated) times: Eq. 3's throughput constraint spans the whole
    // window, so the slack one kernel may consume must account for what
    // the rest of the window is expected to need.
    InstCount planned_insts = _tracker.instructions();
    Seconds planned_time = _tracker.time();
    const Throughput target = _tracker.target();

    InstCount reserved_insts = 0.0;
    Seconds reserved_time = 0.0;
    for (const auto id : ids) {
        const auto &rec = _pattern.record(id);
        reserved_insts += rec.instructions;
        reserved_time += rec.time;
    }

    hw::HwConfig chosen = _model->failSafe();
    bool found_current = false;
    std::size_t window_evals = 0;
    std::size_t window_unique = 0;

    for (const auto inv : order) {
        GPUPM_ASSERT(inv >= index && inv < index + ids.size(),
                     "window order out of range");
        auto &rec = _pattern.mutableRecord(ids[inv - index]);

        ml::PredictionQuery q;
        q.counters = rec.counters;
        q.instructions = rec.instructions;
        q.groundTruth = rec.truth;

        // This kernel leaves the reservation and is optimized against
        // the window-wide budget.
        reserved_insts -= rec.instructions;
        reserved_time -= rec.time;

        const Seconds headroom =
            (planned_insts + rec.instructions + reserved_insts) / target -
            planned_time - reserved_time;
        // Candidate capture only for the kernel actually being decided;
        // lookahead kernels are re-optimized when their turn comes.
        std::vector<trace::CandidateEval> *cands =
            (_tracePending && inv == index) ? &_traceRec.candidates
                                           : nullptr;
        const auto res = _climber.optimize(*_predictor, q, headroom,
                                           _model->failSafe(), cands,
                                           _powerCap);
        window_evals += res.evaluations;
        window_unique += res.uniqueEvaluations;

        // When the target cannot be met the climber races from the
        // fail-safe anchor (Sec. IV-A1a) toward the fastest predicted
        // configuration; its result is used either way.
        const hw::HwConfig cfg = res.config;
        const Seconds expected_time = res.predictedTime;

        planned_insts += rec.instructions;
        planned_time += expected_time;
        rec.lastChosenConfig = cfg;

        if (inv == index) {
            chosen = cfg;
            found_current = true;
            _pendingExpectedTime = expected_time;
            if (!res.capOk)
                _capLimited = true;
            if (_tracePending) {
                _traceRec.tag = 'W';
                _traceRec.headroom = headroom;
                _traceRec.hasHeadroom = true;
                _traceRec.predictedTime = res.predictedTime;
                _traceRec.predictedEnergy = res.predictedEnergy;
            }
        }
    }
    GPUPM_ASSERT(found_current, "current kernel missing from window");

    _stats.evaluations += window_evals;
    _stats.uniqueEvaluations += window_unique;
    _pendingModeled = _opts.overhead.cost(window_evals);

    sim::Decision d;
    d.config = chosen;
    d.overheadTime = _opts.chargeOverhead ? _pendingModeled : 0.0;
    return d;
}

void
MpcGovernor::observe(const sim::Observation &obs)
{
    trace::Span span(trace::Category::Mpc, "mpc.observe");
    const auto &m = obs.measurement;
    _pattern.observe(m.counters, m.time, m.gpuPower, m.instructions,
                     obs.kernelTruth);

    // Feedback ablation: without feedback the tracker believes its own
    // predictions and never learns it is behind (or ahead of) target.
    const Seconds tracked_time =
        (!_opts.useFeedback && _optimizing && _pendingExpectedTime >= 0.0)
            ? _pendingExpectedTime
            : m.time;
    // obs.nonKernelTime covers host phases plus the *exposed* decision
    // latency, which is what actually hits the wall clock.
    _tracker.record(m.instructions, tracked_time + obs.nonKernelTime);
    if (_horizon.configured())
        _horizon.record(m.time, _pendingModeled);

    if (!_optimizing) {
        _ppk.observe(obs);
        _tppk += _pendingModeled;
        _profiledInsts += m.instructions;

        ProfiledKernel pk;
        pk.kernelThroughput =
            m.time > 0.0 ? m.instructions / m.time : 0.0;
        pk.cumulativeThroughput = _tracker.achievedThroughput();
        pk.time = m.time;
        _profile.push_back(pk);
    }

    if (_tracePending && _sink) {
        _traceRec.kernelSignature =
            std::hash<kernel::Signature>{}(kernel::signatureOf(m.counters));
        _traceRec.observed = true;
        _traceRec.measuredTime = m.time;
        _traceRec.measuredGpuPower = m.gpuPower;
        _traceRec.counters = m.counters;
        _traceRec.measuredInstructions = m.instructions;
        _traceRec.nonKernelTime = obs.nonKernelTime;
        _traceRec.targetThroughput = _tracker.target();
        if (_traceRec.predictedTime >= 0.0 && m.time > 0.0) {
            _traceRec.timeErrorPct =
                100.0 * (_traceRec.predictedTime - m.time) / m.time;
        }
        _sink->record(std::move(_traceRec));
    }
    _tracePending = false;

    _pendingCharged = 0.0;
    _pendingModeled = 0.0;
    _pendingExpectedTime = -1.0;
}

} // namespace gpupm::mpc
