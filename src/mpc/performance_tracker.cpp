#include "mpc/performance_tracker.hpp"

#include "common/logging.hpp"

namespace gpupm::mpc {

void
PerformanceTracker::reset(Throughput target)
{
    GPUPM_ASSERT(target >= 0.0, "negative target throughput");
    _target = target;
    _insts = 0.0;
    _time = 0.0;
}

void
PerformanceTracker::record(InstCount insts, Seconds time)
{
    GPUPM_ASSERT(insts >= 0.0 && time >= 0.0,
                 "negative kernel accounting: I=", insts, " T=", time);
    _insts += insts;
    _time += time;
}

Seconds
PerformanceTracker::headroom(InstCount expected_insts) const
{
    GPUPM_ASSERT(_target > 0.0, "headroom needs a positive target");
    return (_insts + expected_insts) / _target - _time;
}

Throughput
PerformanceTracker::achievedThroughput() const
{
    return _time > 0.0 ? _insts / _time : 0.0;
}

bool
PerformanceTracker::onTarget() const
{
    if (_time <= 0.0)
        return true;
    return achievedThroughput() >= _target;
}

} // namespace gpupm::mpc
