#include "mpc/pattern_extractor.hpp"

#include "common/logging.hpp"

namespace gpupm::mpc {

void
PatternExtractor::beginRun()
{
    if (!_currentSeq.empty()) {
        // Keep the longest complete picture of the application we have.
        // A later run that deviated is not committed over a good one.
        if (_learnedSeq.empty() || !_sequenceBroken)
            _learnedSeq = _currentSeq;
    }
    _currentSeq.clear();
    _sequenceBroken = false;
}

std::size_t
PatternExtractor::observe(const kernel::KernelCounters &counters,
                          Seconds time, Watts gpu_power, InstCount insts,
                          const kernel::KernelParams *truth)
{
    const auto sig = kernel::signatureOf(counters);
    std::size_t id;
    auto it = _index.find(sig);
    if (it == _index.end()) {
        id = _store.size();
        StoredKernel rec;
        rec.signature = sig;
        _store.push_back(rec);
        _index.emplace(sig, id);
    } else {
        id = it->second;
    }

    // Performance-counter feedback: the stored values always reflect
    // the most recent execution (paper Sec. IV-A2).
    auto &rec = _store[id];
    rec.counters = counters;
    rec.time = time;
    rec.gpuPower = gpu_power;
    rec.instructions = insts;
    rec.truth = truth;

    const std::size_t pos = _currentSeq.size();
    if (!_learnedSeq.empty() &&
        (pos >= _learnedSeq.size() || _learnedSeq[pos] != id)) {
        _sequenceBroken = true;
    }
    _currentSeq.push_back(id);
    return id;
}

bool
PatternExtractor::hasLearnedSequence() const
{
    return !_learnedSeq.empty() && !_sequenceBroken;
}

std::size_t
PatternExtractor::learnedSequenceLength() const
{
    return _learnedSeq.size();
}

std::vector<std::size_t>
PatternExtractor::expectedWindow(std::size_t first,
                                 std::size_t count) const
{
    std::vector<std::size_t> out;
    if (hasLearnedSequence()) {
        for (std::size_t i = first;
             i < first + count && i < _learnedSeq.size(); ++i) {
            out.push_back(_learnedSeq[i]);
        }
        return out;
    }

    // No (valid) previous run: extrapolate in-run periodicity.
    auto period = detectPeriod(_currentSeq);
    if (!period)
        return out;
    for (std::size_t i = first; i < first + count; ++i) {
        // Continue the cycle: index i maps onto the observed sequence
        // by stepping back whole periods.
        std::size_t j = i;
        while (j >= _currentSeq.size())
            j -= *period;
        out.push_back(_currentSeq[j]);
    }
    return out;
}

const StoredKernel &
PatternExtractor::record(std::size_t id) const
{
    GPUPM_ASSERT(id < _store.size(), "bad store id ", id);
    return _store[id];
}

StoredKernel &
PatternExtractor::mutableRecord(std::size_t id)
{
    GPUPM_ASSERT(id < _store.size(), "bad store id ", id);
    return _store[id];
}

std::optional<std::size_t>
PatternExtractor::detectPeriod(std::span<const std::size_t> seq)
{
    const std::size_t m = seq.size();
    for (std::size_t p = 1; p * 2 <= m; ++p) {
        bool ok = true;
        for (std::size_t j = p; j < m && ok; ++j)
            ok = seq[j] == seq[j - p];
        if (ok)
            return p;
    }
    return std::nullopt;
}

} // namespace gpupm::mpc
