/**
 * @file
 * MPC-based power-management governor (paper Sec. IV, Fig. 6).
 *
 * The four components of the paper's framework come together here:
 *
 *  - the kernel pattern extractor predicts which kernels come next and
 *    serves their stored counters;
 *  - the performance tracker turns past actuals into time headroom
 *    (Eqs. 4/5);
 *  - the optimizer walks the horizon window in the search-order
 *    heuristic (Fig. 7) and greedily hill-climbs each kernel's
 *    configuration, carrying excess headroom across the window;
 *  - the adaptive horizon generator bounds the optimization overhead.
 *
 * On the first encounter with an application the governor runs PPK
 * while profiling (Sec. V-B); optimization starts from the second
 * execution, exactly as in the paper's amortization study (Fig. 11).
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hw/model.hpp"
#include "ml/energy.hpp"
#include "mpc/hill_climb.hpp"
#include "mpc/horizon.hpp"
#include "mpc/options.hpp"
#include "mpc/pattern_extractor.hpp"
#include "mpc/performance_tracker.hpp"
#include "mpc/search_order.hpp"
#include "policy/ppk.hpp"
#include "sim/governor.hpp"
#include "trace/decision.hpp"

namespace gpupm::mpc {

/** Per-run MPC statistics (Figs. 14/15). */
struct MpcRunStats
{
    Seconds overheadTime = 0.0; ///< Charged decision latency this run.
    double horizonSum = 0.0;
    std::size_t decisions = 0;
    /** Evaluation requests charged by the overhead model. */
    std::size_t evaluations = 0;
    /** Distinct predictor evaluations after hill-climb memoization. */
    std::size_t uniqueEvaluations = 0;

    /** Average horizon as a fraction of N. */
    double
    averageHorizonFraction(std::size_t n) const
    {
        if (decisions == 0 || n == 0)
            return 0.0;
        return horizonSum /
               (static_cast<double>(decisions) * static_cast<double>(n));
    }
};

/**
 * Per-decision event emitted to the decision callback. Run-cumulative
 * MpcRunStats cannot be reconstructed into per-decision costs by an
 * outside observer (decisions interleave with observes), so serving
 * integrations that want per-decision evaluation counts or latency
 * attribution subscribe here.
 */
struct DecisionEvent
{
    std::size_t index = 0;
    /** Optimization window length (0 while profiling or budget-out). */
    std::size_t horizon = 0;
    /** Evaluations charged by the overhead model for this decision. */
    std::size_t evaluations = 0;
    /** Distinct predictor evaluations after memoization. */
    std::size_t uniqueEvaluations = 0;
    bool profiling = false;
    hw::HwConfig config;
    Seconds overheadTime = 0.0;
    /**
     * The power cap altered this decision: no candidate fit under the
     * cap and the deterministic fail-safe was substituted, or the race
     * configuration was suppressed because a finite cap is active.
     * Always false with no cap set.
     */
    bool capLimited = false;
};

class MpcGovernor : public sim::Governor
{
  public:
    /**
     * @param predictor Performance/power predictor (not owned shared).
     * @param opts Options (QoS, horizon mode, overhead model).
     * @param model Hardware model governed: search space, fail-safe and
     *              race anchors, energy-model parameters.
     */
    MpcGovernor(std::shared_ptr<const ml::PerfPowerPredictor> predictor,
                const MpcOptions &opts, hw::HardwareModelPtr model);

    std::string name() const override { return "MPC"; }

    void beginRun(const std::string &app_name,
                  Throughput target) override;

    sim::Decision decide(std::size_t index) override;

    void observe(const sim::Observation &obs) override;

    /** Whether the governor is still in its PPK profiling run. */
    bool profiling() const { return !_optimizing; }

    /** Statistics of the run in progress (or just completed). */
    const MpcRunStats &runStats() const { return _stats; }

    /** N as learned from the profiling run (0 before). */
    std::size_t kernelCount() const { return _n; }

    const MpcOptions &options() const { return _opts; }

    /** The hardware model this governor drives. */
    const hw::HardwareModelPtr &model() const { return _model; }

    /**
     * Set the per-session power cap in watts; candidates whose
     * predicted average power exceeds it are filtered before
     * hill-climb selection (a deterministic minimum-power fail-safe
     * applies when nothing fits). Values <= 0 disable the cap. May be
     * called between decisions - the fleet arbiter re-splits caps as
     * measured power shifts.
     */
    void
    setPowerCap(Watts cap)
    {
        _powerCap = cap > 0.0 ? cap
                              : std::numeric_limits<Watts>::infinity();
    }

    /** Active power cap (infinity when uncapped). */
    Watts powerCap() const { return _powerCap; }

    /**
     * Subscribe to per-decision events (fired at the end of every
     * decide(), profiling included). Pass an empty function to
     * unsubscribe. The callback runs on the deciding thread.
     */
    void
    setDecisionCallback(std::function<void(const DecisionEvent &)> cb)
    {
        _onDecision = std::move(cb);
    }

    /**
     * Attach a decision-provenance sink (null to detach). Every
     * decide() then assembles a trace::DecisionRecord - inputs, scored
     * candidates, choice - which is completed with the measured outcome
     * in observe() and handed to the sink. Pure observation: decisions
     * are identical with or without a sink. The sink must outlive the
     * governor; @p session labels the records (fleet session id).
     */
    void
    setDecisionSink(trace::DecisionSink *sink, std::uint64_t session = 0)
    {
        _sink = sink;
        _traceSession = session;
    }

  private:
    sim::Decision fallbackDecide();
    sim::Decision optimizeWindow(std::size_t index, std::size_t horizon);
    std::size_t horizonFor(std::size_t index);
    void finalizeProfile(Throughput target);

    std::shared_ptr<const ml::PerfPowerPredictor> _predictor;
    MpcOptions _opts;
    hw::HardwareModelPtr _model;
    ml::EnergyModel _energy;
    /** Present only when opts.searchSpace overrides the model's. */
    std::optional<hw::ConfigSpace> _ownedSpace;
    const hw::ConfigSpace &_space;
    HillClimbOptimizer _climber;

    PatternExtractor _pattern;
    PerformanceTracker _tracker;
    AdaptiveHorizonGenerator _horizon;
    policy::PpkGovernor _ppk;

    // Profiling-run products.
    std::vector<ProfiledKernel> _profile;
    std::vector<std::size_t> _searchOrder;
    Seconds _tppk = 0.0;
    InstCount _profiledInsts = 0.0;
    std::size_t _n = 0;
    bool _optimizing = false;

    /** Per-session power cap (infinity = uncapped). */
    Watts _powerCap = std::numeric_limits<Watts>::infinity();
    /** Set by the decide paths when the cap altered the decision. */
    bool _capLimited = false;

    // Per-decision bookkeeping.
    Seconds _pendingCharged = 0.0;
    Seconds _pendingModeled = 0.0;
    /** Predicted time of the current kernel (feedback ablation). */
    Seconds _pendingExpectedTime = -1.0;
    MpcRunStats _stats;
    std::string _appName;
    std::function<void(const DecisionEvent &)> _onDecision;

    // Decision-provenance capture (null sink = no capture).
    trace::DecisionSink *_sink = nullptr;
    std::uint64_t _traceSession = 0;
    std::size_t _runsBegun = 0;
    std::size_t _traceRunIndex = 0;
    /** Record under construction between decide() and observe();
     *  meaningful only while _tracePending. */
    trace::DecisionRecord _traceRec;
    bool _tracePending = false;
};

} // namespace gpupm::mpc
