/**
 * @file
 * Ground-truth description of a GPGPU kernel.
 *
 * Each kernel is characterized by its instruction mix, memory traffic,
 * cache locality and serialization behaviour; together these place it in
 * one of the four scaling archetypes of paper Fig. 2 (compute-bound,
 * memory-bound, peak, unscalable). Hidden per-kernel efficiency factors
 * (not observable through the performance counters) give trained
 * predictors a realistic generalization error.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace gpupm::kernel {

/** The scaling archetypes of paper Fig. 2. */
enum class Archetype : std::uint8_t
{
    ComputeBound = 0, ///< Scales with CUs/GPU clock; wants low NB.
    MemoryBound,      ///< Scales with NB state; saturates past NB2.
    Peak,             ///< Best at mid config; cache interference beyond.
    Unscalable,       ///< Insensitive to hardware changes.
};

std::string toString(Archetype a);

/**
 * Static parameters of one kernel. All fields are ground truth; the
 * power-management policies only ever observe the derived counters and
 * measurements.
 */
struct KernelParams
{
    std::string name;
    Archetype archetype = Archetype::ComputeBound;

    /** Total work-items (threads) launched. */
    double workItems = 1e6;
    /** Vector ALU instructions per work-item. */
    double valuInstsPerItem = 200.0;
    /** Vector fetch instructions per work-item. */
    double vfetchInstsPerItem = 20.0;
    /** Video-memory bytes requested per work-item (before cache). */
    double bytesPerItem = 64.0;
    /** Data cache hit rate in [0,1] at 2 active CUs. */
    double cacheHitBase = 0.6;
    /**
     * Cache hit-rate loss per additional active CU beyond 2 (shared
     * cache interference; large for Peak kernels).
     */
    double cachePressure = 0.0;
    /** Fraction of GPUTime the LDS stalls on bank conflicts, [0,1]. */
    double ldsBankConflict = 0.0;
    /** Scratch registers used (spills add memory traffic). */
    double scratchRegs = 0.0;
    /**
     * Compute/memory overlap: 0 = perfectly overlapped (time is the max
     * of the two), 1 = fully serialized (time is the sum).
     */
    double computeMemOverlap = 0.2;
    /**
     * Serial (non-CU-scalable) GPU time at the reference 720 MHz clock:
     * divergence, atomics, inter-workgroup serialization.
     */
    Seconds serialSeconds = 0.0;
    /** Sensitivity in [0,1] of the serial time to the GPU clock. */
    double serialGpuFreqSensitivity = 0.3;
    /** Host-side launch/driver time at the reference 3.9 GHz CPU clock. */
    Seconds launchCpuSeconds = 50e-6;

    /**
     * Seed for the hidden efficiency factors and per-configuration
     * idiosyncrasy noise.
     */
    std::uint64_t idiosyncrasySeed = 0;
    /** Lognormal sigma of the per-configuration idiosyncrasy. */
    double idiosyncrasyMag = 0.05;

    /**
     * Dynamic instruction count (thread count x instructions/thread),
     * the I_i of paper Eq. 1.
     */
    InstCount instructions() const
    {
        return workItems * (valuInstsPerItem + vfetchInstsPerItem);
    }

    /**
     * Return a copy scaled to a different input size. Scales work-items
     * and derived traffic; used for input-varying kernel streams
     * (Table IV category 4). @p locality_shift additionally perturbs
     * the cache hit rate, as different inputs change locality.
     */
    KernelParams withInputScale(double scale,
                                double locality_shift = 0.0) const;
};

} // namespace gpupm::kernel
