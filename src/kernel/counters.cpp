#include "kernel/counters.hpp"

#include <cmath>

namespace gpupm::kernel {

std::array<double, numCounters>
KernelCounters::asArray() const
{
    return {globalWorkSize, memUnitStalled, cacheHit,  vfetchInsts,
            scratchRegs,    ldsBankConflict, valuInsts, fetchSize};
}

KernelCounters
KernelCounters::fromArray(const std::array<double, numCounters> &a)
{
    KernelCounters c;
    c.globalWorkSize = a[0];
    c.memUnitStalled = a[1];
    c.cacheHit = a[2];
    c.vfetchInsts = a[3];
    c.scratchRegs = a[4];
    c.ldsBankConflict = a[5];
    c.valuInsts = a[6];
    c.fetchSize = a[7];
    return c;
}

const std::array<std::string, numCounters> &
KernelCounters::names()
{
    static const std::array<std::string, numCounters> n = {
        "GlobalWorkSize", "MemUnitStalled", "CacheHit",
        "VFetchInsts",    "ScratchRegs",    "LDSBankConflict",
        "VALUInsts",      "FetchSize"};
    return n;
}

std::string
Signature::toString() const
{
    std::string s = "(";
    for (int i = 0; i < numCounters; ++i) {
        if (i)
            s += ",";
        s += std::to_string(bins[i]);
    }
    s += ")";
    return s;
}

Signature
signatureOf(const KernelCounters &c)
{
    // Indices into asArray() that are invariant under DVFS/CU changes:
    // GlobalWorkSize, VFetchInsts, ScratchRegs, LDSBankConflict,
    // VALUInsts. MemUnitStalled (1), CacheHit (2) and FetchSize (7)
    // shift with the executing configuration and are excluded so the
    // kernel keeps its identity across power-state changes.
    static constexpr std::array<int, 5> invariant = {0, 3, 4, 5, 6};

    Signature sig;
    sig.bins.fill(0);
    auto values = c.asArray();
    for (int i : invariant) {
        double u = values[static_cast<std::size_t>(i)];
        sig.bins[static_cast<std::size_t>(i)] =
            u <= 0.0 ? -1
                     : static_cast<std::int32_t>(std::floor(
                           std::log2(1.0 + u)));
    }
    return sig;
}

} // namespace gpupm::kernel
