#include "kernel/kernel.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gpupm::kernel {

std::string
toString(Archetype a)
{
    switch (a) {
      case Archetype::ComputeBound:
        return "compute-bound";
      case Archetype::MemoryBound:
        return "memory-bound";
      case Archetype::Peak:
        return "peak";
      case Archetype::Unscalable:
        return "unscalable";
    }
    GPUPM_PANIC("bad archetype");
}

KernelParams
KernelParams::withInputScale(double scale, double locality_shift) const
{
    GPUPM_ASSERT(scale > 0.0, "input scale must be positive, got ", scale);
    KernelParams out = *this;
    out.workItems = workItems * scale;
    out.cacheHitBase =
        std::clamp(cacheHitBase + locality_shift, 0.0, 0.98);
    // Different inputs perturb the hidden factors too: mix the scale
    // into the seed so two input sizes are distinct "kernels" to the
    // ground truth, as observed for hybridsort's mergeSortPass.
    out.idiosyncrasySeed =
        idiosyncrasySeed ^
        (static_cast<std::uint64_t>(scale * 4096.0) * 0x9e3779b97f4a7c15ULL) ^
        (static_cast<std::uint64_t>((locality_shift + 1.0) * 65536.0) *
         0xc2b2ae3d27d4eb4fULL);
    return out;
}

} // namespace gpupm::kernel
