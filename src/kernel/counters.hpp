/**
 * @file
 * GPU performance counters (paper Table III) and the log-binned kernel
 * signature used by the pattern extractor.
 *
 * The paper clusters the full CodeXL counter set down to eight
 * representative counters that reflect input data and kernel
 * characteristics; kernels are then identified at runtime by the tuple
 * (bin_1, ..., bin_8) with bin_i = floor(log(u_i)).
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace gpupm::kernel {

/** Number of representative performance counters (Table III). */
inline constexpr int numCounters = 8;

/**
 * The eight representative GPU performance counters of Table III.
 *
 * Units follow the table: percentages are in [0,100], FetchSize is in
 * kilobytes, VALUInsts/VFetchInsts are per work-item averages.
 */
struct KernelCounters
{
    /** Global work size (total work-items) of the kernel. */
    double globalWorkSize = 0.0;
    /** Percentage of GPUTime the memory unit is stalled. */
    double memUnitStalled = 0.0;
    /** Percentage of fetch/write/atomic instructions hitting the cache. */
    double cacheHit = 0.0;
    /** Average vector fetch instructions per work-item. */
    double vfetchInsts = 0.0;
    /** Number of scratch registers used. */
    double scratchRegs = 0.0;
    /** Percentage of GPUTime LDS is stalled by bank conflicts. */
    double ldsBankConflict = 0.0;
    /** Average vector ALU instructions per work-item. */
    double valuInsts = 0.0;
    /** Total kB fetched from video memory. */
    double fetchSize = 0.0;

    /** Counters as a dense array (feature extraction order). */
    std::array<double, numCounters> asArray() const;

    /** Inverse of asArray(): rebuild counters from the dense order. */
    static KernelCounters fromArray(
        const std::array<double, numCounters> &a);

    /** Counter names, aligned with asArray(). */
    static const std::array<std::string, numCounters> &names();

    bool operator==(const KernelCounters &) const = default;
};

/**
 * Log-binned signature identifying "similar enough" kernels.
 *
 * Tuple of floor(log2(1 + u)) over the counters, with the entries that
 * vary with the executing hardware configuration (MemUnitStalled,
 * CacheHit, FetchSize) pinned to zero: a kernel must keep the same
 * identity when the power manager runs it at a different configuration,
 * otherwise the learned execution pattern would break on every DVFS
 * change. The coarse log binning is what merges "similar" kernels, as
 * in the paper.
 */
struct Signature
{
    std::array<std::int32_t, numCounters> bins{};

    bool operator==(const Signature &) const = default;

    /** Render as "(a,b,c,...)" for diagnostics. */
    std::string toString() const;
};

/** Compute the log-binned signature of a counter vector. */
Signature signatureOf(const KernelCounters &c);

} // namespace gpupm::kernel

namespace std {

template <>
struct hash<gpupm::kernel::Signature>
{
    size_t
    operator()(const gpupm::kernel::Signature &s) const noexcept
    {
        size_t h = 1469598103934665603ULL;
        for (auto b : s.bins) {
            h ^= static_cast<size_t>(static_cast<uint32_t>(b));
            h *= 1099511628211ULL;
        }
        return h;
    }
};

} // namespace std
