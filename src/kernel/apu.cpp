#include "kernel/apu.hpp"

namespace gpupm::kernel {

Apu::Apu(const hw::ApuParams &params)
    : _model(params), _thermal(params), _transition(params)
{
}

hw::HwConfig
Apu::governorHostConfig()
{
    return hw::HwConfig{hw::CpuPState::P5, hw::NbPState::NB0,
                        hw::GpuPState::DPM0, 2};
}

KernelMeasurement
Apu::run(const KernelParams &k, const hw::HwConfig &c)
{
    const auto est = _model.estimate(k, c);
    const auto act = _model.activity(est);
    const auto pb = _model.powerModel().steadyStatePower(c, act);

    KernelMeasurement m;
    m.time = est.time;
    m.cpuPower = pb.cpu();
    m.gpuPower = pb.gpu();
    m.cpuEnergy = pb.cpu() * est.time;
    m.gpuEnergy = pb.gpu() * est.time;
    m.counters = _model.counters(k, c, est);
    m.instructions = k.instructions();
    m.temperature = _thermal.advance(pb.total(), est.time);
    return m;
}

HostWorkMeasurement
Apu::runHost(Seconds duration, const hw::HwConfig &c)
{
    hw::ActivityFactors a;
    a.cpu = _model.params().cpuActiveActivity;
    a.gpuCompute = 0.0; // idle GPU: leakage + clock-gated floor remain
    a.memory = 0.1;     // light host memory traffic
    const auto pb = _model.powerModel().steadyStatePower(c, a);

    HostWorkMeasurement m;
    m.time = duration;
    m.cpuEnergy = pb.cpu() * duration;
    m.gpuEnergy = pb.gpu() * duration;
    _thermal.advance(pb.total(), duration);
    return m;
}

HostWorkMeasurement
Apu::reconfigure(const hw::HwConfig &from, const hw::HwConfig &to)
{
    const Seconds duration = _transition.latency(from, to);
    if (duration <= 0.0)
        return {};

    // During the switch the pipeline stalls: busy-wait CPU, idle GPU,
    // quiescent memory, at the target operating point.
    hw::ActivityFactors a;
    a.cpu = _model.params().cpuBusyWaitActivity;
    a.gpuCompute = 0.0;
    a.memory = 0.0;
    const auto pb = _model.powerModel().steadyStatePower(to, a);

    HostWorkMeasurement m;
    m.time = duration;
    m.cpuEnergy = pb.cpu() * duration;
    m.gpuEnergy = pb.gpu() * duration;
    _thermal.advance(pb.total(), duration);
    return m;
}

} // namespace gpupm::kernel
