/**
 * @file
 * Ground-truth execution-time, counter and power-activity model.
 *
 * A roofline-style model: compute time scales with active CUs and GPU
 * clock; memory time with effective bandwidth (DRAM clock capped by the
 * NB clock path, so NB0-NB2 share bandwidth and memory-bound kernels
 * saturate past NB2, as in paper Fig. 2b); a serial component captures
 * unscalable kernels; shared-cache interference makes Peak kernels
 * regress beyond their sweet spot. Hidden per-kernel efficiencies and
 * deterministic per-(kernel, configuration) noise stand in for the
 * idiosyncrasies real hardware shows, giving trained predictors a
 * realistic error profile (paper Sec. VI-D: 25%/12% MAPE).
 */

#pragma once

#include "hw/config.hpp"
#include "hw/params.hpp"
#include "hw/power_model.hpp"
#include "kernel/counters.hpp"
#include "kernel/kernel.hpp"

namespace gpupm::kernel {

/** Decomposed ground-truth execution estimate for one kernel run. */
struct ExecutionEstimate
{
    Seconds time = 0.0;        ///< Total wall time of the invocation.
    Seconds computeTime = 0.0; ///< VALU-limited component.
    Seconds memTime = 0.0;     ///< Memory-limited component.
    Seconds serialTime = 0.0;  ///< Non-CU-scalable GPU component.
    Seconds launchTime = 0.0;  ///< Host-side launch/driver time.
    double cacheHitRate = 0.0; ///< Effective hit rate at this CU count.
    double memBytes = 0.0;     ///< Video memory traffic (bytes).
    double memStallFraction = 0.0;  ///< For the MemUnitStalled counter.
    double computeActivity = 0.0;   ///< GPU dynamic-power activity.
    double memBandwidthUtil = 0.0;  ///< NB/DRAM power activity.
};

/**
 * Pure-function ground truth: time, counters and steady-state power for
 * any (kernel, configuration) pair. Policies never call this directly -
 * they see measurements and predictor outputs - except the Theoretically
 * Optimal oracle, which is defined to have perfect knowledge.
 */
class GroundTruthModel
{
  public:
    explicit GroundTruthModel(const hw::ApuParams &params);
    explicit GroundTruthModel(hw::ApuParams &&) = delete;

    /** Ground-truth execution time breakdown. */
    ExecutionEstimate estimate(const KernelParams &k,
                               const hw::HwConfig &c) const;

    /** Counters CodeXL would report for this run. */
    KernelCounters counters(const KernelParams &k, const hw::HwConfig &c,
                            const ExecutionEstimate &e) const;

    /** Activity factors feeding the power model (CPU busy-waiting). */
    hw::ActivityFactors activity(const ExecutionEstimate &e) const;

    /**
     * Steady-state power breakdown while the kernel runs at @p c.
     */
    hw::PowerBreakdown power(const KernelParams &k,
                             const hw::HwConfig &c) const;

    /** Chip-wide energy of one invocation: total power x time. */
    Joules energy(const KernelParams &k, const hw::HwConfig &c) const;

    /** GPU-plane (GPU+NB+DRAM interface) energy of one invocation. */
    Joules gpuEnergy(const KernelParams &k, const hw::HwConfig &c) const;

    /** Effective cache hit rate after CU interference. */
    static double effectiveCacheHit(const KernelParams &k, int cus);

    /** Effective memory bandwidth (bytes/s) for an NB state. */
    double effectiveBandwidth(hw::NbPState nb) const;

    const hw::ApuParams &params() const { return _p; }
    const hw::PowerModel &powerModel() const { return _power; }

  private:
    /** Hidden efficiency factors derived from the kernel's seed. */
    struct HiddenFactors
    {
        double computeEff;
        double memEff;
        double serialEff;
    };

    static HiddenFactors hiddenFactors(const KernelParams &k);

    /** Deterministic lognormal noise for (kernel, configuration). */
    static double configNoise(const KernelParams &k, const hw::HwConfig &c);

    hw::ApuParams _p;
    hw::PowerModel _power;
};

} // namespace gpupm::kernel
