#include "kernel/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace gpupm::kernel {

namespace {

/** VALU lanes x issue rate per CU: ops per CU per cycle. */
constexpr double valu_ops_per_cu_cycle = 16.0;

/** Extra compute-time multiplier per unit of LDS bank-conflict rate. */
constexpr double lds_penalty = 1.5;

/** Bytes of spill traffic per scratch register per work-item. */
constexpr double scratch_spill_bytes = 4.0;

/** Memory latency sensitivity to the NB clock (small; see Fig. 2b). */
constexpr double nb_latency_factor = 0.12;

/** Reference clocks for normalized components. */
constexpr double ref_gpu_mhz = 720.0;
constexpr double ref_cpu_mhz = 3900.0;

/** 64-bit mix (splitmix64 finalizer) for deterministic noise streams. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

GroundTruthModel::GroundTruthModel(const hw::ApuParams &params)
    : _p(params), _power(params)
{
}

double
GroundTruthModel::effectiveCacheHit(const KernelParams &k, int cus)
{
    GPUPM_ASSERT(cus >= 1, "bad CU count ", cus);
    double hit = k.cacheHitBase - k.cachePressure * std::max(0, cus - 2);
    return std::clamp(hit, 0.0, 0.98);
}

double
GroundTruthModel::effectiveBandwidth(hw::NbPState nb) const
{
    const auto &point = _p.dvfs.nbPoint(nb);
    const double dram_bw = mhzToHz(point.memFreq) * _p.memBusBytes *
                           _p.memTransfersPerClock;
    const double nb_bw = mhzToHz(point.nbFreq) * _p.nbPathBytes;
    return std::min(dram_bw, nb_bw);
}

GroundTruthModel::HiddenFactors
GroundTruthModel::hiddenFactors(const KernelParams &k)
{
    Pcg32 rng(mix64(k.idiosyncrasySeed), 0x7f4a7c15ULL);
    HiddenFactors f;
    f.computeEff = rng.uniform(0.82, 1.18);
    f.memEff = rng.uniform(0.82, 1.18);
    f.serialEff = rng.uniform(0.9, 1.1);
    return f;
}

double
GroundTruthModel::configNoise(const KernelParams &k, const hw::HwConfig &c)
{
    if (k.idiosyncrasyMag <= 0.0)
        return 1.0;
    // Keyed on the GPU-side knobs only: the CPU P-state must not
    // perturb GPU kernel time beyond the explicit launch-latency term.
    std::uint64_t key = mix64(k.idiosyncrasySeed ^
                              (static_cast<std::uint64_t>(c.cus) << 24) ^
                              (static_cast<std::uint64_t>(c.gpu) << 16) ^
                              (static_cast<std::uint64_t>(c.nb) << 8));
    Pcg32 rng(key, 0x27d4eb4fULL);
    return std::exp(k.idiosyncrasyMag * rng.gaussian());
}

ExecutionEstimate
GroundTruthModel::estimate(const KernelParams &k,
                           const hw::HwConfig &c) const
{
    const auto hidden = hiddenFactors(k);
    const double gpu_hz = mhzToHz(_p.dvfs.gpuPoint(c.gpu).freq);
    const double cpu_mhz = _p.dvfs.cpuPoint(c.cpu).freq;
    const double nb_mhz = _p.dvfs.nbPoint(c.nb).nbFreq;

    ExecutionEstimate e;

    // Compute-limited component.
    const double valu_rate =
        c.cus * valu_ops_per_cu_cycle * gpu_hz * hidden.computeEff;
    e.computeTime = k.workItems * k.valuInstsPerItem / valu_rate;
    e.computeTime *= 1.0 + lds_penalty * k.ldsBankConflict;

    // Memory-limited component: traffic after cache, over effective
    // bandwidth, with a small NB-clock latency term.
    e.cacheHitRate = effectiveCacheHit(k, c.cus);
    e.memBytes = k.workItems * (k.bytesPerItem * (1.0 - e.cacheHitRate) +
                                k.scratchRegs * scratch_spill_bytes);
    const double bw = effectiveBandwidth(c.nb) * hidden.memEff;
    const double latency_mult =
        1.0 + nb_latency_factor * (1800.0 / nb_mhz - 1.0);
    e.memTime = e.memBytes / bw * latency_mult;

    // Compute/memory overlap.
    const double longer = std::max(e.computeTime, e.memTime);
    const double shorter = std::min(e.computeTime, e.memTime);
    const double busy = longer + k.computeMemOverlap * shorter;

    // Serial (unscalable) GPU time, mildly clock sensitive.
    e.serialTime = k.serialSeconds * hidden.serialEff *
                   std::pow(ref_gpu_mhz * 1e6 / gpu_hz,
                            k.serialGpuFreqSensitivity);

    // Host-side launch time scales with CPU clock.
    e.launchTime = k.launchCpuSeconds * (ref_cpu_mhz / cpu_mhz);

    const double gpu_time = (busy + e.serialTime) * configNoise(k, c);
    e.time = gpu_time + e.launchTime;

    // Derived fractions for counters and power activity.
    e.memStallFraction =
        gpu_time > 0.0 ? std::clamp(e.memTime / gpu_time, 0.0, 1.0) : 0.0;
    e.computeActivity =
        gpu_time > 0.0 ? std::clamp(e.computeTime / gpu_time, 0.05, 1.0)
                       : 0.05;
    const double bw_time = e.memBytes / effectiveBandwidth(c.nb);
    e.memBandwidthUtil =
        gpu_time > 0.0 ? std::clamp(bw_time / gpu_time, 0.0, 1.0) : 0.0;

    return e;
}

KernelCounters
GroundTruthModel::counters(const KernelParams &k, const hw::HwConfig &c,
                           const ExecutionEstimate &e) const
{
    (void)c;
    KernelCounters out;
    out.globalWorkSize = k.workItems;
    out.memUnitStalled = 100.0 * e.memStallFraction;
    out.cacheHit = 100.0 * e.cacheHitRate;
    out.vfetchInsts = k.vfetchInstsPerItem;
    out.scratchRegs = k.scratchRegs;
    out.ldsBankConflict = 100.0 * k.ldsBankConflict;
    out.valuInsts = k.valuInstsPerItem;
    out.fetchSize = e.memBytes / 1024.0;
    return out;
}

hw::ActivityFactors
GroundTruthModel::activity(const ExecutionEstimate &e) const
{
    hw::ActivityFactors a;
    a.gpuCompute = e.computeActivity;
    a.memory = e.memBandwidthUtil;
    a.cpu = _p.cpuBusyWaitActivity;
    return a;
}

hw::PowerBreakdown
GroundTruthModel::power(const KernelParams &k, const hw::HwConfig &c) const
{
    const auto e = estimate(k, c);
    return _power.steadyStatePower(c, activity(e));
}

Joules
GroundTruthModel::energy(const KernelParams &k, const hw::HwConfig &c) const
{
    const auto e = estimate(k, c);
    const auto pb = _power.steadyStatePower(c, activity(e));
    return pb.total() * e.time;
}

Joules
GroundTruthModel::gpuEnergy(const KernelParams &k,
                            const hw::HwConfig &c) const
{
    const auto e = estimate(k, c);
    const auto pb = _power.steadyStatePower(c, activity(e));
    return pb.gpu() * e.time;
}

} // namespace gpupm::kernel
