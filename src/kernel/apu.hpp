/**
 * @file
 * APU execution facade: runs kernels and host-side work at a hardware
 * configuration, producing the measurements a real platform's power
 * controller and CodeXL would report (Sec. V of the paper).
 */

#pragma once

#include "hw/thermal.hpp"
#include "hw/transition.hpp"
#include "kernel/perf_model.hpp"

namespace gpupm::kernel {

/** What the platform reports after one kernel invocation. */
struct KernelMeasurement
{
    Seconds time = 0.0;    ///< Wall time of the invocation.
    Watts cpuPower = 0.0;  ///< Average CPU-plane power.
    Watts gpuPower = 0.0;  ///< Average GPU-plane power (GPU+NB+DRAM).
    Joules cpuEnergy = 0.0;
    Joules gpuEnergy = 0.0;
    KernelCounters counters;  ///< CodeXL counters for this run.
    InstCount instructions = 0.0;
    Celsius temperature = 0.0; ///< Die temperature at completion.

    Joules totalEnergy() const { return cpuEnergy + gpuEnergy; }
};

/** Cost of running governor software on the host between kernels. */
struct HostWorkMeasurement
{
    Seconds time = 0.0;
    Joules cpuEnergy = 0.0; ///< Active CPU energy during the decision.
    Joules gpuEnergy = 0.0; ///< Idle GPU-plane (static) energy.

    Joules totalEnergy() const { return cpuEnergy + gpuEnergy; }
};

/**
 * The modeled APU. Owns a thermal state that integrates across the run,
 * so back-to-back hot kernels see higher leakage (telemetry only; the
 * energy accounting itself uses the self-consistent steady state so that
 * ground truth remains a pure function the oracle can query).
 */
class Apu
{
  public:
    explicit Apu(const hw::ApuParams &params);
    explicit Apu(hw::ApuParams &&) = delete;

    /** Execute one kernel at a configuration. Advances thermal state. */
    KernelMeasurement run(const KernelParams &k, const hw::HwConfig &c);

    /**
     * Account for governor software running on the host for @p duration
     * at configuration @p c (the paper runs MPC at [P5, NB0, DPM0,
     * 2 CUs]). The GPU is idle but not power-gated, so its static energy
     * is charged, as in Sec. VI-A.
     */
    HostWorkMeasurement runHost(Seconds duration, const hw::HwConfig &c);

    /**
     * Reconfigure the APU from @p from to @p to: voltage ramps, PLL
     * relocks and CU gating cost time, during which the chip idles at
     * (approximately) the target operating point.
     */
    HostWorkMeasurement reconfigure(const hw::HwConfig &from,
                                    const hw::HwConfig &to);

    /** Thermal state (telemetry). */
    const hw::ThermalModel &thermal() const { return _thermal; }

    /** Reset thermal state to ambient. */
    void reset() { _thermal.reset(); }

    const GroundTruthModel &model() const { return _model; }

    /** Configuration the host-side governor runs at (Sec. V). */
    static hw::HwConfig governorHostConfig();

  private:
    GroundTruthModel _model;
    hw::ThermalModel _thermal;
    hw::TransitionModel _transition;
};

} // namespace gpupm::kernel
