#include "sim/telemetry.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gpupm::sim {

namespace {

/** One piecewise-constant interval of the reconstructed timeline. */
struct Interval
{
    Seconds duration;
    Watts cpuPower;
    Watts gpuPower;
    std::size_t invocation;
    PhaseKind phase;
};

std::vector<Interval>
timelineOf(const RunResult &run)
{
    std::vector<Interval> out;
    for (const auto &rec : run.records) {
        if (rec.cpuPhaseTime > 0.0) {
            out.push_back({rec.cpuPhaseTime,
                           rec.cpuPhaseCpuEnergy / rec.cpuPhaseTime,
                           rec.cpuPhaseGpuEnergy / rec.cpuPhaseTime,
                           rec.index, PhaseKind::CpuPhase});
        }
        if (rec.overheadTime > 0.0) {
            // Energy fields cover hidden + exposed latency; prorate to
            // the exposed interval (power is identical either way).
            const Seconds full =
                rec.overheadTime + rec.hiddenOverheadTime;
            out.push_back({rec.overheadTime,
                           rec.overheadCpuEnergy / full,
                           rec.overheadGpuEnergy / full, rec.index,
                           PhaseKind::Governor});
        }
        if (rec.kernelTime > 0.0) {
            out.push_back({rec.kernelTime,
                           rec.kernelCpuEnergy / rec.kernelTime,
                           rec.kernelGpuEnergy / rec.kernelTime,
                           rec.index, PhaseKind::Kernel});
        }
    }
    return out;
}

} // namespace

TelemetryTrace
TelemetryTrace::fromRun(const RunResult &run, const hw::ApuParams &params,
                        Seconds interval)
{
    GPUPM_ASSERT(interval > 0.0, "sampling interval must be positive");

    TelemetryTrace trace;
    trace._interval = interval;

    hw::ThermalModel thermal(params);
    Seconds now = 0.0;
    for (const auto &iv : timelineOf(run)) {
        // Walk the interval in sampler ticks; the final partial tick
        // is emitted with its true (shorter) duration so that energy
        // integrates exactly.
        Seconds remaining = iv.duration;
        while (remaining > 0.0) {
            const Seconds dt = std::min(remaining, interval);
            const Celsius temp =
                thermal.advance(iv.cpuPower + iv.gpuPower, dt);
            now += dt;
            remaining -= dt;

            TelemetrySample s;
            s.timestamp = now;
            s.cpuPower = iv.cpuPower;
            s.gpuPower = iv.gpuPower;
            s.temperature = temp;
            s.invocationIndex = iv.invocation;
            s.phase = iv.phase;
            trace._samples.push_back(s);

            trace._cpuEnergy += iv.cpuPower * dt;
            trace._gpuEnergy += iv.gpuPower * dt;
        }
    }
    return trace;
}

Watts
TelemetryTrace::peakPower() const
{
    Watts peak = 0.0;
    for (const auto &s : _samples)
        peak = std::max(peak, s.totalPower());
    return peak;
}

Watts
TelemetryTrace::averagePower() const
{
    if (_samples.empty())
        return 0.0;
    const Seconds end = _samples.back().timestamp;
    return end > 0.0 ? totalEnergy() / end : 0.0;
}

Celsius
TelemetryTrace::peakTemperature() const
{
    Celsius peak = 0.0;
    for (const auto &s : _samples)
        peak = std::max(peak, s.temperature);
    return peak;
}

bool
TelemetryTrace::exceedsTdp(Watts tdp) const
{
    for (const auto &s : _samples) {
        if (s.totalPower() > tdp)
            return true;
    }
    return false;
}

void
TelemetryTrace::writeCsv(std::ostream &os) const
{
    os << "timestamp_ms,cpu_w,gpu_w,total_w,temp_c,invocation,phase\n";
    for (const auto &s : _samples) {
        os << s.timestamp * 1e3 << ',' << s.cpuPower << ','
           << s.gpuPower << ',' << s.totalPower() << ','
           << s.temperature << ',' << s.invocationIndex << ','
           << static_cast<char>(s.phase) << '\n';
    }
}

} // namespace gpupm::sim
