/**
 * @file
 * Power-management governor interface.
 *
 * A governor is consulted between kernel invocations: it picks the
 * hardware configuration for the upcoming kernel (possibly spending
 * modeled decision time on the host CPU) and afterwards observes what
 * actually happened, closing the feedback loop (paper Fig. 6).
 *
 * Governors must not inspect the application trace; everything they
 * learn arrives through observations. Oracle schemes (Theoretically
 * Optimal, the Sec. II-E limit study) are constructed with the trace
 * explicitly and are documented as impractical references.
 */

#pragma once

#include <string>

#include "hw/config.hpp"
#include "kernel/apu.hpp"

namespace gpupm::sim {

/** A governor's decision for one upcoming kernel invocation. */
struct Decision
{
    hw::HwConfig config;
    /**
     * Modeled host-side decision latency charged to the run (the paper
     * assumes the worst case: kernels are back-to-back, so optimization
     * time is exposed; Sec. V).
     */
    Seconds overheadTime = 0.0;
};

/** What the governor learns after an invocation completes. */
struct Observation
{
    std::size_t index = 0; ///< Invocation index within the run.
    char tag = 'A';        ///< Static kernel tag (diagnostics only).
    kernel::KernelMeasurement measurement;
    /**
     * Non-kernel wall time attributable to this invocation: the host
     * CPU phase plus the governor's exposed decision latency. Policies
     * fold it into their cumulative-throughput accounting (Eq. 4) so
     * their view matches the platform's.
     */
    Seconds nonKernelTime = 0.0;
    /**
     * Ground-truth identity of the executed kernel. Provided so that
     * oracle-family predictors can be driven through the same governor
     * code; counter-driven governors must not dereference it except to
     * forward it in PredictionQuery::groundTruth.
     */
    const kernel::KernelParams *kernelTruth = nullptr;
};

/** Abstract DVFS/CU governor. */
class Governor
{
  public:
    virtual ~Governor();

    /** Display name ("Turbo Core", "PPK", "MPC", ...). */
    virtual std::string name() const = 0;

    /**
     * Called when an application run starts (also on re-execution).
     *
     * @param app_name Application identifier (for per-app state).
     * @param target_throughput The performance target I_total/T_total
     *        measured on the baseline scheme; 0 if not applicable.
     */
    virtual void beginRun(const std::string &app_name,
                          Throughput target_throughput);

    /** Configuration for invocation @p index. */
    virtual Decision decide(std::size_t index) = 0;

    /** Feedback after invocation @p obs.index completed. */
    virtual void observe(const Observation &obs);
};

} // namespace gpupm::sim
