/**
 * @file
 * Comparison metrics used throughout the paper's evaluation: energy
 * savings and speedup of a scheme relative to a reference run.
 */

#pragma once

#include "sim/simulator.hpp"

namespace gpupm::sim {

/** Chip-wide energy savings of @p x vs @p ref, in percent. */
double energySavingsPct(const RunResult &ref, const RunResult &x);

/** GPU-plane energy savings of @p x vs @p ref, in percent (Fig. 10). */
double gpuEnergySavingsPct(const RunResult &ref, const RunResult &x);

/** Speedup of @p x vs @p ref on total time including overheads. */
double speedup(const RunResult &ref, const RunResult &x);

/** Decision-overhead energy as a percentage of @p ref energy. */
double overheadEnergyPct(const RunResult &ref, const RunResult &x);

/** Decision-overhead time as a percentage of @p ref total time. */
double overheadTimePct(const RunResult &ref, const RunResult &x);

} // namespace gpupm::sim
