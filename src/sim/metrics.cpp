#include "sim/metrics.hpp"

#include "common/logging.hpp"

namespace gpupm::sim {

namespace {

void
checkComparable(const RunResult &ref, const RunResult &x)
{
    GPUPM_ASSERT(ref.totalEnergy() > 0.0 && ref.totalTime() > 0.0,
                 "reference run is empty");
    GPUPM_ASSERT(ref.appName == x.appName,
                 "comparing different applications: ", ref.appName,
                 " vs ", x.appName);
}

} // namespace

double
energySavingsPct(const RunResult &ref, const RunResult &x)
{
    checkComparable(ref, x);
    return 100.0 * (1.0 - x.totalEnergy() / ref.totalEnergy());
}

double
gpuEnergySavingsPct(const RunResult &ref, const RunResult &x)
{
    checkComparable(ref, x);
    return 100.0 * (1.0 - x.gpuEnergy / ref.gpuEnergy);
}

double
speedup(const RunResult &ref, const RunResult &x)
{
    checkComparable(ref, x);
    GPUPM_ASSERT(x.totalTime() > 0.0, "zero run time");
    return ref.totalTime() / x.totalTime();
}

double
overheadEnergyPct(const RunResult &ref, const RunResult &x)
{
    checkComparable(ref, x);
    return 100.0 * x.overheadEnergy / ref.totalEnergy();
}

double
overheadTimePct(const RunResult &ref, const RunResult &x)
{
    checkComparable(ref, x);
    return 100.0 * x.overheadTime / ref.totalTime();
}

} // namespace gpupm::sim
