/**
 * @file
 * Closed-loop simulation of an application under a governor.
 *
 * For each kernel invocation: consult the governor (charging its
 * modeled decision latency and host energy at the governor's host
 * configuration), execute the kernel on the modeled APU at the chosen
 * configuration, and feed the measurement back to the governor. This
 * mirrors the paper's trace-driven evaluation over data captured from
 * the real A10-7850K (Sec. V).
 */

#pragma once

#include <vector>

#include "hw/model.hpp"
#include "kernel/apu.hpp"
#include "sim/governor.hpp"
#include "workload/trace.hpp"

namespace gpupm::sim {

/** Everything recorded about one kernel invocation. */
struct KernelRecord
{
    std::size_t index = 0;
    char tag = 'A';
    std::string kernelName;
    hw::HwConfig config;
    Seconds kernelTime = 0.0;
    Joules kernelCpuEnergy = 0.0;
    Joules kernelGpuEnergy = 0.0;
    /** Decision latency exposed on the critical path (not hidden). */
    Seconds overheadTime = 0.0;
    /** Decision latency absorbed into the preceding CPU phase. */
    Seconds hiddenOverheadTime = 0.0;
    Joules overheadCpuEnergy = 0.0;
    Joules overheadGpuEnergy = 0.0;
    /** Host CPU phase preceding the launch (Fig. 1). */
    Seconds cpuPhaseTime = 0.0;
    Joules cpuPhaseCpuEnergy = 0.0;
    Joules cpuPhaseGpuEnergy = 0.0;
    /** DVFS/CU reconfiguration cost (zero when the config is held). */
    Seconds transitionTime = 0.0;
    Joules transitionCpuEnergy = 0.0;
    Joules transitionGpuEnergy = 0.0;
    InstCount instructions = 0.0;

    /** Kernel-only throughput (insts/s), ignoring decision overhead. */
    Throughput
    kernelThroughput() const
    {
        return kernelTime > 0.0 ? instructions / kernelTime : 0.0;
    }
};

/** Aggregate result of one application run under one governor. */
struct RunResult
{
    std::string appName;
    std::string governorName;
    std::vector<KernelRecord> records;

    Seconds kernelTime = 0.0;
    Seconds overheadTime = 0.0; ///< Exposed (critical-path) overhead.
    Seconds cpuPhaseTime = 0.0; ///< Host phases between kernels.
    Seconds transitionTime = 0.0; ///< DVFS/CU reconfiguration stalls.
    Joules cpuEnergy = 0.0;  ///< CPU plane, all components.
    Joules gpuEnergy = 0.0;  ///< GPU plane, all components.
    Joules overheadEnergy = 0.0; ///< Overhead-only portion (both planes).
    InstCount instructions = 0.0;

    /** Wall time: kernels, phases, reconfigurations, exposed overhead. */
    Seconds
    totalTime() const
    {
        return kernelTime + overheadTime + cpuPhaseTime + transitionTime;
    }

    /** Chip-wide energy including optimization overheads. */
    Joules totalEnergy() const { return cpuEnergy + gpuEnergy; }

    /** Application kernel throughput I_total / T_total. */
    Throughput
    throughput() const
    {
        return totalTime() > 0.0 ? instructions / totalTime() : 0.0;
    }
};

/**
 * Trace-driven closed-loop simulator.
 */
class Simulator
{
  public:
    /** Simulate the given hardware model (parameters + anchors). */
    explicit Simulator(hw::HardwareModelPtr model);

    /**
     * Run @p app under @p governor.
     *
     * @param app Application trace.
     * @param governor Policy under test (stateful across calls, so
     *        repeated runs model repeated application executions).
     * @param target_throughput Baseline performance target forwarded to
     *        the governor; 0 when the governor defines the baseline.
     */
    RunResult run(const workload::Application &app, Governor &governor,
                  Throughput target_throughput = 0.0);

  private:
    hw::HardwareModelPtr _model;
};

} // namespace gpupm::sim
