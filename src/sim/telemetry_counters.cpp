#include "sim/telemetry_counters.hpp"

#include <bit>

namespace gpupm::sim {

namespace {

/** Bucket index for a sample: floor(log2(max(sample, 1))). */
std::size_t
bucketOf(std::uint64_t sample)
{
    if (sample < 2)
        return 0;
    const auto b = static_cast<std::size_t>(
        std::bit_width(sample) - 1);
    return b < TelemetryHistogram::numBuckets
               ? b
               : TelemetryHistogram::numBuckets - 1;
}

} // namespace

void
TelemetryHistogram::record(std::uint64_t sample)
{
    _buckets[bucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(sample, std::memory_order_relaxed);
}

double
TelemetryHistogram::mean() const
{
    const auto n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / n;
}

std::array<std::uint64_t, TelemetryHistogram::numBuckets>
TelemetryHistogram::buckets() const
{
    std::array<std::uint64_t, numBuckets> out{};
    for (std::size_t i = 0; i < numBuckets; ++i)
        out[i] = _buckets[i].load(std::memory_order_relaxed);
    return out;
}

double
TelemetryHistogram::percentile(double p) const
{
    const auto b = buckets();
    std::uint64_t total = 0;
    for (const auto c : b)
        total += c;
    if (total == 0)
        return 0.0;

    // Rank of the requested percentile (1-based, nearest-rank).
    const double clamped = p < 0.0 ? 0.0 : (p > 100.0 ? 100.0 : p);
    std::uint64_t rank =
        static_cast<std::uint64_t>(clamped / 100.0 * total + 0.5);
    if (rank == 0)
        rank = 1;
    if (rank > total)
        rank = total;

    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        if (b[i] == 0)
            continue;
        if (seen + b[i] >= rank) {
            // Linear interpolation inside [lo, hi): exact when the
            // bucket holds one distinct value (lo == hi - 1 for the
            // first two buckets).
            const double lo = i == 0 ? 0.0 : static_cast<double>(
                                                 1ULL << i);
            const double hi = static_cast<double>(2ULL << i);
            const double frac =
                static_cast<double>(rank - seen) / b[i];
            return lo + (hi - lo) * frac;
        }
        seen += b[i];
    }
    return 0.0;
}

void
TelemetryHistogram::reset()
{
    for (auto &b : _buckets)
        b.store(0, std::memory_order_relaxed);
    _count.store(0, std::memory_order_relaxed);
    _sum.store(0, std::memory_order_relaxed);
}

TelemetryCounter &
TelemetryRegistry::counter(const std::string &name)
{
    std::lock_guard lock(_mutex);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<TelemetryCounter>();
    return *slot;
}

TelemetryHistogram &
TelemetryRegistry::histogram(const std::string &name)
{
    std::lock_guard lock(_mutex);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<TelemetryHistogram>();
    return *slot;
}

TelemetrySnapshot
TelemetryRegistry::snapshot() const
{
    std::lock_guard lock(_mutex);
    TelemetrySnapshot snap;
    for (const auto &[name, c] : _counters)
        snap.counters[name] = c->value();
    for (const auto &[name, h] : _histograms) {
        TelemetrySnapshot::HistogramSummary s;
        s.count = h->count();
        s.sum = h->sum();
        s.mean = h->mean();
        s.p50 = h->percentile(50.0);
        s.p99 = h->percentile(99.0);
        snap.histograms[name] = s;
    }
    return snap;
}

void
TelemetryRegistry::reset()
{
    std::lock_guard lock(_mutex);
    for (auto &[name, c] : _counters)
        c->reset();
    for (auto &[name, h] : _histograms)
        h->reset();
}

} // namespace gpupm::sim
