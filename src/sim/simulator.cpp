#include "sim/simulator.hpp"

#include <algorithm>
#include <optional>

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace gpupm::sim {

Simulator::Simulator(hw::HardwareModelPtr model)
    : _model(std::move(model))
{
    GPUPM_ASSERT(_model != nullptr, "simulator needs a hardware model");
}

RunResult
Simulator::run(const workload::Application &app, Governor &governor,
               Throughput target_throughput)
{
    GPUPM_ASSERT(!app.trace.empty(), "application '", app.name,
                 "' has an empty trace");

    trace::Span run_span(trace::Category::Sim, "sim.run", "invocations",
                         static_cast<double>(app.trace.size()));

    kernel::Apu apu(_model->params());
    governor.beginRun(app.name, target_throughput);

    // Platform DVFS state across the run; the first decision sets it
    // without charge (the launch configuration is applied while the
    // application is still loading).
    std::optional<hw::HwConfig> platform_config;

    RunResult result;
    result.appName = app.name;
    result.governorName = governor.name();
    result.records.reserve(app.trace.size());

    for (std::size_t i = 0; i < app.trace.size(); ++i) {
        const auto &inv = app.trace[i];

        trace::Span inv_span(trace::Category::Sim, "sim.invocation",
                             "index", static_cast<double>(i));

        const Decision decision = governor.decide(i);
        GPUPM_ASSERT(decision.overheadTime >= 0.0,
                     "negative decision overhead");

        KernelRecord rec;
        rec.index = i;
        rec.tag = inv.tag;
        rec.kernelName = inv.params.name;
        rec.config = decision.config;

        // A host CPU phase before the launch (Fig. 1). While it runs,
        // an idle core can execute the governor, hiding its latency
        // (Sec. VI-E); only the excess is exposed on the critical path.
        rec.cpuPhaseTime = inv.cpuPhaseSeconds;
        rec.hiddenOverheadTime =
            std::min(decision.overheadTime, rec.cpuPhaseTime);
        rec.overheadTime =
            decision.overheadTime - rec.hiddenOverheadTime;

        if (rec.cpuPhaseTime > 0.0) {
            // The application phase keeps the CPU busy at the boost
            // state (Turbo Core raises the CPU when it is loaded).
            const auto phase =
                apu.runHost(rec.cpuPhaseTime, _model->maxPerformance());
            rec.cpuPhaseCpuEnergy = phase.cpuEnergy;
            rec.cpuPhaseGpuEnergy = phase.gpuEnergy;
        }
        if (decision.overheadTime > 0.0) {
            // The optimizer's energy is charged in full even when its
            // latency hides inside the phase - the work still happens.
            const auto host = apu.runHost(decision.overheadTime,
                                          kernel::Apu::governorHostConfig());
            rec.overheadCpuEnergy = host.cpuEnergy;
            rec.overheadGpuEnergy = host.gpuEnergy;
        }

        if (platform_config && *platform_config != decision.config) {
            const auto sw =
                apu.reconfigure(*platform_config, decision.config);
            rec.transitionTime = sw.time;
            rec.transitionCpuEnergy = sw.cpuEnergy;
            rec.transitionGpuEnergy = sw.gpuEnergy;
        }
        platform_config = decision.config;

        const auto m = apu.run(inv.params, decision.config);
        rec.kernelTime = m.time;
        rec.kernelCpuEnergy = m.cpuEnergy;
        rec.kernelGpuEnergy = m.gpuEnergy;
        rec.instructions = m.instructions;

        Observation obs;
        obs.index = i;
        obs.tag = inv.tag;
        obs.measurement = m;
        obs.kernelTruth = &inv.params;
        obs.nonKernelTime =
            rec.overheadTime + rec.cpuPhaseTime + rec.transitionTime;
        governor.observe(obs);

        result.kernelTime += rec.kernelTime;
        result.overheadTime += rec.overheadTime;
        result.cpuPhaseTime += rec.cpuPhaseTime;
        result.transitionTime += rec.transitionTime;
        result.cpuEnergy += rec.kernelCpuEnergy + rec.overheadCpuEnergy +
                            rec.cpuPhaseCpuEnergy +
                            rec.transitionCpuEnergy;
        result.gpuEnergy += rec.kernelGpuEnergy + rec.overheadGpuEnergy +
                            rec.cpuPhaseGpuEnergy +
                            rec.transitionGpuEnergy;
        result.overheadEnergy +=
            rec.overheadCpuEnergy + rec.overheadGpuEnergy;
        result.instructions += rec.instructions;
        result.records.push_back(std::move(rec));
    }

    return result;
}

} // namespace gpupm::sim
