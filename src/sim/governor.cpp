#include "sim/governor.hpp"

namespace gpupm::sim {

Governor::~Governor() = default;

void
Governor::beginRun(const std::string &, Throughput)
{
}

void
Governor::observe(const Observation &)
{
}

} // namespace gpupm::sim
