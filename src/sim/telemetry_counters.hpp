/**
 * @file
 * Operational telemetry counters and histograms.
 *
 * TelemetryTrace reconstructs the paper's 1 ms power-sample stream for
 * a finished run; this module is the complementary *live* side: named
 * monotonic counters and fixed-bucket histograms that concurrent
 * subsystems (the fleet decision server, the inference broker, the
 * thread pool) bump while they run. Counters are lock-free atomics;
 * histograms use per-bucket atomics, so recording from many threads is
 * wait-free and TSan-clean.
 *
 * Snapshot/reset semantics: snapshot() reads every cell with relaxed
 * atomic loads - each individual value is a real value that was current
 * at some point during the call, but the snapshot is not a cross-
 * counter atomic cut (concurrent increments may land between reads).
 * reset() zeroes every cell the same way. Both are safe to call while
 * writers are active; tests pin these semantics.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gpupm::sim {

/** A named monotonic counter; increments are relaxed atomics. */
class TelemetryCounter
{
  public:
    void add(std::uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * Fixed-bucket histogram over non-negative integer samples (batch
 * sizes, nanosecond latencies). Buckets are powers of two scaled by a
 * per-histogram unit: bucket k counts samples in [2^k, 2^(k+1)) units,
 * bucket 0 counts [0, 2). 48 buckets cover any nanosecond latency a
 * run can produce. Percentiles interpolate linearly inside the bucket,
 * which is exact for the small integer samples (batch sizes) that land
 * one-per-bucket in the low buckets and a <=2x-resolution estimate for
 * wide latency tails - adequate for p50/p99 reporting.
 */
class TelemetryHistogram
{
  public:
    static constexpr std::size_t numBuckets = 48;

    void record(std::uint64_t sample);

    std::uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }

    std::uint64_t sum() const
    {
        return _sum.load(std::memory_order_relaxed);
    }

    double mean() const;

    /** Percentile estimate; @p p in [0, 100]. 0 when empty. */
    double percentile(double p) const;

    void reset();

    /** Raw bucket counts (diagnostics and snapshot rendering). */
    std::array<std::uint64_t, numBuckets> buckets() const;

  private:
    std::array<std::atomic<std::uint64_t>, numBuckets> _buckets{};
    std::atomic<std::uint64_t> _count{0};
    std::atomic<std::uint64_t> _sum{0};
};

/** One registry cell as seen by snapshot(). */
struct TelemetrySnapshot
{
    std::map<std::string, std::uint64_t> counters;

    struct HistogramSummary
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        double mean = 0.0;
        double p50 = 0.0;
        double p99 = 0.0;
    };
    std::map<std::string, HistogramSummary> histograms;
};

/**
 * Named registry of counters and histograms.
 *
 * counter()/histogram() create on first use and return a reference
 * with a stable address for the registry's lifetime, so hot paths
 * resolve the name once and then increment lock-free. Creation takes a
 * mutex; recording never does.
 */
class TelemetryRegistry
{
  public:
    TelemetryCounter &counter(const std::string &name);
    TelemetryHistogram &histogram(const std::string &name);

    /** Relaxed-consistent view of every cell; see file comment. */
    TelemetrySnapshot snapshot() const;

    /** Zero every registered cell (cells stay registered). */
    void reset();

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<TelemetryCounter>> _counters;
    std::map<std::string, std::unique_ptr<TelemetryHistogram>>
        _histograms;
};

} // namespace gpupm::sim
