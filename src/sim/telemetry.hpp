/**
 * @file
 * Power-controller telemetry (paper Sec. V).
 *
 * The paper samples CPU and GPU power from the APU's power-management
 * controller at 1 ms intervals. This module reconstructs that sample
 * stream from a simulated run: each invocation contributes its host
 * CPU phase, its exposed optimization interval and its kernel interval
 * at the measured average powers, and the package temperature is
 * integrated across the timeline with the RC thermal model.
 */

#pragma once

#include <ostream>
#include <vector>

#include "hw/thermal.hpp"
#include "sim/simulator.hpp"

namespace gpupm::sim {

/** Execution interval kinds, as a telemetry annotation. */
enum class PhaseKind : char
{
    CpuPhase = 'P', ///< Host work between kernels (Fig. 1).
    Governor = 'O', ///< Exposed optimizer latency.
    Kernel = 'K',   ///< GPU kernel execution.
};

/** One power-controller sample. */
struct TelemetrySample
{
    Seconds timestamp = 0.0; ///< Sample time since run start.
    Watts cpuPower = 0.0;
    Watts gpuPower = 0.0; ///< GPU plane incl. NB and DRAM interface.
    Celsius temperature = 0.0;
    std::size_t invocationIndex = 0;
    PhaseKind phase = PhaseKind::Kernel;

    Watts totalPower() const { return cpuPower + gpuPower; }
};

/**
 * A sampled run. Samples are taken at the *end* of each interval tick,
 * with partial final ticks weighted by their true duration so that
 * energy integrates exactly.
 */
class TelemetryTrace
{
  public:
    /**
     * Reconstruct the sample stream of @p run.
     *
     * @param run A completed simulation run.
     * @param params APU parameters (thermal constants).
     * @param interval Sampling interval; the paper uses 1 ms.
     */
    static TelemetryTrace fromRun(const RunResult &run,
                                  const hw::ApuParams &params =
                                      hw::ApuParams::defaults(),
                                  Seconds interval = 1e-3);

    const std::vector<TelemetrySample> &samples() const
    {
        return _samples;
    }
    Seconds interval() const { return _interval; }

    /** Trapezoid-free exact integration (piecewise-constant power). */
    Joules cpuEnergy() const { return _cpuEnergy; }
    Joules gpuEnergy() const { return _gpuEnergy; }
    Joules totalEnergy() const { return _cpuEnergy + _gpuEnergy; }

    Watts peakPower() const;
    Watts averagePower() const;
    Celsius peakTemperature() const;

    /** Whether any sample exceeds the package TDP. */
    bool exceedsTdp(Watts tdp) const;

    /** Emit "timestamp_ms,cpu_w,gpu_w,total_w,temp_c,invocation,phase". */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<TelemetrySample> _samples;
    Seconds _interval = 1e-3;
    Joules _cpuEnergy = 0.0;
    Joules _gpuEnergy = 0.0;
};

} // namespace gpupm::sim
