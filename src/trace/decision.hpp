/**
 * @file
 * Decision-provenance records: the "why" behind every MPC decision.
 *
 * Span tracing (trace.hpp) answers *where time went*; this module
 * answers *why the governor chose what it chose*. For each decision the
 * governor emits one DecisionRecord carrying the inputs it saw (kernel
 * signature, time headroom from Eqs. 4/5, horizon length), the search
 * it ran (every candidate configuration the hill-climb evaluated, with
 * predicted time/energy and whether the evaluation was served from the
 * per-decision memo), the choice it made, and - once the kernel has
 * executed - the measured outcome and the prediction error. This is the
 * per-decision predicted-vs-measured introspection that control-
 * theoretic governors lean on for diagnosis.
 *
 * Determinism contract: sinks are observers. Nothing recorded here may
 * feed back into decision logic, so golden decision traces are
 * byte-identical whether a sink is attached or not (pinned by
 * test_trace).
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "kernel/counters.hpp"

namespace gpupm::trace {

/** One configuration the optimizer scored while deciding. */
struct CandidateEval
{
    /** hw::denseConfigIndex of the candidate. */
    std::uint32_t configIndex = 0;
    Seconds predictedTime = 0.0;
    Joules predictedEnergy = 0.0;
    /** Served from the per-decision memo (no predictor walk). */
    bool memoHit = false;

    bool
    operator==(const CandidateEval &o) const
    {
        return configIndex == o.configIndex &&
               predictedTime == o.predictedTime &&
               predictedEnergy == o.predictedEnergy &&
               memoHit == o.memoHit;
    }
};

/** Full provenance of one governor decision. */
struct DecisionRecord
{
    std::string app;
    /** Fleet session (0 outside the serve subsystem). */
    std::uint64_t session = 0;
    /** Run number: 0 = profiling execution, 1.. = optimized. */
    std::size_t run = 0;
    /** Invocation index within the run. */
    std::size_t index = 0;
    /** Decision path: 'P' PPK profiling, 'W' window hill-climb,
     *  'F' fallback exhaustive scan, 'B' budget-out config reuse. */
    char tag = '?';
    /** Decided on the PPK profiling path (no MPC optimization). */
    bool profiling = false;
    /** FNV hash of the observed kernel::Signature (the log-binned
     *  counter identity the pattern extractor keys on); 0 until the
     *  decision is observed. */
    std::uint64_t kernelSignature = 0;

    // What the optimizer saw.
    /** Optimization window length (0 on profiling/budget-out paths). */
    std::size_t horizon = 0;
    /** Eq. 4/5 time budget for the decided kernel; meaningful only
     *  when hasHeadroom. */
    Seconds headroom = 0.0;
    bool hasHeadroom = false;

    // What it did.
    /** hw::denseConfigIndex of the chosen configuration. */
    std::size_t configIndex = 0;
    /** Predicted time of the choice; < 0 when no model ran. */
    Seconds predictedTime = -1.0;
    /** Predicted chip energy of the choice; < 0 when no model ran. */
    Joules predictedEnergy = -1.0;
    std::size_t evaluations = 0;
    std::size_t uniqueEvaluations = 0;
    Seconds overheadTime = 0.0;
    /** Session power cap active for this decision; < 0 = uncapped
     *  (the JSONL exporter omits the field then). */
    Watts powerCap = -1.0;
    /** The cap altered the decision: nothing fit under it and the
     *  minimum-power fail-safe was substituted, or the race
     *  configuration was suppressed. */
    bool capLimited = false;
    /** Candidates scored by the hill-climb for the decided kernel
     *  (empty on exhaustive-scan and budget-out paths). */
    std::vector<CandidateEval> candidates;

    // What happened.
    bool observed = false;
    Seconds measuredTime = 0.0;
    Watts measuredGpuPower = 0.0;
    /** 100 * (predicted - measured) / measured; 0 when unavailable. */
    double timeErrorPct = 0.0;

    // Replay / online-learning inputs (observe()-time captures). The
    // observed counters plus the chosen configIndex and the measured
    // outcome above form one complete (features, targets) training row;
    // together with nonKernelTime and the run's throughput target they
    // are also exactly the observation stream needed to re-drive an
    // MpcGovernor offline (tests/replay_fixture.hpp).
    /** Raw Table III counters observed for the decided kernel. */
    kernel::KernelCounters counters{};
    /** Measured dynamic instruction count of the invocation. */
    InstCount measuredInstructions = 0.0;
    /** Host phase + exposed decision latency charged to the run. */
    Seconds nonKernelTime = 0.0;
    /** The run's Eq. 4 performance target (baseline throughput). */
    Throughput targetThroughput = 0.0;
};

/**
 * Receiver of completed decision records. Implementations must be
 * thread-safe: fleet sessions decide concurrently on pool workers.
 */
class DecisionSink
{
  public:
    virtual ~DecisionSink() = default;
    virtual void record(DecisionRecord &&rec) = 0;
};

/** Mutex-guarded in-memory sink (the exporters' staging buffer). */
class DecisionLog : public DecisionSink
{
  public:
    void record(DecisionRecord &&rec) override;

    std::size_t size() const;

    /** Move the accumulated records out (insertion order). */
    std::vector<DecisionRecord> take();

  private:
    mutable std::mutex _mutex;
    std::vector<DecisionRecord> _records;
};

/**
 * Canonical provenance order: (app, session, run, index). Concurrent
 * execution interleaves sink insertion arbitrarily; exporting callers
 * sort so the dump is deterministic for a deterministic workload.
 */
void sortDecisions(std::vector<DecisionRecord> &records);

} // namespace gpupm::trace
