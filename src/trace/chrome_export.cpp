#include "trace/chrome_export.hpp"

#include <cinttypes>
#include <cstdio>

#include "trace/json.hpp"

namespace gpupm::trace {

namespace {

/** Shortest round-trip decimal for a double (matches the repo's
 *  golden-trace serializers). */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os, std::span<const SpanEvent> events)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const SpanEvent &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << json::escape(e.name ? e.name : "?")
           << "\",\"cat\":\"" << categoryName(e.cat)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid;
        // Trace-event timestamps are microseconds; keep sub-µs
        // resolution as a fractional part.
        os << ",\"ts\":" << fmtDouble(static_cast<double>(e.startNs) / 1e3)
           << ",\"dur\":" << fmtDouble(static_cast<double>(e.durNs) / 1e3);
        if (e.arg0Name) {
            os << ",\"args\":{\"" << json::escape(e.arg0Name)
               << "\":" << fmtDouble(e.arg0);
            if (e.arg1Name)
                os << ",\"" << json::escape(e.arg1Name)
                   << "\":" << fmtDouble(e.arg1);
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

} // namespace gpupm::trace
