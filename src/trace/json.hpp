/**
 * @file
 * Minimal JSON value model and recursive-descent parser.
 *
 * The trace subsystem both writes JSON (Chrome trace events, decision
 * JSONL) and reads it back (round-tripping provenance dumps, schema
 * checks in tests and CI). This parser covers exactly RFC 8259 JSON -
 * objects, arrays, strings with escapes, numbers, booleans, null - with
 * no extensions; it exists so the repo needs no external JSON
 * dependency. Not a performance path: exporters format directly,
 * parsing happens offline.
 */

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpupm::trace::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/** One JSON value (tree-owning). */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;
    Value(bool b) : _kind(Kind::Bool), _bool(b) {}
    Value(double d) : _kind(Kind::Number), _number(d) {}
    Value(std::string s) : _kind(Kind::String), _string(std::move(s)) {}
    Value(Array a)
        : _kind(Kind::Array),
          _array(std::make_shared<Array>(std::move(a)))
    {
    }
    Value(Object o)
        : _kind(Kind::Object),
          _object(std::make_shared<Object>(std::move(o)))
    {
    }

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isBool() const { return _kind == Kind::Bool; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isObject() const { return _kind == Kind::Object; }

    /** Typed accessors; fatal (assert) on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member lookup; null pointer when absent or not object. */
    const Value *find(const std::string &key) const;

  private:
    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::shared_ptr<Array> _array;
    std::shared_ptr<Object> _object;
};

/**
 * Parse one JSON document. Trailing non-whitespace is an error.
 *
 * @param text The document.
 * @param[out] error Human-readable parse error, if non-null.
 * @return The value, or nullopt on malformed input.
 */
std::optional<Value> parse(std::string_view text,
                           std::string *error = nullptr);

/** Escape @p s for embedding in a JSON string literal (no quotes). */
std::string escape(std::string_view s);

} // namespace gpupm::trace::json
