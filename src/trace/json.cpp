#include "trace/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/logging.hpp"

namespace gpupm::trace::json {

bool
Value::asBool() const
{
    GPUPM_ASSERT(_kind == Kind::Bool, "JSON value is not a bool");
    return _bool;
}

double
Value::asNumber() const
{
    GPUPM_ASSERT(_kind == Kind::Number, "JSON value is not a number");
    return _number;
}

const std::string &
Value::asString() const
{
    GPUPM_ASSERT(_kind == Kind::String, "JSON value is not a string");
    return _string;
}

const Array &
Value::asArray() const
{
    GPUPM_ASSERT(_kind == Kind::Array, "JSON value is not an array");
    return *_array;
}

const Object &
Value::asObject() const
{
    GPUPM_ASSERT(_kind == Kind::Object, "JSON value is not an object");
    return *_object;
}

const Value *
Value::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    auto it = _object->find(key);
    return it == _object->end() ? nullptr : &it->second;
}

namespace {

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    literal(std::string_view lit)
    {
        if (text.substr(pos, lit.size()) == lit) {
            pos += lit.size();
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("truncated escape");
                const char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                      if (pos + 4 > text.size())
                          return fail("truncated \\u escape");
                      unsigned code = 0;
                      for (int i = 0; i < 4; ++i) {
                          const char h = text[pos++];
                          code <<= 4;
                          if (h >= '0' && h <= '9')
                              code += static_cast<unsigned>(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              code += static_cast<unsigned>(h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              code += static_cast<unsigned>(h - 'A' + 10);
                          else
                              return fail("bad \\u escape");
                      }
                      // UTF-8 encode the BMP code point (surrogate
                      // pairs are passed through as two encodings; the
                      // exporters never emit them).
                      if (code < 0x80) {
                          out += static_cast<char>(code);
                      } else if (code < 0x800) {
                          out += static_cast<char>(0xc0 | (code >> 6));
                          out += static_cast<char>(0x80 | (code & 0x3f));
                      } else {
                          out += static_cast<char>(0xe0 | (code >> 12));
                          out += static_cast<char>(0x80 |
                                                   ((code >> 6) & 0x3f));
                          out += static_cast<char>(0x80 | (code & 0x3f));
                      }
                      break;
                  }
                  default: return fail("bad escape");
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character");
            out += c;
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            Object obj;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                out = Value(std::move(obj));
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return false;
                Value v;
                if (!parseValue(v))
                    return false;
                obj.emplace(std::move(key), std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (!consume('}'))
                    return false;
                out = Value(std::move(obj));
                return true;
            }
        }
        if (c == '[') {
            ++pos;
            Array arr;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                out = Value(std::move(arr));
                return true;
            }
            for (;;) {
                Value v;
                if (!parseValue(v))
                    return false;
                arr.push_back(std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (!consume(']'))
                    return false;
                out = Value(std::move(arr));
                return true;
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Value(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Value(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Value();
            return true;
        }
        // Number.
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("unexpected character");
        double d = 0.0;
        const auto res = std::from_chars(text.data() + start,
                                         text.data() + pos, d);
        if (res.ec != std::errc{} || res.ptr != text.data() + pos) {
            pos = start;
            return fail("malformed number");
        }
        out = Value(d);
        return true;
    }
};

} // namespace

std::optional<Value>
parse(std::string_view text, std::string *error)
{
    Parser p;
    p.text = text;
    Value v;
    if (!p.parseValue(v)) {
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing content at offset " +
                     std::to_string(p.pos);
        return std::nullopt;
    }
    return v;
}

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace gpupm::trace::json
