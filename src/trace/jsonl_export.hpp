/**
 * @file
 * JSONL (one JSON object per line) exporter for decision records.
 *
 * The decision dump is the machine-readable provenance artifact: one
 * line per governor decision, sorted canonically, with every float
 * printed shortest-round-trip so a dump re-read through
 * readDecisionJsonl() reproduces the records exactly. The 64-bit
 * kernel signature is serialized as a hex *string* - JSON numbers are
 * doubles and lose integer precision above 2^53. The session/run/index
 * counters stay plain numbers (they are jq-friendly ordinals, assigned
 * sequentially and nowhere near 2^53).
 */

#pragma once

#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "trace/decision.hpp"

namespace gpupm::trace {

/** Write one JSON object per record, in input order. */
void writeDecisionJsonl(std::ostream &os,
                        std::span<const DecisionRecord> records);

/**
 * Parse a decision dump written by writeDecisionJsonl. Blank lines are
 * skipped; a malformed line is fatal (assert) - dumps are
 * machine-generated.
 */
std::vector<DecisionRecord> readDecisionJsonl(std::istream &is);

} // namespace gpupm::trace
