#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace gpupm::trace {

std::atomic<bool> Tracer::_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

/**
 * One thread's event ring for one tracing session. Slots below the
 * published head are immutable (the ring drops instead of wrapping),
 * so a reader that acquires the head can copy them without racing the
 * owning writer.
 */
struct ThreadBuffer
{
    ThreadBuffer(std::size_t capacity, std::uint32_t tid_,
                 std::uint64_t epoch_)
        : slots(capacity), tid(tid_), epoch(epoch_)
    {
    }

    std::vector<SpanEvent> slots;
    std::atomic<std::size_t> head{0}; ///< Published event count.
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid;
    std::uint64_t epoch;
};

struct Globals
{
    std::mutex mutex; ///< Guards registration and session control.
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::atomic<std::uint64_t> epoch{0};
    std::size_t capacity = Tracer::defaultCapacity;
    std::uint32_t nextTid = 1;
    /** Session origin as steady-clock ns; atomic so recording threads
     *  can read it while a controller restarts the session. */
    std::atomic<std::int64_t> originNs{0};
};

Globals &
globals()
{
    static Globals g;
    return g;
}

/** The calling thread's buffer for the current session (may be null). */
thread_local std::shared_ptr<ThreadBuffer> tlBuffer;

ThreadBuffer *
threadBuffer()
{
    Globals &g = globals();
    const std::uint64_t epoch = g.epoch.load(std::memory_order_acquire);
    if (!tlBuffer || tlBuffer->epoch != epoch) {
        std::lock_guard lock(g.mutex);
        // Re-read under the lock: a concurrent start() may have bumped
        // the epoch between the load above and the lock.
        const std::uint64_t e = g.epoch.load(std::memory_order_relaxed);
        tlBuffer =
            std::make_shared<ThreadBuffer>(g.capacity, g.nextTid++, e);
        g.buffers.push_back(tlBuffer);
    }
    return tlBuffer.get();
}

} // namespace

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::Sim: return "sim";
      case Category::Mpc: return "mpc";
      case Category::Ml: return "ml";
      case Category::Exec: return "exec";
      case Category::Serve: return "serve";
      case Category::Bench: return "bench";
      case Category::Online: return "online";
    }
    return "?";
}

void
Tracer::start(std::size_t per_thread_capacity)
{
    Globals &g = globals();
    std::lock_guard lock(g.mutex);
    g.buffers.clear();
    g.capacity = per_thread_capacity > 0 ? per_thread_capacity : 1;
    g.nextTid = 1;
    g.originNs.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now().time_since_epoch())
                         .count(),
                     std::memory_order_relaxed);
    g.epoch.fetch_add(1, std::memory_order_release);
    _enabled.store(true, std::memory_order_release);
}

void
Tracer::stop()
{
    _enabled.store(false, std::memory_order_release);
}

std::uint64_t
Tracer::nowNs()
{
    const std::int64_t origin =
        globals().originNs.load(std::memory_order_relaxed);
    if (origin == 0)
        return 0;
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count();
    return now > origin ? static_cast<std::uint64_t>(now - origin) : 0;
}

void
Tracer::emit(Category cat, const char *name, std::uint64_t start_ns,
             std::uint64_t dur_ns, const char *arg0_name, double arg0,
             const char *arg1_name, double arg1)
{
    if (!enabled())
        return;
    ThreadBuffer *b = threadBuffer();
    const std::size_t h = b->head.load(std::memory_order_relaxed);
    if (h >= b->slots.size()) {
        b->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    SpanEvent &e = b->slots[h];
    e.name = name;
    e.arg0Name = arg0_name;
    e.arg1Name = arg1_name;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.startNs = start_ns;
    e.durNs = dur_ns;
    e.tid = b->tid;
    e.cat = cat;
    b->head.store(h + 1, std::memory_order_release);
}

std::vector<SpanEvent>
Tracer::collect()
{
    Globals &g = globals();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard lock(g.mutex);
        buffers = g.buffers;
    }
    std::vector<SpanEvent> out;
    for (const auto &b : buffers) {
        const std::size_t n = b->head.load(std::memory_order_acquire);
        out.insert(out.end(), b->slots.begin(), b->slots.begin() + n);
    }
    std::sort(out.begin(), out.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.tid < b.tid;
              });
    return out;
}

std::uint64_t
Tracer::dropped()
{
    Globals &g = globals();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard lock(g.mutex);
        buffers = g.buffers;
    }
    std::uint64_t n = 0;
    for (const auto &b : buffers)
        n += b->dropped.load(std::memory_order_relaxed);
    return n;
}

void
Span::open(Category cat, const char *name)
{
    _name = name;
    _cat = cat;
    _start = Tracer::nowNs();
    _live = true;
}

void
Span::close()
{
    const std::uint64_t end = Tracer::nowNs();
    Tracer::emit(_cat, _name, _start,
                 end > _start ? end - _start : 0, _arg0Name, _arg0,
                 _arg1Name, _arg1);
}

} // namespace gpupm::trace
