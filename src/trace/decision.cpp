#include "trace/decision.hpp"

#include <algorithm>
#include <tuple>

namespace gpupm::trace {

void
DecisionLog::record(DecisionRecord &&rec)
{
    std::lock_guard lock(_mutex);
    _records.push_back(std::move(rec));
}

std::size_t
DecisionLog::size() const
{
    std::lock_guard lock(_mutex);
    return _records.size();
}

std::vector<DecisionRecord>
DecisionLog::take()
{
    std::lock_guard lock(_mutex);
    std::vector<DecisionRecord> out;
    out.swap(_records);
    return out;
}

void
sortDecisions(std::vector<DecisionRecord> &records)
{
    std::stable_sort(records.begin(), records.end(),
                     [](const DecisionRecord &a, const DecisionRecord &b) {
                         return std::tie(a.app, a.session, a.run,
                                         a.index) <
                                std::tie(b.app, b.session, b.run,
                                         b.index);
                     });
}

} // namespace gpupm::trace
