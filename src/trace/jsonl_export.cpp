#include "trace/jsonl_export.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/logging.hpp"
#include "trace/json.hpp"

namespace gpupm::trace {

namespace {

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtHex64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

std::uint64_t
parseHex64(const std::string &s)
{
    std::uint64_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            GPUPM_FATAL("bad hex signature '", s, "'");
    }
    return v;
}

double
numberField(const json::Value &obj, const char *key)
{
    const json::Value *v = obj.find(key);
    GPUPM_ASSERT(v && v->isNumber(), "decision line missing number field");
    return v->asNumber();
}

} // namespace

void
writeDecisionJsonl(std::ostream &os,
                   std::span<const DecisionRecord> records)
{
    for (const DecisionRecord &r : records) {
        os << "{\"app\":\"" << json::escape(r.app) << "\""
           << ",\"session\":" << r.session
           << ",\"run\":" << r.run
           << ",\"index\":" << r.index
           << ",\"tag\":\"" << json::escape(std::string(1, r.tag)) << "\""
           << ",\"profiling\":" << (r.profiling ? "true" : "false")
           << ",\"signature\":\"" << fmtHex64(r.kernelSignature) << "\""
           << ",\"horizon\":" << r.horizon
           << ",\"headroom\":"
           << (r.hasHeadroom ? fmtDouble(r.headroom) : "null")
           << ",\"config\":" << r.configIndex
           << ",\"predictedTime\":" << fmtDouble(r.predictedTime)
           << ",\"predictedEnergy\":" << fmtDouble(r.predictedEnergy)
           << ",\"evaluations\":" << r.evaluations
           << ",\"uniqueEvaluations\":" << r.uniqueEvaluations
           << ",\"overheadTime\":" << fmtDouble(r.overheadTime);
        // Cap fields only when a cap was active: uncapped dumps stay
        // byte-identical to the pre-powercap schema.
        if (r.powerCap >= 0.0) {
            os << ",\"cap\":" << fmtDouble(r.powerCap)
               << ",\"capLimited\":" << (r.capLimited ? "true" : "false");
        }
        os << ",\"candidates\":[";
        bool first = true;
        for (const CandidateEval &c : r.candidates) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"config\":" << c.configIndex
               << ",\"time\":" << fmtDouble(c.predictedTime)
               << ",\"energy\":" << fmtDouble(c.predictedEnergy)
               << ",\"memo\":" << (c.memoHit ? "true" : "false") << "}";
        }
        os << "],\"observed\":" << (r.observed ? "true" : "false");
        if (r.observed) {
            os << ",\"measuredTime\":" << fmtDouble(r.measuredTime)
               << ",\"measuredGpuPower\":" << fmtDouble(r.measuredGpuPower)
               << ",\"timeErrorPct\":" << fmtDouble(r.timeErrorPct)
               << ",\"counters\":[";
            const auto cs = r.counters.asArray();
            for (std::size_t i = 0; i < cs.size(); ++i)
                os << (i ? "," : "") << fmtDouble(cs[i]);
            os << "],\"instructions\":"
               << fmtDouble(r.measuredInstructions)
               << ",\"nonKernelTime\":" << fmtDouble(r.nonKernelTime)
               << ",\"target\":" << fmtDouble(r.targetThroughput);
        }
        os << "}\n";
    }
}

std::vector<DecisionRecord>
readDecisionJsonl(std::istream &is)
{
    std::vector<DecisionRecord> out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::string err;
        const auto doc = json::parse(line, &err);
        GPUPM_ASSERT(doc && doc->isObject(), "bad decision line: ", err);
        DecisionRecord r;
        const json::Value *app = doc->find("app");
        GPUPM_ASSERT(app && app->isString(), "decision line missing app");
        r.app = app->asString();
        r.session = static_cast<std::uint64_t>(
            numberField(*doc, "session"));
        r.run = static_cast<std::size_t>(numberField(*doc, "run"));
        r.index = static_cast<std::size_t>(numberField(*doc, "index"));
        const json::Value *tag = doc->find("tag");
        GPUPM_ASSERT(tag && tag->isString() && !tag->asString().empty(),
                     "decision line missing tag");
        r.tag = tag->asString()[0];
        const json::Value *prof = doc->find("profiling");
        GPUPM_ASSERT(prof && prof->isBool(),
                     "decision line missing profiling");
        r.profiling = prof->asBool();
        const json::Value *sig = doc->find("signature");
        GPUPM_ASSERT(sig && sig->isString(),
                     "decision line missing signature");
        r.kernelSignature = parseHex64(sig->asString());
        r.horizon = static_cast<std::size_t>(
            numberField(*doc, "horizon"));
        const json::Value *headroom = doc->find("headroom");
        GPUPM_ASSERT(headroom, "decision line missing headroom");
        if (headroom->isNumber()) {
            r.headroom = headroom->asNumber();
            r.hasHeadroom = true;
        }
        r.configIndex = static_cast<std::size_t>(
            numberField(*doc, "config"));
        r.predictedTime = numberField(*doc, "predictedTime");
        r.predictedEnergy = numberField(*doc, "predictedEnergy");
        r.evaluations = static_cast<std::size_t>(
            numberField(*doc, "evaluations"));
        r.uniqueEvaluations = static_cast<std::size_t>(
            numberField(*doc, "uniqueEvaluations"));
        r.overheadTime = numberField(*doc, "overheadTime");
        if (const json::Value *cap = doc->find("cap")) {
            GPUPM_ASSERT(cap->isNumber(), "cap field not a number");
            r.powerCap = cap->asNumber();
            const json::Value *cl = doc->find("capLimited");
            GPUPM_ASSERT(cl && cl->isBool(),
                         "cap without capLimited flag");
            r.capLimited = cl->asBool();
        }
        const json::Value *cands = doc->find("candidates");
        GPUPM_ASSERT(cands && cands->isArray(),
                     "decision line missing candidates");
        for (const json::Value &cv : cands->asArray()) {
            CandidateEval c;
            c.configIndex = static_cast<std::uint32_t>(
                numberField(cv, "config"));
            c.predictedTime = numberField(cv, "time");
            c.predictedEnergy = numberField(cv, "energy");
            const json::Value *memo = cv.find("memo");
            GPUPM_ASSERT(memo && memo->isBool(),
                         "candidate missing memo flag");
            c.memoHit = memo->asBool();
            r.candidates.push_back(c);
        }
        const json::Value *obs = doc->find("observed");
        GPUPM_ASSERT(obs && obs->isBool(),
                     "decision line missing observed");
        r.observed = obs->asBool();
        if (r.observed) {
            r.measuredTime = numberField(*doc, "measuredTime");
            r.measuredGpuPower = numberField(*doc, "measuredGpuPower");
            r.timeErrorPct = numberField(*doc, "timeErrorPct");
            const json::Value *ctr = doc->find("counters");
            GPUPM_ASSERT(ctr && ctr->isArray(),
                         "decision line missing counters");
            auto cs = r.counters.asArray();
            GPUPM_ASSERT(ctr->asArray().size() == cs.size(),
                         "decision counters arity mismatch");
            for (std::size_t i = 0; i < cs.size(); ++i) {
                GPUPM_ASSERT(ctr->asArray()[i].isNumber(),
                             "decision counter not a number");
                cs[i] = ctr->asArray()[i].asNumber();
            }
            r.counters = kernel::KernelCounters::fromArray(cs);
            r.measuredInstructions = numberField(*doc, "instructions");
            r.nonKernelTime = numberField(*doc, "nonKernelTime");
            r.targetThroughput = numberField(*doc, "target");
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace gpupm::trace
