/**
 * @file
 * Low-overhead structured span tracing (the gpupm::trace subsystem).
 *
 * Hot paths (the simulator loop, MPC decisions, batched forest walks,
 * sweep jobs, the fleet server) open a Span around the work they do;
 * spans record into per-thread ring buffers and are exported after the
 * run as Chrome trace-event JSON (chrome://tracing / Perfetto).
 *
 * Cost model - the contract every instrumentation site relies on:
 *
 *  - Tracing disabled (the default): constructing a Span is one relaxed
 *    atomic load and one predictable branch; nothing else happens. No
 *    clock reads, no allocation, no stores. This is what keeps the
 *    disabled overhead of the governor hot path under the 1% budget.
 *  - Tracing enabled: a span costs two steady_clock reads plus one
 *    64-byte store into a thread-local ring buffer. The publish is a
 *    single release store of the ring head; no locks are taken on the
 *    recording path (the only mutex is per-thread buffer registration,
 *    paid once per thread per tracing session).
 *
 * Buffers never overwrite published events: when a thread's ring is
 * full, further events are counted as dropped and discarded, so a
 * reader can snapshot concurrently without racing writers (slots below
 * the acquired head are immutable). Determinism: nothing in this module
 * feeds back into decision logic - timestamps exist only in the trace
 * output, so golden decision traces are byte-identical with tracing on
 * or off.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpupm::trace {

/** Subsystem that emitted a span (the Chrome "cat" field). */
enum class Category : std::uint8_t
{
    Sim,   ///< Closed-loop simulator.
    Mpc,   ///< MPC governor and optimizer.
    Ml,    ///< Predictor / forest inference.
    Exec,  ///< Sweep engine jobs.
    Serve, ///< Fleet server (queue, broker, sessions).
    Bench, ///< Experiment harnesses.
    Online, ///< Drift detection, retraining, forest hot-swap.
};

/** Stable lower-case name for a category. */
const char *categoryName(Category cat);

/**
 * One completed span. Name and argument names must be string literals
 * (or otherwise outlive the tracing session): events store the
 * pointers, never copies.
 */
struct SpanEvent
{
    const char *name = nullptr;
    const char *arg0Name = nullptr; ///< Null when unset.
    const char *arg1Name = nullptr;
    double arg0 = 0.0;
    double arg1 = 0.0;
    std::uint64_t startNs = 0; ///< Since Tracer::start().
    std::uint64_t durNs = 0;
    std::uint32_t tid = 0; ///< Registration-order thread id (1-based).
    Category cat = Category::Sim;
};

/**
 * Process-global tracing session. start()/stop()/collect() are
 * externally synchronized (one controlling thread); emit() and Span
 * construction are safe from any thread at any time.
 */
class Tracer
{
  public:
    /** Per-thread event capacity when start() is given none. */
    static constexpr std::size_t defaultCapacity = 1 << 16;

    /** The no-op branch every instrumentation site is gated on. */
    static bool
    enabled()
    {
        return _enabled.load(std::memory_order_relaxed);
    }

    /**
     * Begin a tracing session: reset the time origin, retire buffers
     * from any previous session, and enable recording. Restarting an
     * active session discards its events.
     */
    static void start(std::size_t per_thread_capacity = defaultCapacity);

    /** Disable recording; collected events remain available. */
    static void stop();

    /**
     * Snapshot every published event of the current session, sorted by
     * (startNs, tid). Safe while writers are active: only events whose
     * publish the snapshot observed are included.
     */
    static std::vector<SpanEvent> collect();

    /** Events discarded because a thread's ring filled up. */
    static std::uint64_t dropped();

    /** Nanoseconds since the session origin (0 when never started). */
    static std::uint64_t nowNs();

    /**
     * Record a completed span with explicit timing. Used by Span and by
     * call sites that measure an interval themselves (e.g. the fleet
     * queue wait, whose start predates the worker that records it).
     * No-op when tracing is disabled.
     */
    static void emit(Category cat, const char *name,
                     std::uint64_t start_ns, std::uint64_t dur_ns,
                     const char *arg0_name = nullptr, double arg0 = 0.0,
                     const char *arg1_name = nullptr, double arg1 = 0.0);

  private:
    friend class Span;
    static std::atomic<bool> _enabled;
};

/**
 * RAII span: records [construction, destruction) under the given name.
 * When tracing is disabled, construction and destruction are each one
 * relaxed load and branch.
 */
class Span
{
  public:
    Span(Category cat, const char *name)
    {
        if (Tracer::enabled()) [[unlikely]]
            open(cat, name);
    }

    Span(Category cat, const char *name, const char *arg0_name,
         double arg0)
        : Span(cat, name)
    {
        _arg0Name = arg0_name;
        _arg0 = arg0;
    }

    /** Attach up to two numeric arguments (names must be literals);
     *  further calls are silently dropped. */
    void
    arg(const char *name, double value)
    {
        if (!_live)
            return;
        if (!_arg0Name) {
            _arg0Name = name;
            _arg0 = value;
        } else if (!_arg1Name) {
            _arg1Name = name;
            _arg1 = value;
        }
    }

    ~Span()
    {
        if (_live) [[unlikely]]
            close();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    void open(Category cat, const char *name);
    void close();

    const char *_name = nullptr;
    const char *_arg0Name = nullptr;
    const char *_arg1Name = nullptr;
    double _arg0 = 0.0;
    double _arg1 = 0.0;
    std::uint64_t _start = 0;
    Category _cat = Category::Sim;
    bool _live = false;
};

} // namespace gpupm::trace
