/**
 * @file
 * Chrome trace-event exporter for collected span events.
 *
 * Emits the JSON object form of the Trace Event Format (the schema
 * chrome://tracing and Perfetto load): a top-level object with a
 * "traceEvents" array of complete ("ph":"X") events. Timestamps and
 * durations are microseconds; span args become the per-event "args"
 * object.
 */

#pragma once

#include <ostream>
#include <span>

#include "trace/trace.hpp"

namespace gpupm::trace {

/**
 * Write @p events as one Chrome trace-event JSON document.
 *
 * Events should already be in the order collect() returns (sorted by
 * start time); the writer preserves input order.
 */
void writeChromeTrace(std::ostream &os, std::span<const SpanEvent> events);

} // namespace gpupm::trace
