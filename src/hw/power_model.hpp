/**
 * @file
 * Analytic APU power model.
 *
 * Dynamic power follows C*V^2*f per domain with an activity factor;
 * leakage is voltage-proportional with an exponential temperature
 * dependence. The GPU and NB share a voltage rail: the rail runs at the
 * maximum of the GPU DPM voltage and the NB state's minimum rail voltage,
 * reproducing the paper's observation that a high NB state can prevent
 * the GPU voltage from dropping (Sec. II-A).
 */

#pragma once

#include "hw/config.hpp"
#include "hw/params.hpp"

namespace gpupm::hw {

/** Workload-dependent activity inputs to the power model. */
struct ActivityFactors
{
    /** Fraction of kernel time the vector ALUs are switching [0,1]. */
    double gpuCompute = 1.0;
    /** Fraction of peak memory bandwidth in use [0,1]. */
    double memory = 1.0;
    /** CPU activity [0,1]; busy-wait vs active compute. */
    double cpu = 1.0;
};

/** Per-domain power breakdown (W). */
struct PowerBreakdown
{
    Watts cpuDynamic = 0.0;
    Watts cpuLeakage = 0.0;
    Watts gpuDynamic = 0.0;
    Watts gpuLeakage = 0.0;
    Watts nbDynamic = 0.0;
    Watts memInterface = 0.0;

    /** CPU power plane total. */
    Watts cpu() const { return cpuDynamic + cpuLeakage; }
    /**
     * GPU power plane total. Includes the NB and DRAM interface, which
     * share the rail and are measured together on the real platform.
     */
    Watts gpu() const
    {
        return gpuDynamic + gpuLeakage + nbDynamic + memInterface;
    }
    /** Chip-wide power. */
    Watts total() const { return cpu() + gpu(); }
};

/**
 * Stateless analytic power model of the APU.
 */
class PowerModel
{
  public:
    /**
     * @param params Model parameters; which hardware model a PowerModel
     *        speaks for is always explicit at the construction site.
     *        Binding a temporary is deleted: hot paths must reference a
     *        named parameter set (usually a HardwareModel's), never an
     *        accidental by-value copy.
     */
    explicit PowerModel(const ApuParams &params);
    explicit PowerModel(ApuParams &&) = delete;

    /** Voltage of the shared GPU/NB rail for a configuration. */
    Volts railVoltage(const HwConfig &c) const;

    /**
     * Power breakdown at a configuration, activity and die temperature.
     *
     * @param c Hardware configuration.
     * @param a Workload activity factors.
     * @param temp Die temperature used for leakage.
     */
    PowerBreakdown power(const HwConfig &c, const ActivityFactors &a,
                         Celsius temp) const;

    /**
     * Power breakdown with leakage/temperature solved self-consistently:
     * temperature depends on power, leakage depends on temperature. A
     * small fixed-point iteration converges in a few steps.
     *
     * @param c Hardware configuration.
     * @param a Workload activity factors.
     * @param[out] settled_temp Steady-state die temperature, if non-null.
     */
    PowerBreakdown steadyStatePower(const HwConfig &c,
                                    const ActivityFactors &a,
                                    Celsius *settled_temp = nullptr) const;

    const ApuParams &params() const { return _p; }

  private:
    ApuParams _p;
};

} // namespace gpupm::hw
