#include "hw/transition.hpp"

#include <algorithm>
#include <cmath>

namespace gpupm::hw {

TransitionModel::TransitionModel(const ApuParams &params)
    : _p(params), _power(params)
{
}

Seconds
TransitionModel::latency(const HwConfig &from, const HwConfig &to) const
{
    if (from == to)
        return 0.0;
    const auto &t = _p.transition;

    // CPU plane: voltage ramp then PLL relock.
    const auto &cpu_from = _p.dvfs.cpuPoint(from.cpu);
    const auto &cpu_to = _p.dvfs.cpuPoint(to.cpu);
    Seconds cpu_plane =
        std::fabs(cpu_to.voltage - cpu_from.voltage) * t.rampPerVolt;
    if (cpu_from.freq != cpu_to.freq)
        cpu_plane += t.pllRelock;

    // Shared GPU/NB plane: one rail ramp, then each clock domain that
    // changes (GPU core, NB) relocks, then CU gating.
    Seconds gpu_plane =
        std::fabs(_power.railVoltage(to) - _power.railVoltage(from)) *
        t.rampPerVolt;
    const auto &d = _p.dvfs;
    if (d.gpuPoint(from.gpu).freq != d.gpuPoint(to.gpu).freq)
        gpu_plane += t.pllRelock;
    if (d.nbPoint(from.nb).nbFreq != d.nbPoint(to.nb).nbFreq ||
        d.nbPoint(from.nb).memFreq != d.nbPoint(to.nb).memFreq) {
        gpu_plane += t.pllRelock;
    }
    gpu_plane += std::abs(to.cus - from.cus) * t.cuGate;

    // The planes transition concurrently.
    return std::max(cpu_plane, gpu_plane);
}

} // namespace gpupm::hw
