/**
 * @file
 * Software-visible DVFS states of the modeled AMD A10-7850K APU.
 *
 * Values reproduce Table I of the paper exactly. The CPU cores share one
 * power plane; the GPU shares a second power plane with the northbridge
 * (NB). GPU and NB frequencies are set independently but the common rail
 * voltage must satisfy both, so a high NB state can prevent lowering the
 * GPU voltage (paper Sec. II-A).
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace gpupm::hw {

/** CPU P-states, highest performance first (paper Table I). */
enum class CpuPState : std::uint8_t { P1 = 0, P2, P3, P4, P5, P6, P7 };

/** Northbridge P-states, highest performance first. */
enum class NbPState : std::uint8_t { NB0 = 0, NB1, NB2, NB3 };

/** GPU DPM states, *lowest* performance first (matches AMD numbering). */
enum class GpuPState : std::uint8_t { DPM0 = 0, DPM1, DPM2, DPM3, DPM4 };

inline constexpr int numCpuPStates = 7;
inline constexpr int numNbPStates = 4;
inline constexpr int numGpuPStates = 5;

/** Voltage/frequency operating point of a CPU P-state. */
struct CpuDvfsPoint
{
    Volts voltage;
    MegaHertz freq;
};

/** Frequency pair of an NB P-state: NB clock and memory bus clock. */
struct NbDvfsPoint
{
    MegaHertz nbFreq;
    MegaHertz memFreq;
    /**
     * Minimum rail voltage the shared GPU/NB plane must supply for this
     * NB state. Not in Table I; interpolated so that NB0 pins the rail
     * above DPM0-DPM2 voltages, reproducing the coupling described in
     * Sec. II-A.
     */
    Volts minRailVoltage;
};

/** Voltage/frequency operating point of a GPU DPM state. */
struct GpuDvfsPoint
{
    Volts voltage;
    MegaHertz freq;
};

/**
 * A complete set of DVFS operating tables for one hardware model. The
 * paper's Table I is the canonical instance (`paper()`); catalog
 * variants substitute their own voltage/frequency ladders while keeping
 * the state enumeration (7 CPU / 4 NB / 5 GPU states) fixed, so dense
 * config indexing stays model-independent.
 */
struct DvfsTables
{
    std::array<CpuDvfsPoint, numCpuPStates> cpu;
    std::array<NbDvfsPoint, numNbPStates> nb;
    std::array<GpuDvfsPoint, numGpuPStates> gpu;

    const CpuDvfsPoint &cpuPoint(CpuPState s) const
    {
        return cpu[static_cast<std::size_t>(s)];
    }
    const NbDvfsPoint &nbPoint(NbPState s) const
    {
        return nb[static_cast<std::size_t>(s)];
    }
    const GpuDvfsPoint &gpuPoint(GpuPState s) const
    {
        return gpu[static_cast<std::size_t>(s)];
    }

    /** The paper's Table I, exactly. */
    static const DvfsTables &paper();
};

/** Operating point for a CPU P-state (Table I). */
const CpuDvfsPoint &cpuDvfs(CpuPState s);

/** Operating point for an NB P-state (Table I). */
const NbDvfsPoint &nbDvfs(NbPState s);

/** Operating point for a GPU DPM state (Table I). */
const GpuDvfsPoint &gpuDvfs(GpuPState s);

/** Human-readable state names ("P1", "NB0", "DPM4"). */
std::string toString(CpuPState s);
std::string toString(NbPState s);
std::string toString(GpuPState s);

/** Highest CPU/GPU/NB performance states. */
inline constexpr CpuPState fastestCpu = CpuPState::P1;
inline constexpr CpuPState slowestCpu = CpuPState::P7;
inline constexpr NbPState fastestNb = NbPState::NB0;
inline constexpr NbPState slowestNb = NbPState::NB3;
inline constexpr GpuPState fastestGpu = GpuPState::DPM4;
inline constexpr GpuPState slowestGpu = GpuPState::DPM0;

} // namespace gpupm::hw
