/**
 * @file
 * Hardware configuration tuples and the searchable configuration space.
 *
 * A configuration is (CPU P-state, NB P-state, GPU DPM state, active CU
 * count). Following the paper's methodology (Sec. V), the searchable
 * space uses all 7 CPU states, all 4 NB states, three of the five GPU DPM
 * states (DPM0/DPM2/DPM4), and CU counts {2,4,6,8}: 7*4*3*4 = 336 points.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hw/dvfs.hpp"

namespace gpupm::hw {

/** One hardware operating point for the whole APU. */
struct HwConfig
{
    CpuPState cpu = CpuPState::P1;
    NbPState nb = NbPState::NB0;
    GpuPState gpu = GpuPState::DPM4;
    int cus = 8; ///< Active GPU compute units (2, 4, 6 or 8).

    bool operator==(const HwConfig &) const = default;

    /** Render as "[P7, NB2, DPM4, 8 CUs]". */
    std::string toString() const;
};

/**
 * The tunable knobs, in the order used for sensitivity sorting.
 */
enum class Knob : std::uint8_t { CpuDvfs = 0, NbDvfs, GpuDvfs, CuCount };

inline constexpr int numKnobs = 4;

/** All knob values, for iteration. */
inline constexpr std::array<Knob, numKnobs> allKnobs = {
    Knob::CpuDvfs, Knob::NbDvfs, Knob::GpuDvfs, Knob::CuCount};

std::string toString(Knob k);

/**
 * Number of representable configurations across every ConfigSpace
 * variant: all CPU/NB/GPU states and CU counts 1..8. Used to size dense
 * per-config lookup tables (feature caches, evaluation memos).
 */
inline constexpr std::size_t denseConfigCount =
    static_cast<std::size_t>(numCpuPStates) * numNbPStates *
    numGpuPStates * 8;

/**
 * Dense index of a configuration in [0, denseConfigCount). Unlike
 * ConfigSpace::indexOf this covers every representable config, is O(1)
 * arithmetic, and never consults a space.
 */
inline std::size_t
denseConfigIndex(const HwConfig &c)
{
    const auto cpu = static_cast<std::size_t>(c.cpu);
    const auto nb = static_cast<std::size_t>(c.nb);
    const auto gpu = static_cast<std::size_t>(c.gpu);
    const auto cu = static_cast<std::size_t>(c.cus - 1);
    return ((cpu * numNbPStates + nb) * numGpuPStates + gpu) * 8 + cu;
}

/**
 * Inverse of denseConfigIndex: the configuration at a dense index in
 * [0, denseConfigCount). O(1) arithmetic; never consults a space.
 */
inline HwConfig
denseConfigAt(std::size_t idx)
{
    HwConfig c;
    c.cus = static_cast<int>(idx % 8) + 1;
    idx /= 8;
    c.gpu = static_cast<GpuPState>(idx % numGpuPStates);
    idx /= numGpuPStates;
    c.nb = static_cast<NbPState>(idx % numNbPStates);
    c.cpu = static_cast<CpuPState>(idx / numNbPStates);
    return c;
}

/**
 * Which knob levels a ConfigSpace exposes to the power manager.
 *
 * The paper's methodology (Sec. V) searches three of the five GPU DPM
 * states and CU counts {2,4,6,8}; alternative spaces quantify what
 * that restriction costs (see bench_ablation).
 */
struct ConfigSpaceOptions
{
    std::vector<GpuPState> gpuStates = {GpuPState::DPM0, GpuPState::DPM2,
                                        GpuPState::DPM4};
    std::vector<int> cuCounts = {2, 4, 6, 8};

    /** The paper's 336-point space (the default). */
    static ConfigSpaceOptions paperDefault() { return {}; }

    /** All five GPU DPM states (560 configurations). */
    static ConfigSpaceOptions fullGpuDvfs();

    /** CU counts 1..8 in steps of 1 (672 configurations). */
    static ConfigSpaceOptions fineGrainedCus();
};

/**
 * The discrete space of configurations the power manager searches.
 *
 * Provides dense index<->config mapping, per-knob level enumeration and
 * single-step neighbours (for greedy hill climbing), and the empirical
 * fail-safe configuration [P7, NB2, DPM4, 8 CUs] from Sec. IV-A1a.
 */
class ConfigSpace
{
  public:
    /** The paper's 336-point space, or a variant. */
    explicit ConfigSpace(
        const ConfigSpaceOptions &opts = ConfigSpaceOptions{});

    /** Number of configurations (336 for the default space). */
    std::size_t size() const { return _configs.size(); }

    /** The knob-level options this space was built from. */
    const ConfigSpaceOptions &options() const { return _opts; }

    /** All configurations, fail-safe-first iteration order not implied. */
    const std::vector<HwConfig> &all() const { return _configs; }

    /** Dense index of a configuration; fatal if not in the space. */
    std::size_t indexOf(const HwConfig &c) const;

    /** Configuration at a dense index. */
    const HwConfig &at(std::size_t idx) const;

    /** Whether the configuration is a member of the space. */
    bool contains(const HwConfig &c) const;

    /** Number of levels available for a knob (7, 4, 3, 4). */
    int levels(Knob k) const;

    /**
     * Current level of a knob within a config, ordered from lowest
     * performance (level 0) to highest performance (levels()-1).
     */
    int levelOf(const HwConfig &c, Knob k) const;

    /**
     * Copy of @p c with knob @p k set to performance level @p level.
     * Fatal if the level is out of range.
     */
    HwConfig withLevel(const HwConfig &c, Knob k, int level) const;

    /**
     * The empirically determined fail-safe configuration the optimizer
     * falls back to when it cannot meet the performance target.
     */
    static HwConfig failSafe();

    /** Highest-performance configuration [P1, NB0, DPM4, 8 CUs]. */
    static HwConfig maxPerformance();

    /** Lowest-power configuration [P7, NB3, DPM0, 2 CUs]. */
    static HwConfig minPower();

  private:
    ConfigSpaceOptions _opts;
    std::vector<HwConfig> _configs;
};

} // namespace gpupm::hw

namespace std {

/** Hash support so configs can key unordered containers. */
template <>
struct hash<gpupm::hw::HwConfig>
{
    size_t
    operator()(const gpupm::hw::HwConfig &c) const noexcept
    {
        size_t h = static_cast<size_t>(c.cpu);
        h = h * 31 + static_cast<size_t>(c.nb);
        h = h * 31 + static_cast<size_t>(c.gpu);
        h = h * 31 + static_cast<size_t>(c.cus);
        return h;
    }
};

} // namespace std
