/**
 * @file
 * Physical modeling constants for the APU power/thermal model.
 *
 * All calibration constants live here so the model can be tuned in one
 * place. Values are chosen to land the modeled A10-7850K ("Kaveri") in
 * the right regime: 95 W TDP, ~40 W CPU plane under load, ~35 W GPU+NB
 * plane under load, and the DVFS coupling effects described in Sec. II-A
 * of the paper.
 */

#pragma once

#include "common/units.hpp"
#include "hw/dvfs.hpp"

namespace gpupm::hw {

/**
 * Cost model for DVFS/CU reconfiguration (paper's platform: voltage
 * ramps at the regulator slew rate, clock domains relock their PLLs,
 * power-gated CUs drain/restore state). Charged by the simulator
 * whenever a governor changes the configuration between kernels.
 */
struct TransitionParams
{
    /** Voltage ramp time per volt of rail change (regulator slew). */
    Seconds rampPerVolt = 100e-6;
    /** PLL relock time per clock domain whose frequency changes. */
    Seconds pllRelock = 8e-6;
    /** Power-gate/un-gate time per CU whose state changes. */
    Seconds cuGate = 3e-6;

    /** Free transitions (idealized hardware). */
    static TransitionParams zero() { return {0.0, 0.0, 0.0}; }
};

struct ApuParams
{
    // ---- CPU power plane -------------------------------------------------
    /** Effective switching capacitance of all CPU cores together (F). */
    double cpuCeff = 6.0e-9;
    /** Activity factor while busy-waiting on kernel completion. */
    double cpuBusyWaitActivity = 0.30;
    /** Activity factor while actively computing (e.g. running MPC). */
    double cpuActiveActivity = 0.85;
    /** CPU leakage coefficient (W/V at reference temperature). */
    double cpuLeakCoeff = 2.6;

    // ---- GPU / NB shared power plane ------------------------------------
    /** Effective switching capacitance per active CU (F). */
    double cuCeff = 3.6e-9;
    /** Idle (clock-gated) fraction of CU dynamic power. */
    double gpuIdleActivity = 0.12;
    /** GPU leakage coefficient (W/V at reference temperature). */
    double gpuLeakCoeff = 2.6;
    /** Per-CU share of GPU leakage (rest is uncore, always on). */
    double gpuLeakPerCuFraction = 0.6;
    /** Effective switching capacitance of the northbridge (F). */
    double nbCeff = 1.6e-9;
    /** NB activity floor when the memory system is idle. */
    double nbIdleActivity = 0.3;
    /** DRAM interface power at 800 MHz memory clock, full utilization. */
    Watts memPowerHi = 3.0;
    /** DRAM interface power at 333 MHz memory clock, full utilization. */
    Watts memPowerLo = 1.4;
    /** Idle fraction of DRAM interface power. */
    double memIdleFraction = 0.35;

    // ---- Leakage/temperature coupling ------------------------------------
    /** Reference die temperature for the leakage coefficients (C). */
    Celsius leakRefTemp = 60.0;
    /** Exponential leakage-temperature slope (1/C). */
    double leakTempSlope = 0.012;

    // ---- Thermal ---------------------------------------------------------
    /** Ambient temperature (C). */
    Celsius ambient = 35.0;
    /** Junction-to-ambient thermal resistance (C/W). */
    double thermalResistance = 0.42;
    /** Thermal time constant (s); used by the RC transient model. */
    Seconds thermalTau = 2.5;
    /** Thermal design power of the package (W). */
    Watts tdp = 95.0;

    // ---- Memory system --------------------------------------------------
    /** DRAM bus width in bytes (128-bit DDR3 channel pair). */
    double memBusBytes = 16.0;
    /** DDR transfers per memory clock. */
    double memTransfersPerClock = 2.0;
    /** NB on-chip path width in bytes per NB clock. */
    double nbPathBytes = 32.0;

    // ---- Reconfiguration costs -------------------------------------
    TransitionParams transition{};

    // ---- DVFS operating tables -------------------------------------
    /**
     * Voltage/frequency ladders of this model. The paper's Table I by
     * default; heterogeneous catalog entries substitute their own.
     */
    DvfsTables dvfs = DvfsTables::paper();

    // ---- Fleet power capping ---------------------------------------
    /**
     * Minimum useful power share of one session on this model (W);
     * the fleet cap arbiter never assigns a cap below this demand
     * floor, so small parts are not starved next to big ones.
     */
    Watts capFloorWatts = 4.0;

    /** The defaults above. */
    static const ApuParams &defaults();
};

} // namespace gpupm::hw
