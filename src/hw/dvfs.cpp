#include "hw/dvfs.hpp"

#include "common/logging.hpp"

namespace gpupm::hw {

namespace {

// Table I, left block.
constexpr std::array<CpuDvfsPoint, numCpuPStates> cpu_table = {{
    {1.325, 3900.0},  // P1
    {1.3125, 3800.0}, // P2
    {1.2625, 3700.0}, // P3
    {1.225, 3500.0},  // P4
    {1.0625, 3000.0}, // P5
    {0.975, 2400.0},  // P6
    {0.8875, 1700.0}, // P7
}};

// Table I, middle block. Min rail voltages are a modeling addition (see
// header): chosen between neighbouring GPU DPM voltages so that, e.g.,
// running at NB0 keeps the shared rail at 1.175 V even if the GPU drops
// to DPM0 (0.95 V), limiting the power saved by GPU DVFS alone.
constexpr std::array<NbDvfsPoint, numNbPStates> nb_table = {{
    {1800.0, 800.0, 1.175}, // NB0
    {1600.0, 800.0, 1.0875}, // NB1
    {1400.0, 800.0, 1.0125}, // NB2
    {1100.0, 333.0, 0.95},  // NB3
}};

// Table I, right block.
constexpr std::array<GpuDvfsPoint, numGpuPStates> gpu_table = {{
    {0.95, 351.0},   // DPM0
    {1.05, 450.0},   // DPM1
    {1.125, 553.0},  // DPM2
    {1.1875, 654.0}, // DPM3
    {1.225, 720.0},  // DPM4
}};

} // namespace

const DvfsTables &
DvfsTables::paper()
{
    static const DvfsTables t{cpu_table, nb_table, gpu_table};
    return t;
}

const CpuDvfsPoint &
cpuDvfs(CpuPState s)
{
    auto idx = static_cast<std::size_t>(s);
    GPUPM_ASSERT(idx < cpu_table.size(), "bad CPU P-state ", idx);
    return cpu_table[idx];
}

const NbDvfsPoint &
nbDvfs(NbPState s)
{
    auto idx = static_cast<std::size_t>(s);
    GPUPM_ASSERT(idx < nb_table.size(), "bad NB P-state ", idx);
    return nb_table[idx];
}

const GpuDvfsPoint &
gpuDvfs(GpuPState s)
{
    auto idx = static_cast<std::size_t>(s);
    GPUPM_ASSERT(idx < gpu_table.size(), "bad GPU DPM state ", idx);
    return gpu_table[idx];
}

std::string
toString(CpuPState s)
{
    return "P" + std::to_string(static_cast<int>(s) + 1);
}

std::string
toString(NbPState s)
{
    return "NB" + std::to_string(static_cast<int>(s));
}

std::string
toString(GpuPState s)
{
    return "DPM" + std::to_string(static_cast<int>(s));
}

} // namespace gpupm::hw
