#include "hw/model.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/logging.hpp"
#include "hw/power_model.hpp"

namespace gpupm::hw {

ConfigDescriptor
makeConfigDescriptor(const ApuParams &params, const HwConfig &c)
{
    const auto &d = params.dvfs;
    const auto &cpu = d.cpuPoint(c.cpu);
    const auto &nb = d.nbPoint(c.nb);
    const auto &gpu = d.gpuPoint(c.gpu);
    const PowerModel power_model(params);
    const Volts vrail = power_model.railVoltage(c);

    // Clocks normalize against the model's own top states so descriptors
    // stay in the same [0, 1]-ish range on every catalog entry.
    ConfigDescriptor f{};
    int i = 0;
    f[i++] = cpu.freq / d.cpu.front().freq;
    f[i++] = cpu.voltage;
    f[i++] = nb.nbFreq / d.nb.front().nbFreq;
    f[i++] = nb.memFreq / d.nb.front().memFreq;
    f[i++] = gpu.freq / d.gpu.back().freq;
    f[i++] = vrail;
    f[i++] = c.cus / 8.0;
    return f;
}

namespace {

GpuPState
highestGpu(const ConfigSpaceOptions &opts)
{
    GPUPM_ASSERT(!opts.gpuStates.empty(), "empty GPU state list");
    return *std::max_element(opts.gpuStates.begin(), opts.gpuStates.end());
}

GpuPState
lowestGpu(const ConfigSpaceOptions &opts)
{
    GPUPM_ASSERT(!opts.gpuStates.empty(), "empty GPU state list");
    return *std::min_element(opts.gpuStates.begin(), opts.gpuStates.end());
}

int
maxCus(const ConfigSpaceOptions &opts)
{
    GPUPM_ASSERT(!opts.cuCounts.empty(), "empty CU count list");
    return *std::max_element(opts.cuCounts.begin(), opts.cuCounts.end());
}

int
minCus(const ConfigSpaceOptions &opts)
{
    GPUPM_ASSERT(!opts.cuCounts.empty(), "empty CU count list");
    return *std::min_element(opts.cuCounts.begin(), opts.cuCounts.end());
}

} // namespace

HardwareModel::HardwareModel(std::string name, ApuParams params,
                             ConfigSpaceOptions space_opts)
    : _name(std::move(name)), _params(params), _spaceOpts(space_opts),
      _space(space_opts)
{
    GPUPM_ASSERT(!_name.empty(), "hardware model needs a name");

    // Anchors clamp the paper's empirical configurations into this
    // model's space; on the paper space they equal the Sec. IV/V values
    // ([P7,NB2,DPM4,8], [P1,NB0,DPM4,8], [P7,NB3,DPM0,2], [P7,NB0,DPM4,8]).
    const GpuPState gpu_hi = highestGpu(_spaceOpts);
    const GpuPState gpu_lo = lowestGpu(_spaceOpts);
    const int cu_hi = maxCus(_spaceOpts);
    const int cu_lo = minCus(_spaceOpts);
    _failSafe = {CpuPState::P7, NbPState::NB2, gpu_hi, cu_hi};
    _maxPerformance = {CpuPState::P1, NbPState::NB0, gpu_hi, cu_hi};
    _minPower = {CpuPState::P7, NbPState::NB3, gpu_lo, cu_lo};
    _race = {CpuPState::P7, NbPState::NB0, gpu_hi, cu_hi};

    _descriptors.reserve(denseConfigCount);
    for (std::size_t i = 0; i < denseConfigCount; ++i)
        _descriptors.push_back(
            makeConfigDescriptor(_params, denseConfigAt(i)));
}

struct HardwareCatalog::Impl
{
    mutable std::mutex mutex;
    std::map<std::string, HardwareModelPtr> models;
};

namespace {

/** A ~45 W part: lower clocks/voltages, 6-CU GPU, shallower floors. */
ApuParams
ecoApuParams()
{
    ApuParams p;
    p.cpuCeff = 4.5e-9;
    p.cuCeff = 3.0e-9;
    p.memPowerHi = 2.2;
    p.memPowerLo = 1.0;
    p.tdp = 45.0;
    p.capFloorWatts = 3.0;
    p.dvfs.cpu = {{
        {1.225, 3200.0}, // P1
        {1.2, 3000.0},   // P2
        {1.15, 2800.0},  // P3
        {1.1, 2600.0},   // P4
        {1.0, 2200.0},   // P5
        {0.925, 1800.0}, // P6
        {0.85, 1300.0},  // P7
    }};
    p.dvfs.nb = {{
        {1400.0, 667.0, 1.05}, // NB0
        {1300.0, 667.0, 1.0},  // NB1
        {1150.0, 667.0, 0.95}, // NB2
        {900.0, 333.0, 0.9},   // NB3
    }};
    p.dvfs.gpu = {{
        {0.9, 300.0},   // DPM0
        {0.975, 380.0}, // DPM1
        {1.05, 465.0},  // DPM2
        {1.1, 540.0},   // DPM3
        {1.15, 600.0},  // DPM4
    }};
    return p;
}

/** A ~140 W part: higher clocks, full GPU DVFS ladder, deeper floors. */
ApuParams
perfApuParams()
{
    ApuParams p;
    p.cpuCeff = 7.0e-9;
    p.cuCeff = 4.2e-9;
    p.memPowerHi = 3.8;
    p.memPowerLo = 1.8;
    p.tdp = 140.0;
    p.capFloorWatts = 6.0;
    p.dvfs.cpu = {{
        {1.375, 4300.0},  // P1
        {1.35, 4200.0},   // P2
        {1.3, 4000.0},    // P3
        {1.2625, 3800.0}, // P4
        {1.1, 3300.0},    // P5
        {1.0, 2700.0},    // P6
        {0.9, 1900.0},    // P7
    }};
    p.dvfs.nb = {{
        {2100.0, 933.0, 1.2},   // NB0
        {1900.0, 933.0, 1.125}, // NB1
        {1600.0, 933.0, 1.05},  // NB2
        {1300.0, 400.0, 0.975}, // NB3
    }};
    p.dvfs.gpu = {{
        {0.975, 400.0}, // DPM0
        {1.075, 520.0}, // DPM1
        {1.15, 640.0},  // DPM2
        {1.2, 760.0},   // DPM3
        {1.25, 840.0},  // DPM4
    }};
    return p;
}

} // namespace

HardwareCatalog::HardwareCatalog() : _impl(std::make_unique<Impl>())
{
    // Built-in entries. "paper-apu" is the Table I part every golden
    // trace was recorded on; the variants exercise heterogeneous fleets.
    add("paper-apu", ApuParams{}, ConfigSpaceOptions::paperDefault());
    add("eco-apu", ecoApuParams(),
        ConfigSpaceOptions{{GpuPState::DPM0, GpuPState::DPM2,
                            GpuPState::DPM4},
                           {2, 4, 6}});
    add("perf-apu", perfApuParams(), ConfigSpaceOptions::fullGpuDvfs());
}

HardwareCatalog &
HardwareCatalog::instance()
{
    static HardwareCatalog catalog;
    return catalog;
}

HardwareModelPtr
HardwareCatalog::add(std::string name, ApuParams params,
                     ConfigSpaceOptions space_opts)
{
    auto model = std::make_shared<const HardwareModel>(
        name, std::move(params), std::move(space_opts));
    std::lock_guard lock(_impl->mutex);
    auto [it, inserted] = _impl->models.emplace(std::move(name), model);
    if (!inserted) {
        GPUPM_FATAL("hardware model '", it->first,
                    "' is already registered; catalog names identify "
                    "exactly one model per process");
    }
    return model;
}

HardwareModelPtr
HardwareCatalog::find(const std::string &name) const
{
    std::lock_guard lock(_impl->mutex);
    auto it = _impl->models.find(name);
    return it == _impl->models.end() ? nullptr : it->second;
}

HardwareModelPtr
HardwareCatalog::get(const std::string &name) const
{
    if (auto model = find(name))
        return model;
    std::string candidates;
    for (const auto &n : names())
        candidates += (candidates.empty() ? "" : ", ") + n;
    GPUPM_FATAL("unknown hardware model '", name,
                "'; candidates: ", candidates);
}

std::vector<std::string>
HardwareCatalog::names() const
{
    std::lock_guard lock(_impl->mutex);
    std::vector<std::string> out;
    out.reserve(_impl->models.size());
    for (const auto &[name, model] : _impl->models)
        out.push_back(name);
    return out; // std::map iterates sorted
}

HardwareModelPtr
paperApu()
{
    static const HardwareModelPtr model =
        HardwareCatalog::instance().get("paper-apu");
    return model;
}

HardwareModelPtr
makeModel(std::string name, ApuParams params,
          ConfigSpaceOptions space_opts)
{
    return std::make_shared<const HardwareModel>(
        std::move(name), params, space_opts);
}

} // namespace gpupm::hw
