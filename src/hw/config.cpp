#include "hw/config.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gpupm::hw {

std::string
HwConfig::toString() const
{
    return "[" + hw::toString(cpu) + ", " + hw::toString(nb) + ", " +
           hw::toString(gpu) + ", " + std::to_string(cus) + " CUs]";
}

std::string
toString(Knob k)
{
    switch (k) {
      case Knob::CpuDvfs:
        return "cpu";
      case Knob::NbDvfs:
        return "nb";
      case Knob::GpuDvfs:
        return "gpu";
      case Knob::CuCount:
        return "cu";
    }
    GPUPM_PANIC("bad knob");
}

ConfigSpaceOptions
ConfigSpaceOptions::fullGpuDvfs()
{
    ConfigSpaceOptions o;
    o.gpuStates = {GpuPState::DPM0, GpuPState::DPM1, GpuPState::DPM2,
                   GpuPState::DPM3, GpuPState::DPM4};
    return o;
}

ConfigSpaceOptions
ConfigSpaceOptions::fineGrainedCus()
{
    ConfigSpaceOptions o;
    o.cuCounts = {1, 2, 3, 4, 5, 6, 7, 8};
    return o;
}

ConfigSpace::ConfigSpace(const ConfigSpaceOptions &opts) : _opts(opts)
{
    GPUPM_ASSERT(!_opts.gpuStates.empty() && !_opts.cuCounts.empty(),
                 "empty search-space axis");
    GPUPM_ASSERT(std::is_sorted(_opts.gpuStates.begin(),
                                _opts.gpuStates.end()) &&
                     std::is_sorted(_opts.cuCounts.begin(),
                                    _opts.cuCounts.end()),
                 "search-space axes must be in ascending "
                 "performance order");
    // Axes must stay inside the dense enumeration grid; a model's
    // fail-safe is its own top GPU state and CU count (hw::HardwareModel),
    // so smaller parts (e.g. a 6-CU eco APU) are legal spaces.
    GPUPM_ASSERT(_opts.gpuStates.back() <= GpuPState::DPM4 &&
                     _opts.cuCounts.front() >= 1 &&
                     _opts.cuCounts.back() <= 8,
                 "search-space axes exceed the dense config grid");

    for (int c = 0; c < numCpuPStates; ++c) {
        for (int n = 0; n < numNbPStates; ++n) {
            for (GpuPState g : _opts.gpuStates) {
                for (int cu : _opts.cuCounts) {
                    _configs.push_back(HwConfig{
                        static_cast<CpuPState>(c),
                        static_cast<NbPState>(n), g, cu});
                }
            }
        }
    }
}

std::size_t
ConfigSpace::indexOf(const HwConfig &c) const
{
    auto it = std::find(_configs.begin(), _configs.end(), c);
    if (it == _configs.end())
        GPUPM_FATAL("configuration ", c.toString(), " not in search space");
    return static_cast<std::size_t>(it - _configs.begin());
}

const HwConfig &
ConfigSpace::at(std::size_t idx) const
{
    GPUPM_ASSERT(idx < _configs.size(), "config index ", idx,
                 " out of range");
    return _configs[idx];
}

bool
ConfigSpace::contains(const HwConfig &c) const
{
    return std::find(_configs.begin(), _configs.end(), c) != _configs.end();
}

int
ConfigSpace::levels(Knob k) const
{
    switch (k) {
      case Knob::CpuDvfs:
        return numCpuPStates;
      case Knob::NbDvfs:
        return numNbPStates;
      case Knob::GpuDvfs:
        return static_cast<int>(_opts.gpuStates.size());
      case Knob::CuCount:
        return static_cast<int>(_opts.cuCounts.size());
    }
    GPUPM_PANIC("bad knob");
}

int
ConfigSpace::levelOf(const HwConfig &c, Knob k) const
{
    switch (k) {
      case Knob::CpuDvfs:
        // P7 (index 6) is the slowest -> level 0.
        return numCpuPStates - 1 - static_cast<int>(c.cpu);
      case Knob::NbDvfs:
        return numNbPStates - 1 - static_cast<int>(c.nb);
      case Knob::GpuDvfs: {
        const auto &states = _opts.gpuStates;
        auto it = std::find(states.begin(), states.end(), c.gpu);
        GPUPM_ASSERT(it != states.end(), "GPU state not searchable");
        return static_cast<int>(it - states.begin());
      }
      case Knob::CuCount: {
        const auto &counts = _opts.cuCounts;
        auto it = std::find(counts.begin(), counts.end(), c.cus);
        GPUPM_ASSERT(it != counts.end(), "CU count not searchable");
        return static_cast<int>(it - counts.begin());
      }
    }
    GPUPM_PANIC("bad knob");
}

HwConfig
ConfigSpace::withLevel(const HwConfig &c, Knob k, int level) const
{
    GPUPM_ASSERT(level >= 0 && level < levels(k), "level ", level,
                 " out of range for knob ", toString(k));
    HwConfig out = c;
    switch (k) {
      case Knob::CpuDvfs:
        out.cpu = static_cast<CpuPState>(numCpuPStates - 1 - level);
        break;
      case Knob::NbDvfs:
        out.nb = static_cast<NbPState>(numNbPStates - 1 - level);
        break;
      case Knob::GpuDvfs:
        out.gpu = _opts.gpuStates[static_cast<std::size_t>(level)];
        break;
      case Knob::CuCount:
        out.cus = _opts.cuCounts[static_cast<std::size_t>(level)];
        break;
    }
    return out;
}

HwConfig
ConfigSpace::failSafe()
{
    return HwConfig{CpuPState::P7, NbPState::NB2, GpuPState::DPM4, 8};
}

HwConfig
ConfigSpace::maxPerformance()
{
    return HwConfig{CpuPState::P1, NbPState::NB0, GpuPState::DPM4, 8};
}

HwConfig
ConfigSpace::minPower()
{
    return HwConfig{CpuPState::P7, NbPState::NB3, GpuPState::DPM0, 2};
}

} // namespace gpupm::hw
