/**
 * @file
 * Named, immutable hardware models and the fleet catalog.
 *
 * A HardwareModel bundles everything a governor or session needs to
 * know about the part it manages — calibration parameters (with their
 * DVFS tables), the searchable configuration space, the derived anchor
 * configurations (fail-safe, max-performance, min-power, race-to-idle)
 * and a dense per-config feature/descriptor table — behind one shared,
 * immutable handle. Sessions in one fleet can hold different models,
 * which is what makes heterogeneous fleets possible: nothing in the
 * stack consults process-global hardware state anymore.
 *
 * Models live in the process-wide HardwareCatalog under unique names.
 * "paper-apu" (the paper's A10-7850K, Table I) is always present and is
 * the default everywhere; registering a name twice is fatal, so a name
 * observed in a trace or on the wire identifies exactly one model for
 * the lifetime of the process.
 */

#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "hw/config.hpp"
#include "hw/params.hpp"

namespace gpupm::hw {

/**
 * Numeric description of one configuration on one model: normalized
 * clocks, voltages, rail voltage and CU fraction. Layout matches
 * ml::ConfigFeatures (the config-dependent feature suffix) so predictor
 * rows can be assembled straight from a model's descriptor table.
 */
inline constexpr int numConfigDescriptors = 7;
using ConfigDescriptor = std::array<double, numConfigDescriptors>;

/**
 * Descriptor of @p c under @p params: clocks normalized against the
 * model's own top states, voltages, the solved rail voltage and the CU
 * fraction. ml::makeConfigFeatures delegates here; with the paper
 * parameters the result is bit-identical to the pre-catalog features.
 */
ConfigDescriptor makeConfigDescriptor(const ApuParams &params,
                                      const HwConfig &c);

class HardwareModel;
using HardwareModelPtr = std::shared_ptr<const HardwareModel>;

/**
 * One immutable hardware model. Construct via HardwareCatalog — every
 * model is shared_ptr-held and referenced by name; copying is deleted
 * so a model's identity is always the handle, never a value.
 */
class HardwareModel
{
  public:
    HardwareModel(std::string name, ApuParams params,
                  ConfigSpaceOptions space_opts);

    HardwareModel(const HardwareModel &) = delete;
    HardwareModel &operator=(const HardwareModel &) = delete;

    const std::string &name() const { return _name; }
    const ApuParams &params() const { return _params; }
    const ConfigSpace &space() const { return _space; }
    const ConfigSpaceOptions &spaceOptions() const { return _spaceOpts; }

    Watts tdp() const { return _params.tdp; }
    /** Arbiter demand floor of one session on this part (W). */
    Watts capFloorWatts() const { return _params.capFloorWatts; }

    /**
     * Fail-safe configuration (Sec. IV-A1a): near-maximal GPU
     * performance with the busy-waiting CPU kept low, clamped into this
     * model's space. [P7, NB2, DPM4, 8 CUs] on the paper model.
     */
    const HwConfig &failSafe() const { return _failSafe; }

    /** Highest-performance member of the space. */
    const HwConfig &maxPerformance() const { return _maxPerformance; }

    /** Lowest-power member of the space. */
    const HwConfig &minPower() const { return _minPower; }

    /**
     * Race-to-idle probe configuration the MPC profiling run starts
     * from: full GPU throttle with the CPU at its floor.
     */
    const HwConfig &race() const { return _race; }

    /** Dense descriptor table entry for @p c (O(1), precomputed). */
    const ConfigDescriptor &descriptor(const HwConfig &c) const
    {
        return _descriptors[denseConfigIndex(c)];
    }

    /** Descriptor at a dense config index (see hw::denseConfigIndex). */
    const ConfigDescriptor &descriptorAt(std::size_t dense_idx) const
    {
        return _descriptors[dense_idx];
    }

  private:
    std::string _name;
    ApuParams _params;
    ConfigSpaceOptions _spaceOpts;
    ConfigSpace _space;
    HwConfig _failSafe;
    HwConfig _maxPerformance;
    HwConfig _minPower;
    HwConfig _race;
    std::vector<ConfigDescriptor> _descriptors;
};

/**
 * Process-wide registry of hardware models. Thread-safe. The built-in
 * entries ("paper-apu", "eco-apu", "perf-apu") are registered on first
 * access; registering a duplicate name is fatal.
 */
class HardwareCatalog
{
  public:
    static HardwareCatalog &instance();

    /** Register a new model; fatal if the name is already taken. */
    HardwareModelPtr add(std::string name, ApuParams params,
                         ConfigSpaceOptions space_opts);

    /** Model by name, or nullptr when unknown. */
    HardwareModelPtr find(const std::string &name) const;

    /** Model by name; fatal with the candidate list when unknown. */
    HardwareModelPtr get(const std::string &name) const;

    /** Registered model names, sorted. */
    std::vector<std::string> names() const;

  private:
    HardwareCatalog();

    struct Impl;
    std::unique_ptr<Impl> _impl;
};

/** Catalog name of the always-present default model. */
inline constexpr const char *paperApuName = "paper-apu";

/** The always-present default model (the paper's APU, Table I). */
HardwareModelPtr paperApu();

/**
 * Build a model handle *without* registering it in the catalog: for
 * tests and ad-hoc variants that must not collide with (or leak into)
 * the process-wide namespace. Catalog lookups will not find it; hand
 * the handle around explicitly.
 */
HardwareModelPtr makeModel(std::string name, ApuParams params,
                           ConfigSpaceOptions space_opts = {});

} // namespace gpupm::hw
