#include "hw/thermal.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace gpupm::hw {

ThermalModel::ThermalModel(const ApuParams &params)
    : _p(params), _temp(params.ambient)
{
}

Celsius
ThermalModel::steadyState(Watts total_power) const
{
    return _p.ambient + _p.thermalResistance * total_power;
}

Celsius
ThermalModel::advance(Watts total_power, Seconds dt)
{
    GPUPM_ASSERT(dt >= 0.0, "negative time step ", dt);
    const Celsius target = steadyState(total_power);
    const double decay = std::exp(-dt / _p.thermalTau);
    _temp = target + (_temp - target) * decay;
    return _temp;
}

void
ThermalModel::reset()
{
    _temp = _p.ambient;
}

bool
ThermalModel::exceedsTdp(Watts total_power) const
{
    return total_power > _p.tdp;
}

} // namespace gpupm::hw
