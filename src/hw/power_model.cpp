#include "hw/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace gpupm::hw {

const ApuParams &
ApuParams::defaults()
{
    static const ApuParams p{};
    return p;
}

PowerModel::PowerModel(const ApuParams &params) : _p(params) {}

Volts
PowerModel::railVoltage(const HwConfig &c) const
{
    return std::max(_p.dvfs.gpuPoint(c.gpu).voltage,
                    _p.dvfs.nbPoint(c.nb).minRailVoltage);
}

PowerBreakdown
PowerModel::power(const HwConfig &c, const ActivityFactors &a,
                  Celsius temp) const
{
    GPUPM_ASSERT(c.cus >= 1 && c.cus <= 8, "bad CU count ", c.cus);

    const auto &cpu = _p.dvfs.cpuPoint(c.cpu);
    const auto &nb = _p.dvfs.nbPoint(c.nb);
    const auto &gpu = _p.dvfs.gpuPoint(c.gpu);
    const Volts vrail = railVoltage(c);

    const double leak_scale =
        std::exp(_p.leakTempSlope * (temp - _p.leakRefTemp));

    PowerBreakdown out;

    // CPU plane: all cores share one voltage/frequency.
    out.cpuDynamic = _p.cpuCeff * cpu.voltage * cpu.voltage *
                     mhzToHz(cpu.freq) * std::clamp(a.cpu, 0.0, 1.0);
    out.cpuLeakage = _p.cpuLeakCoeff * cpu.voltage * leak_scale;

    // GPU: per-CU dynamic power gated by compute activity; inactive CUs
    // are power-gated. Leakage splits into a per-CU part (power-gated
    // with the CU) and an uncore part that is always on.
    const double gpu_act =
        _p.gpuIdleActivity +
        (1.0 - _p.gpuIdleActivity) * std::clamp(a.gpuCompute, 0.0, 1.0);
    out.gpuDynamic =
        c.cus * _p.cuCeff * vrail * vrail * mhzToHz(gpu.freq) * gpu_act;
    const double cu_fraction = static_cast<double>(c.cus) / 8.0;
    out.gpuLeakage = _p.gpuLeakCoeff * vrail * leak_scale *
                     (_p.gpuLeakPerCuFraction * cu_fraction +
                      (1.0 - _p.gpuLeakPerCuFraction));

    // NB: rail voltage, NB clock, activity tracks memory utilization.
    const double nb_act =
        _p.nbIdleActivity +
        (1.0 - _p.nbIdleActivity) * std::clamp(a.memory, 0.0, 1.0);
    out.nbDynamic = _p.nbCeff * vrail * vrail * mhzToHz(nb.nbFreq) * nb_act;

    // DRAM interface: two discrete memory clocks in Table I.
    const Watts mem_peak = nb.memFreq > 500.0 ? _p.memPowerHi
                                              : _p.memPowerLo;
    out.memInterface =
        mem_peak * (_p.memIdleFraction +
                    (1.0 - _p.memIdleFraction) *
                        std::clamp(a.memory, 0.0, 1.0));

    return out;
}

PowerBreakdown
PowerModel::steadyStatePower(const HwConfig &c, const ActivityFactors &a,
                             Celsius *settled_temp) const
{
    Celsius temp = _p.leakRefTemp;
    PowerBreakdown pb;
    // Leakage and temperature form a gentle fixed point; a handful of
    // iterations settles well below 0.01 C.
    for (int iter = 0; iter < 8; ++iter) {
        pb = power(c, a, temp);
        temp = _p.ambient + _p.thermalResistance * pb.total();
    }
    if (settled_temp)
        *settled_temp = temp;
    return pb;
}

} // namespace gpupm::hw
