/**
 * @file
 * First-order RC thermal model of the APU package.
 *
 * Die temperature relaxes exponentially toward the steady-state implied
 * by the current total power: T_ss = T_amb + R_th * P. Used by the
 * execution model to carry temperature (and hence leakage) across kernel
 * invocations, and by the Turbo Core baseline for TDP headroom checks.
 */

#pragma once

#include "hw/params.hpp"

namespace gpupm::hw {

class ThermalModel
{
  public:
    explicit ThermalModel(const ApuParams &params);
    explicit ThermalModel(ApuParams &&) = delete;

    /** Current die temperature (C). */
    Celsius temperature() const { return _temp; }

    /** Steady-state temperature for a given total power. */
    Celsius steadyState(Watts total_power) const;

    /**
     * Advance the model by @p dt seconds at constant power.
     * @return The temperature at the end of the interval.
     */
    Celsius advance(Watts total_power, Seconds dt);

    /** Reset to ambient. */
    void reset();

    /**
     * Whether a sustained power level would exceed the TDP. Turbo Core
     * uses this to decide when to shift power between the planes.
     */
    bool exceedsTdp(Watts total_power) const;

    const ApuParams &params() const { return _p; }

  private:
    ApuParams _p;
    Celsius _temp;
};

} // namespace gpupm::hw
