/**
 * @file
 * DVFS/CU reconfiguration latency model.
 *
 * A configuration change is not free on real hardware: the voltage
 * regulators slew both power planes, clock domains whose frequency
 * changes relock their PLLs, and CUs being (un)gated drain or restore
 * state. The planes transition in parallel; within a plane the ramp
 * and relock serialize.
 */

#pragma once

#include "hw/config.hpp"
#include "hw/params.hpp"
#include "hw/power_model.hpp"

namespace gpupm::hw {

class TransitionModel
{
  public:
    explicit TransitionModel(const ApuParams &params);
    explicit TransitionModel(ApuParams &&) = delete;

    /**
     * Latency of switching the APU from @p from to @p to; zero when
     * the configurations are identical.
     */
    Seconds latency(const HwConfig &from, const HwConfig &to) const;

    const TransitionParams &params() const { return _p.transition; }

  private:
    ApuParams _p;
    PowerModel _power;
};

} // namespace gpupm::hw
