#include "powercap/arbiter.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace gpupm::powercap {

FleetCapArbiter::FleetCapArbiter(const ArbiterOptions &opts,
                                 telemetry::Registry *registry)
    : _opts(opts), _registry(registry)
{
    GPUPM_ASSERT(_opts.window > 0, "cap window must be positive");
    GPUPM_ASSERT(_opts.sustain > 0, "cap sustain must be positive");
    GPUPM_ASSERT(_opts.recover > 0, "cap recover must be positive");
    GPUPM_ASSERT(_opts.recoverFraction > 0.0 &&
                     _opts.recoverFraction <= 1.0,
                 "cap recover fraction must be within (0, 1]");
    GPUPM_ASSERT(_opts.backoffFraction > 0.0 &&
                     _opts.backoffFraction < 1.0,
                 "cap backoff fraction must be within (0, 1)");
    GPUPM_ASSERT(_opts.tickEvery > 0, "cap tick period must be positive");
}

FleetCapArbiter::~FleetCapArbiter() = default;

Watts
FleetCapArbiter::floorFor(const SessionCap &slot) const
{
    return std::max(_opts.floorWatts, slot.floor);
}

SessionCap *
FleetCapArbiter::registerSession(std::uint64_t id, Watts demand,
                                 double weight, Watts floor)
{
    GPUPM_ASSERT(demand >= 0.0, "negative session power demand");
    GPUPM_ASSERT(weight > 0.0, "session cap weight must be positive");
    GPUPM_ASSERT(floor >= 0.0, "negative session cap floor");
    std::lock_guard<std::mutex> lock(_mutex);
    auto slot = std::make_unique<SessionCap>();
    slot->id = id;
    slot->demand = demand;
    slot->rolling = demand;
    slot->weight = weight;
    slot->floor = floor;
    SessionCap *out = slot.get();
    _slots.push_back(std::move(slot));
    // Provisional equal split over the fleet registered so far - O(1),
    // so registering a 100k-session fleet stays linear (re-splitting
    // everyone here would be quadratic). Callers register everything up
    // front and rebalance() once afterwards; that single policy-aware
    // split is what later ticks idempotently reproduce.
    out->_share.store(
        std::max(floorFor(*out),
                 _opts.budgetWatts / static_cast<double>(_slots.size())),
        std::memory_order_relaxed);
    updateCapLocked(*out);
    return out;
}

void
FleetCapArbiter::unregisterSession(SessionCap *slot)
{
    if (slot == nullptr)
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = std::find_if(
        _slots.begin(), _slots.end(),
        [slot](const auto &p) { return p.get() == slot; });
    GPUPM_ASSERT(it != _slots.end(), "unregistering an unknown cap slot");
    _slots.erase(it);
    // Deliberately no automatic re-split here: finish/eviction order
    // is nondeterministic, and surviving deterministic sessions must
    // not see their caps move because a neighbour went away. The next
    // tick (idempotent in deterministic mode, demand-refreshing in
    // live mode) folds the departure in.
}

void
FleetCapArbiter::rebalanceLocked()
{
    const std::size_t n = _slots.size();
    if (n == 0)
        return;
    double total = 0.0;
    for (const auto &slot : _slots) {
        switch (_opts.policy) {
          case SplitPolicy::EqualShare:
            total += 1.0;
            break;
          case SplitPolicy::UsageProportional:
            total += _opts.liveUsage ? slot->rolling : slot->demand;
            break;
          case SplitPolicy::PriorityWeighted:
            total += slot->weight;
            break;
        }
    }
    for (auto &slot : _slots) {
        double numer = 1.0;
        switch (_opts.policy) {
          case SplitPolicy::EqualShare:
            numer = 1.0;
            break;
          case SplitPolicy::UsageProportional:
            numer = _opts.liveUsage ? slot->rolling : slot->demand;
            break;
          case SplitPolicy::PriorityWeighted:
            numer = slot->weight;
            break;
        }
        // A zero-demand fleet (all-idle usage split) degrades to
        // equal-share rather than dividing by zero.
        const double frac =
            total > 0.0 ? numer / total : 1.0 / static_cast<double>(n);
        const Watts share = std::max(floorFor(*slot),
                                     _opts.budgetWatts * frac);
        slot->_share.store(share, std::memory_order_relaxed);
        updateCapLocked(*slot);
    }
}

void
FleetCapArbiter::updateCapLocked(SessionCap &slot)
{
    const Watts share = slot._share.load(std::memory_order_relaxed);
    const Watts cap = std::max(floorFor(slot), share * slot._throttle);
    slot._cap.store(cap, std::memory_order_relaxed);
}

void
FleetCapArbiter::report(SessionCap *slot, Watts measured,
                        Watts enforcedCap)
{
    GPUPM_ASSERT(slot != nullptr, "report() without a cap slot");
    std::lock_guard<std::mutex> lock(_mutex);
    if (measured > enforcedCap) {
        _violations.fetch_add(1, std::memory_order_relaxed);
        if (_registry != nullptr)
            _registry->counter("powercap.violations").add(1);
    }
    // Rolling demand for liveUsage re-splits; harmless (and unread)
    // in deterministic mode.
    slot->rolling = 0.8 * slot->rolling + 0.2 * measured;
    slot->netError += measured - enforcedCap;
    slot->powerSum += measured;
    if (++slot->samples >= _opts.window)
        rollWindowLocked(*slot, enforcedCap);
}

void
FleetCapArbiter::rollWindowLocked(SessionCap &slot, Watts enforcedCap)
{
    const bool over = slot.netError > 0.0;
    const double mean =
        slot.powerSum / static_cast<double>(slot.samples);
    slot.samples = 0;
    slot.netError = 0.0;
    slot.powerSum = 0.0;

    if (over) {
        // Any over-cap window resets the calm streak: relaxing always
        // requires `recover` *consecutive* quiet windows.
        slot.calmWindows = 0;
        if (++slot.overWindows >= _opts.sustain) {
            slot.overWindows = 0;
            const bool was_clean = slot._throttle >= 1.0;
            const Watts share =
                slot._share.load(std::memory_order_relaxed);
            const double floor_scale =
                share > 0.0 ? floorFor(slot) / share : 1.0;
            slot._throttle = std::max(
                std::min(floor_scale, 1.0),
                slot._throttle * _opts.backoffFraction);
            updateCapLocked(slot);
            if (was_clean && slot._throttle < 1.0) {
                _enters.fetch_add(1, std::memory_order_relaxed);
                if (_registry != nullptr)
                    _registry->counter("powercap.throttle_enters")
                        .add(1);
            }
            if (_registry != nullptr)
                _registry->counter("powercap.cap_tightened").add(1);
        }
        return;
    }
    slot.overWindows = 0;
    if (slot._throttle >= 1.0)
        return; // Nothing to relax.
    if (mean < enforcedCap * _opts.recoverFraction) {
        if (++slot.calmWindows >= _opts.recover) {
            slot.calmWindows = 0;
            slot._throttle =
                std::min(1.0, slot._throttle / _opts.backoffFraction);
            updateCapLocked(slot);
            if (slot._throttle >= 1.0) {
                _exits.fetch_add(1, std::memory_order_relaxed);
                if (_registry != nullptr)
                    _registry->counter("powercap.throttle_exits")
                        .add(1);
            }
            if (_registry != nullptr)
                _registry->counter("powercap.cap_relaxed").add(1);
        }
    } else {
        // Under the cap but above the recovery band: inside the
        // hysteresis gap. Not calm - restart the streak, so relaxing
        // always means `recover` consecutive genuinely quiet windows.
        slot.calmWindows = 0;
    }
}

void
FleetCapArbiter::onDecision()
{
    const std::uint64_t n =
        _decisions.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % _opts.tickEvery == 0)
        rebalance();
}

void
FleetCapArbiter::rebalance()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        rebalanceLocked();
    }
    _ticks.fetch_add(1, std::memory_order_relaxed);
    if (_registry != nullptr)
        _registry->counter("powercap.arbiter_ticks").add(1);
}

std::size_t
FleetCapArbiter::sessionCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _slots.size();
}

} // namespace gpupm::powercap
