/**
 * @file
 * Fleet-wide power-cap arbitration.
 *
 * The MPC governor optimizes each session against its own alpha
 * slowdown budget; nothing session-local prevents a fleet of them from
 * blowing past a rack-level wattage cap. FleetCapArbiter owns that
 * fleet budget: it splits a total wattage cap into per-session caps
 * under a configurable policy (equal-share, usage-proportional,
 * priority-weighted) and then regulates each session's *working* cap
 * from its measured power with a windowed net-error accumulator and
 * enter/exit hysteresis - the same controller structure as the shed
 * controller (serve/shed.hpp), which both follow HPDCS/NAS-powercap's
 * powercap heuristics: accumulate the signed error against the cap
 * over a fixed window, act only when `sustain` whole windows agree,
 * and relax only after `recover` consecutive windows whose mean power
 * sits inside the recovery band.
 *
 * Determinism contract (the fleet golden traces lean on this): every
 * violation window is counted in the session's *own decision stream*,
 * never in wall time, so a session's cap trajectory depends only on
 * its own decisions. The fleet-level split reads each session's
 * registration-time demand (the deterministically measured Turbo
 * baseline power), so once runFleet has created all sessions and
 * called rebalance(), tick() is idempotent - workers may call it at
 * any wall-clock moment without perturbing any session's trajectory.
 * Live servers (gpupm serve) opt into usage re-splits from rolling
 * measured power with ArbiterOptions::liveUsage; that mode trades the
 * byte-identity guarantee for responsiveness, which is the right
 * trade on a real wire where tenants come and go anyway.
 *
 * Thread model: registration/unregistration and window rollovers are
 * resolved under one mutex (report() takes it once per decision, like
 * ShedController::sample); the per-session working cap itself is a
 * relaxed atomic that sessions read per decision without locking.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/units.hpp"

namespace gpupm::telemetry {
class Registry;
}

namespace gpupm::powercap {

/** How the fleet budget is split into per-session shares. */
enum class SplitPolicy
{
    /** budget / n for every session. */
    EqualShare,
    /** Proportional to measured demand (registration-time baseline
     *  power; rolling measured power with liveUsage). */
    UsageProportional,
    /** Proportional to the session's priority weight. */
    PriorityWeighted,
};

struct ArbiterOptions
{
    /** Total fleet budget in watts; <= 0 disables the arbiter. */
    Watts budgetWatts = 0.0;
    SplitPolicy policy = SplitPolicy::EqualShare;
    /** Decisions per violation window (per session). */
    std::size_t window = 16;
    /** Consecutive over-cap windows required to tighten. */
    std::size_t sustain = 2;
    /** Consecutive calm windows required to relax one step. */
    std::size_t recover = 2;
    /**
     * Recovery band: a calm window must average below
     * cap * recoverFraction. The gap between 1.0 and this fraction is
     * the hysteresis band that keeps a loaded session from flapping
     * between tighten and relax at window granularity.
     */
    double recoverFraction = 0.9;
    /** Working-cap multiplier applied per tighten step (and divided
     *  back out per relax step). */
    double backoffFraction = 0.85;
    /** Per-session caps never tighten below this (the DVFS floor:
     *  roughly the fail-safe configuration's idle draw). Sessions on
     *  hardware models with a higher capFloorWatts keep their model's
     *  floor instead (see registerSession's floor parameter). */
    Watts floorWatts = 4.0;
    /** Fleet decisions between arbiter re-split ticks. */
    std::size_t tickEvery = 256;
    /**
     * Re-split from rolling measured per-session power instead of the
     * registration-time baseline demand. Live-server mode only: it
     * makes tick() timing observable, which forfeits fleet-trace
     * byte-identity (see the file comment).
     */
    bool liveUsage = false;

    bool enabled() const { return budgetWatts > 0.0; }
};

/**
 * Per-session cap state. Sessions hold the pointer returned by
 * registerSession() and read cap() lock-free on every decision; all
 * mutation happens inside the arbiter under its mutex.
 */
class SessionCap
{
  public:
    /** Current working cap in watts (relaxed read, any thread). */
    Watts
    cap() const
    {
        return _cap.load(std::memory_order_relaxed);
    }

    /** The session's allocated share of the fleet budget. */
    Watts
    share() const
    {
        return _share.load(std::memory_order_relaxed);
    }

    /** Working-cap multiplier in (0, 1]; < 1 while throttled. */
    double
    throttle() const
    {
        return _throttle;
    }

  private:
    friend class FleetCapArbiter;

    std::uint64_t id = 0;
    /** Registration-time demand (baseline mean power). */
    Watts demand = 0.0;
    /** Rolling measured power (EWMA; liveUsage re-splits read it). */
    Watts rolling = 0.0;
    double weight = 1.0;
    /** Per-session floor (hardware-model capFloorWatts); 0 = none. */
    Watts floor = 0.0;

    std::atomic<Watts> _share{std::numeric_limits<Watts>::infinity()};
    std::atomic<Watts> _cap{std::numeric_limits<Watts>::infinity()};
    double _throttle = 1.0;

    // Windowed net-error accumulator (NAS-powercap idiom), advanced
    // only by this session's own decisions.
    std::size_t samples = 0;
    double netError = 0.0; ///< Sum of measured - cap over the window.
    double powerSum = 0.0; ///< Sum of measured (mean at rollover).
    std::size_t overWindows = 0;
    std::size_t calmWindows = 0;
};

class FleetCapArbiter
{
  public:
    explicit FleetCapArbiter(const ArbiterOptions &opts,
                             telemetry::Registry *registry = nullptr);
    ~FleetCapArbiter();

    FleetCapArbiter(const FleetCapArbiter &) = delete;
    FleetCapArbiter &operator=(const FleetCapArbiter &) = delete;

    bool enabled() const { return _opts.enabled(); }
    const ArbiterOptions &options() const { return _opts; }
    Watts budgetWatts() const { return _opts.budgetWatts; }

    /**
     * Register one session. @p demand is its measured standalone power
     * (the Turbo baseline mean - deterministic at session creation),
     * @p weight its priority for SplitPolicy::PriorityWeighted, and
     * @p floor the session's hardware-model cap floor in watts (0 =
     * none); the session's caps never tighten below
     * max(options().floorWatts, floor), so a high-TDP model in a mixed
     * fleet is never starved below its own DVFS floor. The returned
     * handle stays valid until unregisterSession(); it is assigned a
     * share from the demands registered so far, so callers that
     * register a whole fleet up front should rebalance() once
     * afterwards (runFleet does).
     */
    SessionCap *registerSession(std::uint64_t id, Watts demand,
                                double weight = 1.0, Watts floor = 0.0);
    void unregisterSession(SessionCap *slot);

    /**
     * Feed one decision's measured power into @p slot's violation
     * window. @p enforcedCap is the effective cap the session actually
     * enforced (its working cap, possibly thermal-clamped); measured
     * power above it counts as a cap violation.
     */
    void report(SessionCap *slot, Watts measured, Watts enforcedCap);

    /**
     * Count one fleet decision; every options().tickEvery decisions
     * the caller-side stream triggers a rebalance tick. Workers call
     * this after each processed request.
     */
    void onDecision();

    /** Re-split shares now (counts as an arbiter tick). */
    void rebalance();

    std::size_t sessionCount() const;
    std::uint64_t violations() const
    {
        return _violations.load(std::memory_order_relaxed);
    }
    std::uint64_t ticks() const
    {
        return _ticks.load(std::memory_order_relaxed);
    }
    std::uint64_t throttleEnters() const
    {
        return _enters.load(std::memory_order_relaxed);
    }
    std::uint64_t throttleExits() const
    {
        return _exits.load(std::memory_order_relaxed);
    }

  private:
    void rebalanceLocked();
    void rollWindowLocked(SessionCap &slot, Watts enforcedCap);
    void updateCapLocked(SessionCap &slot);
    /** The floor governing @p slot: the fleet floor or the session's
     *  hardware-model floor, whichever is higher. */
    Watts floorFor(const SessionCap &slot) const;

    ArbiterOptions _opts;
    telemetry::Registry *_registry = nullptr;

    mutable std::mutex _mutex;
    std::vector<std::unique_ptr<SessionCap>> _slots;

    std::atomic<std::uint64_t> _decisions{0};
    std::atomic<std::uint64_t> _violations{0};
    std::atomic<std::uint64_t> _ticks{0};
    std::atomic<std::uint64_t> _enters{0};
    std::atomic<std::uint64_t> _exits{0};
};

} // namespace gpupm::powercap
