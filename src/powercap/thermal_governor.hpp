/**
 * @file
 * Reactive thermal cap governor.
 *
 * A step controller in the style of nv-pwr-ctrl's throttle interface,
 * layered on the first-order RC thermal model (hw/thermal.hpp): each
 * update reads the session's modeled die temperature and answers with
 * one of three actions - PWR_DEC lowers the thermal power ceiling by
 * one step while the die sits above the limit, PWR_INC raises it back
 * while the die sits below limit - band, PWR_CNST holds inside the
 * band. The band is the hysteresis that keeps the ceiling from
 * oscillating one step up and down around the limit. The optional
 * weighted-average variant smooths the temperature input
 * (s = w * T + (1 - w) * s_prev) so single-kernel spikes do not
 * trigger a throttle step; the raw variant reacts within one
 * decision.
 *
 * The ceiling saturates at floorWatts on the way down - the DVFS
 * floor below which the platform cannot usefully run - and at
 * maxCapWatts (the TDP by default) on the way up. clamp() applies the
 * ceiling to the arbiter's per-session cap, so a thermally throttled
 * session obeys min(arbiter cap, thermal cap).
 *
 * Deterministic by construction: state advances only through update()
 * with the session's own modeled temperature, so a session's thermal
 * cap trajectory is a pure function of its own decision stream. Not
 * thread-safe; each session owns one governor and is stepped by one
 * worker at a time.
 */

#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace gpupm::powercap {

/** One throttle action (nv-pwr-ctrl's PWR_INC/PWR_DEC/PWR_CNST). */
enum class CapStep
{
    PWR_INC,
    PWR_DEC,
    PWR_CNST,
};

struct ThermalCapOptions
{
    /** Master switch; a disabled governor never clamps. */
    bool enabled = false;
    /** Die-temperature throttle limit (C). */
    Celsius limit = 85.0;
    /** Hysteresis band below the limit; PWR_INC only below
     *  limit - band. */
    Celsius band = 3.0;
    /** Ceiling change per PWR_INC/PWR_DEC step (W). */
    Watts stepWatts = 2.0;
    /** Ceiling starting point and upper saturation (the TDP). */
    Watts maxCapWatts = 95.0;
    /** Lower saturation: the DVFS floor. */
    Watts floorWatts = 8.0;
    /** Smooth the temperature with a weighted average instead of
     *  reacting to the raw sample. */
    bool weightedAvg = false;
    /** New-sample weight of the weighted average, in (0, 1]. */
    double wavgWeight = 0.25;
};

class ThermalCapGovernor
{
  public:
    explicit ThermalCapGovernor(const ThermalCapOptions &opts = {});

    bool enabled() const { return _opts.enabled; }
    const ThermalCapOptions &options() const { return _opts; }

    /**
     * Feed one die-temperature sample; steps the ceiling and returns
     * the action taken. Disabled governors always answer PWR_CNST.
     */
    CapStep update(Celsius dieTemp);

    /** Current thermal power ceiling (W). */
    Watts cap() const { return _cap; }

    /** min(@p c, ceiling); identity while disabled. */
    Watts
    clamp(Watts c) const
    {
        if (!_opts.enabled)
            return c;
        return c < _cap ? c : _cap;
    }

    /** Temperature the controller last acted on (smoothed when
     *  weightedAvg; raw otherwise). */
    Celsius smoothedTemp() const { return _smoothed; }

    std::uint64_t decSteps() const { return _decs; }
    std::uint64_t incSteps() const { return _incs; }

    /** Back to the cold state (ceiling at max, no smoothing memory). */
    void reset();

  private:
    ThermalCapOptions _opts;
    Watts _cap = 0.0;
    Celsius _smoothed = 0.0;
    bool _seeded = false; ///< _smoothed holds a sample.
    std::uint64_t _decs = 0;
    std::uint64_t _incs = 0;
};

} // namespace gpupm::powercap
