#include "powercap/thermal_governor.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gpupm::powercap {

ThermalCapGovernor::ThermalCapGovernor(const ThermalCapOptions &opts)
    : _opts(opts)
{
    GPUPM_ASSERT(_opts.band >= 0.0, "thermal band must be >= 0");
    GPUPM_ASSERT(_opts.stepWatts > 0.0, "thermal step must be positive");
    GPUPM_ASSERT(_opts.floorWatts > 0.0 &&
                     _opts.floorWatts <= _opts.maxCapWatts,
                 "thermal floor must be within (0, maxCap]");
    GPUPM_ASSERT(_opts.wavgWeight > 0.0 && _opts.wavgWeight <= 1.0,
                 "wavg weight must be within (0, 1]");
    reset();
}

void
ThermalCapGovernor::reset()
{
    _cap = _opts.maxCapWatts;
    _smoothed = 0.0;
    _seeded = false;
    _decs = 0;
    _incs = 0;
}

CapStep
ThermalCapGovernor::update(Celsius dieTemp)
{
    if (!_opts.enabled)
        return CapStep::PWR_CNST;
    if (_opts.weightedAvg && _seeded) {
        _smoothed = _opts.wavgWeight * dieTemp +
                    (1.0 - _opts.wavgWeight) * _smoothed;
    } else {
        _smoothed = dieTemp;
        _seeded = true;
    }

    if (_smoothed > _opts.limit) {
        if (_cap > _opts.floorWatts) {
            _cap = std::max(_opts.floorWatts, _cap - _opts.stepWatts);
            ++_decs;
            return CapStep::PWR_DEC;
        }
        return CapStep::PWR_CNST; // Saturated at the DVFS floor.
    }
    if (_smoothed < _opts.limit - _opts.band) {
        if (_cap < _opts.maxCapWatts) {
            _cap = std::min(_opts.maxCapWatts, _cap + _opts.stepWatts);
            ++_incs;
            return CapStep::PWR_INC;
        }
        return CapStep::PWR_CNST; // Already fully raised.
    }
    return CapStep::PWR_CNST; // Inside the hysteresis band.
}

} // namespace gpupm::powercap
