#include "exec/replay.hpp"

#include <utility>

#include "common/logging.hpp"
#include "mpc/governor.hpp"
#include "policy/turbo_core.hpp"
#include "sim/governor.hpp"

namespace gpupm::exec {
namespace {

std::unique_ptr<sim::Governor>
makeGovernor(const ReplayOptions &opts,
             const std::shared_ptr<const ml::PerfPowerPredictor>
                 &predictor,
             const hw::HardwareModelPtr &model)
{
    switch (opts.governor) {
    case ReplayGovernor::Mpc:
        GPUPM_ASSERT(predictor != nullptr,
                     "MPC replay needs the original predictor");
        return std::make_unique<mpc::MpcGovernor>(predictor, opts.mpc,
                                                  model);
    case ReplayGovernor::Turbo:
        return std::make_unique<policy::TurboCoreGovernor>(model);
    case ReplayGovernor::Pi:
        return std::make_unique<policy::PiGovernor>(model, opts.pi);
    }
    GPUPM_PANIC("unhandled replay governor");
}

} // namespace

ReplayReport
replayRecords(std::vector<trace::DecisionRecord> records,
              const std::shared_ptr<const ml::PerfPowerPredictor>
                  &predictor,
              const ReplayOptions &opts)
{
    const hw::HardwareModelPtr model =
        opts.model ? opts.model : hw::paperApu();
    // The MPC path reads its QoS from the MPC options; keep the two
    // views coherent so callers can set either.
    ReplayOptions effective = opts;
    if (opts.governor == ReplayGovernor::Mpc)
        effective.qos = opts.mpc.qos;

    trace::sortDecisions(records);

    ReplayReport out;
    std::unique_ptr<sim::Governor> gov;
    std::string cur_app;
    std::uint64_t cur_session = 0;
    std::size_t cur_run = static_cast<std::size_t>(-1);

    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &r = records[i];
        if (!gov || r.app != cur_app || r.session != cur_session) {
            gov = makeGovernor(effective, predictor, model);
            ++out.governors;
            cur_app = r.app;
            cur_session = r.session;
            cur_run = static_cast<std::size_t>(-1);
        }
        if (r.run != cur_run) {
            gov->beginRun(r.app, effective.qos.scaleTarget(
                                     r.targetThroughput));
            cur_run = r.run;
        }

        const sim::Decision d = gov->decide(r.index);
        ++out.decisions;
        const std::size_t replayed = hw::denseConfigIndex(d.config);
        if (replayed != r.configIndex)
            out.divergences.push_back({i, r.configIndex, replayed});

        sim::Observation obs;
        obs.index = r.index;
        obs.tag = r.tag;
        obs.measurement.time = r.measuredTime;
        obs.measurement.gpuPower = r.measuredGpuPower;
        obs.measurement.counters = r.counters;
        obs.measurement.instructions = r.measuredInstructions;
        obs.nonKernelTime = r.nonKernelTime;
        obs.kernelTruth = nullptr; // counter-driven replay only
        gov->observe(obs);
        if (out.governorName.empty())
            out.governorName = gov->name();
    }
    return out;
}

} // namespace gpupm::exec
