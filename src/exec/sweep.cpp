#include "exec/sweep.hpp"

#include <bit>
#include <string_view>

#include "kernel/kernel.hpp"
#include "trace/trace.hpp"

namespace gpupm::exec {

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

namespace {

std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t v)
{
    return mix64(h ^ v);
}

std::uint64_t
hashDouble(std::uint64_t h, double v)
{
    return hashCombine(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t
hashString(std::uint64_t h, std::string_view s)
{
    for (char c : s)
        h = hashCombine(h, static_cast<std::uint64_t>(
                               static_cast<unsigned char>(c)));
    return h;
}

} // namespace

std::uint64_t
kernelSignature(const kernel::KernelParams &k)
{
    std::uint64_t h = 0x6b65726e656c5f31ULL;
    h = hashString(h, k.name);
    h = hashCombine(h, static_cast<std::uint64_t>(k.archetype));
    h = hashDouble(h, k.workItems);
    h = hashDouble(h, k.valuInstsPerItem);
    h = hashDouble(h, k.vfetchInstsPerItem);
    h = hashDouble(h, k.bytesPerItem);
    h = hashDouble(h, k.cacheHitBase);
    h = hashDouble(h, k.cachePressure);
    h = hashDouble(h, k.ldsBankConflict);
    h = hashDouble(h, k.scratchRegs);
    h = hashDouble(h, k.computeMemOverlap);
    h = hashDouble(h, k.serialSeconds);
    h = hashDouble(h, k.serialGpuFreqSensitivity);
    h = hashDouble(h, k.launchCpuSeconds);
    h = hashCombine(h, k.idiosyncrasySeed);
    h = hashDouble(h, k.idiosyncrasyMag);
    return h;
}

SweepEngine::SweepEngine(const SweepOptions &opts)
    : _opts(opts), _jobs(ThreadPool::resolveJobs(opts.jobs))
{
    if (_jobs > 1)
        _pool = std::make_unique<ThreadPool>(_jobs);
}

SweepEngine::~SweepEngine() = default;

Pcg32
SweepEngine::jobRng(std::size_t index) const
{
    // Stream selection keyed on the job index alone: the same job gets
    // the same stream no matter which worker runs it, or how many.
    const auto i = static_cast<std::uint64_t>(index);
    return Pcg32(mix64(_opts.rootSeed ^ i), mix64(i ^ 0x9044ULL));
}

void
SweepEngine::forEach(std::size_t n,
                     const std::function<void(std::size_t, Pcg32 &)> &fn)
{
    if (_jobs == 1 || n <= 1) {
        // Exact serial path: submission order, calling thread.
        for (std::size_t i = 0; i < n; ++i) {
            trace::Span span(trace::Category::Exec, "exec.job", "index",
                             static_cast<double>(i));
            Pcg32 rng = jobRng(i);
            fn(i, rng);
        }
        return;
    }
    _pool->parallelFor(n, [&](std::size_t i) {
        trace::Span span(trace::Category::Exec, "exec.job", "index",
                         static_cast<double>(i));
        Pcg32 rng = jobRng(i);
        fn(i, rng);
    });
}

EvalCache::Value
EvalCache::getOrCompute(std::uint64_t signature,
                        std::size_t config_index,
                        const std::function<Value()> &compute)
{
    const std::uint64_t key =
        mix64(signature ^ mix64(config_index ^ 0xc0f19ULL));
    Shard &shard = _shards[key % numShards];
    {
        std::lock_guard lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            _hits.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Compute outside the shard lock; values are pure functions of the
    // key, so a racing duplicate insert stores the identical value.
    const Value v = compute();
    {
        std::lock_guard lock(shard.mutex);
        shard.map.emplace(key, v);
    }
    _misses.fetch_add(1, std::memory_order_relaxed);
    return v;
}

void
EvalCache::clear()
{
    for (auto &shard : _shards) {
        std::lock_guard lock(shard.mutex);
        shard.map.clear();
    }
    _hits.store(0);
    _misses.store(0);
}

} // namespace gpupm::exec
