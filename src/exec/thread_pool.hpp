/**
 * @file
 * Work-stealing thread pool for the sweep-execution engine.
 *
 * Workers own bounded-contention deques: a worker pushes and pops its
 * own queue LIFO (cache-warm) and steals FIFO from siblings when its
 * queue runs dry. External submissions are distributed round-robin.
 * Tasks submitted from inside a worker land on that worker's local
 * queue, so nested submission never blocks the submitting task.
 *
 * Lifetime contract (drain-or-assert): shutdown() - which the
 * destructor calls - first drains every task that was submitted (queued
 * work is executed, not dropped) and then joins the workers, so
 * shutting down a pool with queued work cannot deadlock or lose work.
 * A post() racing shutdown resolves deterministically to one of two
 * outcomes: it lands before the drain completes, in which case the
 * drain waits for it and the task runs, or it observes the stopping
 * pool and trips a fatal assertion. A task is never accepted and then
 * silently dropped. Exceptions thrown by tasks propagate through the
 * associated std::future (submit) or are rethrown to the caller
 * (parallelFor, first exception wins).
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gpupm::exec {

class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 means hardware_concurrency()
     *        (at least 1).
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Equivalent to shutdown(). */
    ~ThreadPool();

    /**
     * Drain all submitted work (queued tasks are executed, and tasks
     * they post during the drain too), then join the workers. After it
     * returns the pool is empty and post() is a fatal assertion.
     * Idempotent for sequential calls (an explicit shutdown followed by
     * destruction is fine); concurrent shutdown calls are not
     * supported - the owner shuts the pool down.
     */
    void shutdown();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t threadCount() const { return _workers.size(); }

    /** Type-erased submission; prefer submit() for results. */
    void post(std::function<void()> task);

    /**
     * Submit a callable; its result (or exception) is delivered
     * through the returned future.
     */
    template <typename F>
    auto
    submit(F &&f) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        auto fut = task->get_future();
        post([task]() { (*task)(); });
        return fut;
    }

    /**
     * Run fn(0..n-1), fanned across the workers; the calling thread
     * participates, so parallelFor never deadlocks even when invoked
     * from inside a pool task. Iterations are claimed from a shared
     * atomic counter; callers needing determinism must make fn(i)
     * depend only on i (see SweepEngine). Blocks until all n
     * iterations finished; rethrows the first task exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** Whether the calling thread is one of this pool's workers. */
    bool onWorkerThread() const;

    /** Resolve a --jobs value: 0 means hardware_concurrency, min 1. */
    static std::size_t resolveJobs(std::size_t jobs);

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t id);
    bool tryRunOne(std::size_t home);
    std::function<void()> take(std::size_t home);

    std::vector<std::unique_ptr<WorkerQueue>> _queues;
    std::vector<std::thread> _workers;

    /** Sleep/wake coordination and shutdown flag. */
    std::mutex _mutex;
    std::condition_variable _cv;
    bool _stopping = false;
    /** Tasks posted but not yet finished (for drain-on-destroy). */
    std::size_t _inFlight = 0;
    std::condition_variable _idleCv;
    /** Round-robin cursor for external submissions. */
    std::size_t _nextQueue = 0;
};

} // namespace gpupm::exec
