#include "exec/thread_pool.hpp"

#include <atomic>
#include <chrono>

#include "common/logging.hpp"

namespace gpupm::exec {

namespace {

/** Set while a thread runs a workerLoop, for onWorkerThread(). */
thread_local const ThreadPool *tl_pool = nullptr;
thread_local std::size_t tl_workerId = 0;

} // namespace

std::size_t
ThreadPool::resolveJobs(std::size_t jobs)
{
    if (jobs == 0)
        jobs = std::thread::hardware_concurrency();
    return jobs > 0 ? jobs : 1;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t n = resolveJobs(threads);
    _queues.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        _queues.push_back(std::make_unique<WorkerQueue>());
    _workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void
ThreadPool::shutdown()
{
    if (_workers.empty())
        return; // Sequentially idempotent: already shut down.
    {
        // Drain: queued work is executed, never dropped. _inFlight
        // counts posted-but-unfinished tasks, including tasks posted by
        // running tasks, so the wait covers nested submission chains.
        // A post() that wins the race against this wait is part of the
        // drain; one that loses trips the !_stopping assertion.
        std::unique_lock lock(_mutex);
        _idleCv.wait(lock, [this] { return _inFlight == 0; });
        _stopping = true;
    }
    _cv.notify_all();
    for (auto &w : _workers)
        w.join();
    _workers.clear();
}

bool
ThreadPool::onWorkerThread() const
{
    return tl_pool == this;
}

void
ThreadPool::post(std::function<void()> task)
{
    GPUPM_ASSERT(task, "posted an empty task");
    std::size_t target;
    {
        std::unique_lock lock(_mutex);
        GPUPM_ASSERT(!_stopping, "post() on a stopping ThreadPool");
        ++_inFlight;
        // A worker keeps its own spawn local (LIFO, cache-warm);
        // external submissions spread round-robin.
        target = (tl_pool == this)
                     ? tl_workerId
                     : (_nextQueue++ % _queues.size());
    }
    {
        std::lock_guard ql(_queues[target]->mutex);
        _queues[target]->tasks.push_back(std::move(task));
    }
    _cv.notify_one();
}

std::function<void()>
ThreadPool::take(std::size_t home)
{
    // Own queue first, newest-first; then steal oldest-first from
    // siblings, starting just past home to spread contention.
    {
        std::lock_guard ql(_queues[home]->mutex);
        if (!_queues[home]->tasks.empty()) {
            auto task = std::move(_queues[home]->tasks.back());
            _queues[home]->tasks.pop_back();
            return task;
        }
    }
    for (std::size_t k = 1; k < _queues.size(); ++k) {
        auto &victim = *_queues[(home + k) % _queues.size()];
        std::lock_guard ql(victim.mutex);
        if (!victim.tasks.empty()) {
            auto task = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            return task;
        }
    }
    return nullptr;
}

bool
ThreadPool::tryRunOne(std::size_t home)
{
    auto task = take(home);
    if (!task)
        return false;
    task();
    {
        std::lock_guard lock(_mutex);
        --_inFlight;
        if (_inFlight == 0)
            _idleCv.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(std::size_t id)
{
    tl_pool = this;
    tl_workerId = id;
    for (;;) {
        if (tryRunOne(id))
            continue;
        std::unique_lock lock(_mutex);
        if (_stopping)
            return;
        // A task published between our queue scan and this wait would
        // have signalled _cv before we held _mutex; the timeout bounds
        // that benign race instead of a heavier pending counter.
        _cv.wait_for(lock, std::chrono::milliseconds(2));
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1) {
        fn(0);
        return;
    }

    struct ForState
    {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> cancelled{false};
        std::mutex mutex;
        std::condition_variable cv;
        std::size_t driversLeft = 0;
        std::exception_ptr firstError;
    };
    auto st = std::make_shared<ForState>();

    auto drive = [st, n, &fn] {
        for (;;) {
            if (st->cancelled.load())
                return;
            const std::size_t i = st->next.fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard lock(st->mutex);
                if (!st->firstError)
                    st->firstError = std::current_exception();
                st->cancelled.store(true);
            }
        }
    };

    const std::size_t helpers = std::min(threadCount(), n - 1);
    st->driversLeft = helpers;
    for (std::size_t k = 0; k < helpers; ++k) {
        post([st, drive] {
            drive();
            std::lock_guard lock(st->mutex);
            if (--st->driversLeft == 0)
                st->cv.notify_all();
        });
    }

    // The calling thread is a driver too, and while waiting for the
    // posted drivers it keeps executing pool tasks: parallelFor makes
    // progress even when every worker is busy (nested invocation from
    // inside a pool task), so it cannot deadlock.
    drive();
    const std::size_t home = onWorkerThread() ? tl_workerId : 0;
    for (;;) {
        {
            std::unique_lock lock(st->mutex);
            if (st->driversLeft == 0)
                break;
        }
        if (!tryRunOne(home)) {
            std::unique_lock lock(st->mutex);
            if (st->driversLeft == 0)
                break;
            st->cv.wait_for(lock, std::chrono::milliseconds(2));
        }
    }
    if (st->firstError)
        std::rethrow_exception(st->firstError);
}

} // namespace gpupm::exec
