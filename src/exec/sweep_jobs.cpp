#include "exec/sweep_jobs.hpp"

#include "common/logging.hpp"
#include "mpc/governor.hpp"
#include "policy/oracle.hpp"
#include "policy/ppk.hpp"
#include "policy/static_governor.hpp"
#include "policy/turbo_core.hpp"

namespace gpupm::exec {

sim::RunResult
runSimJob(const SimJob &job, const hw::HardwareModelPtr &model)
{
    GPUPM_ASSERT(model != nullptr, "sweep job needs a hardware model");
    sim::Simulator sim(model);

    Throughput target = job.target;
    if (target == 0.0 && job.policy != SimJob::Policy::Turbo &&
        job.policy != SimJob::Policy::Static) {
        policy::TurboCoreGovernor turbo(model);
        target = sim.run(job.app, turbo).throughput();
    }

    switch (job.policy) {
    case SimJob::Policy::Turbo: {
        policy::TurboCoreGovernor gov(model);
        return sim.run(job.app, gov);
    }
    case SimJob::Policy::Static: {
        policy::StaticGovernor gov(job.staticConfig);
        return sim.run(job.app, gov);
    }
    case SimJob::Policy::Ppk: {
        GPUPM_ASSERT(job.predictor, "PPK job needs a predictor");
        policy::PpkGovernor gov(job.predictor, {}, model);
        return sim.run(job.app, gov, target);
    }
    case SimJob::Policy::Mpc: {
        GPUPM_ASSERT(job.predictor, "MPC job needs a predictor");
        GPUPM_ASSERT(job.mpcRuns >= 1, "need one optimized MPC run");
        mpc::MpcGovernor gov(job.predictor, job.mpcOpts, model);
        if (job.decisionSink)
            gov.setDecisionSink(job.decisionSink, job.traceSession);
        sim.run(job.app, gov, target); // profiling execution
        sim::RunResult last;
        for (int i = 0; i < job.mpcRuns; ++i)
            last = sim.run(job.app, gov, target);
        return last;
    }
    case SimJob::Policy::Oracle: {
        policy::TheoreticallyOptimalGovernor gov(job.app, model);
        return sim.run(job.app, gov, target);
    }
    }
    GPUPM_FATAL("unreachable sweep policy");
}

std::vector<sim::RunResult>
runSweep(SweepEngine &engine, const std::vector<SimJob> &jobs,
         const hw::HardwareModelPtr &model)
{
    return engine.map<sim::RunResult>(
        jobs.size(), [&](std::size_t i, Pcg32 &) {
            return runSimJob(jobs[i], model);
        });
}

} // namespace gpupm::exec
