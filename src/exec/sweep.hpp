/**
 * @file
 * Deterministic parallel sweep engine.
 *
 * Every large experiment in gpupm — benchmark x configuration x policy
 * sweeps, the oracle's exhaustive plan, Random Forest training-set
 * generation — is an embarrassingly parallel map over independent
 * simulation jobs. SweepEngine fans such maps across a work-stealing
 * ThreadPool under a strict determinism contract:
 *
 *  - Jobs carry their index. Results are written into a pre-sized
 *    vector at that index, never gathered in completion order.
 *  - A job that needs randomness receives a Pcg32 stream derived from
 *    (root seed, job index) — never from the worker that happens to
 *    run it — so output is independent of scheduling.
 *  - jobs == 1 bypasses the pool entirely and runs the exact serial
 *    path, in submission order, on the calling thread.
 *
 * Under this contract the output at --jobs N is bit-identical to
 * --jobs 1 for every N (pinned by test_sweep_determinism's golden
 * traces).
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "exec/thread_pool.hpp"

namespace gpupm::kernel {
struct KernelParams;
}

namespace gpupm::exec {

/** SplitMix64 finalizer; used to derive stream selectors and keys. */
std::uint64_t mix64(std::uint64_t x);

/**
 * 64-bit signature of a kernel's ground-truth parameters. Covers every
 * field that influences modeled time/power, so any mutation of the
 * kernel yields a different signature (this is what invalidates
 * EvalCache entries: stale keys are simply never queried again).
 */
std::uint64_t kernelSignature(const kernel::KernelParams &k);

struct SweepOptions
{
    /** Worker count; 0 means hardware_concurrency. 1 = serial path. */
    std::size_t jobs = 0;
    /** Root seed from which per-job RNG streams are derived. */
    std::uint64_t rootSeed = 0x5eedULL;
};

class SweepEngine
{
  public:
    explicit SweepEngine(const SweepOptions &opts = {});
    ~SweepEngine();

    /** Resolved worker count (>= 1). */
    std::size_t jobs() const { return _jobs; }

    /** The RNG stream job @p index sees, derived from the root seed. */
    Pcg32 jobRng(std::size_t index) const;

    /**
     * Run fn(i, rng_i) for i in [0, n); blocks until done. Rethrows
     * the first job exception. Deterministic: rng_i depends only on
     * (rootSeed, i).
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t, Pcg32 &)> &fn);

    /** Deterministic gather: out[i] = fn(i, rng_i). */
    template <typename R>
    std::vector<R>
    map(std::size_t n,
        const std::function<R(std::size_t, Pcg32 &)> &fn)
    {
        std::vector<R> out(n);
        forEach(n, [&](std::size_t i, Pcg32 &rng) {
            out[i] = fn(i, rng);
        });
        return out;
    }

    /** The underlying pool; null when jobs() == 1 (serial path). */
    ThreadPool *pool() { return _pool.get(); }

  private:
    SweepOptions _opts;
    std::size_t _jobs;
    std::unique_ptr<ThreadPool> _pool;
};

/**
 * Memoized predictor/ground-truth evaluation cache.
 *
 * Sweeps evaluate the same (kernel, configuration) point many times —
 * application traces repeat kernels, and the oracle revisits the whole
 * space per invocation. Entries are keyed on (kernel signature,
 * configuration index) and hold the modeled time and power planes.
 * Values are pure functions of the key, so concurrent insertion is
 * idempotent; the map is sharded to keep lock contention negligible.
 */
class EvalCache
{
  public:
    struct Value
    {
        Seconds time = 0.0;
        Watts gpuPower = 0.0;
        Watts totalPower = 0.0;
    };

    /** Fetch, or compute-and-insert, the value for a sweep point. */
    Value getOrCompute(std::uint64_t signature, std::size_t config_index,
                       const std::function<Value()> &compute);

    std::size_t hits() const { return _hits.load(); }
    std::size_t misses() const { return _misses.load(); }

    /** Drop all entries (e.g. when the model parameters change). */
    void clear();

  private:
    static constexpr std::size_t numShards = 16;

    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<std::uint64_t, Value> map;
    };

    std::array<Shard, numShards> _shards;
    std::atomic<std::size_t> _hits{0};
    std::atomic<std::size_t> _misses{0};
};

} // namespace gpupm::exec
