/**
 * @file
 * Offline decision replay: re-drive recorded provenance through a
 * governor without a simulator.
 *
 * A decision dump (trace/jsonl_export.hpp) carries, for every decision,
 * the complete observation the governor consumed: raw counters, the
 * measured time/power/instructions, the non-kernel time and the run's
 * throughput target. That stream is sufficient to reconstruct the
 * governor's entire input sequence, so a fresh governor built from the
 * same predictor and options must re-derive byte-identical
 * configuration choices (the determinism contract the replay test
 * suite pins). The same harness also answers counterfactuals: replay
 * the stream through a *different* governor (Turbo Core, the PI
 * baseline), hardware model or QoS spec and compare the choices the
 * rival would have made against the recorded ones, decision by
 * decision - no simulation, no retraining, just the recorded inputs.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/model.hpp"
#include "ml/predictor.hpp"
#include "mpc/options.hpp"
#include "policy/pi_governor.hpp"
#include "trace/decision.hpp"

namespace gpupm::exec {

/** Which governor re-drives the recorded observation stream. */
enum class ReplayGovernor
{
    Mpc,   ///< MpcGovernor with ReplayOptions::mpc (byte-identity case).
    Turbo, ///< Reactive Turbo Core baseline.
    Pi,    ///< PI feedback baseline with ReplayOptions::pi.
};

struct ReplayOptions
{
    ReplayGovernor governor = ReplayGovernor::Mpc;
    /** Hardware model the replayed governor manages; null = paper-apu. */
    hw::HardwareModelPtr model;
    /** MPC options (including the QoS spec) for ReplayGovernor::Mpc. */
    mpc::MpcOptions mpc{};
    /** PI gains for ReplayGovernor::Pi. */
    policy::PiOptions pi{};
    /**
     * QoS re-scaling applied to every run's recorded throughput target
     * (recorded targets already reflect the original run's QoS; replay
     * under UniformAlpha leaves them untouched). For ReplayGovernor::Mpc
     * this is ReplayOptions::mpc.qos.
     */
    mpc::QosSpec qos{};
};

/** One recorded-vs-replayed divergence. */
struct ReplayDivergence
{
    /** Index into the (sorted) record stream. */
    std::size_t recordIndex = 0;
    std::size_t configRecorded = 0;
    std::size_t configReplayed = 0;
};

struct ReplayReport
{
    /** Decisions re-driven (== usable records). */
    std::size_t decisions = 0;
    /** Governor sessions reconstructed (one per (app, session)). */
    std::size_t governors = 0;
    std::vector<ReplayDivergence> divergences;
    /** Name the replayed governor reported. */
    std::string governorName;

    bool identical() const { return divergences.empty(); }
};

/**
 * Re-drive @p records (sorted into canonical provenance order first)
 * through governors built per (app, session) group from @p opts,
 * comparing every replayed dense config index against the recorded
 * one. @p predictor is consulted only by ReplayGovernor::Mpc and may
 * be null otherwise.
 */
ReplayReport
replayRecords(std::vector<trace::DecisionRecord> records,
              const std::shared_ptr<const ml::PerfPowerPredictor>
                  &predictor,
              const ReplayOptions &opts);

} // namespace gpupm::exec
