/**
 * @file
 * Domain-level sweep jobs: one (benchmark, policy, configuration)
 * tuple per job, executed on the SweepEngine.
 *
 * This is the shared fan-out path behind the CLI `sweep` subcommand,
 * the golden-trace determinism suite and the property tests. Each job
 * is self-contained — it builds its own governor and Simulator — so
 * jobs can run on any worker in any order; shared predictors are
 * immutable and thread-safe (their predictions are pure functions of
 * the query).
 */

#pragma once

#include <memory>
#include <vector>

#include "exec/sweep.hpp"
#include "hw/model.hpp"
#include "ml/predictor.hpp"
#include "mpc/options.hpp"
#include "sim/simulator.hpp"
#include "trace/decision.hpp"
#include "workload/trace.hpp"

namespace gpupm::exec {

/** One simulation job in a sweep. */
struct SimJob
{
    enum class Policy { Turbo, Static, Ppk, Mpc, Oracle };

    workload::Application app;
    Policy policy = Policy::Turbo;
    /** Pinned configuration for Policy::Static. */
    hw::HwConfig staticConfig{};
    /** Predictor for Ppk/Mpc; must be immutable and thread-safe. */
    std::shared_ptr<const ml::PerfPowerPredictor> predictor;
    mpc::MpcOptions mpcOpts{};
    /** Optimized MPC executions after the profiling run. */
    int mpcRuns = 1;
    /**
     * Performance target for Ppk/Mpc/Oracle; 0 means "run the Turbo
     * Core baseline first and use its throughput", as the paper does.
     */
    Throughput target = 0.0;
    /**
     * Decision-provenance sink for Policy::Mpc (must be thread-safe;
     * jobs run on any worker). Null = no provenance capture.
     */
    trace::DecisionSink *decisionSink = nullptr;
    /** Session id stamped on this job's decision records. */
    std::uint64_t traceSession = 0;
};

/** Execute one job on @p model (also the body each sweep worker runs). */
sim::RunResult runSimJob(const SimJob &job,
                         const hw::HardwareModelPtr &model);

/**
 * Fan @p jobs across @p engine; results[i] always belongs to jobs[i]
 * (index-ordered gather, bit-identical to a serial loop).
 */
std::vector<sim::RunResult> runSweep(SweepEngine &engine,
                                     const std::vector<SimJob> &jobs,
                                     const hw::HardwareModelPtr &model);

} // namespace gpupm::exec
