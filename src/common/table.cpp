#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace gpupm {

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    GPUPM_ASSERT(!_headers.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    GPUPM_ASSERT(cells.size() == _headers.size(),
                 "row arity ", cells.size(), " != header arity ",
                 _headers.size());
    _rows.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        width[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };

    emit(_headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 == width.size() ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : _rows)
        emit(row);
}

std::string
fmt(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
fmtPct(double v, int decimals)
{
    return fmt(v, decimals) + "%";
}

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    GPUPM_ASSERT(cells.size() == _headers.size(),
                 "csv row arity ", cells.size(), " != header arity ",
                 _headers.size());
    _rows.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
CsvWriter::print(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << escape(cells[c]);
            os << (c + 1 == cells.size() ? "\n" : ",");
        }
    };
    emit(_headers);
    for (const auto &row : _rows)
        emit(row);
}

} // namespace gpupm
