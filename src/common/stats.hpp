/**
 * @file
 * Summary statistics used by the experiment harnesses and the ML module.
 */

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gpupm {

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> xs);

/** Geometric mean; all inputs must be positive. 0 for an empty span. */
double geomean(std::span<const double> xs);

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
double stddev(std::span<const double> xs);

/** Median (average of middle pair for even n); 0 for an empty span. */
double median(std::vector<double> xs);

/**
 * Mean Absolute Percentage Error of predictions vs actuals, in percent.
 * Entries with |actual| < 1e-12 are skipped.
 */
double mape(std::span<const double> actual, std::span<const double> predicted);

/**
 * Streaming accumulator for min/max/mean/variance (Welford's algorithm).
 */
class Accumulator
{
  public:
    /** Fold one sample into the running statistics. */
    void add(double x);

    std::size_t count() const { return _n; }
    double mean() const { return _n ? _mean : 0.0; }
    double min() const { return _min; }
    double max() const { return _max; }
    double sum() const { return _sum; }

    /** Sample variance (n-1); 0 for n < 2. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

  private:
    std::size_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

} // namespace gpupm
