/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components in gpupm (kernel idiosyncrasies, Random Forest
 * bagging, synthetic prediction-error models) draw from explicitly seeded
 * Pcg32 streams so that every experiment is reproducible bit-for-bit,
 * independent of the standard library implementation.
 */

#pragma once

#include <cstdint>

namespace gpupm {

/**
 * PCG32 (Melissa O'Neill's pcg32_random_r) generator.
 *
 * Small state, excellent statistical quality, and - unlike std::mt19937
 * with std::normal_distribution - identical output on every platform.
 */
class Pcg32
{
  public:
    /**
     * Construct a generator.
     *
     * @param seed Initial state seed.
     * @param stream Stream selector; different streams with the same seed
     *               are statistically independent.
     */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit output. */
    std::uint32_t nextU32();

    /** Uniform integer in [0, bound) using Lemire-style rejection. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal variate (polar Box-Muller, cached spare). */
    double gaussian();

    /** Normal variate with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /**
     * Half-normal variate with the given absolute mean.
     *
     * Used by the synthetic prediction-error models (paper Sec. VI-D):
     * |N(0, sigma)| where sigma = mean * sqrt(pi/2).
     */
    double halfNormal(double abs_mean);

    /** Split off an independent child stream (for per-object RNGs). */
    Pcg32 split();

  private:
    std::uint64_t _state;
    std::uint64_t _inc;
    bool _hasSpare = false;
    double _spare = 0.0;
};

} // namespace gpupm
