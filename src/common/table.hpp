/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harnesses to print
 * the rows/series of each paper table and figure.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gpupm {

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   TextTable t({"benchmark", "energy savings (%)", "speedup"});
 *   t.addRow({"Spmv", "24.8", "0.98"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with column padding and a header underline. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return _rows.size(); }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Format a double with the given number of decimal places. */
std::string fmt(double v, int decimals = 2);

/** Format a value as a percentage string with the given decimals. */
std::string fmtPct(double v, int decimals = 1);

/**
 * CSV emitter with the same row/header discipline as TextTable.
 * Values containing commas or quotes are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Write header plus all rows. */
    void print(std::ostream &os) const;

  private:
    static std::string escape(const std::string &s);

    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace gpupm
