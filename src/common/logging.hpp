/**
 * @file
 * Minimal logging and error-termination helpers, in the spirit of
 * gem5's base/logging.hh.
 *
 * panic()  - internal invariant violated: a gpupm bug. Aborts.
 * fatal()  - the caller/user supplied an impossible request. Exits(1).
 * warn()   - something questionable happened but execution continues.
 * inform() - status message.
 */

#pragma once

#include <sstream>
#include <string>

namespace gpupm {

namespace detail {

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message; use for internal bugs that should never happen. */
#define GPUPM_PANIC(...) \
    ::gpupm::detail::panicImpl(__FILE__, __LINE__, \
                               ::gpupm::detail::concat(__VA_ARGS__))

/** Exit with a message; use for invalid user input or configuration. */
#define GPUPM_FATAL(...) \
    ::gpupm::detail::fatalImpl(__FILE__, __LINE__, \
                               ::gpupm::detail::concat(__VA_ARGS__))

/** Emit a warning but continue. */
#define GPUPM_WARN(...) \
    ::gpupm::detail::warnImpl(::gpupm::detail::concat(__VA_ARGS__))

/** Emit an informational status message. */
#define GPUPM_INFORM(...) \
    ::gpupm::detail::informImpl(::gpupm::detail::concat(__VA_ARGS__))

/** Panic unless the given condition holds. */
#define GPUPM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            GPUPM_PANIC("assertion failed: ", #cond, " ", __VA_ARGS__); \
        } \
    } while (false)

} // namespace gpupm
