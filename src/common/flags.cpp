#include "common/flags.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <sstream>

#include "common/logging.hpp"

namespace gpupm {

FlagParser::FlagParser(std::string program_description)
    : _description(std::move(program_description))
{
}

void
FlagParser::addString(const std::string &name, std::string default_value,
                      std::string help)
{
    _flags[name] =
        Flag{Kind::String, std::move(help), std::move(default_value), {}};
}

void
FlagParser::addChoice(const std::string &name, std::string default_value,
                      std::string help, std::vector<std::string> choices)
{
    GPUPM_ASSERT(!choices.empty(), "flag --", name,
                 " needs at least one choice");
    GPUPM_ASSERT(std::find(choices.begin(), choices.end(),
                           default_value) != choices.end(),
                 "flag --", name, " default '", default_value,
                 "' is not among its choices");
    Flag f{Kind::Choice, std::move(help), std::move(default_value), {}};
    f.choices = std::move(choices);
    _flags[name] = std::move(f);
}

void
FlagParser::addPath(const std::string &name, std::string default_value,
                    std::string help)
{
    _flags[name] =
        Flag{Kind::Path, std::move(help), std::move(default_value), {}};
}

void
FlagParser::addDouble(const std::string &name, double default_value,
                      std::string help)
{
    addDouble(name, default_value, std::move(help),
              -std::numeric_limits<double>::infinity(),
              std::numeric_limits<double>::infinity());
}

void
FlagParser::addDouble(const std::string &name, double default_value,
                      std::string help, double min_value,
                      double max_value)
{
    std::ostringstream os;
    os << default_value;
    Flag f{Kind::Double, std::move(help), os.str(), {}};
    f.minDouble = min_value;
    f.maxDouble = max_value;
    _flags[name] = std::move(f);
}

void
FlagParser::addInt(const std::string &name, int default_value,
                   std::string help)
{
    addInt(name, default_value, std::move(help), INT_MIN, INT_MAX);
}

void
FlagParser::addInt(const std::string &name, int default_value,
                   std::string help, int min_value, int max_value)
{
    _flags[name] = Flag{Kind::Int,     std::move(help),
                        std::to_string(default_value),
                        {},            min_value,
                        max_value};
}

void
FlagParser::addBool(const std::string &name, std::string help)
{
    _flags[name] = Flag{Kind::Bool, std::move(help), "false", {}};
}

bool
FlagParser::parse(int argc, const char *const *argv)
{
    _error.clear();
    _positional.clear();
    _helpRequested = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            _positional.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::optional<std::string> inline_value;
        if (auto eq = name.find('='); eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
        }
        if (name == "help") {
            _helpRequested = true;
            return false;
        }
        auto it = _flags.find(name);
        if (it == _flags.end()) {
            _error = "unknown flag --" + name;
            return false;
        }
        Flag &flag = it->second;
        if (flag.kind == Kind::Bool) {
            flag.value = inline_value.value_or("true");
        } else if (inline_value) {
            flag.value = *inline_value;
        } else if (i + 1 < argc) {
            flag.value = argv[++i];
        } else {
            _error = "flag --" + name + " needs a value";
            return false;
        }
        // Validate numeric values eagerly, so tools report bad input
        // at parse time with the flag name instead of silently running
        // with an atoi() fallback value.
        if (flag.kind == Kind::Choice) {
            const std::string &v = *flag.value;
            if (std::find(flag.choices.begin(), flag.choices.end(),
                          v) == flag.choices.end()) {
                std::ostringstream os;
                os << "flag --" << name << ": unknown value '" << v
                   << "' (candidates:";
                for (const auto &c : flag.choices)
                    os << " " << c;
                os << ")";
                _error = os.str();
                return false;
            }
        } else if (flag.kind == Kind::Path) {
            // Fail at parse time, before the tool does any work: a
            // typo'd output directory should not cost a full run.
            namespace fs = std::filesystem;
            const std::string &v = *flag.value;
            if (!v.empty()) {
                const fs::path p(v);
                std::error_code ec;
                if (fs::is_directory(p, ec)) {
                    _error = "flag --" + name + ": '" + v +
                             "' is a directory, expected a file path";
                    return false;
                }
                const fs::path parent = p.parent_path();
                if (!parent.empty() && !fs::is_directory(parent, ec)) {
                    _error = "flag --" + name + ": directory '" +
                             parent.string() + "' does not exist";
                    return false;
                }
            }
        } else if (flag.kind == Kind::Double) {
            char *end = nullptr;
            const std::string &v = *flag.value;
            const double parsed = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0') {
                _error = "flag --" + name + " expects a number, got '" +
                         v + "'";
                return false;
            }
            // The inverted form also rejects NaN, which compares false
            // against both bounds.
            if (!(parsed >= flag.minDouble && parsed <= flag.maxDouble)) {
                std::ostringstream os;
                if (flag.maxDouble ==
                    std::numeric_limits<double>::infinity()) {
                    os << "flag --" << name << " must be at least "
                       << flag.minDouble << ", got " << v;
                } else if (flag.minDouble ==
                           -std::numeric_limits<double>::infinity()) {
                    os << "flag --" << name << " must be at most "
                       << flag.maxDouble << ", got " << v;
                } else {
                    os << "flag --" << name << " must be between "
                       << flag.minDouble << " and " << flag.maxDouble
                       << ", got " << v;
                }
                _error = os.str();
                return false;
            }
        } else if (flag.kind == Kind::Int) {
            char *end = nullptr;
            const std::string &v = *flag.value;
            errno = 0;
            const long long parsed = std::strtoll(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                _error = "flag --" + name + " expects an integer, got '" +
                         v + "'";
                return false;
            }
            if (errno == ERANGE || parsed < flag.minValue ||
                parsed > flag.maxValue) {
                if (flag.maxValue == INT_MAX) {
                    _error = "flag --" + name + " must be at least " +
                             std::to_string(flag.minValue) + ", got " + v;
                } else if (flag.minValue == INT_MIN) {
                    _error = "flag --" + name + " must be at most " +
                             std::to_string(flag.maxValue) + ", got " + v;
                } else {
                    _error = "flag --" + name + " must be between " +
                             std::to_string(flag.minValue) + " and " +
                             std::to_string(flag.maxValue) + ", got " + v;
                }
                return false;
            }
        }
    }
    return true;
}

const FlagParser::Flag &
FlagParser::flagOrDie(const std::string &name, Kind kind) const
{
    auto it = _flags.find(name);
    GPUPM_ASSERT(it != _flags.end(), "flag --", name, " not registered");
    GPUPM_ASSERT(it->second.kind == kind, "flag --", name,
                 " accessed with the wrong type");
    return it->second;
}

std::string
FlagParser::getString(const std::string &name) const
{
    auto it = _flags.find(name);
    GPUPM_ASSERT(it != _flags.end(), "flag --", name,
                 " not registered");
    GPUPM_ASSERT(it->second.kind == Kind::String ||
                     it->second.kind == Kind::Choice,
                 "flag --", name, " accessed with the wrong type");
    return it->second.value.value_or(it->second.defaultValue);
}

std::string
FlagParser::getPath(const std::string &name) const
{
    const auto &f = flagOrDie(name, Kind::Path);
    return f.value.value_or(f.defaultValue);
}

double
FlagParser::getDouble(const std::string &name) const
{
    const auto &f = flagOrDie(name, Kind::Double);
    return std::atof(f.value.value_or(f.defaultValue).c_str());
}

int
FlagParser::getInt(const std::string &name) const
{
    const auto &f = flagOrDie(name, Kind::Int);
    return std::atoi(f.value.value_or(f.defaultValue).c_str());
}

bool
FlagParser::getBool(const std::string &name) const
{
    const auto &f = flagOrDie(name, Kind::Bool);
    return f.value.value_or(f.defaultValue) == "true";
}

std::string
FlagParser::usage() const
{
    std::ostringstream os;
    os << _description << "\n\nFlags:\n";
    for (const auto &[name, flag] : _flags) {
        os << "  --" << name;
        if (flag.kind != Kind::Bool)
            os << " <" << flag.defaultValue << ">";
        os << "  " << flag.help;
        if (flag.kind == Kind::Choice) {
            os << " (one of:";
            for (const auto &c : flag.choices)
                os << " " << c;
            os << ")";
        }
        os << "\n";
    }
    os << "  --help  show this message\n";
    return os.str();
}

} // namespace gpupm
