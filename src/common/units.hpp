/**
 * @file
 * Unit conventions used throughout gpupm.
 *
 * We follow the gem5 convention of documented aliases rather than heavy
 * strong-type wrappers: the analytic power model multiplies voltages,
 * frequencies and capacitances together constantly, and wrapper churn
 * obscures the physics. Every interface documents its unit; these aliases
 * make the documentation greppable.
 */

#pragma once

namespace gpupm {

/** Wall-clock or simulated time in seconds. */
using Seconds = double;

/** Frequency in megahertz (matches the paper's Table I). */
using MegaHertz = double;

/** Supply voltage in volts. */
using Volts = double;

/** Power in watts. */
using Watts = double;

/** Energy in joules. */
using Joules = double;

/** Temperature in degrees Celsius. */
using Celsius = double;

/** Instruction counts (thread-count x instructions per thread). */
using InstCount = double;

/** Instructions per second; the paper's kernel throughput metric. */
using Throughput = double;

/** Convert megahertz to hertz. */
constexpr double
mhzToHz(MegaHertz f)
{
    return f * 1e6;
}

/** Convert milliseconds to seconds. */
constexpr Seconds
msToSeconds(double ms)
{
    return ms * 1e-3;
}

} // namespace gpupm
