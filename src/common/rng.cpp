#include "common/rng.hpp"

#include <cmath>

namespace gpupm {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : _state(0), _inc((stream << 1u) | 1u)
{
    nextU32();
    _state += seed;
    nextU32();
}

std::uint32_t
Pcg32::nextU32()
{
    std::uint64_t old = _state;
    _state = old * 6364136223846793005ULL + _inc;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to remove modulo bias.
    std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
        std::uint32_t r = nextU32();
        if (r >= threshold)
            return r % bound;
    }
}

double
Pcg32::nextDouble()
{
    // 53 random bits -> [0, 1).
    std::uint64_t hi = nextU32();
    std::uint64_t lo = nextU32();
    std::uint64_t bits = (hi << 21) ^ (lo >> 11);
    return static_cast<double>(bits & ((1ULL << 53) - 1)) /
           static_cast<double>(1ULL << 53);
}

double
Pcg32::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Pcg32::gaussian()
{
    if (_hasSpare) {
        _hasSpare = false;
        return _spare;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = std::sqrt(-2.0 * std::log(s) / s);
    _spare = v * mul;
    _hasSpare = true;
    return u * mul;
}

double
Pcg32::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

double
Pcg32::halfNormal(double abs_mean)
{
    // E[|N(0, sigma)|] = sigma * sqrt(2/pi)  =>  sigma = mean * sqrt(pi/2).
    constexpr double sqrt_pi_over_2 = 1.2533141373155003;
    double sigma = abs_mean * sqrt_pi_over_2;
    return std::fabs(gaussian(0.0, sigma));
}

Pcg32
Pcg32::split()
{
    std::uint64_t seed =
        (static_cast<std::uint64_t>(nextU32()) << 32) | nextU32();
    std::uint64_t stream =
        (static_cast<std::uint64_t>(nextU32()) << 32) | nextU32();
    return Pcg32(seed, stream);
}

} // namespace gpupm
