#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace gpupm {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        GPUPM_ASSERT(x > 0.0, "geomean requires positive inputs, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
mape(std::span<const double> actual, std::span<const double> predicted)
{
    GPUPM_ASSERT(actual.size() == predicted.size(),
                 "mape: size mismatch ", actual.size(), " vs ",
                 predicted.size());
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        if (std::fabs(actual[i]) < 1e-12)
            continue;
        s += std::fabs((actual[i] - predicted[i]) / actual[i]);
        ++n;
    }
    return n ? 100.0 * s / static_cast<double>(n) : 0.0;
}

void
Accumulator::add(double x)
{
    if (_n == 0) {
        _min = _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    ++_n;
    _sum += x;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_n);
    _m2 += delta * (x - _mean);
}

double
Accumulator::variance() const
{
    if (_n < 2)
        return 0.0;
    return _m2 / static_cast<double>(_n - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

} // namespace gpupm
