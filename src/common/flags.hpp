/**
 * @file
 * Minimal command-line flag parser for the tools and harnesses.
 *
 * Supports --name value, --name=value, boolean switches (--flag), and
 * generates usage text. Unknown flags and malformed values are parse
 * errors (reported, not fatal, so tools can print usage and exit).
 */

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gpupm {

class FlagParser
{
  public:
    explicit FlagParser(std::string program_description);

    /** Register flags. Names are given without the leading "--". */
    void addString(const std::string &name, std::string default_value,
                   std::string help);
    /**
     * String flag restricted to a fixed candidate set, validated at
     * parse time: any other value is a parse error whose message lists
     * the candidates. The default must itself be a candidate. Read the
     * parsed value with getString.
     */
    void addChoice(const std::string &name, std::string default_value,
                   std::string help, std::vector<std::string> choices);
    /**
     * Output-file path flag. A non-empty value is validated at parse
     * time: its parent directory must exist and the path itself must
     * not name a directory, so tools fail before doing work rather
     * than after, when the write is attempted. An empty value (the
     * usual default) means "not requested" and is never validated.
     */
    void addPath(const std::string &name, std::string default_value,
                 std::string help);
    void addDouble(const std::string &name, double default_value,
                   std::string help);
    /**
     * Double flag with an accepted [min, max] range; out-of-range
     * values are parse errors with a message naming the bound. Only
     * explicitly provided values are validated - the default may sit
     * outside the range, the usual "0 disables the feature" idiom.
     */
    void addDouble(const std::string &name, double default_value,
                   std::string help, double min_value, double max_value);
    void addInt(const std::string &name, int default_value,
                std::string help);
    /**
     * Integer flag with an accepted [min, max] range; out-of-range
     * values are parse errors with a message naming the bound. Integer
     * flags always reject non-integer text ("1.5", "8x", "") - use
     * addDouble for fractional values.
     */
    void addInt(const std::string &name, int default_value,
                std::string help, int min_value, int max_value);
    void addBool(const std::string &name, std::string help);

    /**
     * Parse argv. On failure, error() describes the problem. The
     * conventional --help flag is recognized automatically.
     *
     * @return true on success, false on error or --help.
     */
    bool parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    std::string getPath(const std::string &name) const;
    double getDouble(const std::string &name) const;
    int getInt(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return _positional;
    }

    bool helpRequested() const { return _helpRequested; }
    const std::string &error() const { return _error; }
    std::string usage() const;

  private:
    enum class Kind { String, Choice, Path, Double, Int, Bool };

    struct Flag
    {
        Kind kind;
        std::string help;
        std::string defaultValue;
        std::optional<std::string> value;
        /** Accepted range for Kind::Int (validated at parse time). */
        int minValue = 0;
        int maxValue = 0;
        /** Accepted range for Kind::Double (validated at parse time). */
        double minDouble = 0.0;
        double maxDouble = 0.0;
        /** Accepted values for Kind::Choice (validated at parse time). */
        std::vector<std::string> choices;
    };

    const Flag &flagOrDie(const std::string &name, Kind kind) const;

    std::string _description;
    std::map<std::string, Flag> _flags;
    std::vector<std::string> _positional;
    std::string _error;
    bool _helpRequested = false;
};

} // namespace gpupm
