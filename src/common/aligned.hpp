/**
 * @file
 * Cache-line-aligned vector storage for gather-friendly arenas.
 *
 * std::vector's default allocator only guarantees
 * alignof(std::max_align_t) (16 on x86-64), so a packed node arena can
 * start mid cache line and a 64-byte group of records then straddles
 * two lines - every SIMD gather over it pays a split-line penalty.
 * AlignedVector pins the allocation to a 64-byte boundary instead;
 * combined with record strides that divide 64 this makes "never
 * straddles a cache line" a structural property rather than an
 * allocator accident.
 */

#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace gpupm {

inline constexpr std::size_t kCacheLineBytes = 64;

/** Minimal C++17-style allocator returning 64-byte-aligned blocks. */
template <typename T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T), "alignment below the type's own");
    static_assert((Align & (Align - 1)) == 0,
                  "alignment must be a power of two");

    using value_type = T;

    // Explicit rebind: allocator_traits cannot synthesize one across
    // the non-type alignment parameter.
    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    T *allocate(std::size_t n)
    {
        if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
            throw std::bad_alloc();
        // Round the byte count up to a multiple of Align:
        // ::operator new with alignment requires it on some
        // implementations, and it also licenses full-width loads over
        // the tail of the arena.
        const std::size_t bytes =
            (n * sizeof(T) + Align - 1) / Align * Align;
        return static_cast<T *>(
            ::operator new(bytes, std::align_val_t{Align}));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    template <typename U>
    bool operator==(const AlignedAllocator<U, Align> &) const noexcept
    {
        return true;
    }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace gpupm
