#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <bit>

#include "common/logging.hpp"

namespace gpupm::telemetry {

namespace {

/** One piecewise-constant interval of the reconstructed timeline. */
struct Interval
{
    Seconds duration;
    Watts cpuPower;
    Watts gpuPower;
    std::size_t invocation;
    PhaseKind phase;
};

std::vector<Interval>
timelineOf(const sim::RunResult &run)
{
    std::vector<Interval> out;
    for (const auto &rec : run.records) {
        if (rec.cpuPhaseTime > 0.0) {
            out.push_back({rec.cpuPhaseTime,
                           rec.cpuPhaseCpuEnergy / rec.cpuPhaseTime,
                           rec.cpuPhaseGpuEnergy / rec.cpuPhaseTime,
                           rec.index, PhaseKind::CpuPhase});
        }
        if (rec.overheadTime > 0.0) {
            // Energy fields cover hidden + exposed latency; prorate to
            // the exposed interval (power is identical either way).
            const Seconds full =
                rec.overheadTime + rec.hiddenOverheadTime;
            out.push_back({rec.overheadTime,
                           rec.overheadCpuEnergy / full,
                           rec.overheadGpuEnergy / full, rec.index,
                           PhaseKind::Governor});
        }
        if (rec.kernelTime > 0.0) {
            out.push_back({rec.kernelTime,
                           rec.kernelCpuEnergy / rec.kernelTime,
                           rec.kernelGpuEnergy / rec.kernelTime,
                           rec.index, PhaseKind::Kernel});
        }
    }
    return out;
}

/** Bucket index for a sample: floor(log2(max(sample, 1))). */
std::size_t
bucketOf(std::uint64_t sample)
{
    if (sample < 2)
        return 0;
    const auto b = static_cast<std::size_t>(
        std::bit_width(sample) - 1);
    return b < Histogram::numBuckets ? b : Histogram::numBuckets - 1;
}

} // namespace

PowerTrace
PowerTrace::fromRun(const sim::RunResult &run,
                    const hw::ApuParams &params, Seconds interval)
{
    GPUPM_ASSERT(interval > 0.0, "sampling interval must be positive");

    PowerTrace trace;
    trace._interval = interval;

    hw::ThermalModel thermal(params);
    Seconds now = 0.0;
    for (const auto &iv : timelineOf(run)) {
        // Walk the interval in sampler ticks; the final partial tick
        // is emitted with its true (shorter) duration so that energy
        // integrates exactly.
        Seconds remaining = iv.duration;
        while (remaining > 0.0) {
            const Seconds dt = std::min(remaining, interval);
            const Celsius temp =
                thermal.advance(iv.cpuPower + iv.gpuPower, dt);
            now += dt;
            remaining -= dt;

            PowerSample s;
            s.timestamp = now;
            s.cpuPower = iv.cpuPower;
            s.gpuPower = iv.gpuPower;
            s.temperature = temp;
            s.invocationIndex = iv.invocation;
            s.phase = iv.phase;
            trace._samples.push_back(s);

            trace._cpuEnergy += iv.cpuPower * dt;
            trace._gpuEnergy += iv.gpuPower * dt;
        }
    }
    return trace;
}

Watts
PowerTrace::peakPower() const
{
    Watts peak = 0.0;
    for (const auto &s : _samples)
        peak = std::max(peak, s.totalPower());
    return peak;
}

Watts
PowerTrace::averagePower() const
{
    if (_samples.empty())
        return 0.0;
    const Seconds end = _samples.back().timestamp;
    return end > 0.0 ? totalEnergy() / end : 0.0;
}

Celsius
PowerTrace::peakTemperature() const
{
    Celsius peak = 0.0;
    for (const auto &s : _samples)
        peak = std::max(peak, s.temperature);
    return peak;
}

bool
PowerTrace::exceedsTdp(Watts tdp) const
{
    for (const auto &s : _samples) {
        if (s.totalPower() > tdp)
            return true;
    }
    return false;
}

void
PowerTrace::writeCsv(std::ostream &os) const
{
    os << "timestamp_ms,cpu_w,gpu_w,total_w,temp_c,invocation,phase\n";
    for (const auto &s : _samples) {
        os << s.timestamp * 1e3 << ',' << s.cpuPower << ','
           << s.gpuPower << ',' << s.totalPower() << ','
           << s.temperature << ',' << s.invocationIndex << ','
           << static_cast<char>(s.phase) << '\n';
    }
}

void
Histogram::record(std::uint64_t sample)
{
    _buckets[bucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(sample, std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const auto n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / n;
}

std::array<std::uint64_t, Histogram::numBuckets>
Histogram::buckets() const
{
    std::array<std::uint64_t, numBuckets> out{};
    for (std::size_t i = 0; i < numBuckets; ++i)
        out[i] = _buckets[i].load(std::memory_order_relaxed);
    return out;
}

double
Histogram::percentile(double p) const
{
    const auto b = buckets();
    std::uint64_t total = 0;
    for (const auto c : b)
        total += c;
    if (total == 0)
        return 0.0;

    // Rank of the requested percentile (1-based, nearest-rank).
    const double clamped = p < 0.0 ? 0.0 : (p > 100.0 ? 100.0 : p);
    std::uint64_t rank =
        static_cast<std::uint64_t>(clamped / 100.0 * total + 0.5);
    if (rank == 0)
        rank = 1;
    if (rank > total)
        rank = total;

    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        if (b[i] == 0)
            continue;
        if (seen + b[i] >= rank) {
            // Linear interpolation inside [lo, hi): exact when the
            // bucket holds one distinct value (lo == hi - 1 for the
            // first two buckets).
            const double lo = i == 0 ? 0.0 : static_cast<double>(
                                                 1ULL << i);
            const double hi = static_cast<double>(2ULL << i);
            const double frac =
                static_cast<double>(rank - seen) / b[i];
            return lo + (hi - lo) * frac;
        }
        seen += b[i];
    }
    return 0.0;
}

void
Histogram::reset()
{
    for (auto &b : _buckets)
        b.store(0, std::memory_order_relaxed);
    _count.store(0, std::memory_order_relaxed);
    _sum.store(0, std::memory_order_relaxed);
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard lock(_mutex);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard lock(_mutex);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard lock(_mutex);
    Snapshot snap;
    for (const auto &[name, c] : _counters)
        snap.counters[name] = c->value();
    for (const auto &[name, h] : _histograms) {
        Snapshot::HistogramSummary s;
        s.count = h->count();
        s.sum = h->sum();
        s.mean = h->mean();
        s.p50 = h->percentile(50.0);
        s.p95 = h->percentile(95.0);
        s.p99 = h->percentile(99.0);
        snap.histograms[name] = s;
    }
    return snap;
}

void
Registry::reset()
{
    std::lock_guard lock(_mutex);
    for (auto &[name, c] : _counters)
        c->reset();
    for (auto &[name, h] : _histograms)
        h->reset();
}

} // namespace gpupm::telemetry
