/**
 * @file
 * Unified telemetry API: power traces, counters, histograms and trace
 * sinks behind one registry (the gpupm::telemetry subsystem).
 *
 * Three kinds of observability data flow through here:
 *
 *  - PowerTrace reconstructs the paper's 1 ms power-controller sample
 *    stream (Sec. V) from a finished simulation run: each invocation
 *    contributes its host CPU phase, exposed optimization interval and
 *    kernel interval at measured average powers, with package
 *    temperature integrated by the RC thermal model.
 *  - Counter / Histogram are the *live* side: named monotonic counters
 *    and fixed-bucket histograms that concurrent subsystems (the fleet
 *    decision server, the inference broker) bump while they run.
 *    Counters are lock-free atomics; histograms use per-bucket atomics,
 *    so recording from many threads is wait-free and TSan-clean.
 *  - Registry additionally carries the process's decision-provenance
 *    sink (trace::DecisionSink), so one object wires all telemetry for
 *    a server or CLI invocation.
 *
 * Snapshot/reset semantics: snapshot() reads every cell with relaxed
 * atomic loads - each individual value is a real value that was current
 * at some point during the call, but the snapshot is not a cross-
 * counter atomic cut (concurrent increments may land between reads).
 * reset() zeroes every cell the same way. Both are safe to call while
 * writers are active; tests pin these semantics.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "hw/thermal.hpp"
#include "sim/simulator.hpp"
#include "trace/decision.hpp"

namespace gpupm::telemetry {

/** Execution interval kinds, as a power-trace annotation. */
enum class PhaseKind : char
{
    CpuPhase = 'P', ///< Host work between kernels (Fig. 1).
    Governor = 'O', ///< Exposed optimizer latency.
    Kernel = 'K',   ///< GPU kernel execution.
};

/** One power-controller sample. */
struct PowerSample
{
    Seconds timestamp = 0.0; ///< Sample time since run start.
    Watts cpuPower = 0.0;
    Watts gpuPower = 0.0; ///< GPU plane incl. NB and DRAM interface.
    Celsius temperature = 0.0;
    std::size_t invocationIndex = 0;
    PhaseKind phase = PhaseKind::Kernel;

    Watts totalPower() const { return cpuPower + gpuPower; }
};

/**
 * A sampled run. Samples are taken at the *end* of each interval tick,
 * with partial final ticks weighted by their true duration so that
 * energy integrates exactly.
 */
class PowerTrace
{
  public:
    /**
     * Reconstruct the sample stream of @p run.
     *
     * @param run A completed simulation run.
     * @param params APU parameters (thermal constants).
     * @param interval Sampling interval; the paper uses 1 ms.
     */
    static PowerTrace fromRun(const sim::RunResult &run,
                              const hw::ApuParams &params,
                              Seconds interval = 1e-3);

    const std::vector<PowerSample> &samples() const { return _samples; }
    Seconds interval() const { return _interval; }

    /** Trapezoid-free exact integration (piecewise-constant power). */
    Joules cpuEnergy() const { return _cpuEnergy; }
    Joules gpuEnergy() const { return _gpuEnergy; }
    Joules totalEnergy() const { return _cpuEnergy + _gpuEnergy; }

    Watts peakPower() const;
    Watts averagePower() const;
    Celsius peakTemperature() const;

    /** Whether any sample exceeds the package TDP. */
    bool exceedsTdp(Watts tdp) const;

    /** Emit "timestamp_ms,cpu_w,gpu_w,total_w,temp_c,invocation,phase". */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<PowerSample> _samples;
    Seconds _interval = 1e-3;
    Joules _cpuEnergy = 0.0;
    Joules _gpuEnergy = 0.0;
};

/** A named monotonic counter; increments are relaxed atomics. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * Fixed-bucket histogram over non-negative integer samples (batch
 * sizes, nanosecond latencies). Buckets are powers of two scaled by a
 * per-histogram unit: bucket k counts samples in [2^k, 2^(k+1)) units,
 * bucket 0 counts [0, 2). 48 buckets cover any nanosecond latency a
 * run can produce. Percentiles interpolate linearly inside the bucket,
 * which is exact for the small integer samples (batch sizes) that land
 * one-per-bucket in the low buckets and a <=2x-resolution estimate for
 * wide latency tails - adequate for p50/p99 reporting.
 */
class Histogram
{
  public:
    static constexpr std::size_t numBuckets = 48;

    void record(std::uint64_t sample);

    std::uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }

    std::uint64_t sum() const
    {
        return _sum.load(std::memory_order_relaxed);
    }

    double mean() const;

    /** Percentile estimate; @p p in [0, 100]. 0 when empty. */
    double percentile(double p) const;

    void reset();

    /** Raw bucket counts (diagnostics and snapshot rendering). */
    std::array<std::uint64_t, numBuckets> buckets() const;

  private:
    std::array<std::atomic<std::uint64_t>, numBuckets> _buckets{};
    std::atomic<std::uint64_t> _count{0};
    std::atomic<std::uint64_t> _sum{0};
};

/** One registry cell as seen by snapshot(). */
struct Snapshot
{
    std::map<std::string, std::uint64_t> counters;

    struct HistogramSummary
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        double mean = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
    };
    std::map<std::string, HistogramSummary> histograms;
};

/**
 * Named registry of counters and histograms, plus the process's
 * decision-provenance sink.
 *
 * counter()/histogram() create on first use and return a reference
 * with a stable address for the registry's lifetime, so hot paths
 * resolve the name once and then increment lock-free. Creation takes a
 * mutex; recording never does.
 *
 * The decision sink is not owned: the caller that attaches it (the CLI
 * trace exporter, a test) keeps it alive past every decider.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Relaxed-consistent view of every cell; see file comment. */
    Snapshot snapshot() const;

    /** Zero every registered cell (cells stay registered). */
    void reset();

    /** Attach (or detach with null) the decision-provenance sink. */
    void
    setDecisionSink(trace::DecisionSink *sink)
    {
        _decisionSink.store(sink, std::memory_order_release);
    }

    /** The attached sink; null when provenance is not being captured. */
    trace::DecisionSink *
    decisionSink() const
    {
        return _decisionSink.load(std::memory_order_acquire);
    }

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Histogram>> _histograms;
    std::atomic<trace::DecisionSink *> _decisionSink{nullptr};
};

} // namespace gpupm::telemetry
