/**
 * @file
 * Synthetic prediction-error models (paper Sec. VI-D, Fig. 13).
 *
 * To study how MPC degrades with predictor quality, the paper compares
 * its Random Forest against hypothetical predictors whose errors follow
 * a half-normal distribution with a prescribed mean absolute error:
 * Err_15%_10% (15% time / 10% power, as Wu et al.), Err_5% (Paul et
 * al.), and Err_0% (perfect). The error for a given (kernel, config)
 * pair is deterministic so optimization sees a stable landscape, as a
 * real (deterministic) model would provide.
 */

#pragma once

#include <memory>

#include "ml/predictor.hpp"

namespace gpupm::ml {

/**
 * Ground truth perturbed by deterministic half-normal relative errors.
 */
class NoisyOraclePredictor : public PerfPowerPredictor
{
  public:
    /**
     * @param mean_time_err Mean absolute relative time error (e.g. 0.15).
     * @param mean_power_err Mean absolute relative power error.
     * @param seed Seed decorrelating error draws between instances.
     * @param params APU model parameters.
     */
    NoisyOraclePredictor(double mean_time_err, double mean_power_err,
                         std::uint64_t seed, const hw::ApuParams &params);
    ~NoisyOraclePredictor() override;

    Prediction predict(const PredictionQuery &q,
                       const hw::HwConfig &c) const override;

    std::string name() const override;

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

} // namespace gpupm::ml
