/**
 * @file
 * CART regression tree (variance-reduction splits).
 *
 * Building block of the Random Forest (Breiman 2001) the paper uses for
 * kernel performance and power prediction. Supports per-split random
 * feature subsetting (mtry) and row subsets, so the forest can drive
 * bagging and feature bagging from outside.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/features.hpp"

namespace gpupm::ml {

/** Training data: row-major features plus one target per row. */
struct Dataset
{
    std::vector<FeatureVector> x;
    std::vector<double> y;

    std::size_t size() const { return x.size(); }
    void
    add(const FeatureVector &features, double target)
    {
        x.push_back(features);
        y.push_back(target);
    }
};

/** Tree growth hyper-parameters. */
struct TreeOptions
{
    int maxDepth = 16;
    int minSamplesLeaf = 3;
    int minSamplesSplit = 6;
    /** Features tried per split; <=0 means all features. */
    int mtry = 0;
};

/**
 * Regression tree with array-packed nodes for cache-friendly inference.
 */
class DecisionTree
{
  public:
    /**
     * Fit on the rows of @p data selected by @p rows (duplicates allowed,
     * as produced by bootstrap sampling). @p rng drives feature
     * subsetting when opts.mtry > 0.
     */
    void fit(const Dataset &data, std::span<const std::uint32_t> rows,
             const TreeOptions &opts, Pcg32 &rng);

    /** Predict one sample; fatal if the tree has not been fitted. */
    double predict(const FeatureVector &f) const;

    /** Number of nodes (diagnostics). */
    std::size_t nodeCount() const { return _nodes.size(); }

    /** Maximum depth reached (diagnostics). */
    int depth() const { return _depth; }

    bool fitted() const { return !_nodes.empty(); }

    /** Write the fitted tree ("tree <n>" header plus one node/line). */
    void save(std::ostream &os) const;

    /** Read a tree written by save(); fatal on malformed input. */
    static DecisionTree load(std::istream &is);

    struct Node
    {
        std::int32_t feature = -1; ///< -1 marks a leaf.
        double threshold = 0.0;    ///< Go left when x[feature] <= this.
        std::int32_t left = -1;
        std::int32_t right = -1;
        double value = 0.0; ///< Leaf prediction.
    };

    /** Read-only node storage (index 0 = root); FlatForest compiles it. */
    const std::vector<Node> &nodes() const { return _nodes; }

  private:
    std::int32_t build(const Dataset &data,
                       std::vector<std::uint32_t> &rows, std::size_t begin,
                       std::size_t end, int depth, const TreeOptions &opts,
                       Pcg32 &rng);

    std::vector<Node> _nodes;
    int _depth = 0;
};

} // namespace gpupm::ml
