/**
 * @file
 * CART regression tree (variance-reduction splits).
 *
 * Building block of the Random Forest (Breiman 2001) the paper uses for
 * kernel performance and power prediction. Supports per-split random
 * feature subsetting (mtry) and row subsets, so the forest can drive
 * bagging and feature bagging from outside.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/features.hpp"

namespace gpupm::ml {

/** Training data: row-major features plus one target per row. */
struct Dataset
{
    std::vector<FeatureVector> x;
    std::vector<double> y;

    std::size_t size() const { return x.size(); }
    void
    add(const FeatureVector &features, double target)
    {
        x.push_back(features);
        y.push_back(target);
    }
};

/**
 * Per-feature sorted row orders of a dataset, computed once and shared
 * read-only by every tree fitted on it. Each feature's order holds the
 * dataset's row indices sorted by (value, row); a tree derives its
 * bootstrap orders from this by a linear filtering pass instead of
 * sorting — the sort cost is paid once per dataset, not once per tree
 * (let alone once per node, as the legacy scan does). The transposed
 * feature columns ride along so split sweeps read values from a dense
 * per-feature array instead of striding through the row-major dataset.
 */
struct DatasetOrder
{
    /** Feature-major sorted row indices: rows() entries per feature. */
    std::vector<std::uint32_t> sorted;
    /** Feature-major transposed values: columns[f][row]. */
    std::vector<double> columns;

    static DatasetOrder build(const Dataset &data);

    std::size_t rows() const { return _rows; }
    const std::uint32_t *feature(int f) const
    {
        return sorted.data() + static_cast<std::size_t>(f) * _rows;
    }
    const double *column(int f) const
    {
        return columns.data() + static_cast<std::size_t>(f) * _rows;
    }

  private:
    std::size_t _rows = 0;
};

/** Tree growth hyper-parameters. */
struct TreeOptions
{
    int maxDepth = 16;
    int minSamplesLeaf = 3;
    int minSamplesSplit = 6;
    /** Features tried per split; <=0 means all features. */
    int mtry = 0;
    /**
     * Test hook: use the legacy per-node-sort split scan instead of
     * the presorted engine (TreeBuilder). Both paths are specified to
     * produce bit-identical trees — ties visit in canonical row order,
     * sums accumulate in the same sequence — and the equivalence is
     * pinned by fuzz tests; the legacy scan is kept compiled in only
     * as that reference.
     */
    bool legacySplitScan = false;
};

/**
 * Regression tree with array-packed nodes for cache-friendly inference.
 */
class DecisionTree
{
  public:
    /**
     * Fit on the rows of @p data selected by @p rows (duplicates allowed,
     * as produced by bootstrap sampling; order is irrelevant — rows are
     * canonicalized to ascending order before fitting). @p rng drives
     * feature subsetting when opts.mtry > 0.
     */
    void fit(const Dataset &data, std::span<const std::uint32_t> rows,
             const TreeOptions &opts, Pcg32 &rng);

    /**
     * Same, with a precomputed DatasetOrder for @p data. The forest
     * passes one shared order so no tree ever sorts; the four-argument
     * overload builds a private one per call. The fitted tree is
     * identical either way.
     */
    void fit(const Dataset &data, std::span<const std::uint32_t> rows,
             const TreeOptions &opts, Pcg32 &rng,
             const DatasetOrder *order);

    /** Predict one sample; fatal if the tree has not been fitted. */
    double predict(const FeatureVector &f) const;

    /** Number of nodes (diagnostics). */
    std::size_t nodeCount() const { return _nodes.size(); }

    /** Maximum depth reached (diagnostics). */
    int depth() const { return _depth; }

    bool fitted() const { return !_nodes.empty(); }

    /** Write the fitted tree ("tree <n>" header plus one node/line). */
    void save(std::ostream &os) const;

    /** Read a tree written by save(); fatal on malformed input. */
    static DecisionTree load(std::istream &is);

    struct Node
    {
        std::int32_t feature = -1; ///< -1 marks a leaf.
        double threshold = 0.0;    ///< Go left when x[feature] <= this.
        std::int32_t left = -1;
        std::int32_t right = -1;
        double value = 0.0; ///< Leaf prediction.
    };

    /** Read-only node storage (index 0 = root); FlatForest compiles it. */
    const std::vector<Node> &nodes() const { return _nodes; }

  private:
    /** Legacy per-node-sort recursion (TreeOptions::legacySplitScan). */
    std::int32_t build(const Dataset &data,
                       std::vector<std::uint32_t> &rows, std::size_t begin,
                       std::size_t end, int depth, const TreeOptions &opts,
                       Pcg32 &rng, std::vector<std::uint32_t> &scratch);

    std::vector<Node> _nodes;
    int _depth = 0;
};

} // namespace gpupm::ml
