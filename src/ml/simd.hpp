/**
 * @file
 * SIMD mode selection and runtime CPU dispatch for forest inference.
 *
 * Three user-facing modes (the `--simd` flag / GPUPM_SIMD env var):
 *
 *  - `scalar`   - the float64 branchless engine from PR 2. The
 *                 bit-exactness oracle: predictions match the recursive
 *                 RandomForest::predict double for double, so this is
 *                 the default and what every golden-trace suite pins.
 *  - `avx2`     - the int16-quantized engine with the AVX2 gather
 *                 kernel. Demands AVX2; on hosts without it the request
 *                 degrades (with a one-time warning) to the portable
 *                 fixed-point fallback, which is bit-identical to the
 *                 AVX2 kernel by construction, so results never fork
 *                 per-ISA.
 *  - `auto`     - quantized engine on the best kernel the CPU has:
 *                 AVX2 when available, portable fixed-point otherwise.
 *
 * A fourth, test-facing mode `fallback` forces the portable
 * fixed-point kernel even on AVX2 hosts; the bit-identity suite runs
 * both and memcmps. The *resolved* execution path (SimdPath) is what
 * telemetry and the bench context report.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace gpupm::ml {

/** Requested engine (flag/env value). */
enum class SimdMode : std::uint8_t {
    Scalar = 0, ///< Float64 oracle engine (default).
    Auto,       ///< Quantized, best available kernel.
    Avx2,       ///< Quantized, AVX2 kernel (degrades if unsupported).
    Fallback,   ///< Quantized, portable kernel (testing / non-x86).
};

/** Resolved execution path after CPU-feature dispatch. */
enum class SimdPath : std::uint8_t {
    Float64 = 0,   ///< Scalar double comparisons (the oracle).
    FixedPortable, ///< int16 fixed-point, scalar integer walk.
    FixedAvx2,     ///< int16 fixed-point, AVX2 gather walk.
};

inline constexpr std::size_t kSimdPathCount = 3;

const char *toString(SimdMode m);
const char *toString(SimdPath p);

/** Parse a `--simd` value; nullopt on anything unrecognized. */
std::optional<SimdMode> parseSimdMode(const std::string &s);

/** True when this CPU executes AVX2 (runtime check, cached). */
bool cpuSupportsAvx2();

/**
 * Map a requested mode onto the path this host will actually run.
 * Requests for AVX2 on a host without it resolve to the portable
 * fixed-point kernel and log a one-time warning - never a crash, and
 * never silently different numbers (the two quantized kernels are
 * bit-identical).
 */
SimdPath resolveSimdPath(SimdMode m);

/**
 * Process-wide default mode: GPUPM_SIMD from the environment if set
 * (invalid values warn once and fall back to scalar), overridable via
 * setDefaultSimdMode (the `--simd` flags call it before any forest is
 * compiled). TrainerOptions::simd and model loading default to this.
 */
SimdMode defaultSimdMode();
void setDefaultSimdMode(SimdMode m);

/**
 * Per-path row counters: every FlatForest prediction bumps the counter
 * of the path that evaluated it, so fleet metrics show which kernel
 * actually ran (a `--simd=avx2` request that degraded to the portable
 * fallback is visible as rows under `fallback`, not `avx2`).
 * Relaxed atomics - the counters are diagnostics, not synchronization.
 */
void addSimdRows(SimdPath p, std::uint64_t rows);

struct SimdRowStats
{
    std::uint64_t scalar = 0;   ///< Rows through the float64 path.
    std::uint64_t fallback = 0; ///< Rows through portable fixed-point.
    std::uint64_t avx2 = 0;     ///< Rows through the AVX2 kernel.
};

/** Snapshot of the process-lifetime per-path row counters. */
SimdRowStats simdRowStats();

} // namespace gpupm::ml
