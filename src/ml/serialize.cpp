#include "ml/serialize.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hpp"

namespace gpupm::ml {

void
saveRandomForest(const RandomForestPredictor &predictor, std::ostream &os)
{
    os << "gpupm-rf v1\n";
    os << "features " << numFeatures << '\n';
    os << "target time\n";
    predictor.timeForest().save(os);
    os << "target power\n";
    predictor.powerForest().save(os);
    GPUPM_ASSERT(os.good(), "stream failure while saving predictor");
}

std::unique_ptr<RandomForestPredictor>
loadRandomForest(std::istream &is)
{
    std::string magic, version;
    if (!(is >> magic >> version) || magic != "gpupm-rf" ||
        version != "v1") {
        GPUPM_FATAL("not a gpupm-rf v1 model stream");
    }

    std::string tag;
    int features = 0;
    if (!(is >> tag >> features) || tag != "features")
        GPUPM_FATAL("malformed model header");
    if (features != numFeatures) {
        GPUPM_FATAL("model was trained with ", features,
                    " features but this build expects ", numFeatures,
                    "; retrain instead of loading");
    }

    auto expect_target = [&](const std::string &name) {
        std::string t, n;
        if (!(is >> t >> n) || t != "target" || n != name)
            GPUPM_FATAL("expected 'target ", name, "' section");
    };
    expect_target("time");
    RandomForest time_forest = RandomForest::load(is);
    expect_target("power");
    RandomForest power_forest = RandomForest::load(is);

    return std::make_unique<RandomForestPredictor>(
        std::move(time_forest), std::move(power_forest));
}

} // namespace gpupm::ml
