#include "ml/predictor.hpp"

#include "common/logging.hpp"
#include "kernel/perf_model.hpp"

namespace gpupm::ml {

void
PerfPowerPredictor::predictBatch(const PredictionQuery &q,
                                 std::span<const hw::HwConfig> cs,
                                 std::span<Prediction> out) const
{
    GPUPM_ASSERT(out.size() == cs.size(),
                 "predictBatch output size mismatch");
    for (std::size_t i = 0; i < cs.size(); ++i)
        out[i] = predict(q, cs[i]);
}

struct GroundTruthPredictor::Impl
{
    kernel::GroundTruthModel model;

    explicit Impl(const hw::ApuParams &p) : model(p) {}
};

GroundTruthPredictor::GroundTruthPredictor(const hw::ApuParams &params)
    : _impl(std::make_unique<Impl>(params))
{
}

GroundTruthPredictor::~GroundTruthPredictor() = default;

Prediction
GroundTruthPredictor::predict(const PredictionQuery &q,
                              const hw::HwConfig &c) const
{
    GPUPM_ASSERT(q.groundTruth != nullptr,
                 "GroundTruthPredictor needs the kernel identity");
    const auto est = _impl->model.estimate(*q.groundTruth, c);
    const auto pb = _impl->model.powerModel().steadyStatePower(
        c, _impl->model.activity(est));
    return {est.time, pb.gpu()};
}

} // namespace gpupm::ml
