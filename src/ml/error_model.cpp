#include "ml/error_model.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "kernel/perf_model.hpp"

namespace gpupm::ml {

namespace {

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

struct NoisyOraclePredictor::Impl
{
    kernel::GroundTruthModel model;
    double meanTimeErr;
    double meanPowerErr;
    std::uint64_t seed;

    Impl(double te, double pe, std::uint64_t s, const hw::ApuParams &p)
        : model(p), meanTimeErr(te), meanPowerErr(pe), seed(s)
    {
    }

    /** Deterministic signed relative error for one (kernel, config). */
    double
    relError(double mean_err, const kernel::KernelParams &k,
             const hw::HwConfig &c, std::uint64_t salt) const
    {
        if (mean_err <= 0.0)
            return 0.0;
        std::uint64_t key =
            mix64(seed ^ salt ^ k.idiosyncrasySeed ^
                  (static_cast<std::uint64_t>(c.cus) << 24) ^
                  (static_cast<std::uint64_t>(c.gpu) << 16) ^
                  (static_cast<std::uint64_t>(c.nb) << 8) ^
                  static_cast<std::uint64_t>(c.cpu));
        Pcg32 rng(key, 0xabcdULL);
        double magnitude = rng.halfNormal(mean_err);
        double sign = rng.nextDouble() < 0.5 ? -1.0 : 1.0;
        // Bound below so a large draw cannot flip time/power negative.
        return std::max(-0.9, sign * magnitude);
    }
};

NoisyOraclePredictor::NoisyOraclePredictor(double mean_time_err,
                                           double mean_power_err,
                                           std::uint64_t seed,
                                           const hw::ApuParams &params)
    : _impl(std::make_unique<Impl>(mean_time_err, mean_power_err, seed,
                                   params))
{
}

NoisyOraclePredictor::~NoisyOraclePredictor() = default;

Prediction
NoisyOraclePredictor::predict(const PredictionQuery &q,
                              const hw::HwConfig &c) const
{
    GPUPM_ASSERT(q.groundTruth != nullptr,
                 "NoisyOraclePredictor needs the kernel identity");
    const auto &k = *q.groundTruth;
    const auto est = _impl->model.estimate(k, c);
    const auto pb = _impl->model.powerModel().steadyStatePower(
        c, _impl->model.activity(est));

    Prediction p;
    p.time = est.time * (1.0 + _impl->relError(_impl->meanTimeErr, k, c,
                                               0x7157eULL));
    p.gpuPower = pb.gpu() * (1.0 + _impl->relError(_impl->meanPowerErr, k,
                                                   c, 0x90e3ULL));
    return p;
}

std::string
NoisyOraclePredictor::name() const
{
    auto pct = [](double v) {
        // Render 0.15 as "15%".
        return fmt(100.0 * v, 0) + "%";
    };
    if (_impl->meanTimeErr == _impl->meanPowerErr)
        return "Err_" + pct(_impl->meanTimeErr);
    return "Err_" + pct(_impl->meanTimeErr) + "_" +
           pct(_impl->meanPowerErr);
}

} // namespace gpupm::ml
