/**
 * @file
 * Governor-side energy estimation.
 *
 * Combines a performance/power predictor's (time, GPU power) output with
 * the normalized V^2*f CPU power model the paper uses for the busy-
 * waiting CPU (Sec. IV-A3), producing the chip-wide energy the optimizer
 * minimizes.
 */

#pragma once

#include <array>
#include <span>

#include "hw/power_model.hpp"
#include "ml/predictor.hpp"

namespace gpupm::ml {

/** A governor's estimate of one kernel run at one configuration. */
struct EnergyEstimate
{
    Seconds time = 0.0;
    Watts gpuPower = 0.0;
    Watts cpuPower = 0.0;
    Joules energy = 0.0; ///< Chip-wide: (gpuPower + cpuPower) * time.
};

/**
 * Chip-wide energy estimator used by all predictive governors.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const hw::ApuParams &params);
    explicit EnergyModel(hw::ApuParams &&) = delete;

    /**
     * Estimate time/power/energy of a kernel at @p c using @p pred for
     * the GPU side and the V^2*f model for the busy-waiting CPU.
     */
    EnergyEstimate estimate(const PerfPowerPredictor &pred,
                            const PredictionQuery &q,
                            const hw::HwConfig &c) const;

    /**
     * Estimate one kernel at many candidate configurations through the
     * predictor's batched path: out[i] is the estimate at cs[i];
     * out.size() must equal cs.size(). Bit-identical to calling
     * estimate() per config.
     */
    void estimateBatch(const PerfPowerPredictor &pred,
                       const PredictionQuery &q,
                       std::span<const hw::HwConfig> cs,
                       std::span<EnergyEstimate> out) const;

    /**
     * CPU power while busy-waiting at a CPU P-state: the normalized
     * V^2*f model, anchored at the known reference-state power. Leakage
     * is evaluated at the reference temperature (the model does not
     * track die temperature). Precomputed per P-state at construction.
     */
    Watts
    cpuBusyWaitPower(hw::CpuPState s) const
    {
        return _cpuBusyWait[static_cast<std::size_t>(s)];
    }

  private:
    hw::PowerModel _power;
    hw::ApuParams _p;
    std::array<Watts, hw::numCpuPStates> _cpuBusyWait{};
};

} // namespace gpupm::ml
