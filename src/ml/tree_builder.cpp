#include "ml/tree_builder.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "common/logging.hpp"

namespace gpupm::ml {

void
TreeBuilder::fit(const Dataset &data, const DatasetOrder &order,
                 std::span<const std::uint32_t> rows,
                 const TreeOptions &opts, Pcg32 &rng,
                 std::vector<DecisionTree::Node> &nodes, int &depth)
{
    GPUPM_ASSERT(!rows.empty(), "cannot fit a tree on zero rows");
    GPUPM_ASSERT(order.rows() == data.size(),
                 "DatasetOrder built for a different dataset");

    _data = &data;
    _shared = &order;
    _opts = &opts;
    _rng = &rng;
    _nodes = &nodes;
    _depth = 0;
    const std::size_t n = data.size();

    // Bootstrap multiplicity per dataset row; duplicates are carried as
    // weights from here on, never as separate elements.
    _count.assign(n, 0);
    for (const auto r : rows)
        ++_count[r];
    _canon.clear();
    for (std::uint32_t r = 0; r < n; ++r) {
        if (_count[r] > 0)
            _canon.push_back(r);
    }
    _d = _canon.size();
    _goesLeft.resize(n);
    _bounce.resize(_d);

    // Per-feature orders by filtering the shared sorted view: one
    // linear walk per feature, no sorting. Shared ties are in ascending
    // row order, so the filtered order is "sorted by (value, row)".
    // The filter is branchless — whether a row was drawn is a ~63/37
    // coin flip, the worst case for a branch — so every step writes
    // and only the cursor advance is conditional. Undrawn rows write
    // one past the cursor, hence the single slack slot at the end of
    // the buffer (inner features overwrite their successor's first
    // slot, which is filled afterwards).
    _order.resize(static_cast<std::size_t>(numFeatures) * _d + 1);
    for (int f = 0; f < numFeatures; ++f) {
        const std::uint32_t *ge = order.feature(f);
        std::uint32_t *ord = featureOrder(f);
        std::size_t pos = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t r = ge[i];
            ord[pos] = r;
            pos += _count[r] > 0;
        }
    }

    nodes.clear();
    build(0, _d, rows.size(), 0);
    depth = _depth;
}

std::int32_t
TreeBuilder::makeLeaf(std::size_t begin, std::size_t end,
                      std::size_t weight)
{
    // Weighted mean in canonical order: a row of weight c contributes c
    // consecutive adds of the same target — the exact summation
    // sequence of the legacy rangeMean over the expanded rows.
    const double *y = _data->y.data();
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t r = _canon[i];
        const double yr = y[r];
        s += yr; // weight >= 1 for every row in an order: peel it
        for (std::uint32_t k = _count[r] - 1; k > 0; --k)
            s += yr;
    }
    DecisionTree::Node leaf;
    leaf.value = s / static_cast<double>(weight);
    _nodes->push_back(leaf);
    return static_cast<std::int32_t>(_nodes->size() - 1);
}

TreeBuilder::Split
TreeBuilder::bestSplit(std::size_t begin, std::size_t end,
                       std::size_t weight)
{
    const std::size_t d = end - begin;
    const auto min_leaf =
        static_cast<std::size_t>(_opts->minSamplesLeaf);
    const double *y = _data->y.data();

    // Candidate feature set (mtry without replacement) — identical rng
    // consumption to the legacy scan.
    std::array<int, numFeatures> order;
    std::iota(order.begin(), order.end(), 0);
    const int tries = _opts->mtry > 0 ? std::min(_opts->mtry, numFeatures)
                                      : numFeatures;
    for (int i = 0; i < tries; ++i) {
        auto j = i + static_cast<int>(_rng->nextBounded(
                         static_cast<std::uint32_t>(numFeatures - i)));
        std::swap(order[i], order[j]);
    }

    // Node target totals, once per node in canonical order; every
    // candidate feature scores against the same two doubles.
    double total_sum = 0.0, total_sq = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t r = _canon[i];
        const double yr = y[r];
        const double sq = yr * yr;
        total_sum += yr;
        total_sq += sq;
        for (std::uint32_t k = _count[r] - 1; k > 0; --k) {
            total_sum += yr;
            total_sq += sq;
        }
    }

    Split best;
    double best_score = std::numeric_limits<double>::infinity();
    for (int t = 0; t < tries; ++t) {
        const int feature = order[t];
        const std::uint32_t *ord = featureOrder(feature) + begin;
        const double *col = _shared->column(feature);

        // Weighted prefix sweep in this feature's sorted order. A
        // boundary exists only between distinct rows; equal-valued
        // neighbors are skipped exactly as the legacy sweep skips them,
        // and a weight-c row adds its target c times in sequence, so
        // left_sum takes the same values the expanded sweep produces.
        double left_sum = 0.0;
        std::size_t left_w = 0;
        double xv = col[ord[0]];
        for (std::size_t i = 0; i + 1 < d; ++i) {
            const std::uint32_t r = ord[i];
            const double yr = y[r];
            const std::uint32_t c = _count[r];
            left_sum += yr;
            for (std::uint32_t k = c - 1; k > 0; --k)
                left_sum += yr;
            left_w += c;
            const double xn = col[ord[i + 1]];
            if (xv == xn)
                continue; // can't split between equal feature values
            const double mid = 0.5 * (xv + xn);
            xv = xn;
            const std::size_t nl = left_w;
            const std::size_t nr = weight - nl;
            if (nl < min_leaf || nr < min_leaf)
                continue;
            const double right_sum = total_sum - left_sum;
            // SSE = sum(y^2) - nl*meanL^2 - nr*meanR^2; sum(y^2) is
            // constant across candidates, so minimize the negative
            // mean-square terms.
            const double score =
                total_sq -
                left_sum * left_sum / static_cast<double>(nl) -
                right_sum * right_sum / static_cast<double>(nr);
            if (score < best_score) {
                best_score = score;
                best.feature = feature;
                best.threshold = mid;
                best.score = score;
                best.valid = true;
            }
        }
    }
    if (best.valid && !std::isfinite(best.score))
        best.valid = false;
    return best;
}

void
TreeBuilder::sieve(std::size_t begin, std::size_t end, std::size_t left,
                   bool keep_left, bool keep_right)
{
    const std::size_t n = end - begin;
    const std::size_t right = n - left;

    // Every maintained order is partitioned stably by the side flag:
    // left entries compact forward in place, right entries bounce
    // through the scratch buffer. Both targets are written on every
    // step and only the cursors are conditional — the side flag is
    // data-dependent and would mispredict half the time as a branch.
    // Each subsequence keeps its relative order, which is what keeps
    // later splits and leaf sums bit-identical to per-node stable
    // sorts. A child that is terminal by weight or depth alone never
    // scans a feature order (its leaf mean reads the canonical order
    // only), so that side of the feature orders is left stale: only
    // the sides that can still split are compacted, and the canonical
    // order (last iteration) is always fully sieved.
    const int sieved = (keep_left || keep_right) ? numFeatures : 0;
    for (int f = 0; f <= sieved; ++f) {
        const bool canonical = f == sieved;
        std::uint32_t *arr =
            (canonical ? _canon.data() : featureOrder(f)) + begin;
        if (canonical || (keep_left && keep_right)) {
            std::size_t w = 0, r = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint32_t v = arr[i];
                const std::uint8_t g = _goesLeft[v];
                arr[w] = v;
                _bounce[r] = v;
                w += g;
                r += 1 - g;
            }
            std::memcpy(arr + left, _bounce.data(),
                        right * sizeof(std::uint32_t));
        } else if (keep_left) {
            std::size_t w = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint32_t v = arr[i];
                arr[w] = v;
                w += _goesLeft[v];
            }
        } else {
            std::size_t r = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint32_t v = arr[i];
                _bounce[r] = v;
                r += 1 - _goesLeft[v];
            }
            std::memcpy(arr + left, _bounce.data(),
                        right * sizeof(std::uint32_t));
        }
    }
}

std::int32_t
TreeBuilder::build(std::size_t begin, std::size_t end, std::size_t weight,
                   int level)
{
    _depth = std::max(_depth, level);
    const std::size_t d = end - begin;
    const auto min_split =
        static_cast<std::size_t>(_opts->minSamplesSplit);

    if (level >= _opts->maxDepth || weight < min_split)
        return makeLeaf(begin, end, weight);

    // Constant target -> leaf (duplicates are equal by construction, so
    // checking distinct rows decides exactly what the expanded check
    // would).
    bool constant = true;
    for (std::size_t i = begin + 1; i < end && constant; ++i)
        constant = _data->y[_canon[i]] == _data->y[_canon[begin]];
    if (constant)
        return makeLeaf(begin, end, weight);

    const Split best = bestSplit(begin, end, weight);
    if (!best.valid)
        return makeLeaf(begin, end, weight);

    // Left membership is a prefix of the split feature's order (it is
    // sorted, and the predicate is value <= threshold — the same
    // comparison the legacy partition applies per row, so a threshold
    // that rounds onto the next distinct value degenerates here too).
    const std::uint32_t *ord = featureOrder(best.feature) + begin;
    const double *col = _shared->column(best.feature);
    std::size_t left = 0;
    std::size_t left_w = 0;
    while (left < d && col[ord[left]] <= best.threshold) {
        left_w += _count[ord[left]];
        ++left;
    }
    if (left == 0 || left == d)
        return makeLeaf(begin, end, weight); // numerical degenerate split
    for (std::size_t i = 0; i < left; ++i)
        _goesLeft[ord[i]] = 1;
    for (std::size_t i = left; i < d; ++i)
        _goesLeft[ord[i]] = 0;

    const std::size_t right_w = weight - left_w;
    const bool left_can_split =
        level + 1 < _opts->maxDepth && left_w >= min_split;
    const bool right_can_split =
        level + 1 < _opts->maxDepth && right_w >= min_split;
    sieve(begin, end, left, left_can_split, right_can_split);

    DecisionTree::Node node;
    node.feature = best.feature;
    node.threshold = best.threshold;
    _nodes->push_back(node);
    const auto idx = static_cast<std::int32_t>(_nodes->size() - 1);

    const auto l = build(begin, begin + left, left_w, level + 1);
    const auto r = build(begin + left, end, right_w, level + 1);
    (*_nodes)[static_cast<std::size_t>(idx)].left = l;
    (*_nodes)[static_cast<std::size_t>(idx)].right = r;
    return idx;
}

} // namespace gpupm::ml
