/**
 * @file
 * Flat batched Random-Forest inference engine (the MPC hot path).
 *
 * A fitted RandomForest is a vector of per-tree node vectors; predicting
 * through it chases 32-byte nodes laid out in recursion order, once per
 * query per tree. Every MPC decision makes dozens of such queries
 * (sensitivity probes, climbing steps) and the exhaustive policies make
 * hundreds, so inference dominates the governor's runtime (paper
 * Fig. 14).
 *
 * FlatForest compiles a fitted forest into a single contiguous arena:
 *
 *  - nodes are renumbered breadth-first per tree, so the first levels -
 *    the ones every query visits - share cache lines, and a node's two
 *    children are adjacent (one fetch covers both outcomes);
 *  - per node, only what traversal needs, packed into 16 bytes: a
 *    float64 threshold, one int32 relative child offset (left child;
 *    right = left + 1), and an int16 feature index. Half the footprint
 *    of the training representation, and one cache line serves four
 *    nodes;
 *  - leaves are *self-looping*: threshold +inf, offset 0, so the step
 *    i += offset + (f > threshold) leaves i unchanged. A walker can
 *    therefore run a fixed number of steps - the tree's depth, recorded
 *    per root - with no data-dependent "reached a leaf yet?" branch in
 *    the inner loop at all. The leaf's value index lives in a parallel
 *    per-node table consulted once, after the walk;
 *  - trees are concatenated in one arena with a root-offset table.
 *
 * predictBatch() traverses tree-major over the whole query batch - one
 * tree's nodes stay cache-resident while all N queries walk it - and
 * runs eight independent walkers in the inner loop so the divergent
 * node-to-node dependence chains overlap (tree-path walks are latency
 * bound, not throughput bound). Small batches interleave eight *trees*
 * per query instead, which exposes the same parallelism when there are
 * not enough queries. No virtual dispatch, no per-query allocation, and
 * no unpredictable branches. No branch also means no misprediction
 * flushes: the only control flow is counted loops.
 *
 * In the default scalar mode, predictions are bit-identical to the
 * scalar RandomForest::predict reference: the same (<=) split
 * comparisons on the same doubles, leaves accumulated in tree order,
 * one final division by the tree count.
 *
 * ## Quantized engine (SimdMode::Auto / Avx2 / Fallback)
 *
 * compile() additionally builds an int16-quantized mirror of the
 * arena. Per feature, an affine map sends the span of that feature's
 * split thresholds onto ~32000 integer cells; thresholds quantize by
 * flooring into a cell, features by flooring with saturation one cell
 * beyond each end (so any double, including +-inf and garbage, lands
 * in range; NaN maps to INT16_MIN, which - like the float comparison
 * NaN > t - always goes left). A node's whole traversal record packs
 * into one int64 - low half `feature << 16 | uint16(qthr)`, high half
 * the int32 child offset - in a gather-friendly arena, shrinking a
 * record from 16 to 8 bytes and a step's arena traffic to a single
 * load; leaves carry qthr = INT16_MAX, which no quantized feature
 * value exceeds, so they self-loop exactly like the float path. The
 * AVX2 kernel walks 8 rows (or 8 trees of one row) per instruction
 * step with 32-bit gathers into the packed records; the portable
 * fixed-point fallback runs the same integer comparisons scalar-wise
 * and is bit-identical to the SIMD kernel by construction (same
 * quantized inputs, same exact integer arithmetic, same tree-order
 * float accumulation of the unquantized leaf values). Both quantized
 * kernels also exploit the self-looping leaves for an early exit:
 * every few steps they test whether any walker still moved (an
 * internal node's offset is always positive, so "nobody moved" means
 * "everybody parked on a leaf") and stop walking the rest of the
 * fixed-depth budget. Typical paths are far shorter than the tree's
 * maximum depth, and the extra steps this skips are exactly the
 * no-ops, so results are unchanged.
 *
 * Because both flooring maps are monotone, a quantized walk equals the
 * float walk on feature values snapped to their cell floor: a split
 * decision can differ from the scalar oracle only when the feature
 * lies within one cell width (~1/32000 of that feature's threshold
 * span) of the threshold, and then only toward the left child. That is
 * the pinned quantization-error model the fuzz suite validates.
 */

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "ml/decision_tree.hpp"
#include "ml/simd.hpp"

namespace gpupm::ml {

class RandomForest;

class FlatForest
{
  public:
    FlatForest() = default;

    /** Compile a fitted forest; fatal if unfitted. */
    static FlatForest compile(const RandomForest &rf);

    /**
     * Compile a single fitted tree (a one-tree forest). Used for the
     * out-of-bag accumulation during training, where per-tree - not
     * mean - predictions are needed.
     */
    static FlatForest compile(const DecisionTree &tree);

    bool compiled() const { return !_roots.empty(); }
    std::size_t treeCount() const { return _roots.size(); }
    std::size_t nodeCount() const { return _nodes.size(); }
    std::size_t leafCount() const { return _leafValue.size(); }

    /**
     * Select the evaluation engine: Scalar (default) runs the float64
     * oracle path; Auto/Avx2/Fallback run the quantized engine on the
     * resolved kernel (see simd.hpp). The quantized tables are always
     * built at compile() time, so switching between quantized kernels
     * never changes results; switching to or from Scalar changes which
     * engine - and therefore which rounding - produces the numbers,
     * so a predictor fixes its mode at construction and memo caches
     * stay consistent.
     */
    void setSimdMode(SimdMode m);
    SimdMode simdMode() const { return _mode; }
    /** The execution path the current mode resolved to on this host. */
    SimdPath simdPath() const { return _path; }

    /**
     * Mean prediction over all trees for each query: out[i] is the
     * prediction for x[i]. out.size() must equal x.size(). In scalar
     * mode, bit-identical to calling RandomForest::predict(x[i]) for
     * every i.
     */
    void predictBatch(std::span<const FeatureVector> x,
                      std::span<double> out) const;

    /**
     * Partial evaluation: residual forest for queries whose first
     * fixed.size() features equal `fixed`. Every split on a fixed
     * feature has a predetermined outcome, so those edges contract and
     * only splits on the remaining features survive. For the MPC
     * predictor the fixed prefix is the ten kernel features, which cuts
     * ~1150-node trees to ~25-node residuals (one specialization per
     * decision, dozens-to-hundreds of config evaluations against it).
     *
     * The residual forest preserves per-tree leaf values and tree
     * order, so its predictions are bit-identical to this forest's for
     * any query with the given prefix - *per engine*: in a quantized
     * mode the fixed edges are resolved with the quantized
     * comparisons, the surviving nodes keep the parent's quantized
     * thresholds verbatim, and the residual inherits the parent's
     * feature quantizers, so specialized and unspecialized quantized
     * walks agree exactly (and likewise for the float path).
     */
    FlatForest specialize(std::span<const double> fixed) const;

    /** Single-query convenience over the same flat traversal. */
    double predict(const FeatureVector &f) const;

    /**
     * One tree's predictions for selected rows of a dataset:
     * out[j] = tree @p tree evaluated on x[rows[j]]. Exact leaf values
     * (no averaging), bit-identical to DecisionTree::predict on that
     * tree. This is the out-of-bag accumulation path: the forest is
     * compiled once after fitting and each tree streams its own OOB
     * row set through its slice of the arena, eight walkers at a time,
     * with no per-tree compile and no feature gathering. Always runs
     * the float path: OOB accuracy reports must not inherit inference
     * quantization error.
     */
    void predictTreeBatch(std::size_t tree,
                          std::span<const FeatureVector> x,
                          std::span<const std::uint32_t> rows,
                          std::span<double> out) const;

    /**
     * Per-feature affine quantizer: a value x maps to integer cell
     * floor((x - lo) * inv). inv == 0 marks a feature no tree splits
     * on (its quantized value is pinned to 0).
     */
    struct FeatureQuantizer
    {
        double lo = 0.0;
        double inv = 0.0;
    };

    /** Quantization grid: cells across a feature's threshold span. */
    static constexpr std::int32_t kQuantCells = 32000;
    /** Centering bias so cells straddle zero in int16. */
    static constexpr std::int32_t kQuantBias = 16000;
    /** Leaf sentinel: no quantized feature value ever exceeds it. */
    static constexpr std::int16_t kQuantLeafThr = 0x7fff;
    /**
     * int16 slots per quantized feature row - numFeatures rounded up
     * to a full cache line so row starts stay 64-byte aligned and a
     * 32-bit gather of any feature slot stays inside the row's line.
     */
    static constexpr std::size_t kQuantRowStride = 32;
    static_assert(static_cast<std::size_t>(numFeatures) <=
                      kQuantRowStride,
                  "quantized row stride must cover the feature vector");

    /**
     * Quantize one feature value. Total on all doubles: NaN maps to
     * INT16_MIN (always-left, matching `NaN > t == false`), +-inf and
     * out-of-span values saturate one cell beyond the threshold grid.
     */
    static std::int16_t quantizeFeature(const FeatureQuantizer &qz,
                                        double x);
    /** Quantize a split threshold onto the same grid (clamped into it). */
    static std::int16_t quantizeThreshold(const FeatureQuantizer &qz,
                                          double t);

    /** The quantizer compile() derived for a feature (tests/diagnostics). */
    const FeatureQuantizer &quantizer(std::size_t feature) const
    {
        return _quant[feature];
    }

    /**
     * Quantize a batch of feature rows into the packed int16 layout the
     * fixed-point walks consume: row q lands at
     * rows[q * kQuantRowStride], features beyond numFeatures zeroed.
     * On the AVX2 path this runs a vectorized kernel over the SoA
     * quantizer tables; every other path quantizes per row. Both are
     * bit-identical to quantizeFeature() on each element, so the
     * engines stay interchangeable row-for-row.
     */
    void quantizeRows(std::span<const FeatureVector> x,
                      std::int16_t *rows) const;

    /**
     * Identity of this packed arena's *contents*: assigned from a
     * process-global counter each time compile() or specialize()
     * builds an arena, copied (not reassigned) on copy/move, and never
     * recycled. Two forests with the same id hold byte-identical
     * arenas, which is what makes it safe as a key for caches that
     * outlive any particular FlatForest object (a stale id simply
     * never matches again).
     */
    std::uint64_t arenaId() const { return _arenaId; }

    /**
     * Bitwise OR of every packed arena's base address modulo the cache
     * line size: 0 iff all arenas are 64-byte aligned (pinned by
     * test + the AlignedVector allocator; gathers then never straddle
     * lines).
     */
    std::size_t arenaMisalignment() const;

  private:
    /** Packed traversal record; see file comment for the layout. */
    struct Node
    {
        double threshold = 0.0;   ///< Split threshold (+inf at leaves).
        std::int32_t offset = 0;  ///< Left-child delta
                                  ///< (right = left + 1); 0 at leaves,
                                  ///< which self-loop.
        std::int16_t feature = 0; ///< Split feature (0 at leaves).
    };
    static_assert(sizeof(Node) == 16, "node record must stay packed");
    static_assert(kCacheLineBytes % sizeof(Node) == 0,
                  "a cache line must hold whole node records");

    void appendTree(const std::vector<DecisionTree::Node> &nodes);

    double predictOne(const FeatureVector &f,
                      std::span<double> leaf_scratch) const;

    /** Quantized engine entry points (portable or AVX2 per _path). */
    void predictBatchQuantized(std::span<const FeatureVector> x,
                               std::span<double> out) const;
    double predictOneQuantized(const std::int16_t *qrow,
                               std::span<double> leaf_scratch) const;
    void quantizeRow(const double *f, std::int16_t *q) const;

    /**
     * Tree-major quantized walk over pre-quantized rows (stride
     * kQuantRowStride int16 each). Fills out[0..n) with the per-row
     * tree mean, accumulating leaves in tree order like every other
     * path. Shared by the direct batch walk and the residual walk
     * after an in-batch prefix specialization: a residual inherits
     * this forest's quantizers, so the same row matrix is valid
     * against both arenas.
     */
    void predictBatchQuantizedRows(const std::int16_t *rows,
                                   std::size_t n,
                                   std::span<double> out) const;

    /**
     * Quantized-prefix residual cache (thread-local, defined in the
     * .cpp). MPC batches score one kernel against many configurations,
     * so every row of a batch shares the kernel-feature prefix - and
     * successive decisions usually share it too, because the engine
     * only sees counters through the quantization grid and real
     * counter jitter rarely crosses a cell boundary. When the rows of
     * a call agree on a quantized prefix, one specialize() call
     * (~20 us, roughly thirty row walks) buys walks on ~50x smaller
     * residual trees for this call *and every later call that matches
     * the same prefix*, including the hill climb's single-row probes.
     * Bit-identical by specialize()'s contract: the residual agrees
     * with the parent for every query matching the fixed prefix, so a
     * cache hit changes which arena is walked but never the result.
     *
     * Returns the residual to walk, or nullptr to walk this arena.
     * Batches of kBatchSpecializeMinRows+ rows specialize immediately
     * (the call alone repays the build); smaller calls only build
     * after kResidualConfirmRows rows have matched the same candidate
     * prefix, so one-off kernels never pay for a residual they will
     * not reuse. Only forests whose trees are still full size consult
     * the cache (residuals themselves never re-specialize).
     */
    const FlatForest *cachedResidual(const double *x0,
                                     const std::int16_t *rows,
                                     std::size_t n) const;

    static constexpr std::size_t kBatchSpecializeMinRows = 64;
    static constexpr std::size_t kBatchSpecializeMinAvgNodes = 64;
    static constexpr std::uint32_t kResidualConfirmRows = 16;

    /**
     * Derive per-feature quantizers from the threshold spans and fill
     * the SoA quantized arena; runs at the end of compile().
     * specialize() instead *copies* the parent's quantizers and packed
     * thresholds so residual walks agree with the parent exactly.
     */
    void buildQuantTables();

    /**
     * Sort _walkOrder by tree depth so the eight walkers of a
     * predictOne group finish together instead of idling at the
     * group's deepest tree. Walk order is free to differ from tree
     * order: results land in per-tree slots and are summed in tree
     * order regardless.
     */
    void finalizeWalkOrder();

    AlignedVector<Node> _nodes;         ///< BFS arena, all trees.
    std::vector<std::int32_t> _leafIdx; ///< Per arena slot: leaf-value
                                        ///< index, or -1 for internal.
    std::vector<std::uint32_t> _roots;  ///< Arena index of each root.
    std::vector<std::uint16_t> _depths; ///< Per-tree depth (walk count).
    std::vector<std::uint32_t> _walkOrder; ///< Trees by ascending depth.
    std::vector<double> _leafValue;     ///< Leaf predictions.

    /// Quantized mirror arena, one packed 8-byte record per slot: low
    /// 32 bits `feature << 16 | uint16(qthr)` (leaves:
    /// `0 << 16 | uint16(kQuantLeafThr)`), high 32 bits the child
    /// offset (0 at leaves). One load per traversal step; the AVX2
    /// kernels gather the two halves at scale 8 (little-endian x86).
    AlignedVector<std::int64_t> _qnodes;
    /// Per-feature affine quantizers (inv == 0: never split on).
    std::array<FeatureQuantizer, numFeatures> _quant{};
    /// The same quantizers in SoA form, padded to kQuantRowStride with
    /// inv == 0 entries, so the vectorized row quantizer loads 4-wide
    /// without bounds checks. Kept in lockstep with _quant by
    /// buildQuantTables() and specialize().
    alignas(kCacheLineBytes) std::array<double, kQuantRowStride> _qlo{};
    alignas(kCacheLineBytes) std::array<double, kQuantRowStride> _qinv{};

    SimdMode _mode = SimdMode::Scalar;  ///< Requested engine.
    SimdPath _path = SimdPath::Float64; ///< Resolved execution path.
    std::uint64_t _arenaId = 0;         ///< Arena identity; see arenaId().
};

} // namespace gpupm::ml
