/**
 * @file
 * Flat batched Random-Forest inference engine (the MPC hot path).
 *
 * A fitted RandomForest is a vector of per-tree node vectors; predicting
 * through it chases 32-byte nodes laid out in recursion order, once per
 * query per tree. Every MPC decision makes dozens of such queries
 * (sensitivity probes, climbing steps) and the exhaustive policies make
 * hundreds, so inference dominates the governor's runtime (paper
 * Fig. 14).
 *
 * FlatForest compiles a fitted forest into a single contiguous arena:
 *
 *  - nodes are renumbered breadth-first per tree, so the first levels -
 *    the ones every query visits - share cache lines, and a node's two
 *    children are adjacent (one fetch covers both outcomes);
 *  - per node, only what traversal needs, packed into 16 bytes: a
 *    float64 threshold, one int32 relative child offset (left child;
 *    right = left + 1), and an int16 feature index. Half the footprint
 *    of the training representation, and one cache line serves four
 *    nodes;
 *  - leaves are *self-looping*: threshold +inf, offset 0, so the step
 *    i += offset + (f > threshold) leaves i unchanged. A walker can
 *    therefore run a fixed number of steps - the tree's depth, recorded
 *    per root - with no data-dependent "reached a leaf yet?" branch in
 *    the inner loop at all. The leaf's value index lives in a parallel
 *    per-node table consulted once, after the walk;
 *  - trees are concatenated in one arena with a root-offset table.
 *
 * predictBatch() traverses tree-major over the whole query batch - one
 * tree's nodes stay cache-resident while all N queries walk it - and
 * runs four independent walkers in the inner loop so the divergent
 * node-to-node dependence chains overlap (tree-path walks are latency
 * bound, not throughput bound). Small batches interleave four *trees*
 * per query instead, which exposes the same parallelism when there are
 * not enough queries. No virtual dispatch, no per-query allocation, and
 * no unpredictable branches. No branch also means no misprediction
 * flushes: the only control flow is counted loops.
 *
 * Predictions are bit-identical to the scalar RandomForest::predict
 * reference: the same (<=) split comparisons on the same doubles,
 * leaves accumulated in tree order, one final division by the tree
 * count.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace gpupm::ml {

class RandomForest;

class FlatForest
{
  public:
    FlatForest() = default;

    /** Compile a fitted forest; fatal if unfitted. */
    static FlatForest compile(const RandomForest &rf);

    /**
     * Compile a single fitted tree (a one-tree forest). Used for the
     * out-of-bag accumulation during training, where per-tree - not
     * mean - predictions are needed.
     */
    static FlatForest compile(const DecisionTree &tree);

    bool compiled() const { return !_roots.empty(); }
    std::size_t treeCount() const { return _roots.size(); }
    std::size_t nodeCount() const { return _nodes.size(); }
    std::size_t leafCount() const { return _leafValue.size(); }

    /**
     * Mean prediction over all trees for each query: out[i] is the
     * prediction for x[i]. out.size() must equal x.size(). Bit-identical
     * to calling RandomForest::predict(x[i]) for every i.
     */
    void predictBatch(std::span<const FeatureVector> x,
                      std::span<double> out) const;

    /**
     * Partial evaluation: residual forest for queries whose first
     * fixed.size() features equal `fixed`. Every split on a fixed
     * feature has a predetermined outcome, so those edges contract and
     * only splits on the remaining features survive. For the MPC
     * predictor the fixed prefix is the ten kernel features, which cuts
     * ~1150-node trees to ~25-node residuals (one specialization per
     * decision, dozens-to-hundreds of config evaluations against it).
     *
     * The residual forest preserves per-tree leaf values and tree
     * order, so its predictions are bit-identical to this forest's for
     * any query with the given prefix.
     */
    FlatForest specialize(std::span<const double> fixed) const;

    /** Single-query convenience over the same flat traversal. */
    double predict(const FeatureVector &f) const;

    /**
     * One tree's predictions for selected rows of a dataset:
     * out[j] = tree @p tree evaluated on x[rows[j]]. Exact leaf values
     * (no averaging), bit-identical to DecisionTree::predict on that
     * tree. This is the out-of-bag accumulation path: the forest is
     * compiled once after fitting and each tree streams its own OOB
     * row set through its slice of the arena, eight walkers at a time,
     * with no per-tree compile and no feature gathering.
     */
    void predictTreeBatch(std::size_t tree,
                          std::span<const FeatureVector> x,
                          std::span<const std::uint32_t> rows,
                          std::span<double> out) const;

  private:
    /** Packed traversal record; see file comment for the layout. */
    struct Node
    {
        double threshold = 0.0;   ///< Split threshold (+inf at leaves).
        std::int32_t offset = 0;  ///< Left-child delta
                                  ///< (right = left + 1); 0 at leaves,
                                  ///< which self-loop.
        std::int16_t feature = 0; ///< Split feature (0 at leaves).
    };
    static_assert(sizeof(Node) == 16, "node record must stay packed");

    void appendTree(const std::vector<DecisionTree::Node> &nodes);

    double predictOne(const FeatureVector &f,
                      std::span<double> leaf_scratch) const;

    /**
     * Sort _walkOrder by tree depth so the eight walkers of a
     * predictOne group finish together instead of idling at the
     * group's deepest tree. Walk order is free to differ from tree
     * order: results land in per-tree slots and are summed in tree
     * order regardless.
     */
    void finalizeWalkOrder();

    std::vector<Node> _nodes;          ///< BFS arena, all trees.
    std::vector<std::int32_t> _leafIdx; ///< Per arena slot: leaf-value
                                        ///< index, or -1 for internal.
    std::vector<std::uint32_t> _roots;  ///< Arena index of each root.
    std::vector<std::uint16_t> _depths; ///< Per-tree depth (walk count).
    std::vector<std::uint32_t> _walkOrder; ///< Trees by ascending depth.
    std::vector<double> _leafValue;     ///< Leaf predictions.
};

} // namespace gpupm::ml
