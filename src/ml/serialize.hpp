/**
 * @file
 * Portable text serialization for trained models.
 *
 * The paper trains its Random Forest offline and ships it to the
 * runtime; this module provides the equivalent artifact handling:
 * save a trained RandomForestPredictor to a version-tagged text stream
 * and load it back, bit-exactly, so deployments do not retrain.
 *
 * Format (line oriented, locale independent):
 *   gpupm-rf v1
 *   features <numFeatures>
 *   forest <name> trees <n>
 *   tree <nodes>
 *   <feature> <threshold> <left> <right> <value>   (one per node)
 *   ...
 */

#pragma once

#include <iosfwd>
#include <memory>

#include "ml/trainer.hpp"

namespace gpupm::ml {

/** Write a trained predictor; fatal on stream failure. */
void saveRandomForest(const RandomForestPredictor &predictor,
                      std::ostream &os);

/**
 * Read a predictor previously written by saveRandomForest.
 * Fatal on malformed input or feature-count mismatch (a model trained
 * against a different feature schema must not be loaded silently).
 */
std::unique_ptr<RandomForestPredictor> loadRandomForest(std::istream &is);

} // namespace gpupm::ml
