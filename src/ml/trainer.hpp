/**
 * @file
 * Offline training pipeline for the Random Forest predictor.
 *
 * Mirrors the paper's methodology (Sec. IV-A3, V): run a training corpus
 * of kernels over the hardware configurations, record the counters,
 * execution time and GPU power for each run, and fit two forests - one
 * for time (on a log target, given the wide dynamic range) and one for
 * power. The resulting RandomForestPredictor consumes only counters and
 * the target configuration; it never touches kernel ground truth.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/flat_forest.hpp"
#include "ml/predictor.hpp"
#include "ml/random_forest.hpp"

namespace gpupm::ml {

/**
 * Dynamic-instruction proxy computed from observable counters; the time
 * forest is trained on log(time / proxy) ("seconds per instruction"),
 * which has a far narrower dynamic range than absolute time and
 * therefore generalizes across kernels of very different sizes.
 */
double instructionProxy(const kernel::KernelCounters &c);

/**
 * Counter-driven Random Forest predictor (the paper's "RF").
 *
 * Construction compiles both fitted forests into FlatForest arenas;
 * all inference - scalar and batched - runs on the flat engine, with
 * the kernel-feature prefix computed once per query and the config
 * suffix served from the precomputed table. Results are bit-identical
 * to evaluating the retained scalar forests via makeFeatures.
 */
class RandomForestPredictor : public PerfPowerPredictor
{
  public:
    /**
     * @param simd Inference engine for both compiled forests (see
     * simd.hpp). Fixed for the predictor's lifetime so per-kernel
     * memo caches and residual specializations never mix engines;
     * online refits propagate the serving generation's mode.
     */
    RandomForestPredictor(RandomForest time_forest,
                          RandomForest power_forest,
                          SimdMode simd = defaultSimdMode());

    Prediction predict(const PredictionQuery &q,
                       const hw::HwConfig &c) const override;

    void predictBatch(const PredictionQuery &q,
                      std::span<const hw::HwConfig> cs,
                      std::span<Prediction> out) const override;

    /**
     * Broker hook: raw forest outputs for prebuilt feature rows that
     * may mix *different kernels* in one batch. predictBatch scores one
     * kernel against many configs; an inference broker coalescing
     * requests from many concurrent sessions needs the transpose - many
     * (kernel, config) rows walked tree-major in a single pass. Each
     * row is combineFeatures(makeKernelFeatures(counters),
     * configFeatures(config)); time_log[i] receives the time forest's
     * log(seconds-per-instruction) output (callers scale by
     * std::exp(time_log[i]) * instructionProxy(counters)), gpu_power[i]
     * the power forest's Watts. Per-row results are bit-identical to
     * predict()/predictBatch() on the same (counters, config): FlatForest
     * rows are evaluated independently, so batch composition never
     * changes a result. Stateless and safe to call concurrently.
     */
    void predictRows(std::span<const FeatureVector> rows,
                     std::span<double> time_log,
                     std::span<double> gpu_power) const;

    std::string name() const override { return "RF"; }

    const RandomForest &timeForest() const { return _time; }
    const RandomForest &powerForest() const { return _power; }

    /** The compiled inference engines (diagnostics). */
    const FlatForest &timeFlat() const { return _timeFlat; }
    const FlatForest &powerFlat() const { return _powerFlat; }

    /** Requested inference engine (construction-time, immutable). */
    SimdMode simdMode() const { return _simd; }
    /** The execution path the mode resolved to on this host. */
    SimdPath simdPath() const { return _timeFlat.simdPath(); }

    /**
     * Process-unique identity of this predictor instance. Caches keyed
     * on the predictor (the per-thread specialization memo) must use
     * this rather than the object address: online retraining destroys
     * predictors and allocates replacements, and a recycled address
     * would validate a stale cache entry against the new forests.
     */
    std::uint64_t instanceId() const { return _instanceId; }

  private:
    RandomForest _time;
    RandomForest _power;
    FlatForest _timeFlat;
    FlatForest _powerFlat;
    SimdMode _simd;
    std::uint64_t _instanceId;
};

/** Training configuration. */
struct TrainerOptions
{
    /** Kernels in the training corpus. */
    std::size_t corpusSize = 128;
    /** Seed for corpus generation and forest fitting. */
    std::uint64_t seed = 0x7a41ULL;
    /** Keep every config (1) or sample every k-th config (k>1). */
    int configStride = 1;
    /**
     * Worker threads for dataset generation and forest fitting
     * (1 = serial, 0 = hardware concurrency). Output is bit-identical
     * for every value: dataset rows are produced per kernel and
     * appended in corpus order, both forests fit concurrently from
     * serially pre-drawn bootstrap samples and rng streams, and OOB
     * sums reduce in tree order (see ForestOptions::jobs).
     */
    std::size_t jobs = 1;
    /**
     * Inference engine for the trained predictor (`--simd` flag /
     * GPUPM_SIMD env; see simd.hpp). Training itself - splits, OOB
     * accumulation - always runs the float path; this only selects
     * how the resulting predictor evaluates.
     */
    SimdMode simd = defaultSimdMode();
    ForestOptions forest = ForestOptions::regressionDefaults();
};

/** Accuracy summary of a trained predictor. */
struct TrainingReport
{
    double timeOobMapePct = 0.0;  ///< OOB MAPE of the time forest (%).
    double powerOobMapePct = 0.0; ///< OOB MAPE of the power forest (%).
    std::size_t datasetRows = 0;
};

/**
 * Build the training dataset and fit the forests.
 *
 * @param opts Training configuration.
 * @param[out] report Accuracy summary, if non-null.
 */
std::unique_ptr<RandomForestPredictor>
trainRandomForestPredictor(const TrainerOptions &opts = {},
                           TrainingReport *report = nullptr);

/**
 * Evaluate a predictor's time/power MAPE against ground truth over a
 * set of kernels and all configurations (paper Sec. VI-D quotes 25%
 * performance and 12% power MAPE for its RF on the 15 benchmarks).
 */
struct EvalReport
{
    double timeMapePct = 0.0;
    double powerMapePct = 0.0;
    std::size_t samples = 0;
};

EvalReport evaluatePredictor(const PerfPowerPredictor &pred,
                             const std::vector<kernel::KernelParams> &ks);

} // namespace gpupm::ml
