#include "ml/features.hpp"

#include <cmath>

#include "hw/power_model.hpp"

namespace gpupm::ml {

FeatureVector
makeFeatures(const kernel::KernelCounters &k, const hw::HwConfig &c)
{
    const auto &cpu = hw::cpuDvfs(c.cpu);
    const auto &nb = hw::nbDvfs(c.nb);
    const auto &gpu = hw::gpuDvfs(c.gpu);
    // Rail voltage duplicates information from (gpu, nb) but gives the
    // trees direct access to the quantity power actually depends on.
    static const hw::PowerModel power_model;
    const double vrail = power_model.railVoltage(c);

    FeatureVector f{};
    int i = 0;
    f[i++] = std::log2(1.0 + k.globalWorkSize);
    f[i++] = k.memUnitStalled / 100.0;
    f[i++] = k.cacheHit / 100.0;
    f[i++] = k.vfetchInsts;
    f[i++] = k.scratchRegs;
    f[i++] = k.ldsBankConflict / 100.0;
    f[i++] = std::log2(1.0 + k.valuInsts);
    f[i++] = std::log2(1.0 + k.fetchSize);
    f[i++] = std::log2(1.0 + k.globalWorkSize * k.valuInsts);
    f[i++] = std::log2(1.0 + k.globalWorkSize * k.vfetchInsts);
    f[i++] = cpu.freq / 3900.0;
    f[i++] = cpu.voltage;
    f[i++] = nb.nbFreq / 1800.0;
    f[i++] = nb.memFreq / 800.0;
    f[i++] = gpu.freq / 720.0;
    f[i++] = vrail;
    f[i++] = c.cus / 8.0;
    return f;
}

const std::vector<std::string> &
featureNames()
{
    static const std::vector<std::string> names = {
        "log2GlobalWorkSize", "MemUnitStalled", "CacheHit",
        "VFetchInsts",        "ScratchRegs",    "LDSBankConflict",
        "log2VALUInsts",      "log2FetchSize",  "log2ComputeWork",
        "log2FetchWork",      "cpuFreq",        "cpuVolt",
        "nbFreq",             "memFreq",        "gpuFreq",
        "railVolt",           "cus"};
    return names;
}

} // namespace gpupm::ml
