#include "ml/features.hpp"

#include <cmath>
#include <cstring>
#include <type_traits>

#include "common/logging.hpp"
#include "hw/model.hpp"

namespace gpupm::ml {

KernelFeatures
makeKernelFeatures(const kernel::KernelCounters &k)
{
    KernelFeatures f{};
    int i = 0;
    f[i++] = std::log2(1.0 + k.globalWorkSize);
    f[i++] = k.memUnitStalled / 100.0;
    f[i++] = k.cacheHit / 100.0;
    f[i++] = k.vfetchInsts;
    f[i++] = k.scratchRegs;
    f[i++] = k.ldsBankConflict / 100.0;
    f[i++] = std::log2(1.0 + k.valuInsts);
    f[i++] = std::log2(1.0 + k.fetchSize);
    f[i++] = std::log2(1.0 + k.globalWorkSize * k.valuInsts);
    f[i++] = std::log2(1.0 + k.globalWorkSize * k.vfetchInsts);
    return f;
}

ConfigFeatures
makeConfigFeatures(const hw::ApuParams &params, const hw::HwConfig &c)
{
    // The config suffix IS the hardware model's descriptor: one formula,
    // owned by hw, shared by feature extraction and the model tables.
    static_assert(std::is_same_v<ConfigFeatures, hw::ConfigDescriptor>);
    return hw::makeConfigDescriptor(params, c);
}

ConfigFeatures
makeConfigFeatures(const hw::HwConfig &c)
{
    return makeConfigFeatures(hw::ApuParams::defaults(), c);
}

FeatureVector
combineFeatures(const KernelFeatures &k, const ConfigFeatures &c)
{
    FeatureVector f;
    std::memcpy(f.data(), k.data(), sizeof k);
    std::memcpy(f.data() + numKernelFeatures, c.data(), sizeof c);
    return f;
}

FeatureVector
makeFeatures(const kernel::KernelCounters &k, const hw::HwConfig &c)
{
    return combineFeatures(makeKernelFeatures(k), makeConfigFeatures(c));
}

const ConfigFeatures &
configFeatures(const hw::HwConfig &c)
{
    // Dense table over every representable config; ~63 KB, built once
    // (thread-safe function-local static).
    static const std::vector<ConfigFeatures> table = [] {
        std::vector<ConfigFeatures> t;
        t.reserve(hw::denseConfigCount);
        for (int cpu = 0; cpu < hw::numCpuPStates; ++cpu) {
            for (int nb = 0; nb < hw::numNbPStates; ++nb) {
                for (int gpu = 0; gpu < hw::numGpuPStates; ++gpu) {
                    for (int cus = 1; cus <= 8; ++cus) {
                        t.push_back(makeConfigFeatures(
                            {static_cast<hw::CpuPState>(cpu),
                             static_cast<hw::NbPState>(nb),
                             static_cast<hw::GpuPState>(gpu), cus}));
                    }
                }
            }
        }
        return t;
    }();
    GPUPM_ASSERT(c.cus >= 1 && c.cus <= 8, "CU count ", c.cus,
                 " outside the representable range");
    return table[hw::denseConfigIndex(c)];
}

const std::vector<std::string> &
featureNames()
{
    static const std::vector<std::string> names = {
        "log2GlobalWorkSize", "MemUnitStalled", "CacheHit",
        "VFetchInsts",        "ScratchRegs",    "LDSBankConflict",
        "log2VALUInsts",      "log2FetchSize",  "log2ComputeWork",
        "log2FetchWork",      "cpuFreq",        "cpuVolt",
        "nbFreq",             "memFreq",        "gpuFreq",
        "railVolt",           "cus"};
    return names;
}

} // namespace gpupm::ml
