#include "ml/energy.hpp"

namespace gpupm::ml {

EnergyModel::EnergyModel(const hw::ApuParams &params)
    : _power(params), _p(params)
{
}

Watts
EnergyModel::cpuBusyWaitPower(hw::CpuPState s) const
{
    const auto &pt = hw::cpuDvfs(s);
    // Normalized V^2*f dynamic power plus voltage-proportional leakage
    // at the reference temperature.
    const Watts dyn = _p.cpuCeff * pt.voltage * pt.voltage *
                      mhzToHz(pt.freq) * _p.cpuBusyWaitActivity;
    const Watts leak = _p.cpuLeakCoeff * pt.voltage;
    return dyn + leak;
}

EnergyEstimate
EnergyModel::estimate(const PerfPowerPredictor &pred,
                      const PredictionQuery &q,
                      const hw::HwConfig &c) const
{
    const auto p = pred.predict(q, c);
    EnergyEstimate e;
    e.time = p.time;
    e.gpuPower = p.gpuPower;
    e.cpuPower = cpuBusyWaitPower(c.cpu);
    e.energy = (e.gpuPower + e.cpuPower) * e.time;
    return e;
}

} // namespace gpupm::ml
