#include "ml/energy.hpp"

#include <vector>

#include "common/logging.hpp"

namespace gpupm::ml {

namespace {

/** Normalized V^2*f dynamic power plus voltage-proportional leakage. */
Watts
busyWaitPowerAt(const hw::ApuParams &p, hw::CpuPState s)
{
    const auto &pt = p.dvfs.cpuPoint(s);
    const Watts dyn = p.cpuCeff * pt.voltage * pt.voltage *
                      mhzToHz(pt.freq) * p.cpuBusyWaitActivity;
    const Watts leak = p.cpuLeakCoeff * pt.voltage;
    return dyn + leak;
}

} // namespace

EnergyModel::EnergyModel(const hw::ApuParams &params)
    : _power(params), _p(params)
{
    // The busy-wait power depends only on the CPU P-state; evaluating
    // the 7 points here takes V^2*f math off the per-candidate path.
    for (int s = 0; s < hw::numCpuPStates; ++s) {
        _cpuBusyWait[static_cast<std::size_t>(s)] =
            busyWaitPowerAt(_p, static_cast<hw::CpuPState>(s));
    }
}

EnergyEstimate
EnergyModel::estimate(const PerfPowerPredictor &pred,
                      const PredictionQuery &q,
                      const hw::HwConfig &c) const
{
    const auto p = pred.predict(q, c);
    EnergyEstimate e;
    e.time = p.time;
    e.gpuPower = p.gpuPower;
    e.cpuPower = cpuBusyWaitPower(c.cpu);
    e.energy = (e.gpuPower + e.cpuPower) * e.time;
    return e;
}

void
EnergyModel::estimateBatch(const PerfPowerPredictor &pred,
                           const PredictionQuery &q,
                           std::span<const hw::HwConfig> cs,
                           std::span<EnergyEstimate> out) const
{
    GPUPM_ASSERT(out.size() == cs.size(),
                 "estimateBatch output size mismatch");
    if (cs.empty())
        return;

    thread_local std::vector<Prediction> preds;
    preds.resize(cs.size());
    pred.predictBatch(q, cs, preds);
    for (std::size_t i = 0; i < cs.size(); ++i) {
        out[i].time = preds[i].time;
        out[i].gpuPower = preds[i].gpuPower;
        out[i].cpuPower = cpuBusyWaitPower(cs[i].cpu);
        out[i].energy =
            (out[i].gpuPower + out[i].cpuPower) * out[i].time;
    }
}

} // namespace gpupm::ml
