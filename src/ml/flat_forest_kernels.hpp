/**
 * @file
 * Internal AVX2 walk kernels for the quantized FlatForest engine.
 *
 * Declared unconditionally; the implementations live in
 * flat_forest_avx2.cpp behind a target("avx2") attribute so the rest
 * of the library builds without -mavx2 and non-x86 builds get
 * panicking stubs (runtime dispatch never selects the AVX2 path
 * there). The kernels operate on the raw packed arrays - 8-byte
 * traversal records (low half `feature << 16 | uint16(qthr)`, high
 * half the int32 child offset) and int16 feature rows at a fixed
 * stride - and produce exactly the same integer walk results as the
 * portable fixed-point path, including the same convergence early
 * exit (extra steps past it are self-loop no-ops); callers do all
 * leaf lookups and accumulation orderings themselves or pass the
 * leaf tables in, so SIMD/fallback bit-identity is structural.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace gpupm::ml::detail {

/**
 * Walk rows [0, n & ~7) of the quantized row matrix through one tree
 * and add each row's leaf value into acc[row]. Two 8-row groups run
 * interleaved per instruction step. Returns the number of rows
 * handled (n & ~7); the caller walks the tail scalar-wise.
 */
std::size_t avx2AccumTreeRows(const std::int64_t *qnodes,
                              const std::int16_t *qrows,
                              std::size_t stride, std::size_t n,
                              std::uint32_t root, std::uint16_t depth,
                              const std::int32_t *leaf_idx,
                              const double *leaf, double *acc);

/**
 * Quantize n dense feature rows (numFeat doubles each, back to back)
 * into the packed int16 row matrix (stride int16 slots per row,
 * padding slots zeroed). qlo/qinv are the SoA quantizer tables padded
 * to at least stride entries with inv == 0. Bit-identical to
 * FlatForest::quantizeFeature on every element: the same
 * subtract/multiply/double-clamp/floor sequence runs 4 lanes wide,
 * never-split features (inv == 0) pin to 0 and NaN inputs map to
 * INT16_MIN with the same precedence.
 */
void avx2QuantizeRows(const double *x, std::size_t numFeat,
                      std::size_t n, const double *qlo,
                      const double *qinv, std::int32_t cells,
                      std::int32_t bias, std::int16_t *rows,
                      std::size_t stride);

/**
 * Walk one quantized row through `count` trees (count must be 8 or
 * 16), rooted at roots[0..count); every tree walks `depth` steps
 * (walkers of shallower trees park on their self-looping leaves).
 * Final arena indices land in out_idx[0..count).
 */
void avx2WalkTrees(const std::int64_t *qnodes, const std::int16_t *qrow,
                   const std::uint32_t *roots, std::size_t count,
                   std::uint16_t depth, std::uint32_t *out_idx);

} // namespace gpupm::ml::detail
