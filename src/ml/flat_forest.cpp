#include "ml/flat_forest.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <utility>
#include <limits>

#include "common/logging.hpp"
#include "ml/flat_forest_kernels.hpp"
#include "ml/random_forest.hpp"
#include "trace/trace.hpp"

namespace gpupm::ml {

namespace {

/**
 * Pack one quantized traversal record: low half `feature << 16 |
 * uint16(qthr)`, high half the child offset. Field extraction in the
 * walk kernels is shift/mask arithmetic on the 64-bit value, so the
 * layout is endian-independent for the portable path; the AVX2
 * kernels additionally rely on little-endian to gather the halves as
 * adjacent 32-bit words.
 */
inline std::int64_t
packQuantNode(std::int32_t meta, std::int32_t offset)
{
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(meta)) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(offset))
         << 32));
}

/** Low (meta) half of a packed quantized record. */
inline std::int32_t
quantMeta(std::int64_t rec)
{
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(rec)));
}

/**
 * floor() over the clamped range both quantize maps use, without the
 * libm call std::floor compiles to on baseline x86-64 (no SSE4.1
 * roundsd): truncate toward zero, then subtract one when truncation
 * rounded up (negative non-integers). Exact for |v| < 2^31, which the
 * callers' clamps guarantee; bit-identical to std::floor there.
 */
inline std::int32_t
floorToInt(double v)
{
    const auto iv = static_cast<std::int32_t>(v);
    return iv - (static_cast<double>(iv) > v ? 1 : 0);
}

/**
 * Arena identities are handed out once per built arena and never
 * recycled, so a cache entry keyed on one can dangle harmlessly: after
 * the forest dies the id simply never matches again.
 */
std::uint64_t
nextArenaId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

void
FlatForest::appendTree(const std::vector<DecisionTree::Node> &nodes)
{
    GPUPM_ASSERT(!nodes.empty(), "cannot compile an empty tree");
    _roots.push_back(static_cast<std::uint32_t>(_nodes.size()));

    // Breadth-first renumbering: order[slot] is the source-node index
    // occupying arena slot root+slot. Children are enqueued together,
    // so a node's children land in adjacent slots and one relative
    // offset (to the left child) addresses both.
    std::vector<std::int32_t> order;
    std::vector<std::uint16_t> level;
    order.reserve(nodes.size());
    level.reserve(nodes.size());
    order.push_back(0);
    level.push_back(0);
    std::uint16_t depth = 0;
    for (std::size_t slot = 0; slot < order.size(); ++slot) {
        const auto &n = nodes[static_cast<std::size_t>(order[slot])];
        depth = std::max(depth, level[slot]);
        Node packed;
        if (n.feature >= 0) {
            GPUPM_ASSERT(n.feature <
                             static_cast<std::int32_t>(numFeatures),
                         "feature index out of FeatureVector range");
            const std::size_t left_slot = order.size();
            order.push_back(n.left);
            order.push_back(n.right);
            level.push_back(static_cast<std::uint16_t>(level[slot] + 1));
            level.push_back(static_cast<std::uint16_t>(level[slot] + 1));
            packed.threshold = n.threshold;
            packed.offset =
                static_cast<std::int32_t>(left_slot - slot);
            packed.feature = static_cast<std::int16_t>(n.feature);
            _leafIdx.push_back(-1);
        } else {
            // Self-looping leaf: f[0] > +inf is false for every double
            // (including +inf and NaN), so i += 0 + 0 parks the walker
            // here for the rest of its fixed-step walk.
            packed.threshold = std::numeric_limits<double>::infinity();
            packed.offset = 0;
            packed.feature = 0;
            _leafIdx.push_back(
                static_cast<std::int32_t>(_leafValue.size()));
            _leafValue.push_back(n.value);
        }
        _nodes.push_back(packed);
    }
    GPUPM_ASSERT(order.size() == nodes.size(),
                 "tree has unreachable nodes");
    _depths.push_back(depth);
}

void
FlatForest::finalizeWalkOrder()
{
    _walkOrder.resize(_roots.size());
    for (std::size_t t = 0; t < _walkOrder.size(); ++t)
        _walkOrder[t] = static_cast<std::uint32_t>(t);
    std::stable_sort(_walkOrder.begin(), _walkOrder.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return _depths[a] < _depths[b];
                     });
}

std::int16_t
FlatForest::quantizeFeature(const FeatureQuantizer &qz, double x)
{
    // NaN goes left unconditionally, matching the float comparison
    // (NaN > t is false): INT16_MIN is below every quantized
    // threshold, including the most negative real one (-kQuantBias).
    if (x != x)
        return std::numeric_limits<std::int16_t>::min();
    if (qz.inv == 0.0)
        return 0; // feature never split on; any cell works
    // Saturate one cell beyond the threshold grid *in the double
    // domain*, so +-inf, denormal-adjacent garbage and huge products
    // never hit undefined float->int conversions; clamping before the
    // floor is exact because floor is monotone and both bounds are
    // integers. The negated comparison also catches a NaN product.
    double v = (x - qz.lo) * qz.inv;
    if (!(v > -1.0))
        v = -1.0;
    else if (v > kQuantCells + 1.0)
        v = kQuantCells + 1.0;
    return static_cast<std::int16_t>(floorToInt(v) - kQuantBias);
}

std::int16_t
FlatForest::quantizeThreshold(const FeatureQuantizer &qz, double t)
{
    // Same affine floor as quantizeFeature but clamped *into* the
    // grid [0, kQuantCells]: features saturate one cell beyond both
    // ends, so an off-grid feature still compares strictly against
    // every threshold. Both maps floor the same monotone affine
    // expression, which makes quantized decisions order-consistent
    // with the float ones (see the header's error model).
    double v = (t - qz.lo) * qz.inv;
    if (!(v > 0.0))
        v = 0.0;
    else if (v > static_cast<double>(kQuantCells))
        v = static_cast<double>(kQuantCells);
    return static_cast<std::int16_t>(floorToInt(v) - kQuantBias);
}

void
FlatForest::buildQuantTables()
{
    // Pass 1: each feature's split-threshold span across all trees.
    std::array<double, numFeatures> lo{};
    std::array<double, numFeatures> hi{};
    std::array<bool, numFeatures> seen{};
    for (const Node &nd : _nodes) {
        if (nd.offset == 0)
            continue;
        const auto f = static_cast<std::size_t>(nd.feature);
        if (!seen[f]) {
            seen[f] = true;
            lo[f] = hi[f] = nd.threshold;
        } else {
            lo[f] = std::min(lo[f], nd.threshold);
            hi[f] = std::max(hi[f], nd.threshold);
        }
    }

    // A feature with a single distinct threshold still needs a
    // non-degenerate scale: a huge inv turns the cell width ~0, so
    // only features pathologically close to the lone threshold can
    // flip (and the clamps keep everything total).
    constexpr double kHugeInv = 4294967296.0; // 2^32
    for (std::size_t f = 0;
         f < static_cast<std::size_t>(numFeatures); ++f) {
        if (!seen[f]) {
            _quant[f] = {0.0, 0.0};
            continue;
        }
        const double span = hi[f] - lo[f];
        const double inv =
            (span > 0.0 && std::isfinite(span))
                ? static_cast<double>(kQuantCells) / span
                : kHugeInv;
        _quant[f] = {lo[f], inv};
    }

    // SoA mirror for the vectorized row quantizer. Padding entries
    // keep inv == 0, so vector lanes past numFeatures quantize to the
    // same 0 the scalar padding loop writes.
    _qlo.fill(0.0);
    _qinv.fill(0.0);
    for (std::size_t f = 0;
         f < static_cast<std::size_t>(numFeatures); ++f) {
        _qlo[f] = _quant[f].lo;
        _qinv[f] = _quant[f].inv;
    }

    // Pass 2: pack the mirror arena of 8-byte traversal records.
    _qnodes.resize(_nodes.size());
    for (std::size_t i = 0; i < _nodes.size(); ++i) {
        const Node &nd = _nodes[i];
        if (nd.offset == 0) {
            _qnodes[i] = packQuantNode(
                static_cast<std::int32_t>(
                    static_cast<std::uint16_t>(kQuantLeafThr)),
                0);
        } else {
            const std::int16_t qt = quantizeThreshold(
                _quant[static_cast<std::size_t>(nd.feature)],
                nd.threshold);
            _qnodes[i] = packQuantNode(
                (static_cast<std::int32_t>(nd.feature) << 16) |
                    static_cast<std::int32_t>(
                        static_cast<std::uint16_t>(qt)),
                nd.offset);
        }
    }
}

void
FlatForest::setSimdMode(SimdMode m)
{
    _mode = m;
    _path = resolveSimdPath(m);
}

std::size_t
FlatForest::arenaMisalignment() const
{
    const auto mis = [](const void *p) {
        return static_cast<std::size_t>(
            reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes);
    };
    return mis(_nodes.data()) | mis(_qnodes.data());
}

FlatForest
FlatForest::compile(const RandomForest &rf)
{
    GPUPM_ASSERT(rf.fitted(), "cannot compile an unfitted forest");
    FlatForest ff;
    ff._nodes.reserve(rf.totalNodes());
    ff._leafIdx.reserve(rf.totalNodes());
    ff._roots.reserve(rf.treeCount());
    ff._depths.reserve(rf.treeCount());
    for (const auto &tree : rf.trees())
        ff.appendTree(tree.nodes());
    ff.finalizeWalkOrder();
    ff.buildQuantTables();
    ff._arenaId = nextArenaId();
    return ff;
}

FlatForest
FlatForest::compile(const DecisionTree &tree)
{
    GPUPM_ASSERT(tree.fitted(), "cannot compile an unfitted tree");
    FlatForest ff;
    ff.appendTree(tree.nodes());
    ff.finalizeWalkOrder();
    ff.buildQuantTables();
    ff._arenaId = nextArenaId();
    return ff;
}

FlatForest
FlatForest::specialize(std::span<const double> fixed) const
{
    GPUPM_ASSERT(compiled(), "specialize on an uncompiled FlatForest");
    const Node *const nodes = _nodes.data();
    const std::int64_t *const qnodes = _qnodes.data();
    const double *const fv = fixed.data();
    const auto nf = static_cast<std::int16_t>(fixed.size());

    // In a quantized mode the fixed edges must contract exactly the
    // way the quantized walk would take them, so the residual forest
    // agrees with the unspecialized quantized walk bit for bit; the
    // float path keeps the float comparisons for the same reason.
    const bool quantized = _path != SimdPath::Float64;
    std::array<std::int16_t, numFeatures> qfix{};
    if (quantized)
        for (std::int16_t f = 0; f < nf; ++f)
            qfix[static_cast<std::size_t>(f)] = quantizeFeature(
                _quant[static_cast<std::size_t>(f)], fv[f]);

    // Follow decided (fixed-feature) edges until a surviving split or
    // a leaf. Leaves encode feature 0 / threshold +inf (quantized:
    // kQuantLeafThr), so they stop on the offset test regardless of nf.
    // The chains dominate specialize() and are cache-miss bound on the
    // parent arena, so the quantized variant reads only the packed
    // 8-byte records (offset, feature and threshold all live in one
    // word) instead of pulling the 16-byte float node alongside.
    const auto unf = static_cast<std::uint32_t>(fixed.size());
    const auto resolveQ = [&](std::uint32_t i) {
        for (;;) {
            const auto rec = static_cast<std::uint64_t>(qnodes[i]);
            const auto off = static_cast<std::uint32_t>(rec >> 32);
            const auto feat =
                static_cast<std::uint32_t>((rec >> 16) & 0xffffu);
            if (off == 0 || feat >= unf)
                return i;
            const auto qt = static_cast<std::int32_t>(
                static_cast<std::int16_t>(
                    static_cast<std::uint16_t>(rec)));
            i += off + (qfix[feat] > qt ? 1u : 0u);
        }
    };
    const auto resolveF = [&](std::uint32_t i) {
        for (;;) {
            const Node &nd = nodes[i];
            if (nd.offset == 0 || nd.feature >= nf)
                return i;
            i += static_cast<std::uint32_t>(nd.offset) +
                 (fv[nd.feature] > nd.threshold ? 1u : 0u);
        }
    };
    const auto resolve = [&](std::uint32_t i) {
        return quantized ? resolveQ(i) : resolveF(i);
    };

    FlatForest out;
    out._roots.reserve(_roots.size());
    out._depths.reserve(_roots.size());
    // The residual inherits the parent's quantizers and, below, the
    // parent's packed thresholds verbatim: surviving splits compare
    // exactly as they would inside the parent arena.
    out._quant = _quant;
    out._qlo = _qlo;
    out._qinv = _qinv;
    out._mode = _mode;
    out._path = _path;

    // Residuals are typically ~2% of the parent (a specialize() call
    // only pays off when the prefix decides most splits), so a small
    // up-front reservation removes every growth copy on the hot path
    // without committing parent-sized allocations.
    const std::size_t hint =
        std::min<std::size_t>(_nodes.size(), 2048);
    out._nodes.reserve(hint);
    out._qnodes.reserve(hint);
    out._leafIdx.reserve(hint);
    out._leafValue.reserve(hint / 2 + 1);

    // Same breadth-first emission as appendTree, but over the resolved
    // subgraph of this arena. order[] holds source arena indices whose
    // splits survive; leaf values are copied so the residual forest is
    // self-contained.
    std::vector<std::uint32_t> order;
    std::vector<std::uint16_t> level;
    order.reserve(512);
    level.reserve(512);
    for (const std::uint32_t root : _roots) {
        out._roots.push_back(static_cast<std::uint32_t>(out._nodes.size()));
        order.clear();
        level.clear();
        order.push_back(resolve(root));
        level.push_back(0);
        std::uint16_t depth = 0;
        for (std::size_t slot = 0; slot < order.size(); ++slot) {
            const Node &nd = nodes[order[slot]];
            depth = std::max(depth, level[slot]);
            Node packed;
            if (nd.offset != 0) {
                const std::size_t left_slot = order.size();
                const std::uint32_t left =
                    order[slot] + static_cast<std::uint32_t>(nd.offset);
                order.push_back(resolve(left));
                order.push_back(resolve(left + 1));
                level.push_back(
                    static_cast<std::uint16_t>(level[slot] + 1));
                level.push_back(
                    static_cast<std::uint16_t>(level[slot] + 1));
                packed.threshold = nd.threshold;
                packed.offset =
                    static_cast<std::int32_t>(left_slot - slot);
                packed.feature = nd.feature;
                out._leafIdx.push_back(-1);
                out._qnodes.push_back(packQuantNode(
                    (static_cast<std::int32_t>(nd.feature) << 16) |
                        (quantMeta(qnodes[order[slot]]) & 0xffff),
                    packed.offset));
            } else {
                packed.threshold =
                    std::numeric_limits<double>::infinity();
                packed.offset = 0;
                packed.feature = 0;
                out._leafIdx.push_back(
                    static_cast<std::int32_t>(out._leafValue.size()));
                out._leafValue.push_back(
                    _leafValue[_leafIdx[order[slot]]]);
                out._qnodes.push_back(packQuantNode(
                    static_cast<std::int32_t>(
                        static_cast<std::uint16_t>(kQuantLeafThr)),
                    0));
            }
            out._nodes.push_back(packed);
        }
        out._depths.push_back(depth);
    }
    out.finalizeWalkOrder();
    out._arenaId = nextArenaId();
    return out;
}

namespace {

/**
 * One branchless traversal step. Internal node: move to the left child
 * plus one if the feature exceeds the threshold. Leaf: threshold is
 * +inf and offset 0, so the walker stays put. Templated because the
 * packed node type is private to FlatForest.
 *
 * The walk saturates the load ports before anything else, so on
 * little-endian targets the offset and feature fields - which share
 * the 8-byte word at node offset 8 - are fetched with a single load
 * and split with ALU ops.
 */
template <typename NodeT>
[[gnu::always_inline]] inline std::uint32_t
step(const NodeT *nodes, std::uint32_t i, const double *f)
{
    const NodeT &nd = nodes[i];
    if constexpr (std::endian::native == std::endian::little) {
        static_assert(offsetof(NodeT, offset) == 8 &&
                          offsetof(NodeT, feature) == 12,
                      "fused meta load expects offset/feature at +8");
        std::uint64_t m;
        std::memcpy(&m, reinterpret_cast<const unsigned char *>(&nd) + 8,
                    sizeof(m));
        const auto off = static_cast<std::uint32_t>(m);
        // The feature index is never negative (leaves store 0), so the
        // 16-bit mask recovers it without sign handling.
        const auto feat =
            static_cast<std::uint32_t>((m >> 32) & 0xffffu);
        return i + off + (f[feat] > nd.threshold ? 1u : 0u);
    } else {
        return i + static_cast<std::uint32_t>(nd.offset) +
               (f[nd.feature] > nd.threshold ? 1u : 0u);
    }
}

/**
 * Walk W independent walkers a fixed number of steps. Each step is a
 * node load feeding a feature load feeding a compare - a ~14-cycle
 * dependence chain - so wall time is latency-bound and W concurrent
 * chains recover almost W-fold throughput until the load units
 * saturate. W = 8 measured best on this code (4 leaves latency on the
 * table, 16 starts spilling walker state).
 */
template <std::size_t W, typename NodeT>
[[gnu::always_inline]] inline void
walk(const NodeT *nodes, std::uint32_t (&idx)[W],
     const double *const (&feat)[W], std::uint16_t depth)
{
    // The fold over constant indices unrolls the walker loop
    // syntactically, so every idx[I] lives in a register across the
    // depth loop instead of bouncing through the stack. always_inline
    // on the lambda keeps the unrolled body inside the caller's loop
    // nest (GCC otherwise outlines it, re-marshalling all W walkers
    // through the stack per call).
    [&]<std::size_t... I>(std::index_sequence<I...>)
        __attribute__((always_inline)) {
        for (std::uint16_t d = 0; d < depth; ++d)
            ((idx[I] = step(nodes, idx[I], feat[I])), ...);
    }(std::make_index_sequence<W>{});
}

/**
 * One quantized traversal step - the portable twin of the AVX2
 * kernel's qstep8 (flat_forest_avx2.cpp): one 8-byte record load,
 * the same sign-extensions and the same exact integer arithmetic, so
 * the two paths agree bit for bit on every walk.
 */
[[gnu::always_inline]] inline std::uint32_t
qstep(const std::int64_t *qnodes, std::uint32_t i,
      const std::int16_t *qrow)
{
    const auto rec = static_cast<std::uint64_t>(qnodes[i]);
    // Sign-extend the packed low half: the leaf sentinel stays 32767
    // (above every quantized feature value), real thresholds live in
    // [-kQuantBias, kQuantBias].
    const auto qt = static_cast<std::int32_t>(
        static_cast<std::int16_t>(static_cast<std::uint16_t>(rec)));
    const auto feat =
        static_cast<std::uint32_t>((rec >> 16) & 0xffffu);
    const auto off = static_cast<std::uint32_t>(rec >> 32);
    return i + off +
           (static_cast<std::int32_t>(qrow[feat]) > qt ? 1u : 0u);
}

/**
 * Quantized twin of walk<W>: W interleaved fixed-point walkers, with
 * a convergence early exit. row(I) supplies walker I's quantized row
 * base - a compile-time-constant displacement in both call sites, so
 * the only live per-walker state is the index itself.
 *
 * An internal node's child offset is strictly positive and a leaf's
 * is zero, so a walker that does not move took a self-loop; when one
 * whole round moves nobody, every walker has parked and the remaining
 * depth budget would be all no-ops. The check runs every fourth round
 * (one OR-tree and a predictable branch) and the loop never walks
 * past `depth` either way, so the walk costs min(depth, converged
 * round rounded up to 4) steps: mean leaf depth in a trained forest
 * sits well below the tree's maximum depth, and the group stops at
 * its slowest member instead of the depth budget.
 */
template <std::size_t W, typename RowFn>
[[gnu::always_inline]] inline void
qwalk(const std::int64_t *qnodes, std::uint32_t (&idx)[W], RowFn row,
      std::uint16_t depth)
{
    [&]<std::size_t... I>(std::index_sequence<I...>)
        __attribute__((always_inline)) {
        std::uint16_t d = 0;
        for (; d + 4 <= depth; d += 4) {
            for (std::uint16_t k = 1; k < 4; ++k)
                ((idx[I] = qstep(qnodes, idx[I], row(I))), ...);
            std::uint32_t moved = 0;
            (([&]() __attribute__((always_inline)) {
                 const std::uint32_t next =
                     qstep(qnodes, idx[I], row(I));
                 moved |= next ^ idx[I];
                 idx[I] = next;
             }()),
             ...);
            if (moved == 0)
                return; // everyone parked: the tail is no-ops too
        }
        for (; d < depth; ++d)
            ((idx[I] = qstep(qnodes, idx[I], row(I))), ...);
    }(std::make_index_sequence<W>{});
}

} // namespace

void
FlatForest::quantizeRow(const double *f, std::int16_t *q) const
{
    for (std::size_t j = 0; j < static_cast<std::size_t>(numFeatures);
         ++j)
        q[j] = quantizeFeature(_quant[j], f[j]);
    // Zero the stride padding: the AVX2 feature gather reads 32 bits
    // at the last real slot, and defined padding keeps the row matrix
    // reproducible for memory checkers.
    for (std::size_t j = static_cast<std::size_t>(numFeatures);
         j < kQuantRowStride; ++j)
        q[j] = 0;
}

void
FlatForest::quantizeRows(std::span<const FeatureVector> x,
                         std::int16_t *rows) const
{
    const std::size_t n = x.size();
    if (_path == SimdPath::FixedAvx2 && n > 0) {
        static_assert(sizeof(FeatureVector) ==
                          sizeof(double) *
                              static_cast<std::size_t>(numFeatures),
                      "feature rows must be densely packed");
        detail::avx2QuantizeRows(
            x[0].data(), static_cast<std::size_t>(numFeatures), n,
            _qlo.data(), _qinv.data(), kQuantCells, kQuantBias, rows,
            kQuantRowStride);
        return;
    }
    for (std::size_t q = 0; q < n; ++q)
        quantizeRow(x[q].data(), rows + q * kQuantRowStride);
}

void
FlatForest::predictBatch(std::span<const FeatureVector> x,
                         std::span<double> out) const
{
    GPUPM_ASSERT(compiled(), "predict on an uncompiled FlatForest");
    GPUPM_ASSERT(out.size() == x.size(),
                 "predictBatch output size mismatch");
    const std::size_t n = x.size();
    trace::Span span(trace::Category::Ml, "ml.flatForest.predictBatch",
                     "queries", static_cast<double>(n));
    addSimdRows(_path, n);

    if (_path != SimdPath::Float64) {
        predictBatchQuantized(x, out);
        return;
    }

    if (n < 8) {
        // Too few queries to interleave; predictOne interleaves trees
        // instead. Scratch is thread_local so a warm hot path never
        // allocates.
        thread_local std::vector<double> leaf_scratch;
        leaf_scratch.resize(_roots.size());
        for (std::size_t q = 0; q < n; ++q)
            out[q] = predictOne(x[q], leaf_scratch);
        return;
    }

    std::fill(out.begin(), out.end(), 0.0);
    const Node *const nodes = _nodes.data();
    const std::int32_t *const leaf_idx = _leafIdx.data();
    const double *const leaf = _leafValue.data();

    // Tree-major: one tree's nodes stay cache-resident while the whole
    // batch walks it; eight queries walk concurrently for memory-level
    // parallelism. Per query the leaves accumulate in tree order,
    // matching the scalar reference sum exactly.
    for (std::size_t t = 0; t < _roots.size(); ++t) {
        const std::uint32_t root = _roots[t];
        const std::uint16_t depth = _depths[t];
        std::size_t q = 0;
        for (; q + 8 <= n; q += 8) {
            const double *feat[8];
            std::uint32_t idx[8];
            for (std::size_t w = 0; w < 8; ++w) {
                feat[w] = x[q + w].data();
                idx[w] = root;
            }
            walk(nodes, idx, feat, depth);
            for (std::size_t w = 0; w < 8; ++w)
                out[q + w] += leaf[leaf_idx[idx[w]]];
        }
        for (; q < n; ++q) {
            const double *const f = x[q].data();
            std::uint32_t i = root;
            for (std::uint16_t d = 0; d < depth; ++d)
                i = step(nodes, i, f);
            out[q] += leaf[leaf_idx[i]];
        }
    }

    const auto trees = static_cast<double>(_roots.size());
    for (auto &v : out)
        v /= trees;
}

namespace {

/** One cached residual: the quantized prefix it was built for. */
struct ResidualEntry
{
    std::uint64_t arenaId = 0; ///< 0 marks an empty slot.
    std::uint32_t prefixLen = 0;
    std::uint64_t lastUse = 0;
    std::array<std::int16_t, static_cast<std::size_t>(numFeatures)>
        qprefix{};
    FlatForest resid;
};

/** A prefix seen but not yet worth a specialize() call. */
struct ResidualCandidate
{
    std::uint64_t arenaId = 0;
    std::uint32_t prefixLen = 0;
    std::uint32_t rowsSeen = 0;
    std::array<std::int16_t, static_cast<std::size_t>(numFeatures)>
        qprefix{};
};

/**
 * Thread-local residual cache. Four slots cover the working set of a
 * decision loop (a time and a power forest, with room for a swapped-in
 * pair during online retraining) without a map; entries are found by
 * arena id and evicted least-recently-used. Per-thread state means no
 * locks and no cross-thread coupling; results are bit-identical either
 * way, so determinism across thread counts is unaffected.
 */
struct ResidualCacheTls
{
    std::array<ResidualEntry, 4> entries;
    // One candidate per arena (a decision loop interleaves the time
    // and the power forest, so a single shared slot would thrash and
    // never accumulate confirmations).
    std::array<ResidualCandidate, 4> cands;
    std::uint64_t tick = 0;
};

ResidualCacheTls &
residualCacheTls()
{
    static thread_local ResidualCacheTls tls;
    return tls;
}

} // namespace

const FlatForest *
FlatForest::cachedResidual(const double *x0, const std::int16_t *rows,
                           std::size_t n) const
{
    auto &tls = residualCacheTls();
    ++tls.tick;

    // Serve a built residual when every row of this call matches its
    // fixed prefix (memcmp per row: the prefix is the row's leading
    // int16s).
    for (auto &e : tls.entries) {
        if (e.arenaId != _arenaId)
            continue;
        bool match = true;
        for (std::size_t q = 0; match && q < n; ++q)
            match = std::memcmp(rows + q * kQuantRowStride,
                                e.qprefix.data(),
                                e.prefixLen * sizeof(std::int16_t)) == 0;
        if (!match)
            continue;
        e.lastUse = tls.tick;
        return &e.resid;
    }

    // Miss. Work out the prefix this call vouches for: the longest
    // quantized prefix all rows share, or - for single-row calls,
    // which cannot witness a shared prefix on their own - a match
    // against this arena's candidate.
    ResidualCandidate *c = nullptr;
    for (auto &cc : tls.cands)
        if (cc.arenaId == _arenaId) {
            c = &cc;
            break;
        }
    const auto nf = static_cast<std::uint32_t>(numFeatures);
    std::uint32_t p = 0;
    if (n >= 2) {
        for (; p < nf; ++p) {
            const std::int16_t v = rows[p];
            std::size_t q = 1;
            for (; q < n; ++q)
                if (rows[q * kQuantRowStride + p] != v)
                    break;
            if (q < n)
                break;
        }
    } else if (n == 1 && c != nullptr && c->prefixLen > 0 &&
               std::memcmp(rows, c->qprefix.data(),
                           c->prefixLen * sizeof(std::int16_t)) == 0) {
        p = c->prefixLen;
    }
    if (p == 0)
        return nullptr;

    std::uint32_t build_len = 0;
    if (n >= kBatchSpecializeMinRows) {
        // A batch this size repays the specialize() by itself.
        build_len = p;
    } else if (c != nullptr && c->prefixLen > 0 && c->prefixLen <= p &&
               std::memcmp(rows, c->qprefix.data(),
                           c->prefixLen * sizeof(std::int16_t)) == 0) {
        c->rowsSeen += static_cast<std::uint32_t>(n);
        if (c->rowsSeen >= kResidualConfirmRows)
            build_len = c->prefixLen;
    } else if (n >= 2) {
        if (c == nullptr) {
            c = &tls.cands[0];
            for (auto &cc : tls.cands)
                if (cc.rowsSeen < c->rowsSeen)
                    c = &cc;
        }
        c->arenaId = _arenaId;
        c->prefixLen = p;
        c->rowsSeen = static_cast<std::uint32_t>(n);
        std::copy(rows, rows + p, c->qprefix.begin());
        if (c->rowsSeen >= kResidualConfirmRows)
            build_len = p;
    }
    if (build_len == 0)
        return nullptr;

    // Build and cache. The raw doubles of row 0 quantize to the
    // matched prefix, so specializing on them fixes exactly the
    // quantized values the cache key records.
    ResidualEntry *victim = nullptr;
    for (auto &e : tls.entries) {
        if (e.arenaId == _arenaId) {
            victim = &e;
            break;
        }
        if (victim == nullptr || e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->resid =
        specialize(std::span<const double>(x0, build_len));
    victim->arenaId = _arenaId;
    victim->prefixLen = build_len;
    std::copy(rows, rows + build_len, victim->qprefix.begin());
    victim->lastUse = tls.tick;
    if (c != nullptr)
        *c = ResidualCandidate{};
    return &victim->resid;
}

void
FlatForest::predictBatchQuantized(std::span<const FeatureVector> x,
                                  std::span<double> out) const
{
    const std::size_t n = x.size();

    // One quantization pass per batch; every tree then gathers int16
    // values from a dense 64-byte-aligned, 64-byte-strided row matrix.
    // thread_local so the warm path never allocates.
    thread_local AlignedVector<std::int16_t> qrow_buf;
    qrow_buf.resize(n * kQuantRowStride);
    std::int16_t *const rows = qrow_buf.data();
    quantizeRows(x, rows);

    // Full-size trees first consult the residual cache: a hit walks
    // ~50x smaller trees that agree with this arena bit for bit on
    // every row that matches the cached prefix (which the cache just
    // checked). See cachedResidual() for the build policy.
    if (n > 0 &&
        _nodes.size() >= _roots.size() * kBatchSpecializeMinAvgNodes) {
        if (const FlatForest *resid = cachedResidual(x[0].data(), rows, n)) {
            if (n < 8) {
                thread_local std::vector<double> resid_scratch;
                resid_scratch.resize(resid->_roots.size());
                for (std::size_t q = 0; q < n; ++q)
                    out[q] = resid->predictOneQuantized(
                        rows + q * kQuantRowStride, resid_scratch);
            } else {
                resid->predictBatchQuantizedRows(rows, n, out);
            }
            return;
        }
    }

    if (n < 8) {
        // Too few rows to interleave; interleave trees per row instead
        // (the per-row walk keeps sixteen tree walkers busy, which
        // beats a half-empty row group even though it re-streams the
        // arena per row).
        thread_local std::vector<double> leaf_scratch;
        leaf_scratch.resize(_roots.size());
        for (std::size_t q = 0; q < n; ++q)
            out[q] = predictOneQuantized(rows + q * kQuantRowStride,
                                         leaf_scratch);
        return;
    }

    predictBatchQuantizedRows(rows, n, out);
}

void
FlatForest::predictBatchQuantizedRows(const std::int16_t *rows,
                                      std::size_t n,
                                      std::span<double> out) const
{
    std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(n),
              0.0);
    const std::int64_t *const qnodes = _qnodes.data();
    const std::int32_t *const leaf_idx = _leafIdx.data();
    const double *const leaf = _leafValue.data();
    const bool avx2 = _path == SimdPath::FixedAvx2;

    // Tree-major like the float path; the AVX2 kernel and the portable
    // 16-wide interleave run identical integer walks, and the tail
    // handling is shared, so the two quantized paths are bit-identical.
    // Sixteen walkers (vs the float path's eight) fit because the
    // packed record halves the per-step loads and the shared row base
    // keeps per-walker state down to the index itself.
    for (std::size_t t = 0; t < _roots.size(); ++t) {
        const std::uint32_t root = _roots[t];
        const std::uint16_t depth = _depths[t];
        std::size_t q = 0;
        if (avx2) {
            q = detail::avx2AccumTreeRows(qnodes, rows, kQuantRowStride,
                                          n, root, depth, leaf_idx,
                                          leaf, out.data());
        } else {
            for (; q + 16 <= n; q += 16) {
                const std::int16_t *const base =
                    rows + q * kQuantRowStride;
                std::uint32_t idx[16];
                for (std::size_t w = 0; w < 16; ++w)
                    idx[w] = root;
                qwalk(qnodes, idx,
                      [&](std::size_t w) {
                          return base + w * kQuantRowStride;
                      },
                      depth);
                for (std::size_t w = 0; w < 16; ++w)
                    out[q + w] += leaf[leaf_idx[idx[w]]];
            }
            for (; q + 8 <= n; q += 8) {
                const std::int16_t *const base =
                    rows + q * kQuantRowStride;
                std::uint32_t idx[8];
                for (std::size_t w = 0; w < 8; ++w)
                    idx[w] = root;
                qwalk(qnodes, idx,
                      [&](std::size_t w) {
                          return base + w * kQuantRowStride;
                      },
                      depth);
                for (std::size_t w = 0; w < 8; ++w)
                    out[q + w] += leaf[leaf_idx[idx[w]]];
            }
        }
        // 2..7 leftover rows (or a 4..7-row batch, e.g. a hill climb's
        // sensitivity probes): one 8-lane group with the spare lanes
        // clamped to the last row and their results dropped. The tree's
        // nodes are then streamed once for the whole group instead of
        // once per row, and each live row's walk is the exact walk the
        // scalar tail would have run.
        if (const std::size_t r = n - q; r >= 2) {
            const std::int16_t *rp[8];
            for (std::size_t w = 0; w < 8; ++w)
                rp[w] = rows + (q + (w < r ? w : r - 1)) *
                                   kQuantRowStride;
            std::uint32_t idx[8];
            for (std::size_t w = 0; w < 8; ++w)
                idx[w] = root;
            qwalk(qnodes, idx, [&](std::size_t w) { return rp[w]; },
                  depth);
            for (std::size_t w = 0; w < r; ++w)
                out[q + w] += leaf[leaf_idx[idx[w]]];
            q = n;
        }
        for (; q < n; ++q) {
            const std::int16_t *const qr = rows + q * kQuantRowStride;
            std::uint32_t i = root;
            for (std::uint16_t d = 0; d < depth; ++d)
                i = qstep(qnodes, i, qr);
            out[q] += leaf[leaf_idx[i]];
        }
    }

    const auto trees = static_cast<double>(_roots.size());
    for (std::size_t q = 0; q < n; ++q)
        out[q] /= trees;
}

void
FlatForest::predictTreeBatch(std::size_t tree,
                             std::span<const FeatureVector> x,
                             std::span<const std::uint32_t> rows,
                             std::span<double> out) const
{
    GPUPM_ASSERT(compiled(), "predict on an uncompiled FlatForest");
    GPUPM_ASSERT(tree < _roots.size(), "tree index out of range");
    GPUPM_ASSERT(out.size() == rows.size(),
                 "predictTreeBatch output size mismatch");

    const Node *const nodes = _nodes.data();
    const std::int32_t *const leaf_idx = _leafIdx.data();
    const double *const leaf = _leafValue.data();
    const std::uint32_t root = _roots[tree];
    const std::uint16_t depth = _depths[tree];
    const std::size_t n = rows.size();

    std::size_t q = 0;
    for (; q + 8 <= n; q += 8) {
        const double *feat[8];
        std::uint32_t idx[8];
        for (std::size_t w = 0; w < 8; ++w) {
            feat[w] = x[rows[q + w]].data();
            idx[w] = root;
        }
        walk(nodes, idx, feat, depth);
        for (std::size_t w = 0; w < 8; ++w)
            out[q + w] = leaf[leaf_idx[idx[w]]];
    }
    for (; q < n; ++q) {
        const double *const f = x[rows[q]].data();
        std::uint32_t i = root;
        for (std::uint16_t d = 0; d < depth; ++d)
            i = step(nodes, i, f);
        out[q] = leaf[leaf_idx[i]];
    }
}

double
FlatForest::predictOne(const FeatureVector &f,
                       std::span<double> leaf_scratch) const
{
    const Node *const nodes = _nodes.data();
    const std::int32_t *const leaf_idx = _leafIdx.data();
    const double *const leaf = _leafValue.data();
    const std::uint32_t *const roots = _roots.data();
    const std::uint16_t *const depths = _depths.data();
    const std::uint32_t *const order = _walkOrder.data();
    const std::size_t trees = _roots.size();
    const double *const fd = f.data();

    // Eight trees walk concurrently, grouped by ascending depth so a
    // group's walkers finish together (a group walks to its deepest
    // member; shallow walkers park on their self-looping leaves).
    // Leaves land in per-tree slots of the scratch array and are
    // reduced sequentially in tree order afterwards, so the sum
    // matches the scalar reference bit-for-bit.
    std::size_t g = 0;
    for (; g + 8 <= trees; g += 8) {
        const double *feat[8];
        std::uint32_t idx[8];
        const std::uint16_t depth = depths[order[g + 7]];
        for (std::size_t w = 0; w < 8; ++w) {
            feat[w] = fd;
            idx[w] = roots[order[g + w]];
        }
        walk(nodes, idx, feat, depth);
        for (std::size_t w = 0; w < 8; ++w)
            leaf_scratch[order[g + w]] = leaf[leaf_idx[idx[w]]];
    }
    for (; g < trees; ++g) {
        const std::uint32_t t = order[g];
        std::uint32_t i = roots[t];
        const std::uint16_t depth = depths[t];
        for (std::uint16_t d = 0; d < depth; ++d)
            i = step(nodes, i, fd);
        leaf_scratch[t] = leaf[leaf_idx[i]];
    }

    double s = 0.0;
    for (std::size_t k = 0; k < trees; ++k)
        s += leaf_scratch[k];
    return s / static_cast<double>(trees);
}

double
FlatForest::predictOneQuantized(const std::int16_t *qrow,
                                std::span<double> leaf_scratch) const
{
    const std::int64_t *const qnodes = _qnodes.data();
    const std::int32_t *const leaf_idx = _leafIdx.data();
    const double *const leaf = _leafValue.data();
    const std::uint32_t *const roots = _roots.data();
    const std::uint16_t *const depths = _depths.data();
    const std::uint32_t *const order = _walkOrder.data();
    const std::size_t trees = _roots.size();
    const bool avx2 = _path == SimdPath::FixedAvx2;

    // Same depth-sorted tree grouping as predictOne, but 16 trees per
    // group: all walkers share one row, so per-walker state is just
    // the index. The AVX2 kernel takes the same 16-tree groups (two
    // vectors in flight); grouping is free to differ from the portable
    // path's because per-tree walks are independent and extra steps
    // park on self-looping leaves, so the leaf values - and the
    // tree-ordered sum below - stay bit-identical.
    std::size_t g = 0;
    if (avx2) {
        std::uint32_t r[16];
        std::uint32_t idx[16];
        for (; g + 16 <= trees; g += 16) {
            const std::uint16_t depth = depths[order[g + 15]];
            for (std::size_t w = 0; w < 16; ++w)
                r[w] = roots[order[g + w]];
            detail::avx2WalkTrees(qnodes, qrow, r, 16, depth, idx);
            for (std::size_t w = 0; w < 16; ++w)
                leaf_scratch[order[g + w]] = leaf[leaf_idx[idx[w]]];
        }
        for (; g + 8 <= trees; g += 8) {
            const std::uint16_t depth = depths[order[g + 7]];
            for (std::size_t w = 0; w < 8; ++w)
                r[w] = roots[order[g + w]];
            detail::avx2WalkTrees(qnodes, qrow, r, 8, depth, idx);
            for (std::size_t w = 0; w < 8; ++w)
                leaf_scratch[order[g + w]] = leaf[leaf_idx[idx[w]]];
        }
        // 1..7 leftover trees: a padded 8-lane group (spare lanes
        // replay the last tree, results dropped), mirroring the
        // portable branch below.
        if (const std::size_t rem = trees - g; rem > 0) {
            const std::uint16_t depth = depths[order[trees - 1]];
            for (std::size_t w = 0; w < 8; ++w)
                r[w] = roots[order[g + (w < rem ? w : rem - 1)]];
            detail::avx2WalkTrees(qnodes, qrow, r, 8, depth, idx);
            for (std::size_t w = 0; w < rem; ++w)
                leaf_scratch[order[g + w]] = leaf[leaf_idx[idx[w]]];
            g = trees;
        }
    } else {
        const auto shared_row = [&](std::size_t) { return qrow; };
        for (; g + 16 <= trees; g += 16) {
            std::uint32_t idx[16];
            const std::uint16_t depth = depths[order[g + 15]];
            for (std::size_t w = 0; w < 16; ++w)
                idx[w] = roots[order[g + w]];
            qwalk(qnodes, idx, shared_row, depth);
            for (std::size_t w = 0; w < 16; ++w)
                leaf_scratch[order[g + w]] = leaf[leaf_idx[idx[w]]];
        }
        // 1..15 leftover trees: one padded group (16- or 8-wide, spare
        // lanes replay the last tree and are dropped) instead of a
        // sequential per-tree walk - a lone walker is a ~12-cycle
        // latency chain per step, so even mostly-padded groups beat
        // walking two or three trees back to back.
        if (const std::size_t r = trees - g; r > 0) {
            const std::uint16_t depth = depths[order[trees - 1]];
            std::uint32_t idx[16];
            if (r > 8) {
                for (std::size_t w = 0; w < 16; ++w)
                    idx[w] =
                        roots[order[g + (w < r ? w : r - 1)]];
                qwalk(qnodes, idx, shared_row, depth);
            } else {
                for (std::size_t w = 0; w < 8; ++w)
                    idx[w] =
                        roots[order[g + (w < r ? w : r - 1)]];
                std::uint32_t(&idx8)[8] =
                    *reinterpret_cast<std::uint32_t(*)[8]>(idx);
                qwalk(qnodes, idx8, shared_row, depth);
            }
            for (std::size_t w = 0; w < r; ++w)
                leaf_scratch[order[g + w]] = leaf[leaf_idx[idx[w]]];
            g = trees;
        }
    }
    for (; g < trees; ++g) {
        const std::uint32_t t = order[g];
        std::uint32_t i = roots[t];
        const std::uint16_t depth = depths[t];
        for (std::uint16_t d = 0; d < depth; ++d)
            i = qstep(qnodes, i, qrow);
        leaf_scratch[t] = leaf[leaf_idx[i]];
    }

    double s = 0.0;
    for (std::size_t k = 0; k < trees; ++k)
        s += leaf_scratch[k];
    return s / static_cast<double>(trees);
}

double
FlatForest::predict(const FeatureVector &f) const
{
    GPUPM_ASSERT(compiled(), "predict on an uncompiled FlatForest");
    thread_local std::vector<double> leaf_scratch;
    leaf_scratch.resize(_roots.size());
    addSimdRows(_path, 1);
    if (_path == SimdPath::Float64)
        return predictOne(f, leaf_scratch);
    alignas(kCacheLineBytes) std::int16_t qrow[kQuantRowStride];
    quantizeRows(std::span<const FeatureVector>(&f, 1), qrow);
    return predictOneQuantized(qrow, leaf_scratch);
}

} // namespace gpupm::ml
