#include "ml/flat_forest.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <utility>
#include <limits>

#include "common/logging.hpp"
#include "ml/random_forest.hpp"
#include "trace/trace.hpp"

namespace gpupm::ml {

void
FlatForest::appendTree(const std::vector<DecisionTree::Node> &nodes)
{
    GPUPM_ASSERT(!nodes.empty(), "cannot compile an empty tree");
    _roots.push_back(static_cast<std::uint32_t>(_nodes.size()));

    // Breadth-first renumbering: order[slot] is the source-node index
    // occupying arena slot root+slot. Children are enqueued together,
    // so a node's children land in adjacent slots and one relative
    // offset (to the left child) addresses both.
    std::vector<std::int32_t> order;
    std::vector<std::uint16_t> level;
    order.reserve(nodes.size());
    level.reserve(nodes.size());
    order.push_back(0);
    level.push_back(0);
    std::uint16_t depth = 0;
    for (std::size_t slot = 0; slot < order.size(); ++slot) {
        const auto &n = nodes[static_cast<std::size_t>(order[slot])];
        depth = std::max(depth, level[slot]);
        Node packed;
        if (n.feature >= 0) {
            GPUPM_ASSERT(n.feature <=
                             std::numeric_limits<std::int16_t>::max(),
                         "feature index overflows int16");
            const std::size_t left_slot = order.size();
            order.push_back(n.left);
            order.push_back(n.right);
            level.push_back(static_cast<std::uint16_t>(level[slot] + 1));
            level.push_back(static_cast<std::uint16_t>(level[slot] + 1));
            packed.threshold = n.threshold;
            packed.offset =
                static_cast<std::int32_t>(left_slot - slot);
            packed.feature = static_cast<std::int16_t>(n.feature);
            _leafIdx.push_back(-1);
        } else {
            // Self-looping leaf: f[0] > +inf is false for every double
            // (including +inf and NaN), so i += 0 + 0 parks the walker
            // here for the rest of its fixed-step walk.
            packed.threshold = std::numeric_limits<double>::infinity();
            packed.offset = 0;
            packed.feature = 0;
            _leafIdx.push_back(
                static_cast<std::int32_t>(_leafValue.size()));
            _leafValue.push_back(n.value);
        }
        _nodes.push_back(packed);
    }
    GPUPM_ASSERT(order.size() == nodes.size(),
                 "tree has unreachable nodes");
    _depths.push_back(depth);
}

void
FlatForest::finalizeWalkOrder()
{
    _walkOrder.resize(_roots.size());
    for (std::size_t t = 0; t < _walkOrder.size(); ++t)
        _walkOrder[t] = static_cast<std::uint32_t>(t);
    std::stable_sort(_walkOrder.begin(), _walkOrder.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return _depths[a] < _depths[b];
                     });
}

FlatForest
FlatForest::compile(const RandomForest &rf)
{
    GPUPM_ASSERT(rf.fitted(), "cannot compile an unfitted forest");
    FlatForest ff;
    ff._nodes.reserve(rf.totalNodes());
    ff._leafIdx.reserve(rf.totalNodes());
    ff._roots.reserve(rf.treeCount());
    ff._depths.reserve(rf.treeCount());
    for (const auto &tree : rf.trees())
        ff.appendTree(tree.nodes());
    ff.finalizeWalkOrder();
    return ff;
}

FlatForest
FlatForest::compile(const DecisionTree &tree)
{
    GPUPM_ASSERT(tree.fitted(), "cannot compile an unfitted tree");
    FlatForest ff;
    ff.appendTree(tree.nodes());
    ff.finalizeWalkOrder();
    return ff;
}

FlatForest
FlatForest::specialize(std::span<const double> fixed) const
{
    GPUPM_ASSERT(compiled(), "specialize on an uncompiled FlatForest");
    const Node *const nodes = _nodes.data();
    const double *const fv = fixed.data();
    const auto nf = static_cast<std::int16_t>(fixed.size());

    // Follow decided (fixed-feature) edges until a surviving split or
    // a leaf. Leaves encode feature 0 / threshold +inf, so they stop
    // on the offset test regardless of nf.
    auto resolve = [&](std::uint32_t i) {
        for (;;) {
            const Node &nd = nodes[i];
            if (nd.offset == 0 || nd.feature >= nf)
                return i;
            i += static_cast<std::uint32_t>(nd.offset) +
                 (fv[nd.feature] > nd.threshold ? 1u : 0u);
        }
    };

    FlatForest out;
    out._roots.reserve(_roots.size());
    out._depths.reserve(_roots.size());

    // Same breadth-first emission as appendTree, but over the resolved
    // subgraph of this arena. order[] holds source arena indices whose
    // splits survive; leaf values are copied so the residual forest is
    // self-contained.
    std::vector<std::uint32_t> order;
    std::vector<std::uint16_t> level;
    for (const std::uint32_t root : _roots) {
        out._roots.push_back(static_cast<std::uint32_t>(out._nodes.size()));
        order.clear();
        level.clear();
        order.push_back(resolve(root));
        level.push_back(0);
        std::uint16_t depth = 0;
        for (std::size_t slot = 0; slot < order.size(); ++slot) {
            const Node &nd = nodes[order[slot]];
            depth = std::max(depth, level[slot]);
            Node packed;
            if (nd.offset != 0) {
                const std::size_t left_slot = order.size();
                const std::uint32_t left =
                    order[slot] + static_cast<std::uint32_t>(nd.offset);
                order.push_back(resolve(left));
                order.push_back(resolve(left + 1));
                level.push_back(
                    static_cast<std::uint16_t>(level[slot] + 1));
                level.push_back(
                    static_cast<std::uint16_t>(level[slot] + 1));
                packed.threshold = nd.threshold;
                packed.offset =
                    static_cast<std::int32_t>(left_slot - slot);
                packed.feature = nd.feature;
                out._leafIdx.push_back(-1);
            } else {
                packed.threshold =
                    std::numeric_limits<double>::infinity();
                packed.offset = 0;
                packed.feature = 0;
                out._leafIdx.push_back(
                    static_cast<std::int32_t>(out._leafValue.size()));
                out._leafValue.push_back(
                    _leafValue[_leafIdx[order[slot]]]);
            }
            out._nodes.push_back(packed);
        }
        out._depths.push_back(depth);
    }
    out.finalizeWalkOrder();
    return out;
}

namespace {

/**
 * One branchless traversal step. Internal node: move to the left child
 * plus one if the feature exceeds the threshold. Leaf: threshold is
 * +inf and offset 0, so the walker stays put. Templated because the
 * packed node type is private to FlatForest.
 *
 * The walk saturates the load ports before anything else, so on
 * little-endian targets the offset and feature fields - which share
 * the 8-byte word at node offset 8 - are fetched with a single load
 * and split with ALU ops.
 */
template <typename NodeT>
[[gnu::always_inline]] inline std::uint32_t
step(const NodeT *nodes, std::uint32_t i, const double *f)
{
    const NodeT &nd = nodes[i];
    if constexpr (std::endian::native == std::endian::little) {
        static_assert(offsetof(NodeT, offset) == 8 &&
                          offsetof(NodeT, feature) == 12,
                      "fused meta load expects offset/feature at +8");
        std::uint64_t m;
        std::memcpy(&m, reinterpret_cast<const unsigned char *>(&nd) + 8,
                    sizeof(m));
        const auto off = static_cast<std::uint32_t>(m);
        // The feature index is never negative (leaves store 0), so the
        // 16-bit mask recovers it without sign handling.
        const auto feat =
            static_cast<std::uint32_t>((m >> 32) & 0xffffu);
        return i + off + (f[feat] > nd.threshold ? 1u : 0u);
    } else {
        return i + static_cast<std::uint32_t>(nd.offset) +
               (f[nd.feature] > nd.threshold ? 1u : 0u);
    }
}

/**
 * Walk W independent walkers a fixed number of steps. Each step is a
 * node load feeding a feature load feeding a compare - a ~14-cycle
 * dependence chain - so wall time is latency-bound and W concurrent
 * chains recover almost W-fold throughput until the load units
 * saturate. W = 8 measured best on this code (4 leaves latency on the
 * table, 16 starts spilling walker state).
 */
template <std::size_t W, typename NodeT>
[[gnu::always_inline]] inline void
walk(const NodeT *nodes, std::uint32_t (&idx)[W],
     const double *const (&feat)[W], std::uint16_t depth)
{
    // The fold over constant indices unrolls the walker loop
    // syntactically, so every idx[I] lives in a register across the
    // depth loop instead of bouncing through the stack. always_inline
    // on the lambda keeps the unrolled body inside the caller's loop
    // nest (GCC otherwise outlines it, re-marshalling all W walkers
    // through the stack per call).
    [&]<std::size_t... I>(std::index_sequence<I...>)
        __attribute__((always_inline)) {
        for (std::uint16_t d = 0; d < depth; ++d)
            ((idx[I] = step(nodes, idx[I], feat[I])), ...);
    }(std::make_index_sequence<W>{});
}

} // namespace

void
FlatForest::predictBatch(std::span<const FeatureVector> x,
                         std::span<double> out) const
{
    GPUPM_ASSERT(compiled(), "predict on an uncompiled FlatForest");
    GPUPM_ASSERT(out.size() == x.size(),
                 "predictBatch output size mismatch");
    const std::size_t n = x.size();
    trace::Span span(trace::Category::Ml, "ml.flatForest.predictBatch",
                     "queries", static_cast<double>(n));

    if (n < 8) {
        // Too few queries to interleave; predictOne interleaves trees
        // instead. Scratch is thread_local so a warm hot path never
        // allocates.
        thread_local std::vector<double> leaf_scratch;
        leaf_scratch.resize(_roots.size());
        for (std::size_t q = 0; q < n; ++q)
            out[q] = predictOne(x[q], leaf_scratch);
        return;
    }

    std::fill(out.begin(), out.end(), 0.0);
    const Node *const nodes = _nodes.data();
    const std::int32_t *const leaf_idx = _leafIdx.data();
    const double *const leaf = _leafValue.data();

    // Tree-major: one tree's nodes stay cache-resident while the whole
    // batch walks it; eight queries walk concurrently for memory-level
    // parallelism. Per query the leaves accumulate in tree order,
    // matching the scalar reference sum exactly.
    for (std::size_t t = 0; t < _roots.size(); ++t) {
        const std::uint32_t root = _roots[t];
        const std::uint16_t depth = _depths[t];
        std::size_t q = 0;
        for (; q + 8 <= n; q += 8) {
            const double *feat[8];
            std::uint32_t idx[8];
            for (std::size_t w = 0; w < 8; ++w) {
                feat[w] = x[q + w].data();
                idx[w] = root;
            }
            walk(nodes, idx, feat, depth);
            for (std::size_t w = 0; w < 8; ++w)
                out[q + w] += leaf[leaf_idx[idx[w]]];
        }
        for (; q < n; ++q) {
            const double *const f = x[q].data();
            std::uint32_t i = root;
            for (std::uint16_t d = 0; d < depth; ++d)
                i = step(nodes, i, f);
            out[q] += leaf[leaf_idx[i]];
        }
    }

    const auto trees = static_cast<double>(_roots.size());
    for (auto &v : out)
        v /= trees;
}

void
FlatForest::predictTreeBatch(std::size_t tree,
                             std::span<const FeatureVector> x,
                             std::span<const std::uint32_t> rows,
                             std::span<double> out) const
{
    GPUPM_ASSERT(compiled(), "predict on an uncompiled FlatForest");
    GPUPM_ASSERT(tree < _roots.size(), "tree index out of range");
    GPUPM_ASSERT(out.size() == rows.size(),
                 "predictTreeBatch output size mismatch");

    const Node *const nodes = _nodes.data();
    const std::int32_t *const leaf_idx = _leafIdx.data();
    const double *const leaf = _leafValue.data();
    const std::uint32_t root = _roots[tree];
    const std::uint16_t depth = _depths[tree];
    const std::size_t n = rows.size();

    std::size_t q = 0;
    for (; q + 8 <= n; q += 8) {
        const double *feat[8];
        std::uint32_t idx[8];
        for (std::size_t w = 0; w < 8; ++w) {
            feat[w] = x[rows[q + w]].data();
            idx[w] = root;
        }
        walk(nodes, idx, feat, depth);
        for (std::size_t w = 0; w < 8; ++w)
            out[q + w] = leaf[leaf_idx[idx[w]]];
    }
    for (; q < n; ++q) {
        const double *const f = x[rows[q]].data();
        std::uint32_t i = root;
        for (std::uint16_t d = 0; d < depth; ++d)
            i = step(nodes, i, f);
        out[q] = leaf[leaf_idx[i]];
    }
}

double
FlatForest::predictOne(const FeatureVector &f,
                       std::span<double> leaf_scratch) const
{
    const Node *const nodes = _nodes.data();
    const std::int32_t *const leaf_idx = _leafIdx.data();
    const double *const leaf = _leafValue.data();
    const std::uint32_t *const roots = _roots.data();
    const std::uint16_t *const depths = _depths.data();
    const std::uint32_t *const order = _walkOrder.data();
    const std::size_t trees = _roots.size();
    const double *const fd = f.data();

    // Eight trees walk concurrently, grouped by ascending depth so a
    // group's walkers finish together (a group walks to its deepest
    // member; shallow walkers park on their self-looping leaves).
    // Leaves land in per-tree slots of the scratch array and are
    // reduced sequentially in tree order afterwards, so the sum
    // matches the scalar reference bit-for-bit.
    std::size_t g = 0;
    for (; g + 8 <= trees; g += 8) {
        const double *feat[8];
        std::uint32_t idx[8];
        const std::uint16_t depth = depths[order[g + 7]];
        for (std::size_t w = 0; w < 8; ++w) {
            feat[w] = fd;
            idx[w] = roots[order[g + w]];
        }
        walk(nodes, idx, feat, depth);
        for (std::size_t w = 0; w < 8; ++w)
            leaf_scratch[order[g + w]] = leaf[leaf_idx[idx[w]]];
    }
    for (; g < trees; ++g) {
        const std::uint32_t t = order[g];
        std::uint32_t i = roots[t];
        const std::uint16_t depth = depths[t];
        for (std::uint16_t d = 0; d < depth; ++d)
            i = step(nodes, i, fd);
        leaf_scratch[t] = leaf[leaf_idx[i]];
    }

    double s = 0.0;
    for (std::size_t k = 0; k < trees; ++k)
        s += leaf_scratch[k];
    return s / static_cast<double>(trees);
}

double
FlatForest::predict(const FeatureVector &f) const
{
    GPUPM_ASSERT(compiled(), "predict on an uncompiled FlatForest");
    thread_local std::vector<double> leaf_scratch;
    leaf_scratch.resize(_roots.size());
    return predictOne(f, leaf_scratch);
}

} // namespace gpupm::ml
