/**
 * @file
 * Performance/power predictor interface (paper Sec. IV-A3).
 *
 * Predictors estimate a kernel's execution time and GPU-plane power at
 * an arbitrary hardware configuration, given the kernel's performance
 * counters (supplied at runtime by the pattern extractor). The paper's
 * deployed predictor is an offline-trained Random Forest; oracle and
 * synthetic-error predictors exist for the limit study (Fig. 4) and the
 * prediction-inaccuracy study (Fig. 13).
 */

#pragma once

#include <memory>
#include <span>
#include <string>

#include "hw/config.hpp"
#include "hw/params.hpp"
#include "kernel/counters.hpp"
#include "kernel/kernel.hpp"

namespace gpupm::ml {

/** What a policy knows about an upcoming kernel when predicting. */
struct PredictionQuery
{
    /** Last observed counters for the (expected) kernel. */
    kernel::KernelCounters counters;
    /** Expected dynamic instruction count. */
    InstCount instructions = 0.0;
    /**
     * Ground-truth identity; populated by the simulation harness and
     * consulted only by oracle-family predictors (TO, Err_x%). Counter-
     * driven predictors such as the Random Forest must ignore it.
     */
    const kernel::KernelParams *groundTruth = nullptr;
};

/** Predictor output. */
struct Prediction
{
    Seconds time = 0.0;  ///< Kernel execution time at the queried config.
    Watts gpuPower = 0.0; ///< Average GPU-plane (GPU+NB+DRAM) power.
};

/** Abstract performance/power predictor. */
class PerfPowerPredictor
{
  public:
    virtual ~PerfPowerPredictor() = default;

    /** Predict time and GPU power at configuration @p c. */
    virtual Prediction predict(const PredictionQuery &q,
                               const hw::HwConfig &c) const = 0;

    /**
     * Predict one kernel at many candidate configurations: out[i] is
     * the prediction for cs[i]; out.size() must equal cs.size(). This
     * is the governor hot path - every decision scores one kernel's
     * counters against many configs. The default implementation loops
     * over predict(); batch-capable predictors (the Random Forest)
     * override it with a fused evaluation that is bit-identical to the
     * scalar loop.
     */
    virtual void predictBatch(const PredictionQuery &q,
                              std::span<const hw::HwConfig> cs,
                              std::span<Prediction> out) const;

    /** Identifier for reports ("RF", "Err_0%", ...). */
    virtual std::string name() const = 0;
};

/**
 * Perfect-knowledge predictor backed by the ground-truth model. Used by
 * the Theoretically Optimal scheme and the Sec. II-E limit study.
 */
class GroundTruthPredictor : public PerfPowerPredictor
{
  public:
    explicit GroundTruthPredictor(const hw::ApuParams &params);
    ~GroundTruthPredictor() override;

    Prediction predict(const PredictionQuery &q,
                       const hw::HwConfig &c) const override;

    std::string name() const override { return "Err_0%"; }

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

} // namespace gpupm::ml
