/**
 * @file
 * Feature extraction for the learned performance/power models.
 *
 * A feature vector combines the eight Table III counters (log-scaled
 * where the dynamic range is wide) with the numeric description of the
 * target hardware configuration (clocks, voltages, CU count).
 */

#pragma once

#include <array>
#include <string>
#include <vector>

#include "hw/config.hpp"
#include "kernel/counters.hpp"

namespace gpupm::ml {

/**
 * Number of model input features: the eight Table III counters, two
 * derived "work" products (compute work GWS*VALU and fetch work
 * GWS*VFetch - regression trees cannot multiply features, so the
 * roofline-dominant products are provided directly), and seven numeric
 * descriptors of the target hardware configuration.
 */
inline constexpr int numFeatures = kernel::numCounters + 2 + 7;

using FeatureVector = std::array<double, numFeatures>;

/** Build the feature vector for (counters, configuration). */
FeatureVector makeFeatures(const kernel::KernelCounters &counters,
                           const hw::HwConfig &c);

/** Feature names aligned with makeFeatures() (for diagnostics). */
const std::vector<std::string> &featureNames();

} // namespace gpupm::ml
