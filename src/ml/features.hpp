/**
 * @file
 * Feature extraction for the learned performance/power models.
 *
 * A feature vector combines the eight Table III counters (log-scaled
 * where the dynamic range is wide) with the numeric description of the
 * target hardware configuration (clocks, voltages, CU count).
 */

#pragma once

#include <array>
#include <string>
#include <vector>

#include "hw/config.hpp"
#include "hw/params.hpp"
#include "kernel/counters.hpp"

namespace gpupm::ml {

/**
 * Number of model input features: the eight Table III counters, two
 * derived "work" products (compute work GWS*VALU and fetch work
 * GWS*VFetch - regression trees cannot multiply features, so the
 * roofline-dominant products are provided directly), and seven numeric
 * descriptors of the target hardware configuration.
 */
inline constexpr int numFeatures = kernel::numCounters + 2 + 7;

/** Kernel-dependent feature prefix: counters + derived work products. */
inline constexpr int numKernelFeatures = kernel::numCounters + 2;

/** Config-dependent feature suffix: clocks, voltages, CU count. */
inline constexpr int numConfigFeatures = 7;

static_assert(numKernelFeatures + numConfigFeatures == numFeatures);

using FeatureVector = std::array<double, numFeatures>;
using KernelFeatures = std::array<double, numKernelFeatures>;
using ConfigFeatures = std::array<double, numConfigFeatures>;

/** Build the feature vector for (counters, configuration). */
FeatureVector makeFeatures(const kernel::KernelCounters &counters,
                           const hw::HwConfig &c);

/**
 * Kernel-invariant feature prefix from the counters alone. The log2
 * scalings here are the expensive part of makeFeatures; at decision
 * time the counters are fixed while hundreds of candidate configs are
 * scored, so the prefix is computed once per decision.
 */
KernelFeatures makeKernelFeatures(const kernel::KernelCounters &counters);

/** Config-dependent feature suffix (clocks, voltages, rail, CUs). */
ConfigFeatures makeConfigFeatures(const hw::HwConfig &c);

/**
 * Config-dependent feature suffix for an explicit hardware model. The
 * normalizers (top CPU/NB/memory/GPU clocks) and the rail-voltage solve
 * come from @p params, so heterogeneous catalog entries get their own
 * feature scaling; with the paper parameters this is bit-identical to
 * makeConfigFeatures(c).
 */
ConfigFeatures makeConfigFeatures(const hw::ApuParams &params,
                                  const hw::HwConfig &c);

/** Concatenate prefix and suffix; equals makeFeatures bit-for-bit. */
FeatureVector combineFeatures(const KernelFeatures &k,
                              const ConfigFeatures &c);

/**
 * Precomputed makeConfigFeatures for every representable HwConfig
 * (7 CPU x 4 NB x 5 GPU states x CU counts 1..8), built once at first
 * use. Saves the per-candidate rail-voltage solve and divisions on the
 * hot path; bit-identical to makeConfigFeatures.
 */
const ConfigFeatures &configFeatures(const hw::HwConfig &c);

/** Feature names aligned with makeFeatures() (for diagnostics). */
const std::vector<std::string> &featureNames();

} // namespace gpupm::ml
