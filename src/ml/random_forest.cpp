#include "ml/random_forest.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "common/logging.hpp"
#include "ml/flat_forest.hpp"

namespace gpupm::ml {

void
RandomForest::fit(const Dataset &data, const ForestOptions &opts)
{
    GPUPM_ASSERT(data.size() > 0, "cannot fit forest on empty dataset");
    GPUPM_ASSERT(opts.numTrees > 0, "numTrees must be positive");

    _trees.assign(static_cast<std::size_t>(opts.numTrees), {});

    const std::size_t n = data.size();
    const auto sample_size = static_cast<std::size_t>(
        std::max(1.0, opts.sampleFraction * static_cast<double>(n)));

    std::vector<double> oob_sum(n, 0.0);
    std::vector<int> oob_count(n, 0);
    std::vector<char> in_bag(n);
    std::vector<std::uint32_t> rows(sample_size);

    // OOB accumulation scratch: each tree's out-of-bag rows are
    // gathered and pushed through the flat batched engine in one pass
    // (bit-identical to per-row DecisionTree::predict, in row order).
    std::vector<FeatureVector> oob_x;
    std::vector<std::uint32_t> oob_rows;
    std::vector<double> oob_pred;
    oob_x.reserve(n);
    oob_rows.reserve(n);
    oob_pred.reserve(n);

    Pcg32 rng(opts.seed, 0xf042e57ULL);
    for (auto &tree : _trees) {
        std::fill(in_bag.begin(), in_bag.end(), 0);
        for (auto &r : rows) {
            r = rng.nextBounded(static_cast<std::uint32_t>(n));
            in_bag[r] = 1;
        }
        Pcg32 tree_rng = rng.split();
        tree.fit(data, rows, opts.tree, tree_rng);

        oob_x.clear();
        oob_rows.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (!in_bag[i]) {
                oob_x.push_back(data.x[i]);
                oob_rows.push_back(static_cast<std::uint32_t>(i));
            }
        }
        oob_pred.resize(oob_x.size());
        FlatForest::compile(tree).predictBatch(oob_x, oob_pred);
        for (std::size_t j = 0; j < oob_rows.size(); ++j) {
            oob_sum[oob_rows[j]] += oob_pred[j];
            ++oob_count[oob_rows[j]];
        }
    }

    _oob.assign(n, std::nullopt);
    for (std::size_t i = 0; i < n; ++i) {
        if (oob_count[i] > 0)
            _oob[i] = oob_sum[i] / oob_count[i];
    }
}

double
RandomForest::predict(const FeatureVector &f) const
{
    GPUPM_ASSERT(fitted(), "predict on an unfitted forest");
    double s = 0.0;
    for (const auto &tree : _trees)
        s += tree.predict(f);
    return s / static_cast<double>(_trees.size());
}

double
RandomForest::oobMape(const Dataset &data) const
{
    // A forest restored via load() carries no OOB predictions (they
    // are training artifacts); report "no data" as NaN instead of
    // indexing an empty vector.
    if (_oob.size() != data.size()) {
        GPUPM_WARN("oobMape: no OOB data for this forest (loaded from "
                   "a stream, or dataset size mismatch)");
        return std::numeric_limits<double>::quiet_NaN();
    }

    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (!_oob[i] || std::fabs(data.y[i]) < 1e-12)
            continue;
        s += std::fabs((data.y[i] - *_oob[i]) / data.y[i]);
        ++n;
    }
    return n ? 100.0 * s / static_cast<double>(n) : 0.0;
}

void
RandomForest::save(std::ostream &os) const
{
    GPUPM_ASSERT(fitted(), "cannot save an unfitted forest");
    os << "forest trees " << _trees.size() << '\n';
    for (const auto &t : _trees)
        t.save(os);
}

RandomForest
RandomForest::load(std::istream &is)
{
    std::string tag1, tag2;
    std::size_t count = 0;
    if (!(is >> tag1 >> tag2 >> count) || tag1 != "forest" ||
        tag2 != "trees") {
        GPUPM_FATAL("malformed forest header");
    }
    GPUPM_ASSERT(count > 0, "forest with zero trees");
    RandomForest rf;
    rf._trees.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        rf._trees.push_back(DecisionTree::load(is));
    return rf;
}

std::size_t
RandomForest::totalNodes() const
{
    std::size_t total = 0;
    for (const auto &t : _trees)
        total += t.nodeCount();
    return total;
}

} // namespace gpupm::ml
