#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <span>
#include <string>

#include "common/logging.hpp"
#include "exec/thread_pool.hpp"
#include "ml/flat_forest.hpp"

namespace gpupm::ml {

void
RandomForest::fit(const Dataset &data, const ForestOptions &opts)
{
    if (opts.jobs == 1) {
        fit(data, opts, nullptr);
    } else {
        exec::ThreadPool pool(exec::ThreadPool::resolveJobs(opts.jobs));
        fit(data, opts, &pool);
    }
}

void
RandomForest::fit(const Dataset &data, const ForestOptions &opts,
                  exec::ThreadPool *pool)
{
    GPUPM_ASSERT(data.size() > 0, "cannot fit forest on empty dataset");
    GPUPM_ASSERT(opts.numTrees > 0, "numTrees must be positive");

    const auto trees = static_cast<std::size_t>(opts.numTrees);
    _trees.assign(trees, {});

    const std::size_t n = data.size();
    const auto sample_size = static_cast<std::size_t>(
        std::max(1.0, opts.sampleFraction * static_cast<double>(n)));

    // Every bootstrap row set and per-tree rng stream is drawn
    // serially up front — drawing is a trivial fraction of fitting —
    // so tree t's inputs depend only on (seed, t), never on which
    // worker runs it or in what order. This is what makes the fitted
    // forest byte-identical at any job count (the PR 1 sweep-engine
    // determinism pattern).
    std::vector<std::uint32_t> bootstrap(trees * sample_size);
    std::vector<Pcg32> tree_rng;
    tree_rng.reserve(trees);
    Pcg32 rng(opts.seed, 0xf042e57ULL);
    for (std::size_t t = 0; t < trees; ++t) {
        const auto rows =
            std::span(bootstrap).subspan(t * sample_size, sample_size);
        for (auto &r : rows)
            r = rng.nextBounded(static_cast<std::uint32_t>(n));
        tree_rng.push_back(rng.split());
    }

    // Sort each feature's row order once for the whole forest; every
    // tree derives its bootstrap orders from this shared view by linear
    // expansion (see TreeBuilder), so fitting never sorts again.
    const DatasetOrder order = DatasetOrder::build(data);

    const auto fit_tree = [&](std::size_t t) {
        const auto rows =
            std::span(bootstrap).subspan(t * sample_size, sample_size);
        _trees[t].fit(data, rows, opts.tree, tree_rng[t], &order);
    };
    if (pool) {
        pool->parallelFor(trees, fit_tree);
    } else {
        for (std::size_t t = 0; t < trees; ++t)
            fit_tree(t);
    }

    // OOB accumulation: compile the fitted forest once (not once per
    // tree) and stream each tree's out-of-bag rows through its slice
    // of the arena. Per-tree predictions are exact leaf values, so
    // computing them in parallel and then reducing serially in tree
    // order reproduces the serial trainer's sums bit-for-bit.
    const FlatForest flat = FlatForest::compile(*this);
    std::vector<std::vector<std::uint32_t>> oob_rows(trees);
    std::vector<std::vector<double>> oob_pred(trees);
    const auto oob_tree = [&](std::size_t t) {
        std::vector<char> in_bag(n, 0);
        const auto rows =
            std::span(bootstrap).subspan(t * sample_size, sample_size);
        for (const auto r : rows)
            in_bag[r] = 1;
        for (std::size_t i = 0; i < n; ++i) {
            if (!in_bag[i])
                oob_rows[t].push_back(static_cast<std::uint32_t>(i));
        }
        oob_pred[t].resize(oob_rows[t].size());
        flat.predictTreeBatch(t, data.x, oob_rows[t], oob_pred[t]);
    };
    if (pool) {
        pool->parallelFor(trees, oob_tree);
    } else {
        for (std::size_t t = 0; t < trees; ++t)
            oob_tree(t);
    }

    std::vector<double> oob_sum(n, 0.0);
    std::vector<int> oob_count(n, 0);
    for (std::size_t t = 0; t < trees; ++t) {
        for (std::size_t j = 0; j < oob_rows[t].size(); ++j) {
            oob_sum[oob_rows[t][j]] += oob_pred[t][j];
            ++oob_count[oob_rows[t][j]];
        }
    }

    _oob.assign(n, std::nullopt);
    for (std::size_t i = 0; i < n; ++i) {
        if (oob_count[i] > 0)
            _oob[i] = oob_sum[i] / oob_count[i];
    }
}

double
RandomForest::predict(const FeatureVector &f) const
{
    GPUPM_ASSERT(fitted(), "predict on an unfitted forest");
    double s = 0.0;
    for (const auto &tree : _trees)
        s += tree.predict(f);
    return s / static_cast<double>(_trees.size());
}

double
RandomForest::oobMape(const Dataset &data) const
{
    // A forest restored via load() carries no OOB predictions (they
    // are training artifacts); report "no data" as NaN instead of
    // indexing an empty vector.
    if (_oob.size() != data.size()) {
        GPUPM_WARN("oobMape: no OOB data for this forest (loaded from "
                   "a stream, or dataset size mismatch)");
        return std::numeric_limits<double>::quiet_NaN();
    }

    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (!_oob[i] || std::fabs(data.y[i]) < 1e-12)
            continue;
        s += std::fabs((data.y[i] - *_oob[i]) / data.y[i]);
        ++n;
    }
    if (n == 0) {
        // Every row was skipped (no OOB votes, or near-zero targets).
        // 0.0 would read as "perfect accuracy"; report "no data" the
        // same way the size-mismatch guard above does.
        GPUPM_WARN("oobMape: every row skipped (no OOB votes or "
                   "near-zero targets)");
        return std::numeric_limits<double>::quiet_NaN();
    }
    return 100.0 * s / static_cast<double>(n);
}

void
RandomForest::save(std::ostream &os) const
{
    GPUPM_ASSERT(fitted(), "cannot save an unfitted forest");
    os << "forest trees " << _trees.size() << '\n';
    for (const auto &t : _trees)
        t.save(os);
}

RandomForest
RandomForest::load(std::istream &is)
{
    std::string tag1, tag2;
    std::size_t count = 0;
    if (!(is >> tag1 >> tag2 >> count) || tag1 != "forest" ||
        tag2 != "trees") {
        GPUPM_FATAL("malformed forest header");
    }
    GPUPM_ASSERT(count > 0, "forest with zero trees");
    RandomForest rf;
    rf._trees.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        rf._trees.push_back(DecisionTree::load(is));
    return rf;
}

std::size_t
RandomForest::totalNodes() const
{
    std::size_t total = 0;
    for (const auto &t : _trees)
        total += t.nodeCount();
    return total;
}

} // namespace gpupm::ml
