#include "ml/trainer.hpp"

#include <atomic>
#include <cmath>
#include <cstring>

#include "common/logging.hpp"
#include "exec/sweep.hpp"
#include "kernel/perf_model.hpp"
#include "trace/trace.hpp"
#include "workload/training.hpp"

namespace gpupm::ml {

double
instructionProxy(const kernel::KernelCounters &c)
{
    return std::max(1.0, c.globalWorkSize * (c.valuInsts + c.vfetchInsts));
}

namespace {

std::uint64_t
nextPredictorInstanceId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

RandomForestPredictor::RandomForestPredictor(RandomForest time_forest,
                                             RandomForest power_forest,
                                             SimdMode simd)
    : _time(std::move(time_forest)), _power(std::move(power_forest)),
      _timeFlat(FlatForest::compile(_time)),
      _powerFlat(FlatForest::compile(_power)), _simd(simd),
      _instanceId(nextPredictorInstanceId())
{
    GPUPM_ASSERT(_time.fitted() && _power.fitted(),
                 "predictor needs fitted forests");
    _timeFlat.setSimdMode(simd);
    _powerFlat.setSimdMode(simd);
}

Prediction
RandomForestPredictor::predict(const PredictionQuery &q,
                               const hw::HwConfig &c) const
{
    Prediction p;
    predictBatch(q, std::span<const hw::HwConfig>(&c, 1),
                 std::span<Prediction>(&p, 1));
    return p;
}

void
RandomForestPredictor::predictRows(std::span<const FeatureVector> rows,
                                   std::span<double> time_log,
                                   std::span<double> gpu_power) const
{
    GPUPM_ASSERT(time_log.size() == rows.size() &&
                     gpu_power.size() == rows.size(),
                 "predictRows output size mismatch");
    if (rows.empty())
        return;
    trace::Span span(trace::Category::Ml, "ml.predictRows", "rows",
                     static_cast<double>(rows.size()));
    _timeFlat.predictBatch(rows, time_log);
    _powerFlat.predictBatch(rows, gpu_power);
}

namespace {

/**
 * One-entry cache of forests partially evaluated for a kernel-feature
 * prefix. A governor decision evaluates one kernel against many
 * configurations (sensitivity batch, climbing steps, or a full PPK
 * scan), and successive launches of the same kernel repeat the same
 * prefix, so the residual forests are built once and reused across
 * both. Keyed on the raw counters (eight doubles, padding-free) rather
 * than the derived features, so a hit also skips the log2-heavy
 * makeKernelFeatures. thread_local: sweep workers each run their own
 * decisions.
 *
 * The entry also memoizes finished predictions per dense config index:
 * a prediction is a pure function of (counters, config), and the MPC
 * premise is kernels relaunching with identical counters, so
 * steady-state decisions mostly re-request pairs already computed.
 * Memoized values are the values the residual forests produced, so
 * hits are bit-identical to recomputation.
 */
struct SpecializedForests
{
    std::uint64_t owner = 0;       ///< instanceId of the owning predictor.
    kernel::KernelCounters key{};  ///< Counters the entry belongs to.
    KernelFeatures kf{};           ///< Derived prefix, computed once.
    bool valid = false;
    bool specialized = false;      ///< Residual forests built?
    FlatForest time;
    FlatForest power;
    std::vector<Prediction> memo;     ///< By denseConfigIndex.
    std::vector<std::uint8_t> known;  ///< Memo slot validity.
};

/**
 * Memo misses in one batch that justify building residual forests.
 * Specializing both forests costs roughly as much as thirty full-forest
 * prediction pairs, so small batches (hill-climb probes) never pay it
 * and exhaustive scans (hundreds of configs) always do.
 */
constexpr std::size_t kSpecializeMissThreshold = 48;

} // namespace

void
RandomForestPredictor::predictBatch(const PredictionQuery &q,
                                    std::span<const hw::HwConfig> cs,
                                    std::span<Prediction> out) const
{
    GPUPM_ASSERT(out.size() == cs.size(),
                 "predictBatch output size mismatch");
    const std::size_t n = cs.size();
    if (n == 0)
        return;
    trace::Span span(trace::Category::Ml, "ml.predictBatch", "configs",
                     static_cast<double>(n));

    const double proxy = instructionProxy(q.counters);

    // Per-kernel cache entry, claimed by any multi-config batch (a
    // governor decision). memcmp keys on the exact counter bits, so a
    // hit also skips the log2-heavy makeKernelFeatures. A one-off
    // single query with a cold cache (model evaluation sweeps) walks
    // the full forests directly and leaves the entry alone.
    thread_local SpecializedForests spec;
    bool entry =
        spec.valid && spec.owner == _instanceId &&
        std::memcmp(&q.counters, &spec.key, sizeof(spec.key)) == 0;
    if (!entry && n >= 2) {
        spec.valid = false; // not reusable while rebuilding
        spec.owner = _instanceId;
        spec.key = q.counters;
        spec.kf = makeKernelFeatures(q.counters);
        spec.specialized = false;
        spec.time = FlatForest();
        spec.power = FlatForest();
        spec.memo.resize(hw::denseConfigCount);
        spec.known.assign(hw::denseConfigCount, 0);
        spec.valid = true;
        entry = true;
    }

    // Scratch buffers are thread_local so the hot path never allocates
    // once warm (governors run one decision at a time per thread).
    thread_local std::vector<FeatureVector> feats;
    thread_local std::vector<double> time_pred, power_pred;

    if (!entry) {
        // Cold single query (n >= 2 always claims the entry). Routed
        // through the flat engines - not the scalar recursive walk -
        // so the answer comes from the *same* engine (and, in a
        // quantized mode, the same rounding) as the batched paths:
        // a prediction must be a pure function of (counters, config,
        // mode), never of cache state. Bit-identical to the recursive
        // walk in scalar mode.
        const auto kf = makeKernelFeatures(q.counters);
        for (std::size_t i = 0; i < n; ++i) {
            const auto f = combineFeatures(kf, configFeatures(cs[i]));
            // Trained on log(seconds per instruction); scale back up
            // by the counter-derived instruction proxy.
            out[i].time = std::exp(_timeFlat.predict(f)) * proxy;
            out[i].gpuPower = _powerFlat.predict(f);
        }
        return;
    }

    // Serve memoized configs; walk forests only for the rest.
    thread_local std::vector<std::uint32_t> miss;
    miss.clear();
    for (std::size_t i = 0; i < n; ++i) {
        const auto di = hw::denseConfigIndex(cs[i]);
        if (spec.known[di])
            out[i] = spec.memo[di];
        else
            miss.push_back(static_cast<std::uint32_t>(i));
    }
    if (miss.empty())
        return;

    const std::size_t m = miss.size();
    if (!spec.specialized && m >= kSpecializeMissThreshold) {
        spec.time = _timeFlat.specialize(spec.kf);
        spec.power = _powerFlat.specialize(spec.kf);
        spec.specialized = true;
    }

    feats.resize(m);
    time_pred.resize(m);
    power_pred.resize(m);
    if (spec.specialized) {
        // Residual trees split on config features alone, so only the
        // config suffix of each feature vector is filled; prefix bytes
        // left over from earlier batches are never read.
        for (std::size_t j = 0; j < m; ++j) {
            const auto &cf = configFeatures(cs[miss[j]]);
            std::memcpy(feats[j].data() + numKernelFeatures, cf.data(),
                        sizeof(cf));
        }
        spec.time.predictBatch(feats, time_pred);
        spec.power.predictBatch(feats, power_pred);
    } else {
        for (std::size_t j = 0; j < m; ++j)
            feats[j] =
                combineFeatures(spec.kf, configFeatures(cs[miss[j]]));
        _timeFlat.predictBatch(feats, time_pred);
        _powerFlat.predictBatch(feats, power_pred);
    }
    for (std::size_t j = 0; j < m; ++j) {
        const std::size_t i = miss[j];
        Prediction p;
        p.time = std::exp(time_pred[j]) * proxy;
        p.gpuPower = power_pred[j];
        out[i] = p;
        spec.memo[hw::denseConfigIndex(cs[i])] = p;
        spec.known[hw::denseConfigIndex(cs[i])] = 1;
    }
}

std::unique_ptr<RandomForestPredictor>
trainRandomForestPredictor(const TrainerOptions &opts,
                           TrainingReport *report)
{
    const kernel::GroundTruthModel model(hw::ApuParams::defaults());
    const hw::ConfigSpace space;
    const auto corpus =
        workload::trainingCorpus(opts.corpusSize, opts.seed);

    // Row generation fans out per corpus kernel; each job fills its own
    // slot and rows are appended in corpus order afterwards, so the
    // dataset is bit-identical to the serial loop at any job count.
    struct Row
    {
        FeatureVector f;
        double timeTarget;
        double powerTarget;
    };
    const int stride = std::max(1, opts.configStride);
    exec::SweepEngine engine({opts.jobs, opts.seed});
    const auto per_kernel = engine.map<std::vector<Row>>(
        corpus.size(), [&](std::size_t ki, Pcg32 &) {
            const auto &k = corpus[ki];
            std::vector<Row> rows;
            rows.reserve(space.size() / stride + 1);
            for (std::size_t ci = 0; ci < space.size();
                 ci += static_cast<std::size_t>(stride)) {
                const auto &c = space.at(ci);
                const auto est = model.estimate(k, c);
                const auto counters = model.counters(k, c, est);
                const auto pb = model.powerModel().steadyStatePower(
                    c, model.activity(est));
                rows.push_back(
                    {makeFeatures(counters, c),
                     std::log(est.time / instructionProxy(counters)),
                     pb.gpu()});
            }
            return rows;
        });

    Dataset time_data, power_data;
    for (const auto &rows : per_kernel) {
        for (const auto &row : rows) {
            time_data.add(row.f, row.timeTarget);
            power_data.add(row.f, row.powerTarget);
        }
    }

    ForestOptions time_opts = opts.forest;
    time_opts.jobs = opts.jobs;
    time_opts.seed = opts.seed ^ 0x1ee7ULL;
    ForestOptions power_opts = opts.forest;
    power_opts.jobs = opts.jobs;
    power_opts.seed = opts.seed ^ 0x9ab3ULL;

    RandomForest time_forest;
    RandomForest power_forest;
    if (auto *pool = engine.pool()) {
        // Both forests fit concurrently on the engine's pool, each
        // fanning its trees across the same workers. Per-tree inputs
        // are pre-drawn serially inside fit(), so the result is
        // byte-identical to the serial path at any job count.
        auto time_done = pool->submit(
            [&] { time_forest.fit(time_data, time_opts, pool); });
        power_forest.fit(power_data, power_opts, pool);
        time_done.get();
    } else {
        time_forest.fit(time_data, time_opts, nullptr);
        power_forest.fit(power_data, power_opts, nullptr);
    }

    if (report) {
        // Time OOB error is on the log-rate target; the proxy factor
        // cancels in the relative error, so exponentiate and compare.
        double s = 0.0;
        std::size_t n = 0;
        const auto &oob = time_forest.oobPredictions();
        for (std::size_t i = 0; i < time_data.size(); ++i) {
            if (!oob[i])
                continue;
            double actual = std::exp(time_data.y[i]);
            double pred = std::exp(*oob[i]);
            s += std::fabs((actual - pred) / actual);
            ++n;
        }
        report->timeOobMapePct =
            n ? 100.0 * s / static_cast<double>(n) : 0.0;
        report->powerOobMapePct = power_forest.oobMape(power_data);
        report->datasetRows = time_data.size();
    }

    return std::make_unique<RandomForestPredictor>(
        std::move(time_forest), std::move(power_forest), opts.simd);
}

EvalReport
evaluatePredictor(const PerfPowerPredictor &pred,
                  const std::vector<kernel::KernelParams> &ks)
{
    const kernel::GroundTruthModel model(hw::ApuParams::defaults());
    const hw::ConfigSpace space;

    EvalReport out;
    double time_err = 0.0, power_err = 0.0;
    for (const auto &k : ks) {
        for (const auto &c : space.all()) {
            const auto est = model.estimate(k, c);
            const auto pb = model.powerModel().steadyStatePower(
                c, model.activity(est));

            PredictionQuery q;
            q.counters = model.counters(k, c, est);
            q.instructions = k.instructions();
            q.groundTruth = &k;
            const auto p = pred.predict(q, c);

            time_err += std::fabs((est.time - p.time) / est.time);
            power_err += std::fabs((pb.gpu() - p.gpuPower) / pb.gpu());
            ++out.samples;
        }
    }
    if (out.samples) {
        out.timeMapePct = 100.0 * time_err / out.samples;
        out.powerMapePct = 100.0 * power_err / out.samples;
    }
    return out;
}

} // namespace gpupm::ml
