#include "ml/trainer.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "exec/sweep.hpp"
#include "kernel/perf_model.hpp"
#include "workload/training.hpp"

namespace gpupm::ml {

namespace {

/**
 * Dynamic-instruction proxy computed from observable counters; the time
 * forest is trained on log(time / proxy) ("seconds per instruction"),
 * which has a far narrower dynamic range than absolute time and
 * therefore generalizes across kernels of very different sizes.
 */
double
instructionProxy(const kernel::KernelCounters &c)
{
    return std::max(1.0, c.globalWorkSize * (c.valuInsts + c.vfetchInsts));
}

} // namespace

RandomForestPredictor::RandomForestPredictor(RandomForest time_forest,
                                             RandomForest power_forest)
    : _time(std::move(time_forest)), _power(std::move(power_forest))
{
    GPUPM_ASSERT(_time.fitted() && _power.fitted(),
                 "predictor needs fitted forests");
}

Prediction
RandomForestPredictor::predict(const PredictionQuery &q,
                               const hw::HwConfig &c) const
{
    const auto f = makeFeatures(q.counters, c);
    Prediction p;
    // Trained on log(seconds per instruction); scale back up by the
    // counter-derived instruction proxy.
    p.time = std::exp(_time.predict(f)) * instructionProxy(q.counters);
    p.gpuPower = _power.predict(f);
    return p;
}

std::unique_ptr<RandomForestPredictor>
trainRandomForestPredictor(const TrainerOptions &opts,
                           TrainingReport *report)
{
    const kernel::GroundTruthModel model;
    const hw::ConfigSpace space;
    const auto corpus =
        workload::trainingCorpus(opts.corpusSize, opts.seed);

    // Row generation fans out per corpus kernel; each job fills its own
    // slot and rows are appended in corpus order afterwards, so the
    // dataset is bit-identical to the serial loop at any job count.
    struct Row
    {
        FeatureVector f;
        double timeTarget;
        double powerTarget;
    };
    const int stride = std::max(1, opts.configStride);
    exec::SweepEngine engine({opts.jobs, opts.seed});
    const auto per_kernel = engine.map<std::vector<Row>>(
        corpus.size(), [&](std::size_t ki, Pcg32 &) {
            const auto &k = corpus[ki];
            std::vector<Row> rows;
            rows.reserve(space.size() / stride + 1);
            for (std::size_t ci = 0; ci < space.size();
                 ci += static_cast<std::size_t>(stride)) {
                const auto &c = space.at(ci);
                const auto est = model.estimate(k, c);
                const auto counters = model.counters(k, c, est);
                const auto pb = model.powerModel().steadyStatePower(
                    c, model.activity(est));
                rows.push_back(
                    {makeFeatures(counters, c),
                     std::log(est.time / instructionProxy(counters)),
                     pb.gpu()});
            }
            return rows;
        });

    Dataset time_data, power_data;
    for (const auto &rows : per_kernel) {
        for (const auto &row : rows) {
            time_data.add(row.f, row.timeTarget);
            power_data.add(row.f, row.powerTarget);
        }
    }

    ForestOptions fopts = opts.forest;
    fopts.seed = opts.seed ^ 0x1ee7ULL;
    RandomForest time_forest;
    time_forest.fit(time_data, fopts);
    fopts.seed = opts.seed ^ 0x9ab3ULL;
    RandomForest power_forest;
    power_forest.fit(power_data, fopts);

    if (report) {
        // Time OOB error is on the log-rate target; the proxy factor
        // cancels in the relative error, so exponentiate and compare.
        double s = 0.0;
        std::size_t n = 0;
        const auto &oob = time_forest.oobPredictions();
        for (std::size_t i = 0; i < time_data.size(); ++i) {
            if (!oob[i])
                continue;
            double actual = std::exp(time_data.y[i]);
            double pred = std::exp(*oob[i]);
            s += std::fabs((actual - pred) / actual);
            ++n;
        }
        report->timeOobMapePct =
            n ? 100.0 * s / static_cast<double>(n) : 0.0;
        report->powerOobMapePct = power_forest.oobMape(power_data);
        report->datasetRows = time_data.size();
    }

    return std::make_unique<RandomForestPredictor>(std::move(time_forest),
                                                   std::move(power_forest));
}

EvalReport
evaluatePredictor(const PerfPowerPredictor &pred,
                  const std::vector<kernel::KernelParams> &ks)
{
    const kernel::GroundTruthModel model;
    const hw::ConfigSpace space;

    EvalReport out;
    double time_err = 0.0, power_err = 0.0;
    for (const auto &k : ks) {
        for (const auto &c : space.all()) {
            const auto est = model.estimate(k, c);
            const auto pb = model.powerModel().steadyStatePower(
                c, model.activity(est));

            PredictionQuery q;
            q.counters = model.counters(k, c, est);
            q.instructions = k.instructions();
            q.groundTruth = &k;
            const auto p = pred.predict(q, c);

            time_err += std::fabs((est.time - p.time) / est.time);
            power_err += std::fabs((pb.gpu() - p.gpuPower) / pb.gpu());
            ++out.samples;
        }
    }
    if (out.samples) {
        out.timeMapePct = 100.0 * time_err / out.samples;
        out.powerMapePct = 100.0 * power_err / out.samples;
    }
    return out;
}

} // namespace gpupm::ml
