/**
 * @file
 * Random Forest regression (Breiman 2001), as used by the paper for
 * kernel performance and power prediction (Sec. IV-A3).
 *
 * Bootstrap-sampled CART trees with per-split feature subsetting; the
 * prediction is the mean over trees. Out-of-bag (OOB) predictions give
 * an unbiased generalization-error estimate without a holdout set.
 */

#pragma once

#include <optional>
#include <vector>

#include "ml/decision_tree.hpp"

namespace gpupm::exec {
class ThreadPool;
}

namespace gpupm::ml {

/** Forest hyper-parameters. */
struct ForestOptions
{
    int numTrees = 60;
    TreeOptions tree{};
    /** Bootstrap sample size as a fraction of the dataset. */
    double sampleFraction = 1.0;
    std::uint64_t seed = 0x5eedf0425ULL;
    /**
     * Worker threads for tree fitting (1 = serial, 0 = hardware
     * concurrency). Every bootstrap row set and per-tree rng stream is
     * drawn serially up front, so the fitted forest — including its
     * OOB predictions — is byte-identical at every value.
     */
    std::size_t jobs = 1;

    /** Defaults tuned on the training corpus (see bench_rf_accuracy). */
    static ForestOptions
    regressionDefaults()
    {
        ForestOptions o;
        o.tree.mtry = 8;
        return o;
    }
};

class RandomForest
{
  public:
    /** Fit the forest; deterministic in opts.seed (at any opts.jobs). */
    void fit(const Dataset &data, const ForestOptions &opts);

    /**
     * Fit on a caller-provided pool (opts.jobs is ignored; null pool =
     * serial). Lets several forests share one pool and fit
     * concurrently — the trainer fits the time and power forests this
     * way. Same determinism contract as the two-argument overload.
     */
    void fit(const Dataset &data, const ForestOptions &opts,
             exec::ThreadPool *pool);

    /** Mean prediction over all trees. */
    double predict(const FeatureVector &f) const;

    /**
     * Out-of-bag prediction per training row (rows that were in-bag for
     * every tree come back empty). Computed during fit.
     */
    const std::vector<std::optional<double>> &oobPredictions() const
    {
        return _oob;
    }

    /** Mean absolute percentage error of the OOB predictions. */
    double oobMape(const Dataset &data) const;

    std::size_t treeCount() const { return _trees.size(); }
    bool fitted() const { return !_trees.empty(); }

    /** Whether OOB predictions exist (absent on a load()ed forest). */
    bool hasOobData() const { return !_oob.empty(); }

    /** Read-only tree access (FlatForest compiles from it). */
    const std::vector<DecisionTree> &trees() const { return _trees; }

    /** Total node count across trees (memory/latency diagnostics). */
    std::size_t totalNodes() const;

    /**
     * Write the fitted forest ("forest trees <n>" plus each tree).
     * OOB predictions are training artifacts and are not persisted.
     */
    void save(std::ostream &os) const;

    /** Read a forest written by save(); fatal on malformed input. */
    static RandomForest load(std::istream &is);

  private:
    std::vector<DecisionTree> _trees;
    std::vector<std::optional<double>> _oob;
};

} // namespace gpupm::ml
