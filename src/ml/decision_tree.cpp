#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <string>

#include "common/logging.hpp"
#include "ml/tree_builder.hpp"

namespace gpupm::ml {

DatasetOrder
DatasetOrder::build(const Dataset &data)
{
    DatasetOrder order;
    order._rows = data.size();
    const std::size_t n = order._rows;
    order.columns.resize(static_cast<std::size_t>(numFeatures) * n);
    order.sorted.resize(static_cast<std::size_t>(numFeatures) * n);
    for (std::size_t r = 0; r < n; ++r) {
        for (int f = 0; f < numFeatures; ++f)
            order.columns[static_cast<std::size_t>(f) * n + r] =
                data.x[r][static_cast<std::size_t>(f)];
    }
    for (int f = 0; f < numFeatures; ++f) {
        const double *col = order.column(f);
        std::uint32_t *s =
            order.sorted.data() + static_cast<std::size_t>(f) * n;
        std::iota(s, s + n, 0U);
        // (value, row) is a strict total order; ties land in ascending
        // row order, the canonical tie order both split scans use.
        std::sort(s, s + n, [col](std::uint32_t a, std::uint32_t b) {
            return col[a] != col[b] ? col[a] < col[b] : a < b;
        });
    }
    return order;
}

namespace {

/** Mean of targets over a row range. */
double
rangeMean(const Dataset &data, std::span<const std::uint32_t> rows)
{
    double s = 0.0;
    for (auto r : rows)
        s += data.y[r];
    return rows.empty() ? 0.0 : s / static_cast<double>(rows.size());
}

struct SplitCandidate
{
    int feature = -1;
    double threshold = 0.0;
    double score = std::numeric_limits<double>::infinity();
    std::size_t leftCount = 0;
};

/**
 * Best threshold for one feature by exhaustive scan: copy the node's
 * rows into scratch, stable-sort them by the feature, sweep prefix
 * sums, and score each boundary by the summed child SSE (equivalently,
 * maximize variance reduction). @p total_sum / @p total_sq are the
 * node's target sums, accumulated once per node in canonical order and
 * shared by every candidate feature.
 *
 * The stable sort from the node's canonical order fixes the visit
 * order of equal feature values, and with it every floating-point sum
 * below; the presorted TreeBuilder maintains exactly this order, which
 * is what makes the two paths bit-identical.
 */
SplitCandidate
bestSplitForFeature(const Dataset &data,
                    std::span<const std::uint32_t> rows,
                    std::size_t begin, std::size_t end, int feature,
                    int min_leaf, double total_sum, double total_sq,
                    std::vector<std::uint32_t> &scratch)
{
    SplitCandidate best;
    best.feature = feature;

    scratch.assign(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                   rows.begin() + static_cast<std::ptrdiff_t>(end));
    auto span = std::span<std::uint32_t>(scratch);
    std::stable_sort(span.begin(), span.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return data.x[a][feature] < data.x[b][feature];
                     });

    const std::size_t n = span.size();
    double left_sum = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        left_sum += data.y[span[i]];
        const double xv = data.x[span[i]][feature];
        const double xn = data.x[span[i + 1]][feature];
        if (xv == xn)
            continue; // can't split between equal feature values
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < static_cast<std::size_t>(min_leaf) ||
            nr < static_cast<std::size_t>(min_leaf)) {
            continue;
        }
        const double right_sum = total_sum - left_sum;
        // SSE = sum(y^2) - nl*meanL^2 - nr*meanR^2; sum(y^2) is constant
        // across candidates, so minimize the negative mean-square terms.
        const double score =
            total_sq - left_sum * left_sum / static_cast<double>(nl) -
            right_sum * right_sum / static_cast<double>(nr);
        if (score < best.score) {
            best.score = score;
            best.threshold = 0.5 * (xv + xn);
            best.leftCount = nl;
        }
    }
    return best;
}

} // namespace

std::int32_t
DecisionTree::build(const Dataset &data, std::vector<std::uint32_t> &rows,
                    std::size_t begin, std::size_t end, int depth,
                    const TreeOptions &opts, Pcg32 &rng,
                    std::vector<std::uint32_t> &scratch)
{
    _depth = std::max(_depth, depth);
    const std::size_t n = end - begin;
    auto rows_span =
        std::span<const std::uint32_t>(rows).subspan(begin, n);

    auto make_leaf = [&]() {
        Node leaf;
        leaf.value = rangeMean(data, rows_span);
        _nodes.push_back(leaf);
        return static_cast<std::int32_t>(_nodes.size() - 1);
    };

    if (depth >= opts.maxDepth ||
        n < static_cast<std::size_t>(opts.minSamplesSplit)) {
        return make_leaf();
    }

    // Constant target -> leaf.
    bool constant = true;
    for (std::size_t i = begin + 1; i < end && constant; ++i)
        constant = data.y[rows[i]] == data.y[rows[begin]];
    if (constant)
        return make_leaf();

    // Pick the candidate feature set (mtry without replacement).
    std::array<int, numFeatures> order;
    std::iota(order.begin(), order.end(), 0);
    int tries = opts.mtry > 0 ? std::min(opts.mtry, numFeatures)
                              : numFeatures;
    for (int i = 0; i < tries; ++i) {
        auto j = i + static_cast<int>(
                         rng.nextBounded(static_cast<std::uint32_t>(
                             numFeatures - i)));
        std::swap(order[i], order[j]);
    }

    // Node target totals, once per node in canonical order; every
    // candidate feature scores against the same two doubles.
    double total_sum = 0.0, total_sq = 0.0;
    for (auto r : rows_span) {
        total_sum += data.y[r];
        total_sq += data.y[r] * data.y[r];
    }

    SplitCandidate best;
    for (int i = 0; i < tries; ++i) {
        auto cand = bestSplitForFeature(data, rows, begin, end, order[i],
                                        opts.minSamplesLeaf, total_sum,
                                        total_sq, scratch);
        if (cand.score < best.score)
            best = cand;
    }
    if (best.feature < 0 || !std::isfinite(best.score))
        return make_leaf();

    // Partition rows around the chosen threshold. Stable, so each
    // child keeps the canonical order its own split scans and leaf
    // means depend on.
    auto mid_it = std::stable_partition(
        rows.begin() + static_cast<std::ptrdiff_t>(begin),
        rows.begin() + static_cast<std::ptrdiff_t>(end),
        [&](std::uint32_t r) {
            return data.x[r][best.feature] <= best.threshold;
        });
    std::size_t mid =
        static_cast<std::size_t>(mid_it - rows.begin());
    if (mid == begin || mid == end)
        return make_leaf(); // numerical degenerate split

    Node node;
    node.feature = best.feature;
    node.threshold = best.threshold;
    _nodes.push_back(node);
    auto idx = static_cast<std::int32_t>(_nodes.size() - 1);

    auto left =
        build(data, rows, begin, mid, depth + 1, opts, rng, scratch);
    auto right =
        build(data, rows, mid, end, depth + 1, opts, rng, scratch);
    _nodes[idx].left = left;
    _nodes[idx].right = right;
    return idx;
}

void
DecisionTree::fit(const Dataset &data, std::span<const std::uint32_t> rows,
                  const TreeOptions &opts, Pcg32 &rng)
{
    fit(data, rows, opts, rng, nullptr);
}

void
DecisionTree::fit(const Dataset &data, std::span<const std::uint32_t> rows,
                  const TreeOptions &opts, Pcg32 &rng,
                  const DatasetOrder *order)
{
    GPUPM_ASSERT(!rows.empty(), "cannot fit a tree on zero rows");
    GPUPM_ASSERT(data.x.size() == data.y.size(), "dataset x/y mismatch");

    // Canonicalize the bootstrap to ascending row order (counting sort;
    // duplicates stay adjacent). Both split engines fit on this order,
    // so the tree depends only on the drawn row *multiset* — and the
    // presorted engine can derive every per-feature order from the
    // shared DatasetOrder by linear expansion, with value ties visiting
    // in exactly this canonical order.
    thread_local std::vector<std::uint32_t> histogram, canonical;
    histogram.assign(data.size(), 0);
    for (const auto r : rows) {
        GPUPM_ASSERT(r < data.size(), "row index out of range");
        ++histogram[r];
    }
    canonical.clear();
    canonical.reserve(rows.size());
    for (std::uint32_t r = 0; r < data.size(); ++r) {
        for (std::uint32_t c = histogram[r]; c > 0; --c)
            canonical.push_back(r);
    }

    if (!opts.legacySplitScan) {
        // Presorted engine; thread_local so forest fitting reuses one
        // builder's scratch per worker across its trees.
        thread_local TreeBuilder builder;
        if (order) {
            builder.fit(data, *order, canonical, opts, rng, _nodes,
                        _depth);
        } else {
            const DatasetOrder local = DatasetOrder::build(data);
            builder.fit(data, local, canonical, opts, rng, _nodes,
                        _depth);
        }
        return;
    }
    _nodes.clear();
    _depth = 0;
    std::vector<std::uint32_t> work = canonical;
    std::vector<std::uint32_t> scratch;
    build(data, work, 0, work.size(), 0, opts, rng, scratch);
}

void
DecisionTree::save(std::ostream &os) const
{
    GPUPM_ASSERT(fitted(), "cannot save an unfitted tree");
    os << "tree " << _nodes.size() << ' ' << _depth << '\n';
    // max_digits10 guarantees an exact double round trip.
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto &n : _nodes) {
        os << n.feature << ' ' << n.threshold << ' ' << n.left << ' '
           << n.right << ' ' << n.value << '\n';
    }
    GPUPM_ASSERT(os.good(), "stream failure while saving tree");
}

DecisionTree
DecisionTree::load(std::istream &is)
{
    std::string tag;
    std::size_t count = 0;
    DecisionTree t;
    if (!(is >> tag >> count >> t._depth) || tag != "tree")
        GPUPM_FATAL("malformed tree header (got '", tag, "')");
    GPUPM_ASSERT(count > 0, "tree with zero nodes");
    t._nodes.resize(count);
    for (auto &n : t._nodes) {
        if (!(is >> n.feature >> n.threshold >> n.left >> n.right >>
              n.value)) {
            GPUPM_FATAL("truncated tree node list");
        }
        if (n.feature >= numFeatures ||
            (n.feature >= 0 &&
             (n.left < 0 || n.right < 0 ||
              n.left >= static_cast<std::int32_t>(count) ||
              n.right >= static_cast<std::int32_t>(count)))) {
            GPUPM_FATAL("tree node out of range");
        }
        // A corrupted model file must fail here, not poison every
        // later prediction with NaN/inf.
        if (!std::isfinite(n.threshold) || !std::isfinite(n.value))
            GPUPM_FATAL("tree node with non-finite threshold or value");
    }
    return t;
}

double
DecisionTree::predict(const FeatureVector &f) const
{
    GPUPM_ASSERT(fitted(), "predict on an unfitted tree");
    std::int32_t i = 0;
    for (;;) {
        const Node &n = _nodes[static_cast<std::size_t>(i)];
        if (n.feature < 0)
            return n.value;
        i = f[static_cast<std::size_t>(n.feature)] <= n.threshold
                ? n.left
                : n.right;
    }
}

} // namespace gpupm::ml
