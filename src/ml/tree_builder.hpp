/**
 * @file
 * Presorted CART training engine (the Random-Forest fit hot path).
 *
 * The legacy split search re-sorts a node's rows once per candidate
 * feature per node: O(mtry * m log m) comparator-driven sorts with
 * 136-byte-strided gathers, repeated down every level of every tree.
 * The presorted engine removes every sort from the per-tree path:
 *
 *  - each feature's row order over the *dataset* is sorted exactly once
 *    (DatasetOrder, shared read-only by all trees of a forest, along
 *    with the transposed feature columns);
 *  - a tree derives its per-feature orders from the shared order by a
 *    linear filtering pass. Orders hold each drawn row ONCE — a
 *    bootstrap's duplicate draws of a row are carried as an integer
 *    weight, never materialized, so every per-tree structure scales
 *    with the ~63% distinct rows of a bootstrap rather than its size;
 *  - when a node splits, the per-feature orders (and the canonical
 *    order leaf means are computed in) are *maintained*: each is stably
 *    sieved into its left and right subsequences by a branchless
 *    two-way compaction of bare 4-byte row indices.
 *
 * Split search is a linear weighted sweep of an already-sorted order;
 * the node's target totals are accumulated once per node in canonical
 * order and shared by all candidate features.
 *
 * Determinism contract: the builder produces trees bit-identical to the
 * legacy per-node-sort scan (kept compiled in behind
 * TreeOptions::legacySplitScan) — the same splits, the same thresholds,
 * and the same floating-point sums:
 *
 *  - both paths fit on the canonicalized (ascending-row) bootstrap
 *    DecisionTree::fit prepares, so ties visit in ascending row order
 *    in both: the legacy scan stable-sorts by value from that canonical
 *    order; the presorted orders tie-break on row index and are sieved
 *    stably, and a row's duplicates — adjacent and equal-valued in the
 *    canonical order — contribute weight-many consecutive adds, the
 *    exact summation sequence the legacy sweep performs element-wise;
 *  - node totals accumulate once per node in canonical order in both;
 *  - leaf means accumulate in canonical order (the legacy rangeMean);
 *  - the rng is consumed identically (one mtry shuffle per node, in
 *    the same preorder node sequence).
 *
 * One builder per thread (scratch is reused across trees); distinct
 * builders share nothing beyond the immutable DatasetOrder, so forest
 * fitting parallelizes across trees with no synchronization.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/decision_tree.hpp"

namespace gpupm::ml {

class TreeBuilder
{
  public:
    /**
     * Fit one tree on the rows of @p data selected by @p rows into
     * @p nodes / @p depth. @p rows must be canonical: ascending row
     * indices, duplicates (bootstrap multiplicity) adjacent —
     * DecisionTree::fit canonicalizes before dispatching here.
     * @p order is the shared presorted view of @p data.
     */
    void fit(const Dataset &data, const DatasetOrder &order,
             std::span<const std::uint32_t> rows, const TreeOptions &opts,
             Pcg32 &rng, std::vector<DecisionTree::Node> &nodes,
             int &depth);

  private:
    struct Split
    {
        int feature = -1;
        double threshold = 0.0;
        double score = 0.0;
        bool valid = false;
    };

    /**
     * Grow the node covering order positions [begin, end) — distinct
     * rows whose bootstrap weights sum to @p weight.
     */
    std::int32_t build(std::size_t begin, std::size_t end,
                      std::size_t weight, int level);
    std::int32_t makeLeaf(std::size_t begin, std::size_t end,
                          std::size_t weight);
    Split bestSplit(std::size_t begin, std::size_t end,
                    std::size_t weight);
    void sieve(std::size_t begin, std::size_t end, std::size_t left,
               bool keep_left, bool keep_right);

    std::uint32_t *featureOrder(int f)
    {
        return _order.data() + static_cast<std::size_t>(f) * _d;
    }

    const Dataset *_data = nullptr;
    const DatasetOrder *_shared = nullptr;
    const TreeOptions *_opts = nullptr;
    Pcg32 *_rng = nullptr;
    std::vector<DecisionTree::Node> *_nodes = nullptr;
    int _depth = 0;
    std::size_t _d = 0; ///< Distinct drawn rows (order length).

    /** Bootstrap multiplicity per dataset row (0 = not drawn). */
    std::vector<std::uint32_t> _count;
    /** numFeatures presorted row orders, feature-major, _d each. */
    std::vector<std::uint32_t> _order;
    /** Canonical (ascending-row) order, sieved alongside. */
    std::vector<std::uint32_t> _canon;
    /** Per-row side flag for the split being applied. */
    std::vector<std::uint8_t> _goesLeft;
    /** Sieve bounce buffer (right-side entries). */
    std::vector<std::uint32_t> _bounce;
};

} // namespace gpupm::ml
