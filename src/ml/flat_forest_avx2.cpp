/**
 * @file
 * AVX2 gather kernels for the quantized FlatForest walk.
 *
 * Compiled with a per-function target("avx2") attribute instead of a
 * file-level -mavx2, so the translation unit is safe to build and link
 * into binaries that must still start on pre-AVX2 hosts; runtime
 * dispatch (ml::resolveSimdPath) guarantees these functions are only
 * ever *called* where the instructions exist.
 *
 * Each step mirrors the portable fixed-point qstep exactly:
 *
 *   rec  = qnodes[idx]               (one 8-byte record per node)
 *   qt   = sext16(rec), feat = (rec >> 16) & 0xffff
 *   off  = rec >> 32
 *   qx   = sext16(row[feat])         (32-bit gather, scale 2)
 *   idx += off + (qx > qt)
 *
 * The record halves sit at byte offsets idx*8 and idx*8+4, so two
 * scale-8 32-bit gathers off the same base fetch meta and offset from
 * the same cache line (little-endian x86). All arithmetic is exact
 * integer arithmetic on the same quantized inputs the portable path
 * reads, so the two produce bit-identical node indices by
 * construction; both paths also share the convergence early exit
 * (nobody moved in a round => everybody parked on a self-looping
 * leaf => the remaining depth budget is all no-ops). The int16
 * feature gathers read 32 bits at a 2-byte granularity; rows are
 * padded to a 64-byte stride on a 64-byte-aligned base
 * (FlatForest::kQuantRowStride + AlignedVector), so such a load never
 * straddles a cache line and never leaves the row buffer.
 */

#include "ml/flat_forest_kernels.hpp"

#include "common/logging.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace gpupm::ml::detail {

namespace {

/** Sign-extend the low 16 bits of each 32-bit lane. */
[[gnu::target("avx2")]] inline __m256i
sext16(__m256i v)
{
    return _mm256_srai_epi32(_mm256_slli_epi32(v, 16), 16);
}

/**
 * One traversal step for 8 independent walkers. rowoff holds each
 * walker's row base (row * stride, in int16 slots); 0 for all lanes
 * when the 8 walkers share one row (the 8-trees-per-query kernel).
 */
[[gnu::target("avx2")]] inline __m256i
qstep8(const std::int64_t *qnodes, const std::int16_t *qrows,
       __m256i rowoff, __m256i idx)
{
    const int *const q32 = reinterpret_cast<const int *>(qnodes);
    const __m256i m = _mm256_i32gather_epi32(q32, idx, 8);
    const __m256i off = _mm256_i32gather_epi32(q32 + 1, idx, 8);
    const __m256i qt = sext16(m);
    const __m256i feat = _mm256_srli_epi32(m, 16);
    const __m256i fidx = _mm256_add_epi32(rowoff, feat);
    const __m256i qx = sext16(_mm256_i32gather_epi32(
        reinterpret_cast<const int *>(qrows), fidx, 2));
    const __m256i gt = _mm256_cmpgt_epi32(qx, qt);
    // idx + off + (qx > qt): the compare mask is -1 where true.
    return _mm256_sub_epi32(_mm256_add_epi32(idx, off), gt);
}

/** acc[row0 + w] += leaf[leaf_idx[idx lane w]], in lane order. */
[[gnu::target("avx2")]] inline void
accumLeaves(__m256i idx, const std::int32_t *leaf_idx,
            const double *leaf, double *acc, std::size_t row0)
{
    alignas(32) std::uint32_t a[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(a), idx);
    for (std::size_t w = 0; w < 8; ++w)
        acc[row0 + w] += leaf[leaf_idx[a[w]]];
}

[[gnu::target("avx2")]] std::size_t
accumTreeRowsImpl(const std::int64_t *qnodes, const std::int16_t *qrows,
                  std::size_t stride, std::size_t n, std::uint32_t root,
                  std::uint16_t depth, const std::int32_t *leaf_idx,
                  const double *leaf, double *acc)
{
    const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const __m256i vstride =
        _mm256_set1_epi32(static_cast<int>(stride));
    const __m256i vroot =
        _mm256_set1_epi32(static_cast<int>(root));
    const __m256i ones = _mm256_set1_epi32(-1);

    // Two 8-row groups in flight: each step is a gather -> gather ->
    // compare dependence chain, so a second independent chain roughly
    // doubles throughput before the load ports saturate. Every fourth
    // round both chains test for convergence and bail out of the
    // remaining (all no-op) depth budget together.
    std::size_t q = 0;
    for (; q + 16 <= n; q += 16) {
        const __m256i row0 =
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(q)),
                             lane);
        const __m256i row1 = _mm256_add_epi32(
            _mm256_set1_epi32(static_cast<int>(q + 8)), lane);
        const __m256i off0 = _mm256_mullo_epi32(row0, vstride);
        const __m256i off1 = _mm256_mullo_epi32(row1, vstride);
        __m256i idx0 = vroot;
        __m256i idx1 = vroot;
        std::uint16_t d = 0;
        bool parked = false;
        for (; d + 4 <= depth; d += 4) {
            for (std::uint16_t k = 1; k < 4; ++k) {
                idx0 = qstep8(qnodes, qrows, off0, idx0);
                idx1 = qstep8(qnodes, qrows, off1, idx1);
            }
            const __m256i p0 = idx0;
            const __m256i p1 = idx1;
            idx0 = qstep8(qnodes, qrows, off0, idx0);
            idx1 = qstep8(qnodes, qrows, off1, idx1);
            const __m256i still =
                _mm256_and_si256(_mm256_cmpeq_epi32(idx0, p0),
                                 _mm256_cmpeq_epi32(idx1, p1));
            if (_mm256_testc_si256(still, ones)) {
                parked = true;
                break;
            }
        }
        for (; !parked && d < depth; ++d) {
            idx0 = qstep8(qnodes, qrows, off0, idx0);
            idx1 = qstep8(qnodes, qrows, off1, idx1);
        }
        accumLeaves(idx0, leaf_idx, leaf, acc, q);
        accumLeaves(idx1, leaf_idx, leaf, acc, q + 8);
    }
    for (; q + 8 <= n; q += 8) {
        const __m256i row0 =
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(q)),
                             lane);
        const __m256i off0 = _mm256_mullo_epi32(row0, vstride);
        __m256i idx0 = vroot;
        std::uint16_t d = 0;
        bool parked = false;
        for (; d + 4 <= depth; d += 4) {
            for (std::uint16_t k = 1; k < 4; ++k)
                idx0 = qstep8(qnodes, qrows, off0, idx0);
            const __m256i p0 = idx0;
            idx0 = qstep8(qnodes, qrows, off0, idx0);
            if (_mm256_testc_si256(_mm256_cmpeq_epi32(idx0, p0),
                                   ones)) {
                parked = true;
                break;
            }
        }
        for (; !parked && d < depth; ++d)
            idx0 = qstep8(qnodes, qrows, off0, idx0);
        accumLeaves(idx0, leaf_idx, leaf, acc, q);
    }
    return q;
}

[[gnu::target("avx2")]] void
walkTreesImpl(const std::int64_t *qnodes, const std::int16_t *qrow,
              const std::uint32_t *roots, std::size_t count,
              std::uint16_t depth, std::uint32_t *out_idx)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i ones = _mm256_set1_epi32(-1);
    __m256i idx0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(roots));
    if (count == 16) {
        __m256i idx1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(roots + 8));
        std::uint16_t d = 0;
        bool parked = false;
        for (; d + 4 <= depth; d += 4) {
            for (std::uint16_t k = 1; k < 4; ++k) {
                idx0 = qstep8(qnodes, qrow, zero, idx0);
                idx1 = qstep8(qnodes, qrow, zero, idx1);
            }
            const __m256i p0 = idx0;
            const __m256i p1 = idx1;
            idx0 = qstep8(qnodes, qrow, zero, idx0);
            idx1 = qstep8(qnodes, qrow, zero, idx1);
            const __m256i still =
                _mm256_and_si256(_mm256_cmpeq_epi32(idx0, p0),
                                 _mm256_cmpeq_epi32(idx1, p1));
            if (_mm256_testc_si256(still, ones)) {
                parked = true;
                break;
            }
        }
        for (; !parked && d < depth; ++d) {
            idx0 = qstep8(qnodes, qrow, zero, idx0);
            idx1 = qstep8(qnodes, qrow, zero, idx1);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out_idx),
                            idx0);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out_idx + 8), idx1);
        return;
    }
    std::uint16_t d = 0;
    bool parked = false;
    for (; d + 4 <= depth; d += 4) {
        for (std::uint16_t k = 1; k < 4; ++k)
            idx0 = qstep8(qnodes, qrow, zero, idx0);
        const __m256i p0 = idx0;
        idx0 = qstep8(qnodes, qrow, zero, idx0);
        if (_mm256_testc_si256(_mm256_cmpeq_epi32(idx0, p0), ones)) {
            parked = true;
            break;
        }
    }
    for (; !parked && d < depth; ++d)
        idx0 = qstep8(qnodes, qrow, zero, idx0);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out_idx), idx0);
}

} // namespace

std::size_t
avx2AccumTreeRows(const std::int64_t *qnodes, const std::int16_t *qrows,
                  std::size_t stride, std::size_t n, std::uint32_t root,
                  std::uint16_t depth, const std::int32_t *leaf_idx,
                  const double *leaf, double *acc)
{
    return accumTreeRowsImpl(qnodes, qrows, stride, n, root, depth,
                             leaf_idx, leaf, acc);
}

void
avx2WalkTrees(const std::int64_t *qnodes, const std::int16_t *qrow,
              const std::uint32_t *roots, std::size_t count,
              std::uint16_t depth, std::uint32_t *out_idx)
{
    GPUPM_ASSERT(count == 8 || count == 16,
                 "avx2WalkTrees handles 8- or 16-tree groups");
    walkTreesImpl(qnodes, qrow, roots, count, depth, out_idx);
}

namespace {

/** Dwords 0,2,4,6 of a 64-bit-lane mask as a 4x32-bit lane mask. */
[[gnu::target("avx2")]] inline __m128i
narrowMask64(__m256d m)
{
    const __m256i lanes = _mm256_permutevar8x32_epi32(
        _mm256_castpd_si256(m),
        _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
    return _mm256_castsi256_si128(lanes);
}

/**
 * quantizeFeature for 4 adjacent features of one row. The clamp runs
 * the scalar sequence verbatim: `(v > -1) ? v : -1` first (which also
 * parks NaN products at -1, matching `!(v > -1.0)`), then the high
 * saturation, then floor. -mavx2 does not enable FMA, so the
 * subtract/multiply pair compiles to the same two IEEE ops as the
 * scalar expression and the products match bit for bit.
 */
[[gnu::target("avx2")]] inline __m128i
quantize4(const double *x, const double *qlo, const double *qinv,
          std::int32_t cells, std::int32_t bias)
{
    const __m256d xv = _mm256_loadu_pd(x);
    const __m256d lo = _mm256_loadu_pd(qlo);
    const __m256d inv = _mm256_loadu_pd(qinv);
    const __m256d neg1 = _mm256_set1_pd(-1.0);
    const __m256d hi =
        _mm256_set1_pd(static_cast<double>(cells) + 1.0);

    __m256d v = _mm256_mul_pd(_mm256_sub_pd(xv, lo), inv);
    v = _mm256_blendv_pd(neg1, v,
                         _mm256_cmp_pd(v, neg1, _CMP_GT_OQ));
    v = _mm256_blendv_pd(v, hi, _mm256_cmp_pd(v, hi, _CMP_GT_OQ));
    v = _mm256_floor_pd(v);
    // v is integral in [-1, cells + 1] here (never NaN: NaN products
    // took the low clamp), so truncation is an exact conversion.
    __m128i q = _mm256_cvttpd_epi32(v);
    q = _mm_sub_epi32(q, _mm_set1_epi32(bias));

    // Scalar precedence: never-split features (inv == 0) pin to 0,
    // but a NaN *input* wins over everything and maps to INT16_MIN.
    const __m128i invz = narrowMask64(
        _mm256_cmp_pd(inv, _mm256_setzero_pd(), _CMP_EQ_OQ));
    const __m128i xnan =
        narrowMask64(_mm256_cmp_pd(xv, xv, _CMP_UNORD_Q));
    q = _mm_andnot_si128(invz, q);
    q = _mm_blendv_epi8(q, _mm_set1_epi32(-32768), xnan);
    return q;
}

} // namespace

void
avx2QuantizeRows(const double *x, std::size_t numFeat, std::size_t n,
                 const double *qlo, const double *qinv,
                 std::int32_t cells, std::int32_t bias,
                 std::int16_t *rows, std::size_t stride)
{
    for (std::size_t r = 0; r < n; ++r) {
        const double *const f = x + r * numFeat;
        std::int16_t *const q = rows + r * stride;
        std::size_t j = 0;
        // 8 features per step: two 4-lane quantizations packed into
        // one 16-byte store. packs saturation is a no-op for real
        // cells ([-bias - 1, cells - bias + 1] fits int16) and exact
        // for the NaN sentinel (-32768 survives signed saturation).
        for (; j + 8 <= numFeat; j += 8) {
            const __m128i a =
                quantize4(f + j, qlo + j, qinv + j, cells, bias);
            const __m128i b = quantize4(f + j + 4, qlo + j + 4,
                                        qinv + j + 4, cells, bias);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(q + j),
                             _mm_packs_epi32(a, b));
        }
        for (; j + 4 <= numFeat; j += 4) {
            const __m128i a =
                quantize4(f + j, qlo + j, qinv + j, cells, bias);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(q + j),
                             _mm_packs_epi32(a, a));
        }
        // Scalar remainder (the vector loop must not read doubles
        // past the row) - same expression, same clamp order.
        for (; j < numFeat; ++j) {
            const double xj = f[j];
            if (xj != xj) {
                q[j] = -32768;
                continue;
            }
            if (qinv[j] == 0.0) {
                q[j] = 0;
                continue;
            }
            double v = (xj - qlo[j]) * qinv[j];
            if (!(v > -1.0))
                v = -1.0;
            else if (v > static_cast<double>(cells) + 1.0)
                v = static_cast<double>(cells) + 1.0;
            q[j] = static_cast<std::int16_t>(
                static_cast<std::int32_t>(__builtin_floor(v)) - bias);
        }
        for (; j < stride; ++j)
            q[j] = 0;
    }
}

} // namespace gpupm::ml::detail

#else // !x86

namespace gpupm::ml::detail {

std::size_t
avx2AccumTreeRows(const std::int64_t *, const std::int16_t *,
                  std::size_t, std::size_t, std::uint32_t,
                  std::uint16_t, const std::int32_t *, const double *,
                  double *)
{
    GPUPM_PANIC("AVX2 kernel invoked on a non-x86 host");
}

void
avx2WalkTrees(const std::int64_t *, const std::int16_t *,
              const std::uint32_t *, std::size_t, std::uint16_t,
              std::uint32_t *)
{
    GPUPM_PANIC("AVX2 kernel invoked on a non-x86 host");
}

void
avx2QuantizeRows(const double *, std::size_t, std::size_t,
                 const double *, const double *, std::int32_t,
                 std::int32_t, std::int16_t *, std::size_t)
{
    GPUPM_PANIC("AVX2 kernel invoked on a non-x86 host");
}

} // namespace gpupm::ml::detail

#endif
