#include "ml/simd.hpp"

#include <atomic>
#include <cstdlib>

#include "common/logging.hpp"

namespace gpupm::ml {

const char *
toString(SimdMode m)
{
    switch (m) {
    case SimdMode::Scalar:
        return "scalar";
    case SimdMode::Auto:
        return "auto";
    case SimdMode::Avx2:
        return "avx2";
    case SimdMode::Fallback:
        return "fallback";
    }
    return "?";
}

const char *
toString(SimdPath p)
{
    switch (p) {
    case SimdPath::Float64:
        return "scalar";
    case SimdPath::FixedPortable:
        return "fallback";
    case SimdPath::FixedAvx2:
        return "avx2";
    }
    return "?";
}

std::optional<SimdMode>
parseSimdMode(const std::string &s)
{
    if (s == "scalar")
        return SimdMode::Scalar;
    if (s == "auto")
        return SimdMode::Auto;
    if (s == "avx2")
        return SimdMode::Avx2;
    if (s == "fallback" || s == "portable")
        return SimdMode::Fallback;
    return std::nullopt;
}

bool
cpuSupportsAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool supported = __builtin_cpu_supports("avx2") != 0;
    return supported;
#else
    return false;
#endif
}

SimdPath
resolveSimdPath(SimdMode m)
{
    switch (m) {
    case SimdMode::Scalar:
        return SimdPath::Float64;
    case SimdMode::Fallback:
        return SimdPath::FixedPortable;
    case SimdMode::Auto:
        return cpuSupportsAvx2() ? SimdPath::FixedAvx2
                                 : SimdPath::FixedPortable;
    case SimdMode::Avx2:
        if (cpuSupportsAvx2())
            return SimdPath::FixedAvx2;
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            GPUPM_WARN("--simd=avx2 requested but this CPU lacks AVX2; "
                       "using the bit-identical portable fixed-point "
                       "kernel");
        return SimdPath::FixedPortable;
    }
    return SimdPath::Float64;
}

namespace {

SimdMode
envSimdMode()
{
    const char *env = std::getenv("GPUPM_SIMD");
    if (env == nullptr || *env == '\0')
        return SimdMode::Scalar;
    if (const auto m = parseSimdMode(env))
        return *m;
    GPUPM_WARN("ignoring unrecognized GPUPM_SIMD='", env,
               "' (want auto|avx2|scalar|fallback); using scalar");
    return SimdMode::Scalar;
}

std::atomic<SimdMode> &
defaultModeSlot()
{
    static std::atomic<SimdMode> mode{envSimdMode()};
    return mode;
}

std::atomic<std::uint64_t> g_rows[kSimdPathCount];

} // namespace

SimdMode
defaultSimdMode()
{
    return defaultModeSlot().load(std::memory_order_relaxed);
}

void
setDefaultSimdMode(SimdMode m)
{
    defaultModeSlot().store(m, std::memory_order_relaxed);
}

void
addSimdRows(SimdPath p, std::uint64_t rows)
{
    g_rows[static_cast<std::size_t>(p)].fetch_add(
        rows, std::memory_order_relaxed);
}

SimdRowStats
simdRowStats()
{
    SimdRowStats s;
    s.scalar = g_rows[static_cast<std::size_t>(SimdPath::Float64)].load(
        std::memory_order_relaxed);
    s.fallback =
        g_rows[static_cast<std::size_t>(SimdPath::FixedPortable)].load(
            std::memory_order_relaxed);
    s.avx2 = g_rows[static_cast<std::size_t>(SimdPath::FixedAvx2)].load(
        std::memory_order_relaxed);
    return s;
}

} // namespace gpupm::ml
