/**
 * @file
 * Umbrella header: the public gpupm API in one include.
 *
 * Link against the `gpupm` CMake interface target and write
 *
 *     #include "gpupm.hpp"
 *
 * to get everything an embedding application needs: workloads,
 * governors, predictors, the simulator, the sweep/fleet execution
 * engines, telemetry and tracing. Subsystem headers remain directly
 * includable for programs that want to shrink their view (for
 * instance, only "sim/simulator.hpp" and "policy/turbo_core.hpp");
 * headers NOT listed here (tree builders, hill-climb internals, ring
 * buffers, ...) are internal and may change without notice - see
 * CONTRIBUTING.md.
 */

#pragma once

// Basics: units, flags, tables, deterministic RNG streams.
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

// The modeled platform: configuration space, DVFS, power, thermals.
#include "hw/config.hpp"
#include "hw/params.hpp"

// Kernel ground-truth models and the APU execution model.
#include "kernel/counters.hpp"
#include "kernel/kernel.hpp"
#include "kernel/perf_model.hpp"

// Workloads: the paper's benchmarks, traces, training corpora.
#include "workload/benchmarks.hpp"
#include "workload/trace.hpp"
#include "workload/training.hpp"

// Predictors: the Random Forest, error models, serialization.
#include "ml/error_model.hpp"
#include "ml/predictor.hpp"
#include "ml/serialize.hpp"
#include "ml/trainer.hpp"

// Governors: baselines, PPK, the oracle, and the paper's MPC.
#include "mpc/governor.hpp"
#include "mpc/options.hpp"
#include "policy/oracle.hpp"
#include "policy/ppk.hpp"
#include "policy/static_governor.hpp"
#include "policy/turbo_core.hpp"

// Closed-loop simulation and derived metrics.
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

// Deterministic parallel execution: sweeps and the fleet server.
#include "exec/sweep.hpp"
#include "exec/sweep_jobs.hpp"
#include "serve/server.hpp"

// Fleet power capping: budget arbitration and the reactive thermal
// cap governor.
#include "powercap/arbiter.hpp"
#include "powercap/thermal_governor.hpp"

// Closed-loop online learning: drift detection, background retrains,
// RCU forest hot-swap.
#include "online/adaptive_predictor.hpp"
#include "online/drift.hpp"
#include "online/forest_handle.hpp"
#include "online/learner.hpp"

// Observability: counters/histograms/power traces, span timelines
// and decision provenance.
#include "telemetry/telemetry.hpp"
#include "trace/chrome_export.hpp"
#include "trace/decision.hpp"
#include "trace/jsonl_export.hpp"
#include "trace/trace.hpp"
