#include "workload/trace.hpp"

#include "common/logging.hpp"

namespace gpupm::workload {

std::string
toString(Category c)
{
    switch (c) {
      case Category::Regular:
        return "Regular";
      case Category::IrregularRepeating:
        return "Irregular w/ repeating pattern";
      case Category::IrregularNonRepeating:
        return "Irregular w/ non-repeating pattern";
      case Category::IrregularInputVarying:
        return "Irregular w/ kernels varying with input";
    }
    GPUPM_PANIC("bad category");
}

InstCount
Application::totalInstructions() const
{
    InstCount total = 0.0;
    for (const auto &inv : trace)
        total += inv.params.instructions();
    return total;
}

Application
withCpuPhases(Application app, double fraction)
{
    GPUPM_ASSERT(fraction >= 0.0, "negative CPU-phase fraction");
    // Scale each phase by the kernel's nominal size: workItems is a
    // cheap proxy for the data-transfer/preparation volume of Fig. 1.
    for (auto &inv : app.trace) {
        // ~1 ms of host work per 10M work-items at fraction 1.0.
        inv.cpuPhaseSeconds =
            fraction * inv.params.workItems * 1e-10;
    }
    return app;
}

} // namespace gpupm::workload
