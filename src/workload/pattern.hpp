/**
 * @file
 * Kernel execution-pattern notation (paper Tables II and IV).
 *
 * The paper describes application kernel orderings with a compact
 * regular-expression-like notation: "A10 B10 C10" (Spmv), "(AB)5"
 * (EigenValue), "A B20" (kmeans). This module parses that notation into
 * a flat tag sequence. Tags are single uppercase letters; an optional
 * decimal count repeats a tag or a parenthesized group.
 */

#pragma once

#include <string>
#include <vector>

namespace gpupm::workload {

/**
 * Expand a pattern string into a flat sequence of kernel tags.
 *
 * Grammar: seq := item+ ; item := (TAG | '(' seq ')') COUNT? ;
 * whitespace is ignored. Fatal on malformed input.
 *
 * @param pattern e.g. "A10B10C10", "(AB)5", "A B20".
 * @return tag sequence, e.g. "AAAABBBB...".
 */
std::vector<char> expandPattern(const std::string &pattern);

/**
 * Render a tag sequence back into compact notation, collapsing runs
 * ("AAAB" -> "A3B"). Used when printing Table II/IV.
 */
std::string compactPattern(const std::vector<char> &tags);

} // namespace gpupm::workload
