/**
 * @file
 * Training corpus generator for the offline performance/power models.
 *
 * The paper trains its Random Forest on kernel-level counters, execution
 * times and power across several benchmark suites (73 benchmarks were
 * studied; 15 are evaluated). This generator produces a diverse corpus
 * of synthetic kernels spanning all four archetypes, disjoint from the
 * 15 evaluation benchmarks, so the forest exhibits genuine
 * generalization error when predicting the evaluation kernels.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "kernel/kernel.hpp"
#include "workload/trace.hpp"

namespace gpupm::workload {

/**
 * Generate @p count random training kernels.
 *
 * Parameters are drawn from wide ranges per archetype; the archetype mix
 * is roughly uniform. Deterministic in @p seed.
 */
std::vector<kernel::KernelParams> trainingCorpus(std::size_t count,
                                                 std::uint64_t seed);

/**
 * Generate a random application for property/fuzz testing: a random
 * mix of regular repetition, interleaved kernels and input-varying
 * streams over randomly drawn kernels. Deterministic in @p seed.
 *
 * @param seed Generator seed.
 * @param max_kernels Upper bound on the number of launches (>= 2).
 */
Application randomApplication(std::uint64_t seed,
                              std::size_t max_kernels = 24);

} // namespace gpupm::workload
