#include "workload/pattern.hpp"

#include <cctype>

#include "common/logging.hpp"

namespace gpupm::workload {

namespace {

struct Parser
{
    const std::string &s;
    std::size_t pos = 0;

    void
    skipSpace()
    {
        while (pos < s.size() && std::isspace(static_cast<unsigned char>(
                                     s[pos]))) {
            ++pos;
        }
    }

    bool
    done()
    {
        skipSpace();
        return pos >= s.size();
    }

    char
    peek()
    {
        skipSpace();
        return pos < s.size() ? s[pos] : '\0';
    }

    int
    parseCount()
    {
        skipSpace();
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos]))) {
            return 1;
        }
        int n = 0;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos]))) {
            n = n * 10 + (s[pos] - '0');
            ++pos;
        }
        GPUPM_ASSERT(n >= 1, "pattern count must be >= 1");
        return n;
    }

    std::vector<char>
    parseSeq(bool in_group)
    {
        std::vector<char> out;
        while (!done()) {
            char c = peek();
            if (c == ')') {
                if (!in_group)
                    GPUPM_FATAL("unbalanced ')' in pattern '", s, "'");
                return out;
            }
            std::vector<char> item;
            if (c == '(') {
                ++pos;
                item = parseSeq(true);
                if (peek() != ')')
                    GPUPM_FATAL("missing ')' in pattern '", s, "'");
                ++pos;
            } else if (std::isupper(static_cast<unsigned char>(c))) {
                item.push_back(c);
                ++pos;
            } else {
                GPUPM_FATAL("unexpected character '", c, "' in pattern '",
                            s, "'");
            }
            int count = parseCount();
            for (int i = 0; i < count; ++i)
                out.insert(out.end(), item.begin(), item.end());
        }
        if (in_group)
            GPUPM_FATAL("missing ')' in pattern '", s, "'");
        return out;
    }
};

} // namespace

std::vector<char>
expandPattern(const std::string &pattern)
{
    Parser p{pattern};
    auto tags = p.parseSeq(false);
    if (tags.empty())
        GPUPM_FATAL("empty pattern '", pattern, "'");
    return tags;
}

std::string
compactPattern(const std::vector<char> &tags)
{
    std::string out;
    std::size_t i = 0;
    while (i < tags.size()) {
        std::size_t j = i;
        while (j < tags.size() && tags[j] == tags[i])
            ++j;
        out += tags[i];
        if (j - i > 1)
            out += std::to_string(j - i);
        i = j;
    }
    return out;
}

} // namespace gpupm::workload
