#include "workload/training.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace gpupm::workload {

std::vector<kernel::KernelParams>
trainingCorpus(std::size_t count, std::uint64_t seed)
{
    using kernel::Archetype;
    using kernel::KernelParams;

    Pcg32 rng(seed, 0x5eedULL);
    std::vector<KernelParams> out;
    out.reserve(count);

    for (std::size_t i = 0; i < count; ++i) {
        // Half the corpus is drawn from archetype-flavoured ranges (the
        // exemplars of Fig. 2); the other half samples the continuum
        // between them, as a real multi-suite training set would, so
        // the model has coverage for kernels that sit between the
        // archetype clusters.
        const bool generic = i % 2 == 1;
        auto arch = static_cast<Archetype>(rng.nextBounded(4));
        KernelParams k;
        k.name = "train_" + std::to_string(i);
        k.archetype = arch;
        k.workItems = rng.uniform(1e5, 8e6);
        k.vfetchInstsPerItem = rng.uniform(4.0, 40.0);
        k.scratchRegs = rng.nextDouble() < 0.25 ? rng.uniform(1.0, 12.0)
                                                : 0.0;
        k.ldsBankConflict =
            rng.nextDouble() < 0.3 ? rng.uniform(0.0, 0.25) : 0.0;
        k.computeMemOverlap = rng.uniform(0.05, 0.5);
        k.launchCpuSeconds = rng.uniform(20e-6, 80e-6);
        k.idiosyncrasySeed = seed * 0x9e3779b97f4a7c15ULL + i;

        if (generic) {
            // Log-uniform over the full plausible range.
            k.valuInstsPerItem =
                std::exp(rng.uniform(std::log(20.0), std::log(3000.0)));
            k.bytesPerItem = rng.uniform(8.0, 280.0);
            k.cacheHitBase = rng.uniform(0.05, 0.95);
            if (rng.nextDouble() < 0.2)
                k.cachePressure = rng.uniform(0.0, 0.1);
            if (rng.nextDouble() < 0.25) {
                k.serialSeconds = rng.uniform(0.5e-3, 30e-3);
                k.serialGpuFreqSensitivity = rng.uniform(0.1, 0.5);
            }
            out.push_back(std::move(k));
            continue;
        }

        switch (arch) {
          case Archetype::ComputeBound:
            k.valuInstsPerItem = rng.uniform(300.0, 3000.0);
            k.bytesPerItem = rng.uniform(8.0, 48.0);
            k.cacheHitBase = rng.uniform(0.55, 0.95);
            break;
          case Archetype::MemoryBound:
            k.valuInstsPerItem = rng.uniform(20.0, 120.0);
            k.bytesPerItem = rng.uniform(64.0, 200.0);
            k.cacheHitBase = rng.uniform(0.05, 0.5);
            break;
          case Archetype::Peak:
            k.valuInstsPerItem = rng.uniform(100.0, 400.0);
            k.bytesPerItem = rng.uniform(120.0, 280.0);
            k.cacheHitBase = rng.uniform(0.75, 0.95);
            k.cachePressure = rng.uniform(0.05, 0.1);
            break;
          case Archetype::Unscalable:
            k.valuInstsPerItem = rng.uniform(40.0, 200.0);
            k.bytesPerItem = rng.uniform(24.0, 96.0);
            k.cacheHitBase = rng.uniform(0.3, 0.7);
            k.serialSeconds = rng.uniform(2e-3, 30e-3);
            k.serialGpuFreqSensitivity = rng.uniform(0.1, 0.5);
            break;
        }
        out.push_back(std::move(k));
    }
    return out;
}

Application
randomApplication(std::uint64_t seed, std::size_t max_kernels)
{
    using kernel::KernelParams;

    if (max_kernels < 2)
        max_kernels = 2;
    Pcg32 rng(seed, 0xa99ULL);

    // Draw a small palette of distinct kernels.
    const std::size_t palette_size = 1 + rng.nextBounded(4);
    auto palette = trainingCorpus(palette_size, seed ^ 0x1234ULL);

    Application app;
    app.name = "random_" + std::to_string(seed);

    const int shape = static_cast<int>(rng.nextBounded(3));
    const std::size_t launches =
        2 + rng.nextBounded(static_cast<std::uint32_t>(max_kernels - 1));
    switch (shape) {
      case 0: { // regular: one kernel repeated
        app.category = Category::Regular;
        app.patternNotation =
            "A" + std::to_string(launches);
        for (std::size_t i = 0; i < launches; ++i)
            app.trace.push_back({palette[0], 'A'});
        break;
      }
      case 1: { // interleaved palette
        app.category = Category::IrregularRepeating;
        app.patternNotation = "interleaved";
        for (std::size_t i = 0; i < launches; ++i) {
            const auto pick = rng.nextBounded(
                static_cast<std::uint32_t>(palette.size()));
            app.trace.push_back(
                {palette[pick], static_cast<char>('A' + pick)});
        }
        break;
      }
      default: { // input-varying stream
        app.category = Category::IrregularInputVarying;
        app.patternNotation = "input-varying";
        double scale = rng.uniform(0.5, 1.5);
        for (std::size_t i = 0; i < launches; ++i) {
            const double shift = rng.uniform(-0.05, 0.05);
            app.trace.push_back(
                {palette[0].withInputScale(scale, shift), 'A'});
            scale = std::max(0.05, scale * rng.uniform(0.6, 1.4));
        }
        break;
      }
    }
    return app;
}

} // namespace gpupm::workload
