/**
 * @file
 * The 15 studied GPGPU benchmarks (paper Table IV).
 *
 * Each benchmark reproduces the kernel execution pattern reported in the
 * paper (Tables II/IV) and the throughput phase behaviour of Fig. 3:
 * Spmv transitions high-to-low throughput across its three SpMV kernels,
 * kmeans low-to-high after its initial swap kernel, hybridsort varies on
 * every invocation (including across inputs of the same mergeSortPass
 * kernel), and so on. Kernel parameters are synthetic but calibrated to
 * land each kernel in the archetype the paper describes.
 */

#pragma once

#include <string>
#include <vector>

#include "workload/trace.hpp"

namespace gpupm::workload {

/** Names of the 15 benchmarks in the paper's figure order. */
const std::vector<std::string> &benchmarkNames();

/** Build a benchmark by name; fatal on unknown name. */
Application makeBenchmark(const std::string &name);

/** All 15 benchmarks in figure order. */
std::vector<Application> allBenchmarks();

/**
 * The four example kernels of paper Fig. 2, one per archetype:
 * MaxFlops (compute-bound), readGlobalMemoryCoalesced (memory-bound),
 * writeCandidates (peak), astar (unscalable).
 */
std::vector<kernel::KernelParams> figure2Kernels();

} // namespace gpupm::workload
