#include "workload/benchmarks.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "workload/pattern.hpp"

namespace gpupm::workload {

namespace {

using kernel::Archetype;
using kernel::KernelParams;

/** Stable FNV-1a hash for per-kernel idiosyncrasy seeds. */
std::uint64_t
seedOf(const std::string &bench, char tag)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : bench + ":" + tag) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ULL;
    }
    return h;
}

/** Append @p n invocations of @p k tagged @p tag. */
void
repeat(Application &app, const KernelParams &k, char tag, int n)
{
    for (int i = 0; i < n; ++i)
        app.trace.push_back({k, tag});
}

/** Append one invocation. */
void
once(Application &app, const KernelParams &k, char tag)
{
    app.trace.push_back({k, tag});
}

Application
mandelbulbGPU()
{
    Application app{"mandelbulbGPU", Category::Regular, "A20", {}};
    KernelParams k{
        .name = "mandelbulb",
        .archetype = Archetype::ComputeBound,
        .workItems = 2.1e6,
        .valuInstsPerItem = 900.0,
        .vfetchInstsPerItem = 6.0,
        .bytesPerItem = 12.0,
        .cacheHitBase = 0.75,
        .computeMemOverlap = 0.05,
        .launchCpuSeconds = 40e-6,
        .idiosyncrasySeed = seedOf("mandelbulbGPU", 'A'),
    };
    repeat(app, k, 'A', 20);
    return app;
}

Application
nbody()
{
    Application app{"NBody", Category::Regular, "A10", {}};
    KernelParams k{
        .name = "nbody_sim",
        .archetype = Archetype::ComputeBound,
        .workItems = 1.05e6,
        .valuInstsPerItem = 2600.0,
        .vfetchInstsPerItem = 30.0,
        .bytesPerItem = 24.0,
        .cacheHitBase = 0.9,
        .ldsBankConflict = 0.04,
        .computeMemOverlap = 0.1,
        .launchCpuSeconds = 45e-6,
        .idiosyncrasySeed = seedOf("NBody", 'A'),
    };
    repeat(app, k, 'A', 10);
    return app;
}

Application
lbm()
{
    Application app{"lbm", Category::Regular, "A10", {}};
    // Peak kernel: strong shared-cache interference beyond ~4-6 CUs, so
    // both performance and energy optimum sit at a mid configuration
    // (paper: 51% GPU energy savings because of peak behaviour).
    KernelParams k{
        .name = "lbm_stream_collide",
        .archetype = Archetype::Peak,
        .workItems = 1.3e6,
        .valuInstsPerItem = 220.0,
        .vfetchInstsPerItem = 40.0,
        .bytesPerItem = 260.0,
        .cacheHitBase = 0.88,
        .cachePressure = 0.08,
        .computeMemOverlap = 0.35,
        .launchCpuSeconds = 50e-6,
        .idiosyncrasySeed = seedOf("lbm", 'A'),
    };
    repeat(app, k, 'A', 10);
    return app;
}

Application
eigenValue()
{
    Application app{"EigenValue", Category::IrregularRepeating, "(AB)5",
                    {}};
    KernelParams a{
        .name = "bisect_intervals",
        .archetype = Archetype::ComputeBound,
        .workItems = 4.2e6,
        .valuInstsPerItem = 800.0,
        .vfetchInstsPerItem = 12.0,
        .bytesPerItem = 20.0,
        .cacheHitBase = 0.6,
        .computeMemOverlap = 0.15,
        .launchCpuSeconds = 45e-6,
        .idiosyncrasySeed = seedOf("EigenValue", 'A'),
    };
    KernelParams b{
        .name = "merge_intervals",
        .archetype = Archetype::Unscalable,
        .workItems = 5e5,
        .valuInstsPerItem = 60.0,
        .vfetchInstsPerItem = 10.0,
        .bytesPerItem = 120.0,
        .cacheHitBase = 0.35,
        .computeMemOverlap = 0.5,
        .serialSeconds = 25e-3,
        .serialGpuFreqSensitivity = 0.25,
        .launchCpuSeconds = 45e-6,
        .idiosyncrasySeed = seedOf("EigenValue", 'B'),
    };
    for (auto tag : expandPattern("(AB)5"))
        once(app, tag == 'A' ? a : b, tag);
    return app;
}

Application
xsbench()
{
    Application app{"XSBench", Category::IrregularRepeating, "(ABC)2", {}};
    KernelParams a{
        .name = "xs_lookup",
        .archetype = Archetype::MemoryBound,
        .workItems = 8e6,
        .valuInstsPerItem = 50.0,
        .vfetchInstsPerItem = 15.0,
        .bytesPerItem = 140.0,
        .cacheHitBase = 0.12,
        .computeMemOverlap = 0.25,
        .launchCpuSeconds = 55e-6,
        .idiosyncrasySeed = seedOf("XSBench", 'A'),
    };
    KernelParams b{
        .name = "xs_interp",
        .archetype = Archetype::ComputeBound,
        .workItems = 2e6,
        .valuInstsPerItem = 1500.0,
        .vfetchInstsPerItem = 40.0,
        .bytesPerItem = 36.0,
        .cacheHitBase = 0.7,
        .computeMemOverlap = 0.2,
        .launchCpuSeconds = 55e-6,
        .idiosyncrasySeed = seedOf("XSBench", 'B'),
    };
    KernelParams c{
        .name = "xs_reduce",
        .archetype = Archetype::Unscalable,
        .workItems = 1e6,
        .valuInstsPerItem = 100.0,
        .vfetchInstsPerItem = 12.0,
        .bytesPerItem = 60.0,
        .cacheHitBase = 0.5,
        .computeMemOverlap = 0.4,
        .serialSeconds = 20e-3,
        .launchCpuSeconds = 55e-6,
        .idiosyncrasySeed = seedOf("XSBench", 'C'),
    };
    for (auto tag : expandPattern("(ABC)2"))
        once(app, tag == 'A' ? a : (tag == 'B' ? b : c), tag);
    return app;
}

Application
spmv()
{
    Application app{"Spmv", Category::IrregularNonRepeating, "A10B10C10",
                    {}};
    // Three SpMV algorithms run 10x each; throughput transitions
    // high -> medium -> low across the phases (paper Fig. 3).
    KernelParams a{
        .name = "spmv_csr_vector",
        .archetype = Archetype::ComputeBound,
        .workItems = 2.1e6,
        .valuInstsPerItem = 120.0,
        .vfetchInstsPerItem = 10.0,
        .bytesPerItem = 28.0,
        .cacheHitBase = 0.65,
        .computeMemOverlap = 0.25,
        .launchCpuSeconds = 35e-6,
        .idiosyncrasySeed = seedOf("Spmv", 'A'),
    };
    KernelParams b{
        .name = "spmv_csr_scalar",
        .archetype = Archetype::MemoryBound,
        .workItems = 2.1e6,
        .valuInstsPerItem = 60.0,
        .vfetchInstsPerItem = 12.0,
        .bytesPerItem = 56.0,
        .cacheHitBase = 0.45,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 35e-6,
        .idiosyncrasySeed = seedOf("Spmv", 'B'),
    };
    KernelParams c{
        .name = "spmv_ellpack",
        .archetype = Archetype::MemoryBound,
        .workItems = 2.1e6,
        .valuInstsPerItem = 30.0,
        .vfetchInstsPerItem = 14.0,
        .bytesPerItem = 80.0,
        .cacheHitBase = 0.25,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 35e-6,
        .idiosyncrasySeed = seedOf("Spmv", 'C'),
    };
    repeat(app, a, 'A', 10);
    repeat(app, b, 'B', 10);
    repeat(app, c, 'C', 10);
    return app;
}

Application
kmeans()
{
    Application app{"kmeans", Category::IrregularNonRepeating, "AB20", {}};
    // One low-throughput swap kernel dominates the start, then 20
    // high-throughput kmeans iterations (Fig. 3: low-to-high).
    KernelParams a{
        .name = "kmeans_swap",
        .archetype = Archetype::MemoryBound,
        .workItems = 4e6,
        .valuInstsPerItem = 60.0,
        .vfetchInstsPerItem = 12.0,
        .bytesPerItem = 100.0,
        .cacheHitBase = 0.3,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 40e-6,
        .idiosyncrasySeed = seedOf("kmeans", 'A'),
    };
    KernelParams b{
        .name = "kmeans_kernel",
        .archetype = Archetype::ComputeBound,
        .workItems = 1.4e6,
        .valuInstsPerItem = 520.0,
        .vfetchInstsPerItem = 20.0,
        .bytesPerItem = 40.0,
        .cacheHitBase = 0.6,
        .computeMemOverlap = 0.2,
        .launchCpuSeconds = 40e-6,
        .idiosyncrasySeed = seedOf("kmeans", 'B'),
    };
    once(app, a, 'A');
    repeat(app, b, 'B', 20);
    return app;
}

Application
swat()
{
    Application app{"swat", Category::IrregularInputVarying, "A18", {}};
    // Smith-Waterman anti-diagonal wavefront: work ramps up then down.
    KernelParams base{
        .name = "swat_wavefront",
        .archetype = Archetype::MemoryBound,
        .workItems = 1.6e6,
        .valuInstsPerItem = 180.0,
        .vfetchInstsPerItem = 16.0,
        .bytesPerItem = 56.0,
        .cacheHitBase = 0.5,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 35e-6,
        .idiosyncrasySeed = seedOf("swat", 'A'),
    };
    for (int i = 0; i < 18; ++i) {
        // Triangle ramp 0.2 .. 1.0 .. 0.2 over 18 invocations.
        double frac = i < 9 ? (i + 1) / 9.0 : (18 - i) / 9.0;
        double scale = 0.2 + 0.8 * frac;
        once(app, base.withInputScale(scale, 0.05 * frac), 'A');
    }
    return app;
}

Application
color()
{
    Application app{"color", Category::IrregularInputVarying, "A15", {}};
    // Graph colouring: the uncoloured vertex set shrinks geometrically.
    KernelParams base{
        .name = "color_max_independent",
        .archetype = Archetype::MemoryBound,
        .workItems = 3e6,
        .valuInstsPerItem = 45.0,
        .vfetchInstsPerItem = 10.0,
        .bytesPerItem = 88.0,
        .cacheHitBase = 0.25,
        .computeMemOverlap = 0.35,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("color", 'A'),
    };
    double scale = 1.0;
    for (int i = 0; i < 15; ++i) {
        once(app, base.withInputScale(scale, 0.015 * i), 'A');
        scale *= 0.78;
    }
    return app;
}

Application
pbBfs()
{
    Application app{"pb-bfs", Category::IrregularInputVarying, "A14", {}};
    // BFS frontier: small -> large -> small; bigger frontiers coalesce
    // better (locality improves with scale). Low-to-high throughput
    // transition early on, like kmeans (paper Sec. II-E).
    KernelParams base{
        .name = "bfs_frontier",
        .archetype = Archetype::MemoryBound,
        .workItems = 5e6,
        .valuInstsPerItem = 35.0,
        .vfetchInstsPerItem = 12.0,
        .bytesPerItem = 110.0,
        .cacheHitBase = 0.2,
        .computeMemOverlap = 0.35,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("pb-bfs", 'A'),
    };
    const double frontier[] = {0.05, 0.15, 0.4,  0.9,  1.0,  1.0, 0.85,
                               0.6,  0.35, 0.2,  0.1,  0.06, 0.04, 0.02};
    for (double s : frontier)
        once(app, base.withInputScale(s, 0.18 * s), 'A');
    return app;
}

Application
mis()
{
    Application app{"mis", Category::IrregularInputVarying, "A12", {}};
    KernelParams base{
        .name = "mis_select",
        .archetype = Archetype::MemoryBound,
        .workItems = 4e6,
        .valuInstsPerItem = 40.0,
        .vfetchInstsPerItem = 10.0,
        .bytesPerItem = 96.0,
        .cacheHitBase = 0.22,
        .computeMemOverlap = 0.35,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("mis", 'A'),
    };
    double scale = 1.0;
    for (int i = 0; i < 12; ++i) {
        once(app, base.withInputScale(scale, 0.02 * i), 'A');
        scale *= 0.72;
    }
    return app;
}

Application
srad()
{
    Application app{"srad", Category::IrregularInputVarying, "(AB)8", {}};
    KernelParams a{
        .name = "srad1",
        .archetype = Archetype::ComputeBound,
        .workItems = 2.1e6,
        .valuInstsPerItem = 160.0,
        .vfetchInstsPerItem = 18.0,
        .bytesPerItem = 70.0,
        .cacheHitBase = 0.55,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 35e-6,
        .idiosyncrasySeed = seedOf("srad", 'A'),
    };
    KernelParams b{
        .name = "srad2",
        .archetype = Archetype::MemoryBound,
        .workItems = 2.1e6,
        .valuInstsPerItem = 140.0,
        .vfetchInstsPerItem = 16.0,
        .bytesPerItem = 80.0,
        .cacheHitBase = 0.5,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 35e-6,
        .idiosyncrasySeed = seedOf("srad", 'B'),
    };
    for (int i = 0; i < 8; ++i) {
        // Convergence changes the update set each iteration; the final
        // phases shift locality sharply, which is what defeats the
        // prediction model in the paper's worst case.
        double shift = i < 6 ? -0.01 * i : -0.3;
        once(app, a.withInputScale(1.0 - 0.02 * i, shift), 'A');
        once(app, b.withInputScale(1.0 - 0.02 * i, shift), 'B');
    }
    return app;
}

Application
lulesh()
{
    Application app{"lulesh", Category::IrregularInputVarying, "(ABC)4",
                    {}};
    KernelParams a{
        .name = "lulesh_stress",
        .archetype = Archetype::ComputeBound,
        .workItems = 1.8e6,
        .valuInstsPerItem = 420.0,
        .vfetchInstsPerItem = 24.0,
        .bytesPerItem = 48.0,
        .cacheHitBase = 0.6,
        .computeMemOverlap = 0.25,
        .launchCpuSeconds = 40e-6,
        .idiosyncrasySeed = seedOf("lulesh", 'A'),
    };
    KernelParams b{
        .name = "lulesh_hourglass",
        .archetype = Archetype::MemoryBound,
        .workItems = 2.4e6,
        .valuInstsPerItem = 90.0,
        .vfetchInstsPerItem = 20.0,
        .bytesPerItem = 120.0,
        .cacheHitBase = 0.3,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 40e-6,
        .idiosyncrasySeed = seedOf("lulesh", 'B'),
    };
    KernelParams c{
        .name = "lulesh_constraint",
        .archetype = Archetype::Unscalable,
        .workItems = 6e5,
        .valuInstsPerItem = 70.0,
        .vfetchInstsPerItem = 10.0,
        .bytesPerItem = 40.0,
        .cacheHitBase = 0.5,
        .computeMemOverlap = 0.4,
        .serialSeconds = 6e-3,
        .launchCpuSeconds = 40e-6,
        .idiosyncrasySeed = seedOf("lulesh", 'C'),
    };
    for (int i = 0; i < 4; ++i) {
        double s = 1.0 - 0.08 * i;
        once(app, a.withInputScale(s, 0.0), 'A');
        once(app, b.withInputScale(s, -0.02 * i), 'B');
        once(app, c.withInputScale(s, 0.0), 'C');
    }
    return app;
}

Application
lud()
{
    Application app{"lud", Category::IrregularInputVarying, "A15", {}};
    // LU decomposition: the trailing submatrix shrinks every step, so
    // throughput transitions high-to-low like Spmv (paper Sec. II-E).
    KernelParams base{
        .name = "lud_internal",
        .archetype = Archetype::ComputeBound,
        .workItems = 2.6e6,
        .valuInstsPerItem = 260.0,
        .vfetchInstsPerItem = 18.0,
        .bytesPerItem = 40.0,
        .cacheHitBase = 0.7,
        .computeMemOverlap = 0.25,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("lud", 'A'),
    };
    double scale = 1.0;
    for (int i = 0; i < 15; ++i) {
        // Shrinking tiles also lose arithmetic density: shift the
        // balance toward memory by degrading locality.
        once(app, base.withInputScale(scale, -0.025 * i), 'A');
        scale *= 0.8;
    }
    return app;
}

Application
hybridsort()
{
    Application app{"hybridsort", Category::IrregularInputVarying,
                    "ABCDEF9G", {}};
    KernelParams a{
        .name = "histogram",
        .archetype = Archetype::MemoryBound,
        .workItems = 4.2e6,
        .valuInstsPerItem = 40.0,
        .vfetchInstsPerItem = 10.0,
        .bytesPerItem = 60.0,
        .cacheHitBase = 0.4,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("hybridsort", 'A'),
    };
    KernelParams b{
        .name = "bucketprefix",
        .archetype = Archetype::Unscalable,
        .workItems = 2e5,
        .valuInstsPerItem = 50.0,
        .vfetchInstsPerItem = 8.0,
        .bytesPerItem = 24.0,
        .cacheHitBase = 0.6,
        .computeMemOverlap = 0.4,
        .serialSeconds = 2.5e-3,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("hybridsort", 'B'),
    };
    KernelParams c{
        .name = "bucketsort",
        .archetype = Archetype::MemoryBound,
        .workItems = 4.2e6,
        .valuInstsPerItem = 55.0,
        .vfetchInstsPerItem = 12.0,
        .bytesPerItem = 130.0,
        .cacheHitBase = 0.3,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("hybridsort", 'C'),
    };
    KernelParams d{
        .name = "mergesort_first",
        .archetype = Archetype::ComputeBound,
        .workItems = 2e6,
        .valuInstsPerItem = 180.0,
        .vfetchInstsPerItem = 14.0,
        .bytesPerItem = 36.0,
        .cacheHitBase = 0.65,
        .computeMemOverlap = 0.25,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("hybridsort", 'D'),
    };
    KernelParams e{
        .name = "mergesort_global",
        .archetype = Archetype::MemoryBound,
        .workItems = 3e6,
        .valuInstsPerItem = 95.0,
        .vfetchInstsPerItem = 16.0,
        .bytesPerItem = 72.0,
        .cacheHitBase = 0.45,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("hybridsort", 'E'),
    };
    KernelParams f{
        .name = "mergeSortPass",
        .archetype = Archetype::MemoryBound,
        .workItems = 3.2e6,
        .valuInstsPerItem = 90.0,
        .vfetchInstsPerItem = 16.0,
        .bytesPerItem = 85.0,
        .cacheHitBase = 0.45,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("hybridsort", 'F'),
    };
    KernelParams g{
        .name = "mergepack",
        .archetype = Archetype::MemoryBound,
        .workItems = 4.2e6,
        .valuInstsPerItem = 45.0,
        .vfetchInstsPerItem = 10.0,
        .bytesPerItem = 90.0,
        .cacheHitBase = 0.35,
        .computeMemOverlap = 0.3,
        .launchCpuSeconds = 30e-6,
        .idiosyncrasySeed = seedOf("hybridsort", 'G'),
    };
    once(app, a, 'A');
    once(app, b, 'B');
    once(app, c, 'C');
    once(app, d, 'D');
    once(app, e, 'E');
    // mergeSortPass iterates nine times, each with a different input
    // (F1..F9 in Table II): merge widths double so the pass size halves.
    double scale = 1.0;
    for (int i = 0; i < 9; ++i) {
        once(app, f.withInputScale(scale, 0.03 * i), 'F');
        scale *= 0.55;
    }
    once(app, g, 'G');
    return app;
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "mandelbulbGPU", "NBody",  "lbm",   "EigenValue", "XSBench",
        "Spmv",          "kmeans", "swat",  "color",      "pb-bfs",
        "mis",           "srad",   "lulesh", "lud",       "hybridsort"};
    return names;
}

Application
makeBenchmark(const std::string &name)
{
    if (name == "mandelbulbGPU")
        return mandelbulbGPU();
    if (name == "NBody")
        return nbody();
    if (name == "lbm")
        return lbm();
    if (name == "EigenValue")
        return eigenValue();
    if (name == "XSBench")
        return xsbench();
    if (name == "Spmv")
        return spmv();
    if (name == "kmeans")
        return kmeans();
    if (name == "swat")
        return swat();
    if (name == "color")
        return color();
    if (name == "pb-bfs")
        return pbBfs();
    if (name == "mis")
        return mis();
    if (name == "srad")
        return srad();
    if (name == "lulesh")
        return lulesh();
    if (name == "lud")
        return lud();
    if (name == "hybridsort")
        return hybridsort();
    GPUPM_FATAL("unknown benchmark '", name, "'");
}

std::vector<Application>
allBenchmarks()
{
    std::vector<Application> apps;
    for (const auto &n : benchmarkNames())
        apps.push_back(makeBenchmark(n));
    return apps;
}

std::vector<kernel::KernelParams>
figure2Kernels()
{
    using kernel::KernelParams;
    std::vector<KernelParams> ks;
    ks.push_back(KernelParams{
        .name = "MaxFlops",
        .archetype = Archetype::ComputeBound,
        .workItems = 4e6,
        .valuInstsPerItem = 1200.0,
        .vfetchInstsPerItem = 4.0,
        .bytesPerItem = 8.0,
        .cacheHitBase = 0.9,
        .computeMemOverlap = 0.05,
        .idiosyncrasySeed = seedOf("fig2", 'A'),
    });
    ks.push_back(KernelParams{
        .name = "readGlobalMemoryCoalesced",
        .archetype = Archetype::MemoryBound,
        .workItems = 6e6,
        .valuInstsPerItem = 20.0,
        .vfetchInstsPerItem = 16.0,
        .bytesPerItem = 128.0,
        .cacheHitBase = 0.1,
        .computeMemOverlap = 0.2,
        .idiosyncrasySeed = seedOf("fig2", 'B'),
    });
    ks.push_back(KernelParams{
        .name = "writeCandidates",
        .archetype = Archetype::Peak,
        .workItems = 2e6,
        .valuInstsPerItem = 150.0,
        .vfetchInstsPerItem = 24.0,
        .bytesPerItem = 220.0,
        .cacheHitBase = 0.9,
        .cachePressure = 0.09,
        .computeMemOverlap = 0.3,
        .idiosyncrasySeed = seedOf("fig2", 'C'),
    });
    ks.push_back(KernelParams{
        .name = "astar",
        .archetype = Archetype::Unscalable,
        .workItems = 3e5,
        .valuInstsPerItem = 80.0,
        .vfetchInstsPerItem = 12.0,
        .bytesPerItem = 48.0,
        .cacheHitBase = 0.5,
        .computeMemOverlap = 0.4,
        .serialSeconds = 8e-3,
        .serialGpuFreqSensitivity = 0.15,
        .idiosyncrasySeed = seedOf("fig2", 'D'),
    });
    return ks;
}

} // namespace gpupm::workload
