/**
 * @file
 * Application kernel-invocation traces.
 *
 * An application is a named, categorized sequence of kernel invocations.
 * Each invocation carries fully resolved ground-truth kernel parameters
 * (input scaling already applied) plus the tag of the static kernel it
 * came from, so harnesses can report per-kernel statistics.
 */

#pragma once

#include <string>
#include <vector>

#include "kernel/kernel.hpp"

namespace gpupm::workload {

/** Benchmark categories of paper Table IV. */
enum class Category
{
    Regular,
    IrregularRepeating,
    IrregularNonRepeating,
    IrregularInputVarying,
};

std::string toString(Category c);

/** One dynamic kernel launch. */
struct KernelInvocation
{
    kernel::KernelParams params;
    char tag = 'A'; ///< Static kernel identity within the application.
    /**
     * Host CPU phase preceding this launch (Fig. 1 of the paper: data
     * transfer and launch preparation). The paper's evaluation assumes
     * the worst case of back-to-back kernels (0 s); a non-zero phase
     * lets the simulator hide governor overhead inside it (Sec. VI-E:
     * "CPU phases with an available CPU can hide the MPC overheads").
     */
    Seconds cpuPhaseSeconds = 0.0;
};

/** A GPGPU application: an ordered kernel launch trace. */
struct Application
{
    std::string name;
    Category category = Category::Regular;
    /** Compact execution-pattern notation for Table II/IV. */
    std::string patternNotation;
    std::vector<KernelInvocation> trace;

    /** Total dynamic instructions over the whole trace (paper I_total). */
    InstCount totalInstructions() const;

    /** Number of kernel invocations N. */
    std::size_t kernelCount() const { return trace.size(); }
};

/**
 * Copy of @p app in which every kernel launch is preceded by a host
 * CPU phase of @p fraction of that kernel's launch-adjusted footprint
 * (approximated by the paper's Fig. 1 structure). Used to study how
 * much of the governor overhead hides inside CPU phases.
 */
Application withCpuPhases(Application app, double fraction);

} // namespace gpupm::workload
