#include "serve/session_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hpp"
#include "ml/features.hpp"

namespace gpupm::serve {

SessionPredictor::SessionPredictor(
    std::shared_ptr<const ml::PerfPowerPredictor> base,
    InferenceBroker *broker, hw::HardwareModelPtr model,
    const SessionPredictorOptions &opts,
    telemetry::Registry *telemetry, const online::ForestHandle *handle)
    : _base(std::move(base)),
      _rf(dynamic_cast<const ml::RandomForestPredictor *>(_base.get())),
      _broker(broker), _model(std::move(model)), _handle(handle),
      _cap(opts.kernelCacheCap)
{
    GPUPM_ASSERT(_base != nullptr, "session predictor needs a base");
    GPUPM_ASSERT(_model != nullptr,
                 "session predictor needs a hardware model");
    GPUPM_ASSERT(!_broker || _rf,
                 "broker routing requires a Random Forest base");
    GPUPM_ASSERT(!_handle || _rf,
                 "hot-swap routing requires a Random Forest base");
    if (telemetry) {
        _hitQueries = &telemetry->counter("serve.cache_hit_queries");
        _missQueries = &telemetry->counter("serve.cache_miss_queries");
        _kernelEvictions = &telemetry->counter("serve.kernel_evictions");
    }
}

void
SessionPredictor::clearCache()
{
    _entries.clear();
}

void
SessionPredictor::rekeyEntry(KernelEntry &e, std::uint64_t gen)
{
    // Derived kernel features and the instruction proxy are functions
    // of the counters alone - only the memoized forest outputs die.
    std::fill(e.known.begin(), e.known.end(), 0);
    e.generation = gen;
}

ml::Prediction
SessionPredictor::predict(const ml::PredictionQuery &q,
                          const hw::HwConfig &c) const
{
    ml::Prediction p;
    predictBatch(q, std::span<const hw::HwConfig>(&c, 1),
                 std::span<ml::Prediction>(&p, 1));
    return p;
}

SessionPredictor::KernelEntry &
SessionPredictor::entryFor(const kernel::KernelCounters &counters) const
{
    // Linear scan over a small LRU set; caps are tens of kernels, and
    // the common case hits the most-recently-used entry on the first
    // memcmp (kernels relaunch in streaks).
    for (auto &e : _entries) {
        if (std::memcmp(&counters, &e.key, sizeof(e.key)) == 0) {
            e.lastUse = ++_clock;
            return e;
        }
    }
    if (_entries.size() >= _cap) {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < _entries.size(); ++i) {
            if (_entries[i].lastUse < _entries[victim].lastUse)
                victim = i;
        }
        _entries.erase(_entries.begin() +
                       static_cast<std::ptrdiff_t>(victim));
        _evictions += 1;
        if (_kernelEvictions)
            _kernelEvictions->add();
    }
    KernelEntry e;
    e.key = counters;
    e.kf = ml::makeKernelFeatures(counters);
    e.proxy = ml::instructionProxy(counters);
    e.memo.resize(hw::denseConfigCount);
    e.known.assign(hw::denseConfigCount, 0);
    e.lastUse = ++_clock;
    _entries.push_back(std::move(e));
    return _entries.back();
}

void
SessionPredictor::predictBatch(const ml::PredictionQuery &q,
                               std::span<const hw::HwConfig> cs,
                               std::span<ml::Prediction> out) const
{
    GPUPM_ASSERT(out.size() == cs.size(),
                 "predictBatch output size mismatch");
    const std::size_t n = cs.size();
    if (n == 0)
        return;

    if (!accelerated()) {
        // Oracle-family base (ground truth is not a pure function of
        // the counters) or cache disabled: plain passthrough.
        _base->predictBatch(q, cs, out);
        return;
    }

    KernelEntry &e = entryFor(q.counters);

    // Under hot-swap, rebind the memo to the current generation before
    // serving from it: a stale memo would replay the outgoing forests'
    // values after a swap.
    std::shared_ptr<const online::ForestGeneration> gen;
    if (_handle) {
        gen = _handle->acquire();
        if (e.generation != gen->ordinal)
            rekeyEntry(e, gen->ordinal);
    }

    // Serve memoized configs; collect the rest for one forest walk.
    std::vector<std::uint32_t> miss;
    for (std::size_t i = 0; i < n; ++i) {
        const auto di = hw::denseConfigIndex(cs[i]);
        if (e.known[di])
            out[i] = e.memo[di];
        else
            miss.push_back(static_cast<std::uint32_t>(i));
    }
    if (_hitQueries && miss.size() < n)
        _hitQueries->add(n - miss.size());
    if (miss.empty())
        return;
    if (_missQueries)
        _missQueries->add(miss.size());

    const std::size_t m = miss.size();
    std::vector<ml::FeatureVector> rows(m);
    std::vector<double> time_log(m), gpu_power(m);
    // Config descriptors come from the session's hardware model, so a
    // variant model's candidates are scored in its own feature scaling
    // (bit-identical to ml::configFeatures for the paper model).
    for (std::size_t j = 0; j < m; ++j) {
        rows[j] = ml::combineFeatures(
            e.kf, _model->descriptorAt(hw::denseConfigIndex(cs[miss[j]])));
    }
    std::uint64_t served = e.generation;
    if (_broker)
        served = _broker->evaluate(rows, time_log, gpu_power);
    else if (gen)
        gen->predictor->predictRows(rows, time_log, gpu_power);
    else
        _rf->predictRows(rows, time_log, gpu_power);
    // The broker may have flushed us against a generation published
    // after our acquire above; the memo must only ever hold one
    // generation's values, so rebind before merging.
    if (served != e.generation)
        rekeyEntry(e, served);

    for (std::size_t j = 0; j < m; ++j) {
        const std::size_t i = miss[j];
        ml::Prediction p;
        // Same post-processing as RandomForestPredictor::predictBatch:
        // the time forest is trained on log(seconds per instruction).
        p.time = std::exp(time_log[j]) * e.proxy;
        p.gpuPower = gpu_power[j];
        out[i] = p;
        const auto di = hw::denseConfigIndex(cs[i]);
        e.memo[di] = p;
        e.known[di] = 1;
    }
}

} // namespace gpupm::serve
