/**
 * @file
 * Per-session predictor decorator: kernel-level prediction cache plus
 * broker routing.
 *
 * Each fleet session owns one SessionPredictor wrapping the shared
 * Random Forest. It adds the two things a multi-tenant server needs
 * that the raw predictor cannot provide:
 *
 *  - a *per-session, multi-kernel* prediction cache. The predictor's
 *    own memo (see RandomForestPredictor::predictBatch) is a one-entry
 *    thread_local keyed on the last kernel seen by the thread; a server
 *    worker interleaves decisions from many sessions and many kernels,
 *    so that entry thrashes and every decision re-walks the forests.
 *    Here each session keeps an LRU-capped entry per dissimilar kernel
 *    (keyed on exact counter bits) holding the derived kernel features
 *    and a dense per-config memo, so a kernel's steady-state relaunches
 *    cost table lookups regardless of what other sessions run on the
 *    same worker. The cap is the SessionManager's lever on per-session
 *    memory (a capped session evicts its least-recently-used kernel);
 *
 *  - routing of memo misses through the InferenceBroker, where rows
 *    from all in-flight decisions coalesce into shared tree-major
 *    FlatForest walks.
 *
 * Memoized values are exactly what the forests produced, and broker
 * batching never changes a row's result, so every prediction is
 * bit-identical to calling the wrapped predictor directly.
 *
 * Hot-swap: under online learning the forests behind the broker change
 * generation at flush boundaries. Each kernel entry's memo is keyed by
 * the generation whose forests produced it and is invalidated - known
 * bits cleared, derived kernel features kept (they do not depend on the
 * forests) - the first time the entry is touched at a different
 * generation, so memoized values always match what the current
 * generation would compute. A swap landing *inside* one decision can
 * transiently mix memo hits from the outgoing generation with fresh
 * walks from the incoming one within that decision's out[] span; batch
 * purity (all rows of one broker flush walked by one generation) still
 * holds, which is the invariant the hot-swap fuzz test pins.
 *
 * Not thread-safe by design: a session is processed by one worker at a
 * time (the server checks sessions out exclusively), so the cache needs
 * no locking.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/model.hpp"
#include "ml/trainer.hpp"
#include "serve/broker.hpp"
#include "telemetry/telemetry.hpp"

namespace gpupm::serve {

struct SessionPredictorOptions
{
    /**
     * LRU cap on cached kernel entries; 0 disables the cache (and
     * broker routing), turning the decorator into a passthrough - the
     * single-tenant baseline the fleet benchmark compares against.
     */
    std::size_t kernelCacheCap = 32;
};

class SessionPredictor : public ml::PerfPowerPredictor
{
  public:
    /**
     * @param base Shared predictor. Caching and brokering engage only
     *        when it is a RandomForestPredictor; other predictors
     *        (oracle families consult ground truth, so counters are
     *        not a safe cache key) pass through untouched.
     * @param broker Shared broker; null evaluates misses directly.
     * @param model Hardware model whose config descriptors feed the
     *        feature rows (the session's model, so heterogeneous
     *        fleets score candidates in their own model's scaling).
     * @param handle Hot-swap publication point; null = static forests.
     *        When set, base must be the (baseline) Random Forest, and
     *        broker-less misses walk the handle's current generation.
     * @param telemetry Registry receiving cache metrics; may be null.
     */
    SessionPredictor(
        std::shared_ptr<const ml::PerfPowerPredictor> base,
        InferenceBroker *broker, hw::HardwareModelPtr model,
        const SessionPredictorOptions &opts = {},
        telemetry::Registry *telemetry = nullptr,
        const online::ForestHandle *handle = nullptr);

    ml::Prediction predict(const ml::PredictionQuery &q,
                           const hw::HwConfig &c) const override;

    void predictBatch(const ml::PredictionQuery &q,
                      std::span<const hw::HwConfig> cs,
                      std::span<ml::Prediction> out) const override;

    std::string name() const override { return _base->name(); }

    /** Whether the cache/broker path is engaged (base is an RF). */
    bool accelerated() const { return _rf != nullptr && _cap > 0; }

    std::size_t cachedKernels() const { return _entries.size(); }
    std::size_t cacheEvictions() const { return _evictions; }

    /** Drop every cached kernel entry (session reset). */
    void clearCache();

  private:
    struct KernelEntry
    {
        kernel::KernelCounters key{};
        ml::KernelFeatures kf{};
        double proxy = 1.0;
        std::vector<ml::Prediction> memo; ///< By denseConfigIndex.
        std::vector<std::uint8_t> known;
        std::uint64_t lastUse = 0;
        /** Forest generation the memo belongs to (0 = static). */
        std::uint64_t generation = 0;
    };

    KernelEntry &entryFor(const kernel::KernelCounters &counters) const;

    /** Clear @p e's memo and rebind it to generation @p gen. */
    static void rekeyEntry(KernelEntry &e, std::uint64_t gen);

    std::shared_ptr<const ml::PerfPowerPredictor> _base;
    const ml::RandomForestPredictor *_rf; ///< base, when it is an RF.
    InferenceBroker *_broker;
    hw::HardwareModelPtr _model;
    const online::ForestHandle *_handle;
    std::size_t _cap;

    // Session-local mutable state (single-worker access; see above).
    mutable std::vector<KernelEntry> _entries;
    mutable std::uint64_t _clock = 0;
    mutable std::size_t _evictions = 0;

    // Shared telemetry cells (atomic; may be null).
    telemetry::Counter *_hitQueries = nullptr;
    telemetry::Counter *_missQueries = nullptr;
    telemetry::Counter *_kernelEvictions = nullptr;
};

} // namespace gpupm::serve
