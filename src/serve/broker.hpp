/**
 * @file
 * Continuous-batching inference broker (the fleet server's shared RF
 * hot path).
 *
 * One governor decision emits a *sequence* of small predictor
 * evaluations (a sensitivity batch, then single climbing steps); a
 * fleet of sessions deciding concurrently emits many such sequences.
 * FlatForest::predictBatch is fastest when walked tree-major over a
 * wide batch, so the broker coalesces the evaluations of all in-flight
 * decisions into shared predictRows calls:
 *
 *  - a client (a worker thread executing one session's decision) wraps
 *    the decision in a DecisionScope and submits evaluations with
 *    evaluate(), which blocks until results arrive;
 *  - submissions accumulate; a flush runs when (a) the pending query
 *    count reaches maxBatch, (b) *every* in-flight decision is blocked
 *    waiting - nobody is left to contribute, so waiting longer is pure
 *    latency - or (c) a request has waited flushDeadline (safety net
 *    against scope-accounting races; it cannot deadlock);
 *  - the flushing thread is the client whose submission (or wakeup)
 *    completed the condition: there is no dedicated broker thread, so
 *    a serial fleet (--jobs 1) degenerates to direct evaluation with
 *    zero waiting.
 *
 * Determinism: FlatForest evaluates rows independently, so a query's
 * result is bit-identical however flushes happen to group it - batching
 * affects latency and throughput, never values. This is what makes the
 * deterministic fleet mode byte-reproducible at any worker count.
 *
 * Hot-swap: the broker reads its forests through an online::ForestHandle
 * (a static fleet wraps its fixed predictor in an owned handle, so the
 * two modes share one code path). Each flush acquires exactly one
 * generation snapshot after claiming its batch and evaluates every row
 * of the batch against it - a concurrent publish never mixes
 * generations inside a batch and never blocks a flush (publication is
 * one atomic store; the flush holds no lock during the forest walk).
 * evaluate() reports the ordinal that served the rows so per-kernel
 * memos upstream can key on it.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "ml/features.hpp"
#include "ml/trainer.hpp"
#include "online/forest_handle.hpp"
#include "telemetry/telemetry.hpp"

namespace gpupm::serve {

struct BrokerOptions
{
    /** Flush as soon as this many queries are pending. */
    std::size_t maxBatch = 512;
    /** Safety-net flush for requests that waited this long. */
    std::chrono::microseconds flushDeadline{200};
};

class InferenceBroker
{
  public:
    /**
     * Static backend: wraps @p rf in an owned single-generation handle.
     *
     * @param rf Shared Random Forest predictor (the batched backend).
     * @param opts Flush policy.
     * @param telemetry Registry receiving broker metrics; may be null.
     */
    InferenceBroker(
        std::shared_ptr<const ml::RandomForestPredictor> rf,
        const BrokerOptions &opts = {},
        telemetry::Registry *telemetry = nullptr);

    /**
     * Hot-swappable backend: flushes follow @p handle's published
     * generations. The handle must outlive the broker.
     */
    InferenceBroker(const online::ForestHandle &handle,
                    const BrokerOptions &opts = {},
                    telemetry::Registry *telemetry = nullptr);

    /** Snapshot of the generation the next flush would use. */
    std::shared_ptr<const online::ForestGeneration>
    generation() const
    {
        return _handle->acquire();
    }

    /**
     * Mark the calling thread as executing a governor decision that may
     * submit evaluations. The all-waiting flush trigger counts these
     * scopes; forgetting one only delays flushes to the deadline.
     */
    void beginDecision();
    void endDecision();

    /** RAII wrapper for beginDecision/endDecision. */
    class DecisionScope
    {
      public:
        explicit DecisionScope(InferenceBroker &b) : _b(b)
        {
            _b.beginDecision();
        }
        ~DecisionScope() { _b.endDecision(); }
        DecisionScope(const DecisionScope &) = delete;
        DecisionScope &operator=(const DecisionScope &) = delete;

      private:
        InferenceBroker &_b;
    };

    /**
     * Evaluate feature rows through the shared forests; blocks until a
     * flush delivers the results. time_log[i] is the time forest's
     * log-space output for rows[i], gpu_power[i] the power forest's
     * Watts (see RandomForestPredictor::predictRows). Bit-identical to
     * a direct predictRows call on the same rows against the serving
     * generation, whose ordinal is returned (always 0 for a static
     * backend): all rows of one evaluate() call - and in fact the whole
     * flush batch containing them - were walked by that one generation.
     */
    std::uint64_t evaluate(std::span<const ml::FeatureVector> rows,
                           std::span<double> time_log,
                           std::span<double> gpu_power);

    /**
     * Work-stealing flush: an *idle* thread (a sharded worker that
     * found its own queues empty) offers to run another shard's
     * broker flush. Flushes when the normal condition already holds
     * or when the oldest pending request has aged past half the
     * flush deadline - a loaded shard's clients are all busy inside
     * their decisions, so the thief completing the batch early cuts
     * the waiters' latency without changing any value (batching is
     * value-invariant; see the determinism note above). Returns
     * whether a batch was flushed.
     */
    bool stealFlush();

    /** Completed flushes (diagnostics; also mirrored to telemetry). */
    std::size_t flushCount() const;
    /** Total queries evaluated. */
    std::size_t queryCount() const;

  private:
    struct Pending
    {
        std::span<const ml::FeatureVector> rows;
        std::span<double> timeLog;
        std::span<double> gpuPower;
        /** Ordinal of the generation whose flush served this request
         *  (stamped before done). */
        std::uint64_t generation = 0;
        bool done = false;
        /** Submission time; stealFlush's ripeness signal. */
        std::chrono::steady_clock::time_point submitted{};
    };

    /** True when a flush must run now (lock held). */
    bool shouldFlushLocked() const;

    /**
     * Swap out the pending set, release the lock for the forest walk,
     * deliver results and wake waiters. Lock held on entry and exit.
     */
    void flushLocked(std::unique_lock<std::mutex> &lock,
                     telemetry::Counter *reason);

    /** Owned handle for the static-backend constructor; null when the
     *  caller provided an external (hot-swappable) handle. */
    std::unique_ptr<online::ForestHandle> _owned;
    const online::ForestHandle *_handle;
    BrokerOptions _opts;

    mutable std::mutex _mutex;
    std::condition_variable _cv;
    std::vector<Pending *> _pending;
    std::size_t _pendingQueries = 0;
    /** Clients inside a DecisionScope. */
    std::size_t _active = 0;
    std::size_t _flushes = 0;
    std::size_t _queries = 0;

    // Telemetry cells (resolved once; null when no registry given).
    telemetry::Histogram *_batchHist = nullptr;
    /** Requests coalesced per flush - the cross-session batching signal
     *  (queries per flush is large even without coalescing). */
    telemetry::Histogram *_reqHist = nullptr;
    telemetry::Counter *_flushFull = nullptr;
    telemetry::Counter *_flushAllWaiting = nullptr;
    telemetry::Counter *_flushDeadline = nullptr;
    telemetry::Counter *_flushStolen = nullptr;
};

} // namespace gpupm::serve
