/**
 * @file
 * Bounded multi-producer request queue with backpressure.
 *
 * The fleet server's admission point: client threads (and workers
 * re-enqueueing a session's next step) push decision requests, worker
 * threads pop them. The queue is bounded; when it is full a producer
 * either gets an immediate rejection (tryPush - the server counts it
 * and the client is expected to back off) or blocks until space frees
 * up (push - used where rejection would deadlock a pipeline, e.g. a
 * worker scheduling the follow-up request of the step it just
 * finished).
 *
 * close() wakes everyone: pending pops drain the remaining items and
 * then return nullopt; pushes after close are rejected. FIFO order is
 * preserved per producer and total across producers (single mutex), so
 * a serial producer observes strict submission order - this is what
 * makes the deterministic fleet mode's "fixed arrival order" exact.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.hpp"

namespace gpupm::serve {

template <typename T>
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity) : _capacity(capacity)
    {
        GPUPM_ASSERT(capacity > 0, "queue capacity must be positive");
    }

    std::size_t capacity() const { return _capacity; }

    std::size_t
    depth() const
    {
        std::lock_guard lock(_mutex);
        return _items.size();
    }

    bool
    closed() const
    {
        std::lock_guard lock(_mutex);
        return _closed;
    }

    /**
     * Non-blocking admission: false when the queue is full or closed
     * (the caller counts the rejection; nothing is enqueued).
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard lock(_mutex);
            if (_closed || _items.size() >= _capacity)
                return false;
            _items.push_back(std::move(item));
        }
        _consumerCv.notify_one();
        return true;
    }

    /**
     * Blocking admission: waits for space. False only when the queue
     * was closed before space became available.
     */
    bool
    push(T item)
    {
        {
            std::unique_lock lock(_mutex);
            _producerCv.wait(lock, [this] {
                return _closed || _items.size() < _capacity;
            });
            if (_closed)
                return false;
            _items.push_back(std::move(item));
        }
        _consumerCv.notify_one();
        return true;
    }

    /**
     * Blocking removal: waits for an item. nullopt once the queue is
     * closed *and* drained - items enqueued before close() are always
     * delivered.
     */
    std::optional<T>
    pop()
    {
        std::optional<T> out;
        {
            std::unique_lock lock(_mutex);
            _consumerCv.wait(lock, [this] {
                return _closed || !_items.empty();
            });
            if (_items.empty())
                return std::nullopt;
            out = std::move(_items.front());
            _items.pop_front();
        }
        _producerCv.notify_one();
        return out;
    }

    /**
     * Bounded-wait removal: like pop() but gives up after @p wait.
     * nullopt on timeout or on closed-and-drained; the sharded worker
     * loop uses this so an idle worker periodically re-scans sibling
     * shards for stealable work instead of parking on one queue.
     */
    template <typename Rep, typename Period>
    std::optional<T>
    popFor(std::chrono::duration<Rep, Period> wait)
    {
        std::optional<T> out;
        {
            std::unique_lock lock(_mutex);
            _consumerCv.wait_for(lock, wait, [this] {
                return _closed || !_items.empty();
            });
            if (_items.empty())
                return std::nullopt;
            out = std::move(_items.front());
            _items.pop_front();
        }
        _producerCv.notify_one();
        return out;
    }

    /** Non-blocking removal; nullopt when nothing is queued. */
    std::optional<T>
    tryPop()
    {
        std::optional<T> out;
        {
            std::lock_guard lock(_mutex);
            if (_items.empty())
                return std::nullopt;
            out = std::move(_items.front());
            _items.pop_front();
        }
        _producerCv.notify_one();
        return out;
    }

    /** Reject future pushes, wake all waiters; idempotent. */
    void
    close()
    {
        {
            std::lock_guard lock(_mutex);
            _closed = true;
        }
        _consumerCv.notify_all();
        _producerCv.notify_all();
    }

  private:
    const std::size_t _capacity;
    mutable std::mutex _mutex;
    std::condition_variable _consumerCv;
    std::condition_variable _producerCv;
    std::deque<T> _items;
    bool _closed = false;
};

} // namespace gpupm::serve
