#include "serve/session_manager.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gpupm::serve {

SessionManager::SessionManager(
    std::shared_ptr<const ml::PerfPowerPredictor> base,
    InferenceBroker *broker, const SessionManagerOptions &opts,
    hw::HardwareModelPtr model, telemetry::Registry *telemetry,
    const online::ForestHandle *handle,
    powercap::FleetCapArbiter *arbiter)
    : _base(std::move(base)), _broker(broker), _opts(opts),
      _model(std::move(model)), _telemetry(telemetry),
      _forestHandle(handle), _arbiter(arbiter)
{
    GPUPM_ASSERT(_base != nullptr, "session manager needs a predictor");
    GPUPM_ASSERT(_model != nullptr,
                 "session manager needs a default hardware model");
    if (_telemetry)
        _evictionCounter = &_telemetry->counter("serve.session_evictions");
}

void
SessionManager::evictLruLocked()
{
    auto victim = _slots.end();
    for (auto it = _slots.begin(); it != _slots.end(); ++it) {
        if (it->second.pinned)
            continue;
        if (victim == _slots.end() ||
            it->second.lastUse < victim->second.lastUse)
            victim = it;
    }
    GPUPM_ASSERT(victim != _slots.end(),
                 "session cap reached with every session checked out; "
                 "raise maxSessions above the worker count");
    _slots.erase(victim);
    _lruEvictions += 1;
    if (_evictionCounter)
        _evictionCounter->add();
}

SessionId
SessionManager::create(const workload::Application &app,
                       const SessionOptions &opts)
{
    const SessionId id = [this] {
        std::lock_guard lock(_mutex);
        return _nextId++;
    }();
    return createWithId(id, app, opts);
}

SessionId
SessionManager::createWithId(SessionId id,
                             const workload::Application &app,
                             const SessionOptions &opts)
{
    GPUPM_ASSERT(id != 0, "session ids start at 1");
    // Building a session runs the Turbo baseline; keep that out of the
    // lock so creates do not serialize against checkouts.
    auto session = std::make_unique<Session>(
        id, app, _base, _broker, opts,
        opts.model ? opts.model : _model, _telemetry, _forestHandle,
        _arbiter);

    std::lock_guard lock(_mutex);
    GPUPM_ASSERT(_slots.find(id) == _slots.end(),
                 "session id ", id, " is already resident");
    _nextId = std::max(_nextId, id + 1);
    if (_opts.maxSessions > 0 && _slots.size() >= _opts.maxSessions)
        evictLruLocked();
    Slot slot;
    slot.session = std::move(session);
    slot.lastUse = ++_clock;
    _slots.emplace(id, std::move(slot));
    return id;
}

Session *
SessionManager::checkout(SessionId id)
{
    std::lock_guard lock(_mutex);
    auto it = _slots.find(id);
    if (it == _slots.end() || it->second.pinned)
        return nullptr;
    it->second.pinned = true;
    it->second.lastUse = ++_clock;
    return it->second.session.get();
}

void
SessionManager::checkin(SessionId id)
{
    std::lock_guard lock(_mutex);
    auto it = _slots.find(id);
    GPUPM_ASSERT(it != _slots.end() && it->second.pinned,
                 "checkin of a session that is not checked out");
    it->second.pinned = false;
}

bool
SessionManager::reset(SessionId id)
{
    std::lock_guard lock(_mutex);
    auto it = _slots.find(id);
    if (it == _slots.end() || it->second.pinned)
        return false;
    it->second.session->reset();
    it->second.lastUse = ++_clock;
    return true;
}

bool
SessionManager::evict(SessionId id)
{
    std::lock_guard lock(_mutex);
    auto it = _slots.find(id);
    if (it == _slots.end() || it->second.pinned)
        return false;
    _slots.erase(it);
    return true;
}

std::size_t
SessionManager::size() const
{
    std::lock_guard lock(_mutex);
    return _slots.size();
}

std::size_t
SessionManager::lruEvictions() const
{
    std::lock_guard lock(_mutex);
    return _lruEvictions;
}

std::vector<SessionId>
SessionManager::ids() const
{
    std::lock_guard lock(_mutex);
    std::vector<SessionId> out;
    out.reserve(_slots.size());
    for (const auto &[id, slot] : _slots)
        out.push_back(id);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace gpupm::serve
