/**
 * @file
 * Session lifecycle: create / checkout / reset / evict with an LRU cap.
 *
 * The manager bounds fleet memory: each session carries dense per-kernel
 * prediction memos (kernelCacheCap * denseConfigCount predictions), so
 * an unbounded tenant count would grow without limit. When a create
 * would exceed maxSessions the least-recently-used *idle* session is
 * evicted (checked-out sessions are pinned; evicting a session mid-step
 * would pull state out from under a worker).
 *
 * checkout()/checkin() give workers exclusive access: a session is
 * processed by one worker at a time, which is what lets Session and
 * SessionPredictor stay lock-free internally. The manager itself is
 * thread-safe.
 */

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/session.hpp"

namespace gpupm::serve {

struct SessionManagerOptions
{
    /** LRU cap on resident sessions; 0 means unbounded. */
    std::size_t maxSessions = 256;
};

class SessionManager
{
  public:
    /**
     * @param base Shared predictor handed to every session.
     * @param broker Shared broker handed to every session; may be null.
     * @param model Default hardware model for sessions that do not
     *        carry their own override (SessionOptions::model).
     * @param telemetry Registry for manager/session metrics; may be
     *        null.
     * @param handle Hot-swap publication point handed to every
     *        session; null = static forests.
     * @param arbiter Fleet cap arbiter handed to every session; null =
     *        no fleet budget.
     */
    SessionManager(std::shared_ptr<const ml::PerfPowerPredictor> base,
                   InferenceBroker *broker,
                   const SessionManagerOptions &opts,
                   hw::HardwareModelPtr model,
                   telemetry::Registry *telemetry = nullptr,
                   const online::ForestHandle *handle = nullptr,
                   powercap::FleetCapArbiter *arbiter = nullptr);

    /**
     * Create a session for @p app; evicts the LRU idle session when at
     * the cap (fatal when the cap is exceeded with every session
     * pinned - the server sizes the cap above its worker count).
     */
    SessionId create(const workload::Application &app,
                     const SessionOptions &opts = {});

    /**
     * Create a session under a caller-assigned id. The sharded server
     * allocates ids from one global counter - identities then do not
     * depend on how tenants hash across shards - and hands each id to
     * its home shard's manager through here. Also advances the local
     * id allocator past @p id so create() and createWithId() can mix.
     * Fatal when the id is 0 or already resident. Same LRU/eviction
     * semantics as create().
     */
    SessionId createWithId(SessionId id,
                           const workload::Application &app,
                           const SessionOptions &opts = {});

    /**
     * Claim exclusive access; null when the id is unknown (e.g. the
     * session was evicted) or already checked out. Touches LRU order.
     */
    Session *checkout(SessionId id);
    void checkin(SessionId id);

    /** Reset a session's learned state; false when unknown or busy. */
    bool reset(SessionId id);

    /** Remove a session; false when unknown or busy (checked out). */
    bool evict(SessionId id);

    std::size_t size() const;
    /** Sessions evicted by the LRU cap (not explicit evict calls). */
    std::size_t lruEvictions() const;

    /** Ids of resident sessions, in creation order. */
    std::vector<SessionId> ids() const;

  private:
    struct Slot
    {
        std::unique_ptr<Session> session;
        std::uint64_t lastUse = 0;
        bool pinned = false;
    };

    void evictLruLocked();

    std::shared_ptr<const ml::PerfPowerPredictor> _base;
    InferenceBroker *_broker;
    SessionManagerOptions _opts;
    hw::HardwareModelPtr _model;
    telemetry::Registry *_telemetry;
    const online::ForestHandle *_forestHandle;
    powercap::FleetCapArbiter *_arbiter;

    mutable std::mutex _mutex;
    std::unordered_map<SessionId, Slot> _slots;
    SessionId _nextId = 1;
    std::uint64_t _clock = 0;
    std::size_t _lruEvictions = 0;
    telemetry::Counter *_evictionCounter = nullptr;
};

} // namespace gpupm::serve
