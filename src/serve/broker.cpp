#include "serve/broker.hpp"

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace gpupm::serve {

InferenceBroker::InferenceBroker(
    std::shared_ptr<const ml::RandomForestPredictor> rf,
    const BrokerOptions &opts, telemetry::Registry *telemetry)
    : _owned(std::make_unique<online::ForestHandle>(std::move(rf))),
      _handle(_owned.get()), _opts(opts)
{
    GPUPM_ASSERT(_handle->acquire()->predictor != nullptr,
                 "broker needs a predictor");
    GPUPM_ASSERT(_opts.maxBatch > 0, "maxBatch must be positive");
    if (telemetry) {
        _batchHist = &telemetry->histogram("broker.batch_queries");
        _reqHist = &telemetry->histogram("broker.batch_requests");
        _flushFull = &telemetry->counter("broker.flush_full");
        _flushAllWaiting =
            &telemetry->counter("broker.flush_all_waiting");
        _flushDeadline = &telemetry->counter("broker.flush_deadline");
        _flushStolen = &telemetry->counter("broker.flush_stolen");
    }
}

InferenceBroker::InferenceBroker(const online::ForestHandle &handle,
                                 const BrokerOptions &opts,
                                 telemetry::Registry *telemetry)
    : _handle(&handle), _opts(opts)
{
    GPUPM_ASSERT(_handle->acquire()->predictor != nullptr,
                 "broker needs a predictor");
    GPUPM_ASSERT(_opts.maxBatch > 0, "maxBatch must be positive");
    if (telemetry) {
        _batchHist = &telemetry->histogram("broker.batch_queries");
        _reqHist = &telemetry->histogram("broker.batch_requests");
        _flushFull = &telemetry->counter("broker.flush_full");
        _flushAllWaiting =
            &telemetry->counter("broker.flush_all_waiting");
        _flushDeadline = &telemetry->counter("broker.flush_deadline");
        _flushStolen = &telemetry->counter("broker.flush_stolen");
    }
}

void
InferenceBroker::beginDecision()
{
    std::lock_guard lock(_mutex);
    ++_active;
}

void
InferenceBroker::endDecision()
{
    bool wake = false;
    {
        std::lock_guard lock(_mutex);
        GPUPM_ASSERT(_active > 0, "endDecision without beginDecision");
        --_active;
        // Departing may leave every remaining in-flight decision
        // blocked; wake a waiter to re-check the flush condition.
        wake = !_pending.empty() && _pending.size() >= _active;
    }
    if (wake)
        _cv.notify_all();
}

bool
InferenceBroker::shouldFlushLocked() const
{
    if (_pending.empty())
        return false;
    if (_pendingQueries >= _opts.maxBatch)
        return true;
    // Every client that could still contribute a query is already
    // blocked on a pending request (each blocked client has exactly
    // one): waiting longer cannot grow the batch.
    return _pending.size() >= _active;
}

void
InferenceBroker::flushLocked(std::unique_lock<std::mutex> &lock,
                             telemetry::Counter *reason)
{
    // Claim the current pending set; later submissions form the next
    // batch and are invisible to this flush.
    std::vector<Pending *> batch;
    batch.swap(_pending);
    const std::size_t queries = _pendingQueries;
    _pendingQueries = 0;
    if (batch.empty())
        return;
    _flushes += 1;
    _queries += queries;
    lock.unlock();

    trace::Span span(trace::Category::Serve, "serve.brokerFlush",
                     "queries", static_cast<double>(queries));
    span.arg("requests", static_cast<double>(batch.size()));

    if (_batchHist)
        _batchHist->record(queries);
    if (_reqHist)
        _reqHist->record(batch.size());
    if (reason)
        reason->add();

    // One generation snapshot per flush, acquired after the batch is
    // claimed: every row of this batch is walked by these forests, so
    // a publish racing the flush either serves the whole batch (landed
    // before the acquire) or the next one - never a mix. The acquire is
    // a lock-free atomic load; a swap can never block a flush.
    const auto gen = _handle->acquire();

    // Gather rows contiguously, walk both forests tree-major once,
    // scatter results back. thread_local scratch: concurrent flushes
    // (one batch mid-walk while the next accumulates and flushes) each
    // use their own buffers.
    thread_local std::vector<ml::FeatureVector> rows;
    thread_local std::vector<double> time_log, gpu_power;
    rows.clear();
    rows.reserve(queries);
    for (const Pending *p : batch)
        rows.insert(rows.end(), p->rows.begin(), p->rows.end());
    time_log.resize(queries);
    gpu_power.resize(queries);
    gen->predictor->predictRows(rows, time_log, gpu_power);

    std::size_t at = 0;
    for (Pending *p : batch) {
        const std::size_t n = p->rows.size();
        std::copy_n(time_log.begin() + at, n, p->timeLog.begin());
        std::copy_n(gpu_power.begin() + at, n, p->gpuPower.begin());
        at += n;
    }

    lock.lock();
    for (Pending *p : batch) {
        p->generation = gen->ordinal;
        p->done = true;
    }
    _cv.notify_all();
}

std::uint64_t
InferenceBroker::evaluate(std::span<const ml::FeatureVector> rows,
                          std::span<double> time_log,
                          std::span<double> gpu_power)
{
    GPUPM_ASSERT(time_log.size() == rows.size() &&
                     gpu_power.size() == rows.size(),
                 "evaluate output size mismatch");
    if (rows.empty())
        return _handle->ordinal();

    std::unique_lock lock(_mutex);
    Pending req{rows, time_log, gpu_power, 0, false,
                std::chrono::steady_clock::now()};
    _pending.push_back(&req);
    _pendingQueries += rows.size();

    while (!req.done) {
        if (shouldFlushLocked()) {
            const bool full = _pendingQueries >= _opts.maxBatch;
            flushLocked(lock, full ? _flushFull : _flushAllWaiting);
            continue; // re-check: our request may be in a later batch
        }
        const auto status = _cv.wait_for(lock, _opts.flushDeadline);
        if (status == std::cv_status::timeout && !req.done &&
            !_pending.empty()) {
            // Safety net: nobody flushed within the deadline (e.g. a
            // client outside any DecisionScope inflated _active).
            flushLocked(lock, _flushDeadline);
        }
    }
    return req.generation;
}

bool
InferenceBroker::stealFlush()
{
    std::unique_lock lock(_mutex);
    if (_pending.empty())
        return false;
    if (!shouldFlushLocked()) {
        // Only steal ripening batches: a young batch is still being
        // grown by its own clients and flushing it early would shrink
        // the coalescing win for no latency gain.
        const auto age = std::chrono::steady_clock::now() -
                         _pending.front()->submitted;
        if (age < _opts.flushDeadline / 2)
            return false;
    }
    flushLocked(lock, _flushStolen);
    return true;
}

std::size_t
InferenceBroker::flushCount() const
{
    std::lock_guard lock(_mutex);
    return _flushes;
}

std::size_t
InferenceBroker::queryCount() const
{
    std::lock_guard lock(_mutex);
    return _queries;
}

} // namespace gpupm::serve
