#include "serve/wire.hpp"

#include <bit>
#include <cstring>

namespace gpupm::serve::wire {
namespace {

/*
 * Little-endian primitive writers/readers. Shifted-byte form, not
 * memcpy of the host representation, so big-endian hosts produce the
 * same stream.
 */

void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    putU64(out, std::bit_cast<std::uint64_t>(v));
}

/** Bounds-checked forward cursor; any overrun poisons ok(). */
class Cursor
{
  public:
    explicit Cursor(std::span<const std::uint8_t> p) : _p(p) {}

    bool ok() const { return _ok; }
    bool done() const { return _ok && _at == _p.size(); }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return _p[_at++];
    }

    std::uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(_p[_at++]) << (8 * i);
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(_p[_at++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(_p[_at++]) << (8 * i);
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str(std::size_t n)
    {
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(_p.data() + _at),
                      n);
        _at += n;
        return s;
    }

  private:
    bool
    need(std::size_t n)
    {
        if (!_ok || _p.size() - _at < n) {
            _ok = false;
            return false;
        }
        return true;
    }

    std::span<const std::uint8_t> _p;
    std::size_t _at = 0;
    bool _ok = true;
};

/** Reserve the length slot, write type + body, then patch the length. */
class FrameWriter
{
  public:
    FrameWriter(std::vector<std::uint8_t> &out, MsgType type)
        : _out(out), _lenAt(out.size())
    {
        putU32(_out, 0);
        putU8(_out, static_cast<std::uint8_t>(type));
    }

    ~FrameWriter()
    {
        const auto len =
            static_cast<std::uint32_t>(_out.size() - _lenAt - 4);
        for (int i = 0; i < 4; ++i)
            _out[_lenAt + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(len >> (8 * i));
    }

    std::vector<std::uint8_t> &body() { return _out; }

  private:
    std::vector<std::uint8_t> &_out;
    std::size_t _lenAt;
};

} // namespace

void
encodeOpen(std::vector<std::uint8_t> &out, const OpenMsg &m)
{
    FrameWriter f(out, MsgType::Open);
    putU64(f.body(), m.tenant);
    putU32(f.body(), m.optimizedRuns);
    putU32(f.body(), m.kernelCacheCap);
    putU16(f.body(), static_cast<std::uint16_t>(m.bench.size()));
    for (char c : m.bench)
        putU8(f.body(), static_cast<std::uint8_t>(c));
    if (m.version < 2)
        return; // legacy frame: nothing after the bench name
    putU8(f.body(), m.version);
    putU16(f.body(), static_cast<std::uint16_t>(m.hwModel.size()));
    for (char c : m.hwModel)
        putU8(f.body(), static_cast<std::uint8_t>(c));
    putU8(f.body(), static_cast<std::uint8_t>(m.qosKind));
    putF64(f.body(), m.qosValue);
}

std::optional<OpenMsg>
decodeOpen(std::span<const std::uint8_t> p)
{
    Cursor c(p);
    OpenMsg m;
    m.tenant = c.u64();
    m.optimizedRuns = c.u32();
    m.kernelCacheCap = c.u32();
    const std::uint16_t len = c.u16();
    m.bench = c.str(len);
    if (!c.ok())
        return std::nullopt;
    if (c.done()) {
        // Version-1 frame: catalog-default hardware, default QoS.
        m.version = 1;
        return m;
    }
    // v2 tail: version byte, model name, QoS kind + value. Anything
    // truncated, over-long or out of range is malformed - a half-sent
    // tail must not silently fall back to defaults.
    m.version = c.u8();
    if (m.version != kWireVersion)
        return std::nullopt;
    const std::uint16_t model_len = c.u16();
    m.hwModel = c.str(model_len);
    const std::uint8_t kind = c.u8();
    m.qosValue = c.f64();
    if (!c.done() ||
        kind > static_cast<std::uint8_t>(WireQosKind::Deadline))
        return std::nullopt;
    m.qosKind = static_cast<WireQosKind>(kind);
    return m;
}

void
encodeOpened(std::vector<std::uint8_t> &out, const OpenedMsg &m)
{
    FrameWriter f(out, MsgType::Opened);
    putU64(f.body(), m.tenant);
    putU64(f.body(), m.session);
    putU32(f.body(), m.totalDecisions);
}

std::optional<OpenedMsg>
decodeOpened(std::span<const std::uint8_t> p)
{
    Cursor c(p);
    OpenedMsg m;
    m.tenant = c.u64();
    m.session = c.u64();
    m.totalDecisions = c.u32();
    if (!c.done())
        return std::nullopt;
    return m;
}

void
encodeStep(std::vector<std::uint8_t> &out, const StepMsg &m)
{
    FrameWriter f(out, MsgType::Step);
    putU64(f.body(), m.session);
}

std::optional<StepMsg>
decodeStep(std::span<const std::uint8_t> p)
{
    Cursor c(p);
    StepMsg m;
    m.session = c.u64();
    if (!c.done())
        return std::nullopt;
    return m;
}

void
encodeDecision(std::vector<std::uint8_t> &out, const DecisionMsg &m)
{
    FrameWriter f(out, MsgType::Decision);
    putU64(f.body(), m.session);
    putU32(f.body(), m.run);
    putU32(f.body(), m.index);
    putU32(f.body(), m.configIndex);
    putU8(f.body(), m.kernelTag);
    putU8(f.body(), m.degraded);
    putF64(f.body(), m.kernelTime);
    putF64(f.body(), m.overheadTime);
    putF64(f.body(), m.cpuEnergy);
    putF64(f.body(), m.gpuEnergy);
    putU32(f.body(), m.evaluations);
}

std::optional<DecisionMsg>
decodeDecision(std::span<const std::uint8_t> p)
{
    Cursor c(p);
    DecisionMsg m;
    m.session = c.u64();
    m.run = c.u32();
    m.index = c.u32();
    m.configIndex = c.u32();
    m.kernelTag = c.u8();
    m.degraded = c.u8();
    m.kernelTime = c.f64();
    m.overheadTime = c.f64();
    m.cpuEnergy = c.f64();
    m.gpuEnergy = c.f64();
    m.evaluations = c.u32();
    if (!c.done())
        return std::nullopt;
    return m;
}

void
encodeReject(std::vector<std::uint8_t> &out, const RejectMsg &m)
{
    FrameWriter f(out, MsgType::Reject);
    putU64(f.body(), m.session);
    putU8(f.body(), static_cast<std::uint8_t>(m.reason));
}

std::optional<RejectMsg>
decodeReject(std::span<const std::uint8_t> p)
{
    Cursor c(p);
    RejectMsg m;
    m.session = c.u64();
    const std::uint8_t reason = c.u8();
    if (!c.done() || reason > static_cast<std::uint8_t>(
                                  RejectReason::BadQos))
        return std::nullopt;
    m.reason = static_cast<RejectReason>(reason);
    return m;
}

void
encodeStatsReq(std::vector<std::uint8_t> &out)
{
    FrameWriter f(out, MsgType::StatsReq);
}

void
encodeStats(std::vector<std::uint8_t> &out, const StatsMsg &m)
{
    FrameWriter f(out, MsgType::Stats);
    putU32(f.body(), static_cast<std::uint32_t>(m.entries.size()));
    for (const auto &[key, value] : m.entries) {
        putU16(f.body(), static_cast<std::uint16_t>(key.size()));
        for (char c : key)
            putU8(f.body(), static_cast<std::uint8_t>(c));
        putU64(f.body(), value);
    }
    putF64(f.body(), m.fleetBudgetWatts);
    putU64(f.body(), m.capViolations);
    putU64(f.body(), m.arbiterTicks);
    putU64(f.body(), m.deadlineMisses);
}

std::optional<StatsMsg>
decodeStats(std::span<const std::uint8_t> p)
{
    Cursor c(p);
    StatsMsg m;
    const std::uint32_t n = c.u32();
    // Each entry costs at least 10 bytes; an absurd count fails fast
    // instead of reserving unbounded memory.
    if (static_cast<std::size_t>(n) * 10 > p.size())
        return std::nullopt;
    m.entries.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint16_t len = c.u16();
        std::string key = c.str(len);
        const std::uint64_t value = c.u64();
        if (!c.ok())
            return std::nullopt;
        m.entries.emplace_back(std::move(key), value);
    }
    m.fleetBudgetWatts = c.f64();
    m.capViolations = c.u64();
    m.arbiterTicks = c.u64();
    m.deadlineMisses = c.u64();
    if (!c.done())
        return std::nullopt;
    return m;
}

void
encodeError(std::vector<std::uint8_t> &out, const ErrorMsg &m)
{
    FrameWriter f(out, MsgType::Error);
    putU16(f.body(), static_cast<std::uint16_t>(m.message.size()));
    for (char c : m.message)
        putU8(f.body(), static_cast<std::uint8_t>(c));
}

std::optional<ErrorMsg>
decodeError(std::span<const std::uint8_t> p)
{
    Cursor c(p);
    ErrorMsg m;
    const std::uint16_t len = c.u16();
    m.message = c.str(len);
    if (!c.done())
        return std::nullopt;
    return m;
}

void
FrameReader::append(const std::uint8_t *data, std::size_t n)
{
    if (_corrupt)
        return;
    // Compact once consumed bytes dominate the buffer; keeps append
    // amortized O(n) without re-copying on every frame.
    if (_pos > 4096 && _pos * 2 > _buf.size()) {
        _buf.erase(_buf.begin(),
                   _buf.begin() + static_cast<std::ptrdiff_t>(_pos));
        _pos = 0;
    }
    _buf.insert(_buf.end(), data, data + n);
}

std::optional<Frame>
FrameReader::next()
{
    if (_corrupt)
        return std::nullopt;
    const std::size_t avail = _buf.size() - _pos;
    if (avail < 5)
        return std::nullopt;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(
                   _buf[_pos + static_cast<std::size_t>(i)])
               << (8 * i);
    if (len < 1 || len > _maxFrame) {
        _corrupt = true;
        return std::nullopt;
    }
    if (avail - 4 < len)
        return std::nullopt;
    Frame f;
    f.type = static_cast<MsgType>(_buf[_pos + 4]);
    f.payload.assign(
        _buf.begin() + static_cast<std::ptrdiff_t>(_pos + 5),
        _buf.begin() + static_cast<std::ptrdiff_t>(_pos + 4 + len));
    _pos += 4 + len;
    if (_pos == _buf.size()) {
        _buf.clear();
        _pos = 0;
    }
    return f;
}

} // namespace gpupm::serve::wire
