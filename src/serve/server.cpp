#include "serve/server.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/logging.hpp"
#include "exec/sweep.hpp"
#include "ml/simd.hpp"
#include "trace/trace.hpp"
#include "workload/benchmarks.hpp"
#include "workload/training.hpp"

namespace gpupm::serve {

FleetServer::FleetServer(
    std::shared_ptr<const ml::PerfPowerPredictor> predictor,
    const FleetServerOptions &opts)
    : _opts(opts), _telemetry(std::make_unique<telemetry::Registry>())
{
    GPUPM_ASSERT(predictor != nullptr, "fleet server needs a predictor");
    GPUPM_ASSERT(_opts.shards > 0, "fleet server needs at least one shard");

    auto rf = std::dynamic_pointer_cast<const ml::RandomForestPredictor>(
        predictor);
    GPUPM_ASSERT(!_opts.forestHandle || rf,
                 "online learning requires a Random Forest predictor");

    if (!_opts.model)
        _opts.model = hw::paperApu();

    _decisions = &_telemetry->counter("serve.decisions");
    _rejected = &_telemetry->counter("serve.rejected_requests");
    _lost = &_telemetry->counter("serve.lost_sessions");
    _steals = &_telemetry->counter("serve.queue_steals");
    _shedDegraded =
        &_telemetry->counter("serve.shed_degraded_decisions");
    _depthHist = &_telemetry->histogram("serve.queue_depth");
    _latencyHist = &_telemetry->histogram("serve.decision_latency_ns");

    if (_opts.powercap.enabled()) {
        _arbiter = std::make_unique<powercap::FleetCapArbiter>(
            _opts.powercap, _telemetry.get());
    }

    const std::size_t jobs = exec::ThreadPool::resolveJobs(_opts.jobs);
    // A lone worker can never have two decisions in flight, so the
    // broker could only ever flush batches of one: every memo miss
    // would pay the coalescing round trip with nothing to coalesce
    // (~7% of fleet throughput on the dev host). Route misses straight
    // at the predictor instead - the trace is invariant either way
    // (pinned by BatchingOnAndOffProduceTheSameTrace). Online learning
    // keeps the broker regardless: it is also the generation-following
    // evaluation point for hot-swapped forests.
    const bool batch = _opts.batching && (jobs > 1 || _opts.forestHandle);

    _shards.resize(_opts.shards);
    for (Shard &shard : _shards) {
        if (batch && _opts.forestHandle) {
            shard.broker = std::make_unique<InferenceBroker>(
                *_opts.forestHandle, _opts.broker, _telemetry.get());
        } else if (batch && rf) {
            shard.broker = std::make_unique<InferenceBroker>(
                rf, _opts.broker, _telemetry.get());
        }
        shard.sessions = std::make_unique<SessionManager>(
            predictor, shard.broker.get(), _opts.sessions, _opts.model,
            _telemetry.get(), _opts.forestHandle, _arbiter.get());
        shard.queue = std::make_unique<RequestQueue<DecisionRequest>>(
            _opts.queueCapacity);
        shard.shed = std::make_unique<ShedController>(
            _opts.shed, _telemetry.get());
        if (_arbiter) {
            // Per-shard cap accounting: which shard's tenants are
            // hitting their caps is what a rack operator asks first.
            const std::size_t idx =
                static_cast<std::size_t>(&shard - _shards.data());
            char name[64];
            std::snprintf(name, sizeof(name),
                          "powercap.shard%zu.violations", idx);
            shard.capViolations = &_telemetry->counter(name);
            std::snprintf(name, sizeof(name),
                          "powercap.shard%zu.capped_decisions", idx);
            shard.cappedDecisions = &_telemetry->counter(name);
        }
    }

    _pool = std::make_unique<exec::ThreadPool>(jobs);
    for (std::size_t j = 0; j < jobs; ++j) {
        if (_shards.size() == 1) {
            // Single shard: the classic blocking drain loop - no
            // steal scans, no timed waits, identical behavior to the
            // pre-sharding server.
            _pool->post([this] {
                while (auto req = _shards[0].queue->pop())
                    process(*req);
            });
        } else {
            _pool->post([this, j] { workerLoop(j); });
        }
    }
}

FleetServer::~FleetServer() { stop(); }

void
FleetServer::stop()
{
    if (_stopped)
        return;
    _stopped = true;
    // Closing the queues lets workers drain what was admitted and then
    // exit their loops; the pool destructor joins them.
    for (Shard &shard : _shards)
        shard.queue->close();
    _pool.reset();
}

SessionManager &
FleetServer::sessions()
{
    GPUPM_ASSERT(_shards.size() == 1,
                 "sessions() is single-shard only; use shardSessions()");
    return *_shards[0].sessions;
}

SessionId
FleetServer::createSession(const workload::Application &app,
                           const SessionOptions &opts)
{
    // Global allocation first, then placement: identity depends only
    // on creation order, never on the shard count.
    const SessionId id = _nextId.fetch_add(1, std::memory_order_relaxed);
    return _shards[shardOf(id)].sessions->createWithId(id, app, opts);
}

bool
FleetServer::trySubmit(DecisionRequest req)
{
    req.submitted = std::chrono::steady_clock::now();
    Shard &shard = _shards[shardOf(req.session)];
    const std::size_t depth = shard.queue->depth();
    _depthHist->record(depth);
    shard.shed->sample(depth);
    if (shard.queue->tryPush(std::move(req)))
        return true;
    _rejected->add();
    return false;
}

bool
FleetServer::submit(DecisionRequest req)
{
    req.submitted = std::chrono::steady_clock::now();
    Shard &shard = _shards[shardOf(req.session)];
    const std::size_t depth = shard.queue->depth();
    _depthHist->record(depth);
    shard.shed->sample(depth);
    if (shard.queue->push(std::move(req)))
        return true;
    _rejected->add(); // closed while (or before) waiting for space
    return false;
}

std::size_t
FleetServer::queueDepth() const
{
    std::size_t depth = 0;
    for (const Shard &shard : _shards)
        depth += shard.queue->depth();
    return depth;
}

std::size_t
FleetServer::rejectedRequests() const
{
    return static_cast<std::size_t>(_rejected->value());
}

void
FleetServer::workerLoop(std::size_t worker)
{
    const std::size_t nshards = _shards.size();
    const std::size_t home = worker % nshards;
    while (true) {
        if (auto req = _shards[home].queue->tryPop()) {
            process(*req);
            continue;
        }
        // Steal queued work from sibling shards before idling: the
        // tenant hash balances only in expectation, and a hot shard's
        // backlog is as good as home work (sessions carry their shard
        // with them - process() routes by id, so a stolen request
        // checks out of its own shard's manager).
        bool worked = false;
        for (std::size_t k = 1; k < nshards && !worked; ++k) {
            if (auto req = _shards[(home + k) % nshards].queue->tryPop()) {
                _steals->add();
                process(*req);
                worked = true;
            }
        }
        if (worked)
            continue;
        // No queued requests anywhere: offer to run a loaded shard's
        // ripening broker flush so its blocked deciders wake sooner.
        for (std::size_t k = 0; k < nshards && !worked; ++k) {
            Shard &shard = _shards[(home + k) % nshards];
            if (shard.broker && shard.broker->stealFlush())
                worked = true;
        }
        if (worked)
            continue;
        if (auto req = _shards[home].queue->popFor(
                std::chrono::microseconds(500))) {
            process(*req);
            continue;
        }
        // Exit only when every queue is closed and drained; a timed-out
        // wait with open queues just re-runs the steal scan.
        bool done = true;
        for (const Shard &shard : _shards) {
            if (!shard.queue->closed() || shard.queue->depth() != 0) {
                done = false;
                break;
            }
        }
        if (done)
            return;
    }
}

void
FleetServer::process(const DecisionRequest &req)
{
    if (trace::Tracer::enabled()) [[unlikely]] {
        // Backdated span covering the request's time in the queue, so
        // the timeline shows admission-to-dispatch waits per session.
        const auto wait =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - req.submitted)
                .count();
        const std::uint64_t wait_ns =
            wait > 0 ? static_cast<std::uint64_t>(wait) : 0;
        const std::uint64_t now = trace::Tracer::nowNs();
        trace::Tracer::emit(trace::Category::Serve, "serve.queueWait",
                            now > wait_ns ? now - wait_ns : 0, wait_ns,
                            "session",
                            static_cast<double>(req.session));
    }
    Shard &shard = _shards[shardOf(req.session)];
    Session *s = shard.sessions->checkout(req.session);
    if (!s) {
        // Unknown (evicted) or concurrently busy; the admission
        // contract is at most one in-flight request per session.
        _lost->add();
        if (req.onDone)
            req.onDone(req.session, nullptr);
        return;
    }
    if (s->finished()) {
        // A network client can legally race its last Decision reply
        // with another Step; answer null instead of dying.
        shard.sessions->checkin(req.session);
        _lost->add();
        if (req.onDone)
            req.onDone(req.session, nullptr);
        return;
    }
    const bool degraded = shard.shed->degraded();
    const DecisionRecord rec = s->step(degraded);
    shard.sessions->checkin(req.session);
    if (degraded)
        _shedDegraded->add();
    if (_arbiter) {
        // The session already fed its measured power into its own
        // violation window inside step(); here the shard rolls up its
        // tenants' cap pressure and the fleet-wide decision stream
        // drives the arbiter's re-split tick.
        if (rec.cap >= 0.0) {
            shard.cappedDecisions->add();
            if (rec.measuredPower > rec.cap)
                shard.capViolations->add();
        }
        _arbiter->onDecision();
    }

    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - req.submitted)
                        .count();
    _latencyHist->record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    _decisions->add();
    if (req.onDone)
        req.onDone(req.session, &rec);
}

FleetResult
runFleet(std::shared_ptr<const ml::PerfPowerPredictor> predictor,
         const FleetOptions &opts)
{
    GPUPM_ASSERT(opts.sessionCount > 0, "fleet needs at least one session");

    // Size the server so the driver's invariants hold: one in-flight
    // request per session always fits its shard's queue (workers
    // re-enqueue through blocking submit; a shard queue that could
    // fill with every worker stuck submitting to it would deadlock),
    // and the LRU cap never evicts a live session mid-run.
    FleetServerOptions sopts = opts.server;
    sopts.queueCapacity =
        std::max(sopts.queueCapacity, opts.sessionCount);
    if (sopts.sessions.maxSessions > 0) {
        sopts.sessions.maxSessions =
            std::max(sopts.sessions.maxSessions, opts.sessionCount);
    }
    // The handle is declared before the server because the server (and
    // every session memo inside it) reads generations from it for its
    // whole lifetime.
    std::optional<online::ForestHandle> handle;
    if (opts.onlineLearn) {
        auto rf =
            std::dynamic_pointer_cast<const ml::RandomForestPredictor>(
                predictor);
        GPUPM_ASSERT(rf != nullptr,
                     "--online-learn requires a Random Forest predictor");
        handle.emplace(std::move(rf));
        sopts.forestHandle = &*handle;
    }
    FleetServer server(std::move(predictor), sopts);
    // Sessions read the sink from the registry at creation; install it
    // first so every governor reports from its very first decision.
    // The learner wraps the caller's sink: records still reach it
    // unchanged (observer-until-trigger determinism contract).
    std::optional<online::OnlineLearner> learner;
    if (opts.onlineLearn) {
        learner.emplace(*handle, opts.online, opts.decisionSink,
                        &server.telemetry());
        server.telemetry().setDecisionSink(&*learner);
    } else if (opts.decisionSink) {
        server.telemetry().setDecisionSink(opts.decisionSink);
    }

    std::vector<workload::Application> apps;
    if (opts.syntheticKernels > 0) {
        // Massive-fleet mode: sessions share a pool of synthetic apps
        // so a 100k-session fleet does not pay 100k distinct traces.
        // Pool membership depends only on the seed.
        const std::size_t pool =
            std::min<std::size_t>(opts.sessionCount, 64);
        const std::size_t kernels =
            std::max<std::size_t>(opts.syntheticKernels, 2);
        apps.reserve(pool);
        for (std::size_t i = 0; i < pool; ++i)
            apps.push_back(workload::randomApplication(
                exec::mix64(opts.seed ^ (0xf1ee7ULL + i)), kernels));
    } else if (opts.apps.empty()) {
        apps = workload::allBenchmarks();
    } else {
        apps.reserve(opts.apps.size());
        for (const auto &name : opts.apps)
            apps.push_back(workload::makeBenchmark(name));
    }

    struct Slot
    {
        std::vector<DecisionRecord> records;
        std::size_t expected = 0;
    };
    std::vector<Slot> slots(opts.sessionCount);
    std::unordered_map<SessionId, std::size_t> slotOf;
    std::vector<SessionId> ids;
    ids.reserve(opts.sessionCount);
    slotOf.reserve(opts.sessionCount);
    std::map<std::string, std::size_t> out_sessions_per_model;

    for (std::size_t i = 0; i < opts.sessionCount; ++i) {
        workload::Application app = apps[i % apps.size()];
        if (opts.cpuPhaseJitter > 0.0) {
            // Per-session stream: the fraction depends only on
            // (seed, session index), never on scheduling.
            Pcg32 rng(exec::mix64(opts.seed ^ (i + 1)),
                      exec::mix64(i ^ 0x5e55ULL) | 1);
            app = workload::withCpuPhases(
                std::move(app), rng.uniform(0.0, opts.cpuPhaseJitter));
        }
        SessionOptions session_opts = opts.session;
        if (!opts.capWeights.empty()) {
            session_opts.capWeight =
                opts.capWeights[i % opts.capWeights.size()];
        }
        if (!opts.hwModels.empty()) {
            session_opts.model = hw::HardwareCatalog::instance().get(
                opts.hwModels[i % opts.hwModels.size()]);
        }
        if (!opts.deadlines.empty()) {
            const double slack =
                opts.deadlines[i % opts.deadlines.size()];
            // 0 keeps this session on the uniform alpha objective so a
            // cycled list can mix QoS kinds; negative is fatal inside
            // QosSpec::deadline.
            if (slack != 0.0)
                session_opts.mpc.qos = mpc::QosSpec::deadline(slack);
        }
        const auto &model_for_count =
            session_opts.model ? session_opts.model : sopts.model;
        out_sessions_per_model[model_for_count
                                   ? model_for_count->name()
                                   : std::string(hw::paperApuName)] += 1;
        const SessionId id = server.createSession(app, session_opts);
        ids.push_back(id);
        slotOf.emplace(id, i);
        slots[i].expected =
            (1 + opts.session.optimizedRuns) * app.trace.size();
        slots[i].records.reserve(slots[i].expected);
    }
    // One policy-aware split over the complete fleet before any
    // decision: later ticks idempotently reproduce it (registration
    // assigns only provisional equal shares), so capped traces are
    // byte-identical at any (shards, jobs).
    if (auto *arbiter = server.capArbiter())
        arbiter->rebalance();

    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = opts.sessionCount;

    // A worker finishing a step re-enqueues that session's next one, so
    // exactly one request per unfinished session is in flight; the
    // per-session record order is therefore the session's own step
    // order at any worker count.
    std::function<void(SessionId, const DecisionRecord *)> on_done =
        [&](SessionId id, const DecisionRecord *rec) {
            GPUPM_ASSERT(rec != nullptr, "fleet session vanished");
            Slot &slot = slots[slotOf.at(id)];
            slot.records.push_back(*rec);
            if (slot.records.size() < slot.expected) {
                server.submit({id, on_done, {}});
            } else {
                {
                    std::lock_guard lock(done_mutex);
                    --remaining;
                }
                done_cv.notify_one();
            }
        };

    const auto simd0 = ml::simdRowStats();
    const auto t0 = std::chrono::steady_clock::now();
    for (const SessionId id : ids)
        server.submit({id, on_done, {}});
    {
        std::unique_lock lock(done_mutex);
        done_cv.wait(lock, [&] { return remaining == 0; });
    }
    const auto t1 = std::chrono::steady_clock::now();

    FleetResult out;
    out.sessions = opts.sessionCount;
    out.sessionsPerModel = std::move(out_sessions_per_model);
    if (learner) {
        // Let an in-flight refit land before the final snapshot so the
        // reported stats and generation reflect every trigger.
        learner->drain();
        out.online = learner->stats();
        out.forestGeneration = handle->ordinal();
    }
    // Fold this run's forest-row deltas into the registry so the
    // metrics snapshot says which inference engine actually served the
    // fleet (the process-wide stats also cover other predictors; the
    // delta across the run is what this fleet evaluated).
    const auto simd1 = ml::simdRowStats();
    auto &telem = server.telemetry();
    telem.counter("ml.rows_scalar").add(simd1.scalar - simd0.scalar);
    telem.counter("ml.rows_fallback")
        .add(simd1.fallback - simd0.fallback);
    telem.counter("ml.rows_avx2").add(simd1.avx2 - simd0.avx2);
    out.metrics = server.metrics();
    if (const auto *arbiter = server.capArbiter()) {
        out.capViolations = arbiter->violations();
        out.arbiterTicks = arbiter->ticks();
    }
    server.stop();
    for (Slot &slot : slots) {
        out.decisions += slot.records.size();
        for (const DecisionRecord &rec : slot.records) {
            out.degradedDecisions += rec.degraded ? 1 : 0;
            out.capLimitedDecisions += rec.capLimited ? 1 : 0;
            out.deadlineMisses += rec.deadlineMissed ? 1 : 0;
        }
        out.trace.insert(out.trace.end(), slot.records.begin(),
                         slot.records.end());
    }
    out.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    out.decisionsPerSecond =
        out.wallSeconds > 0.0
            ? static_cast<double>(out.decisions) / out.wallSeconds
            : 0.0;
    return out;
}

std::string
serializeFleetTrace(const std::vector<DecisionRecord> &trace)
{
    std::string out;
    out.reserve(trace.size() * 160);
    char buf[512];
    for (const auto &r : trace) {
        // Cap fields only on capped records, mirroring "dg": uncapped
        // traces stay byte-identical to the pre-powercap format. The
        // same conditional scheme covers "hw" (non-default hardware
        // model) and "dm" (deadline miss on a run's last record).
        char cap[64];
        cap[0] = '\0';
        if (r.cap >= 0.0) {
            std::snprintf(cap, sizeof(cap), ",\"cap\":%.17g%s", r.cap,
                          r.capLimited ? ",\"cl\":1" : "");
        }
        char hw[96];
        hw[0] = '\0';
        if (!r.hwModel.empty()) {
            std::snprintf(hw, sizeof(hw), ",\"hw\":\"%s\"",
                          r.hwModel.c_str());
        }
        std::snprintf(
            buf, sizeof(buf),
            "{\"s\":%llu,\"r\":%zu,\"i\":%zu,\"t\":\"%c\",\"c\":%zu,"
            "\"kt\":%.17g,\"oh\":%.17g,\"ce\":%.17g,\"ge\":%.17g,"
            "\"ev\":%zu%s%s%s%s}\n",
            static_cast<unsigned long long>(r.session), r.run, r.index,
            r.tag, r.configIndex, r.kernelTime, r.overheadTime,
            r.cpuEnergy, r.gpuEnergy, r.evaluations,
            r.degraded ? ",\"dg\":1" : "", cap, hw,
            r.deadlineMissed ? ",\"dm\":1" : "");
        out += buf;
    }
    return out;
}

} // namespace gpupm::serve
