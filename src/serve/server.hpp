/**
 * @file
 * The fleet decision server and the deterministic fleet driver.
 *
 * FleetServer glues the serve subsystem together: a SessionManager of
 * governed sessions, a bounded RequestQueue of decision requests with
 * backpressure (trySubmit rejects when full; submit blocks), a reused
 * exec::ThreadPool whose workers drain the queue, and - when the shared
 * predictor is a Random Forest - an InferenceBroker coalescing the
 * in-flight decisions' evaluations into shared batched forest walks.
 * Server metrics (queue depth, decision latency, batch-size histograms,
 * rejected requests) accumulate in an owned telemetry::Registry.
 *
 * runFleet() is the deterministic driver used by the CLI, the golden
 * trace test and the benchmark: it creates N sessions (round-robin over
 * the requested applications, each optionally perturbed by its own
 * per-session RNG stream), keeps exactly one request per unfinished
 * session in flight (a worker finishing a step re-enqueues that
 * session's next one), and gathers the trace in (session, run, index)
 * order. Because sessions are isolated, predictions are pure per row,
 * and the gather order is fixed, the trace is byte-identical at any
 * --jobs count.
 */

#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "online/learner.hpp"
#include "serve/broker.hpp"
#include "serve/request_queue.hpp"
#include "serve/session_manager.hpp"
#include "trace/decision.hpp"

namespace gpupm::serve {

struct FleetServerOptions
{
    /** Worker threads draining the queue; 0 = hardware concurrency. */
    std::size_t jobs = 1;
    /** Request-queue bound (admission backpressure). */
    std::size_t queueCapacity = 1024;
    SessionManagerOptions sessions;
    BrokerOptions broker;
    /** Route RF evaluations through the shared broker. */
    bool batching = true;
    hw::ApuParams params = hw::ApuParams::defaults();
    /**
     * Hot-swap publication point for online learning; null = static
     * forests. When set, the predictor handed to the server must be
     * the handle's generation-0 (baseline) Random Forest, the broker
     * follows published generations, and session memos are
     * generation-keyed. Must outlive the server.
     */
    const online::ForestHandle *forestHandle = nullptr;
};

/** One decision request: step session once, then call back. */
struct DecisionRequest
{
    SessionId session = 0;
    /**
     * Invoked on the worker after the step; the record pointer is null
     * when the session no longer exists (evicted or unknown).
     */
    std::function<void(SessionId, const DecisionRecord *)> onDone;
    /** Stamped by submit/trySubmit for latency accounting. */
    std::chrono::steady_clock::time_point submitted{};
};

class FleetServer
{
  public:
    FleetServer(std::shared_ptr<const ml::PerfPowerPredictor> predictor,
                const FleetServerOptions &opts = {});
    ~FleetServer();

    FleetServer(const FleetServer &) = delete;
    FleetServer &operator=(const FleetServer &) = delete;

    SessionId createSession(const workload::Application &app,
                            const SessionOptions &opts = {});

    SessionManager &sessions() { return *_sessions; }

    /**
     * Non-blocking admission; false (and a rejected-request count) when
     * the queue is full or the server is stopped.
     */
    bool trySubmit(DecisionRequest req);

    /** Blocking admission; false only when the server is stopped. */
    bool submit(DecisionRequest req);

    /** Close admission, drain queued requests, join workers. */
    void stop();

    std::size_t queueDepth() const { return _queue.depth(); }
    std::size_t rejectedRequests() const;

    telemetry::Registry &telemetry() { return *_telemetry; }
    telemetry::Snapshot metrics() const
    {
        return _telemetry->snapshot();
    }

    /** Null when batching is off or the predictor is not an RF. */
    InferenceBroker *broker() { return _broker.get(); }

  private:
    void process(const DecisionRequest &req);

    FleetServerOptions _opts;
    std::unique_ptr<telemetry::Registry> _telemetry;
    std::unique_ptr<InferenceBroker> _broker;
    std::unique_ptr<SessionManager> _sessions;
    RequestQueue<DecisionRequest> _queue;
    std::unique_ptr<exec::ThreadPool> _pool;
    bool _stopped = false;

    telemetry::Counter *_decisions = nullptr;
    telemetry::Counter *_rejected = nullptr;
    telemetry::Counter *_lost = nullptr;
    telemetry::Histogram *_depthHist = nullptr;
    telemetry::Histogram *_latencyHist = nullptr;
};

/** Fleet workload description for runFleet. */
struct FleetOptions
{
    FleetServerOptions server;
    SessionOptions session;
    /** Benchmark names, assigned round-robin; empty = full suite. */
    std::vector<std::string> apps;
    std::size_t sessionCount = 8;
    /**
     * Upper bound on per-session CPU-phase fractions; each session
     * draws its fraction from its own (seed, session-index) RNG stream,
     * so fleets are heterogeneous yet reproducible. 0 = back-to-back
     * kernels everywhere (the paper's worst case).
     */
    double cpuPhaseJitter = 0.0;
    std::uint64_t seed = 0x5eedULL;
    /**
     * Decision-provenance sink, installed on the server's telemetry
     * registry before any session is created; every session governor
     * then reports its records here. Null = no provenance capture.
     * Must outlive the runFleet call. With onlineLearn, the learner is
     * interposed: this sink still sees every record, unchanged.
     */
    trace::DecisionSink *decisionSink = nullptr;
    /**
     * Closed-loop online learning: wrap the fleet's Random Forest in a
     * ForestHandle and interpose an OnlineLearner in the provenance
     * path. Observe-only until drift sustains (see online::DriftOptions
     * in `online`), so a drift-free fleet is byte-identical to a static
     * one - the golden-trace test pins this. Requires an RF predictor.
     */
    bool onlineLearn = false;
    online::OnlineOptions online;
};

struct FleetResult
{
    /** All decisions, ordered by (session, run, index). */
    std::vector<DecisionRecord> trace;
    telemetry::Snapshot metrics;
    std::size_t sessions = 0;
    std::size_t decisions = 0;
    double wallSeconds = 0.0;
    double decisionsPerSecond = 0.0;
    /** Online-learning outcome (zeros when onlineLearn was off). */
    online::OnlineStats online{};
    /** Forest generation serving when the fleet finished. */
    std::uint64_t forestGeneration = 0;
};

/** Run a fleet to completion; see the file comment for determinism. */
FleetResult
runFleet(std::shared_ptr<const ml::PerfPowerPredictor> predictor,
         const FleetOptions &opts);

/**
 * Serialize a fleet trace as JSON lines with %.17g floats: equal traces
 * produce byte-identical text (the golden-trace contract).
 */
std::string serializeFleetTrace(const std::vector<DecisionRecord> &trace);

} // namespace gpupm::serve
