/**
 * @file
 * The sharded fleet decision server and the deterministic fleet
 * driver.
 *
 * FleetServer glues the serve subsystem together as N independent
 * *shards*, keyed by tenant hash: each shard owns its own
 * SessionManager (so checkout-lease acquisition never crosses
 * shards - the former global manager lock was the fleet's
 * serialization point), its own InferenceBroker (per-shard batched
 * forest walks), its own bounded RequestQueue and its own
 * ShedController. One exec::ThreadPool drains all shards: a worker's
 * *home* shard is worker % shards, and an idle worker first steals
 * queued requests from sibling shards, then offers to run a loaded
 * shard's broker flush (InferenceBroker::stealFlush), so load
 * imbalance across the tenant hash costs throughput nowhere.
 *
 * Identity is global: session ids come from one server-wide counter,
 * so a tenant's id - and therefore its per-session RNG stream and
 * its whole decision trace - does not depend on the shard count.
 * Routing is pure (mix64(id) % shards), never a map lookup.
 *
 * Overload control: each shard samples its queue depth at admission
 * into a windowed-error shed controller (serve/shed.hpp). While a
 * shard is degraded, its workers skip the MPC governor and step
 * sessions at the paper's fail-safe configuration, so the queue
 * drains at near-zero decision cost instead of growing unboundedly;
 * shed transitions and degraded decisions are counted in telemetry
 * and marked in DecisionRecord provenance.
 *
 * Server metrics (queue depth, decision latency, batch-size
 * histograms, rejected requests, steals, shed counters) accumulate in
 * an owned telemetry::Registry.
 *
 * runFleet() is the deterministic driver used by the CLI, the golden
 * trace test and the benchmark: it creates N sessions (round-robin
 * over the requested applications, each optionally perturbed by its
 * own per-session RNG stream), keeps exactly one request per
 * unfinished session in flight (a worker finishing a step re-enqueues
 * that session's next one), and gathers the trace in (session, run,
 * index) order. Because sessions are isolated, predictions are pure
 * per row, and the gather order is fixed, the trace is byte-identical
 * at any --jobs *and any --shards* count (with shedding off; a
 * degraded step depends on real queue depths, i.e. on time).
 */

#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "online/learner.hpp"
#include "powercap/arbiter.hpp"
#include "serve/broker.hpp"
#include "serve/request_queue.hpp"
#include "serve/session_manager.hpp"
#include "serve/shed.hpp"
#include "trace/decision.hpp"

namespace gpupm::serve {

struct FleetServerOptions
{
    /** Worker threads draining the shards; 0 = hardware concurrency. */
    std::size_t jobs = 1;
    /** SessionManager/broker/queue/shed shards (tenant-hash keyed). */
    std::size_t shards = 1;
    /** Per-shard request-queue bound (admission backpressure). */
    std::size_t queueCapacity = 1024;
    /** Per-shard session cap (total capacity = shards * maxSessions). */
    SessionManagerOptions sessions;
    BrokerOptions broker;
    /** Per-shard overload policy; disabled by default. */
    ShedOptions shed;
    /** Route RF evaluations through the shared broker. */
    bool batching = true;
    /**
     * Default hardware model for sessions without their own override
     * (SessionOptions::model / the Open frame's model name); null
     * resolves to the catalog's "paper-apu".
     */
    hw::HardwareModelPtr model;
    /**
     * Hot-swap publication point for online learning; null = static
     * forests. When set, the predictor handed to the server must be
     * the handle's generation-0 (baseline) Random Forest, the broker
     * follows published generations, and session memos are
     * generation-keyed. Must outlive the server.
     */
    const online::ForestHandle *forestHandle = nullptr;
    /**
     * Fleet power-cap arbitration; disabled unless
     * powercap.budgetWatts > 0. Sessions register their baseline
     * demand at creation, enforce their working cap on every decision
     * and feed measured power back into the arbiter's violation
     * windows. Deterministic by default; see powercap/arbiter.hpp.
     */
    powercap::ArbiterOptions powercap;
};

/** One decision request: step session once, then call back. */
struct DecisionRequest
{
    SessionId session = 0;
    /**
     * Invoked on the worker after the step; the record pointer is null
     * when the session no longer exists (evicted or unknown) or has
     * already finished.
     */
    std::function<void(SessionId, const DecisionRecord *)> onDone;
    /** Stamped by submit/trySubmit for latency accounting. */
    std::chrono::steady_clock::time_point submitted{};
};

class FleetServer
{
  public:
    FleetServer(std::shared_ptr<const ml::PerfPowerPredictor> predictor,
                const FleetServerOptions &opts = {});
    ~FleetServer();

    FleetServer(const FleetServer &) = delete;
    FleetServer &operator=(const FleetServer &) = delete;

    /**
     * Allocate a global session id and create the session on its home
     * shard. Creation order fixes identity: the k-th createSession
     * call returns the same id at any shard count.
     */
    SessionId createSession(const workload::Application &app,
                            const SessionOptions &opts = {});

    std::size_t shardCount() const { return _shards.size(); }

    /** The home shard of @p id (pure tenant-hash routing). */
    std::size_t shardOf(SessionId id) const
    {
        return _shards.size() == 1
                   ? 0
                   : exec::mix64(id) % _shards.size();
    }

    /** Single-shard convenience accessor; fatal when shards > 1. */
    SessionManager &sessions();

    /** Shard @p shard's session manager. */
    SessionManager &shardSessions(std::size_t shard)
    {
        return *_shards.at(shard).sessions;
    }

    /** Shard @p shard's shed controller. */
    const ShedController &shedController(std::size_t shard) const
    {
        return *_shards.at(shard).shed;
    }

    /**
     * Non-blocking admission; false (and a rejected-request count) when
     * the home shard's queue is full or the server is stopped.
     */
    bool trySubmit(DecisionRequest req);

    /** Blocking admission; false only when the server is stopped. */
    bool submit(DecisionRequest req);

    /** Close admission, drain queued requests, join workers. */
    void stop();

    /** Total queued requests across all shards. */
    std::size_t queueDepth() const;
    std::size_t rejectedRequests() const;

    telemetry::Registry &telemetry() { return *_telemetry; }
    telemetry::Snapshot metrics() const
    {
        return _telemetry->snapshot();
    }

    /**
     * Shard 0's broker (single-shard diagnostics); null when batching
     * is off or the predictor is not an RF.
     */
    InferenceBroker *broker() { return _shards[0].broker.get(); }

    /** Fleet cap arbiter; null when no budget is configured. */
    powercap::FleetCapArbiter *capArbiter() { return _arbiter.get(); }
    const powercap::FleetCapArbiter *capArbiter() const
    {
        return _arbiter.get();
    }

  private:
    struct Shard
    {
        std::unique_ptr<InferenceBroker> broker;
        std::unique_ptr<SessionManager> sessions;
        std::unique_ptr<RequestQueue<DecisionRequest>> queue;
        std::unique_ptr<ShedController> shed;
        /** Cap violations measured on this shard's sessions. */
        telemetry::Counter *capViolations = nullptr;
        /** Decisions this shard served with a finite cap enforced. */
        telemetry::Counter *cappedDecisions = nullptr;
    };

    void process(const DecisionRequest &req);
    /** Work-stealing drain loop of one worker (shards > 1). */
    void workerLoop(std::size_t worker);

    FleetServerOptions _opts;
    std::unique_ptr<telemetry::Registry> _telemetry;
    /** Declared before the shards: sessions unregister on eviction. */
    std::unique_ptr<powercap::FleetCapArbiter> _arbiter;
    std::vector<Shard> _shards;
    std::unique_ptr<exec::ThreadPool> _pool;
    std::atomic<SessionId> _nextId{1};
    bool _stopped = false;

    telemetry::Counter *_decisions = nullptr;
    telemetry::Counter *_rejected = nullptr;
    telemetry::Counter *_lost = nullptr;
    telemetry::Counter *_steals = nullptr;
    telemetry::Counter *_shedDegraded = nullptr;
    telemetry::Histogram *_depthHist = nullptr;
    telemetry::Histogram *_latencyHist = nullptr;
};

/** Fleet workload description for runFleet. */
struct FleetOptions
{
    FleetServerOptions server;
    SessionOptions session;
    /** Benchmark names, assigned round-robin; empty = full suite. */
    std::vector<std::string> apps;
    std::size_t sessionCount = 8;
    /**
     * When > 0, ignore `apps` and draw sessions round-robin from a
     * pool of synthetic random applications with up to this many
     * kernel launches each (workload::randomApplication; minimum 2).
     * This is what lets the 100k-session benchmark hold a massive
     * fleet without massive per-session baseline cost.
     */
    std::size_t syntheticKernels = 0;
    /**
     * Upper bound on per-session CPU-phase fractions; each session
     * draws its fraction from its own (seed, session-index) RNG stream,
     * so fleets are heterogeneous yet reproducible. 0 = back-to-back
     * kernels everywhere (the paper's worst case).
     */
    double cpuPhaseJitter = 0.0;
    std::uint64_t seed = 0x5eedULL;
    /**
     * Decision-provenance sink, installed on the server's telemetry
     * registry before any session is created; every session governor
     * then reports its records here. Null = no provenance capture.
     * Must outlive the runFleet call. With onlineLearn, the learner is
     * interposed: this sink still sees every record, unchanged.
     */
    trace::DecisionSink *decisionSink = nullptr;
    /**
     * Closed-loop online learning: wrap the fleet's Random Forest in a
     * ForestHandle and interpose an OnlineLearner in the provenance
     * path. Observe-only until drift sustains (see online::DriftOptions
     * in `online`), so a drift-free fleet is byte-identical to a static
     * one - the golden-trace test pins this. Requires an RF predictor.
     */
    bool onlineLearn = false;
    online::OnlineOptions online;
    /**
     * Priority weights for SplitPolicy::PriorityWeighted, cycled over
     * sessions in creation order; empty = weight 1.0 everywhere.
     * Ignored unless server.powercap is enabled.
     */
    std::vector<double> capWeights;
    /**
     * Hardware-model catalog names, cycled over sessions in creation
     * order (a heterogeneous fleet); empty = the server default for
     * every session. Unknown names are fatal with the candidate list.
     */
    std::vector<std::string> hwModels;
    /**
     * Per-session deadline slack factors, cycled over sessions in
     * creation order: a value > 0 gives that session a Deadline QoS
     * (run deadline = Turbo baseline * factor), 0 keeps the uniform
     * alpha objective, negative values are fatal. Empty = uniform
     * everywhere.
     */
    std::vector<double> deadlines;
};

struct FleetResult
{
    /** All decisions, ordered by (session, run, index). */
    std::vector<DecisionRecord> trace;
    telemetry::Snapshot metrics;
    std::size_t sessions = 0;
    std::size_t decisions = 0;
    /** Decisions served on the shed fast path (fail-safe config). */
    std::size_t degradedDecisions = 0;
    /** Decisions where the cap altered the choice (fail-safe swap). */
    std::size_t capLimitedDecisions = 0;
    /** Measured-power-over-cap decisions (arbiter violation count). */
    std::uint64_t capViolations = 0;
    /** Arbiter re-split ticks over the run. */
    std::uint64_t arbiterTicks = 0;
    double wallSeconds = 0.0;
    double decisionsPerSecond = 0.0;
    /** Online-learning outcome (zeros when onlineLearn was off). */
    online::OnlineStats online{};
    /** Forest generation serving when the fleet finished. */
    std::uint64_t forestGeneration = 0;
    /** Sessions per hardware-model name (catalog name, resolved). */
    std::map<std::string, std::size_t> sessionsPerModel;
    /** Completed runs that missed their deadline QoS, fleet-wide. */
    std::size_t deadlineMisses = 0;
};

/** Run a fleet to completion; see the file comment for determinism. */
FleetResult
runFleet(std::shared_ptr<const ml::PerfPowerPredictor> predictor,
         const FleetOptions &opts);

/**
 * Serialize a fleet trace as JSON lines with %.17g floats: equal traces
 * produce byte-identical text (the golden-trace contract). Degraded
 * (shed) decisions carry an extra "dg":1 key, capped decisions an
 * extra "cap" (plus "cl":1 when the cap altered the choice), records
 * of a non-default hardware model an extra "hw":"<name>", and a run's
 * last record an extra "dm":1 when its deadline QoS was missed;
 * records of a normal uncapped homogeneous paper-apu fleet serialize
 * exactly as they did before shedding, capping or the catalog existed,
 * which is what keeps the golden trace stable.
 */
std::string serializeFleetTrace(const std::vector<DecisionRecord> &trace);

} // namespace gpupm::serve
