#include "serve/session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.hpp"
#include "policy/turbo_core.hpp"
#include "trace/trace.hpp"

namespace gpupm::serve {

Session::Session(SessionId id, workload::Application app,
                 std::shared_ptr<const ml::PerfPowerPredictor> base,
                 InferenceBroker *broker, const SessionOptions &opts,
                 hw::HardwareModelPtr model,
                 telemetry::Registry *telemetry,
                 const online::ForestHandle *handle,
                 powercap::FleetCapArbiter *arbiter)
    : _id(id), _app(std::move(app)), _base(std::move(base)),
      _broker(broker), _forestHandle(handle), _opts(opts),
      _model(std::move(model)), _telemetry(telemetry),
      _arbiter(arbiter), _thermalCap(opts.thermalCap),
      _apu(_model->params())
{
    GPUPM_ASSERT(_model != nullptr, "session needs a hardware model");
    GPUPM_ASSERT(!_app.trace.empty(), "session application '", _app.name,
                 "' has an empty trace");

    // The MPC performance target is the Turbo Core baseline throughput
    // (paper Sec. V-B), measured once at session creation on this
    // session's own hardware model. A deadline QoS lowers the target by
    // its slack factor: the governor is allowed to spend the deadline
    // headroom on energy savings instead of matching Turbo exactly.
    sim::Simulator sim(_model);
    policy::TurboCoreGovernor turbo(_model);
    const auto baseline = sim.run(_app, turbo);
    GPUPM_ASSERT(baseline.throughput() > 0.0,
                 "baseline produced no throughput");
    _target = _opts.mpc.qos.scaleTarget(baseline.throughput());
    _baselineTime = baseline.totalTime();
    // The baseline's mean chip power is the session's demand signal for
    // usage-proportional budget splits: a registration-time constant, so
    // shares depend only on the fleet's composition, never on execution
    // order (the determinism contract in powercap/arbiter.hpp).
    _baselinePower = baseline.totalTime() > 0.0
                         ? baseline.totalEnergy() / baseline.totalTime()
                         : 0.0;
    if (_arbiter != nullptr) {
        _capSlot = _arbiter->registerSession(_id, _baselinePower,
                                             _opts.capWeight,
                                             _model->capFloorWatts());
    }
    if (_telemetry) {
        _telemetry
            ->counter("serve.model." + _model->name() + ".sessions")
            .add(1);
    }

    reset();
}

Session::~Session()
{
    if (_arbiter != nullptr && _capSlot != nullptr)
        _arbiter->unregisterSession(_capSlot);
}

void
Session::reset()
{
    SessionPredictorOptions popts;
    popts.kernelCacheCap = _opts.kernelCacheCap;
    _predictor = std::make_shared<SessionPredictor>(
        _base, _broker, _model, popts, _telemetry, _forestHandle);
    _governor = std::make_unique<mpc::MpcGovernor>(_predictor, _opts.mpc,
                                                   _model);
    _governor->setDecisionCallback(
        [this](const mpc::DecisionEvent &e) { _lastEvent = e; });
    if (_telemetry)
        _governor->setDecisionSink(_telemetry->decisionSink(), _id);
    _run = 0;
    _invocation = 0;
    _decisions = 0;
    _current = {};
    _runs.clear();
    _platformConfig.reset();
    _thermalCap.reset();
    _apu.reset();
}

void
Session::beginRun()
{
    // Same per-run semantics as Simulator::run: fresh thermal state and
    // platform DVFS state (re-executions start from a cold platform).
    _apu.reset();
    _platformConfig.reset();
    _governor->beginRun(_app.name, _target);
    _current = {};
    _current.appName = _app.name;
    _current.governorName = _governor->name();
    _current.records.reserve(_app.trace.size());
}

DecisionRecord
Session::step(bool degraded)
{
    GPUPM_ASSERT(!finished(), "step() on a finished session");
    trace::Span span(trace::Category::Serve, "serve.step", "session",
                     static_cast<double>(_id));
    if (_invocation == 0)
        beginRun();

    // The body below mirrors Simulator::run for one invocation; see
    // sim/simulator.cpp for the rationale of each charge.
    const std::size_t i = _invocation;
    const auto &inv = _app.trace[i];

    // Effective cap for this step: the arbiter's per-session share
    // clamped by the thermal ceiling. Read once so the decision, the
    // violation accounting and the trace all see the same number even
    // if the arbiter re-splits concurrently.
    Watts enforced_cap = std::numeric_limits<Watts>::infinity();
    if (_capSlot != nullptr)
        enforced_cap = _capSlot->cap();
    enforced_cap = _thermalCap.clamp(enforced_cap);
    _governor->setPowerCap(enforced_cap);

    _lastEvent = {};
    sim::Decision decision;
    if (degraded) {
        // Shed fast path: this model's fail-safe configuration at zero
        // decision overhead, no governor involvement. The governor is
        // also not shown the observation - it never decided here, and
        // feeding it fail-safe outcomes would poison its tracker
        // state for the post-recovery decisions.
        decision = {_model->failSafe(), 0.0};
    } else if (_broker) {
        InferenceBroker::DecisionScope scope(*_broker);
        decision = _governor->decide(i);
    } else {
        decision = _governor->decide(i);
    }
    GPUPM_ASSERT(decision.overheadTime >= 0.0,
                 "negative decision overhead");

    sim::KernelRecord rec;
    rec.index = i;
    rec.tag = inv.tag;
    rec.kernelName = inv.params.name;
    rec.config = decision.config;

    rec.cpuPhaseTime = inv.cpuPhaseSeconds;
    rec.hiddenOverheadTime =
        std::min(decision.overheadTime, rec.cpuPhaseTime);
    rec.overheadTime = decision.overheadTime - rec.hiddenOverheadTime;

    if (rec.cpuPhaseTime > 0.0) {
        const auto phase = _apu.runHost(rec.cpuPhaseTime,
                                        _model->maxPerformance());
        rec.cpuPhaseCpuEnergy = phase.cpuEnergy;
        rec.cpuPhaseGpuEnergy = phase.gpuEnergy;
    }
    if (decision.overheadTime > 0.0) {
        const auto host = _apu.runHost(decision.overheadTime,
                                       kernel::Apu::governorHostConfig());
        rec.overheadCpuEnergy = host.cpuEnergy;
        rec.overheadGpuEnergy = host.gpuEnergy;
    }

    if (_platformConfig && *_platformConfig != decision.config) {
        const auto sw =
            _apu.reconfigure(*_platformConfig, decision.config);
        rec.transitionTime = sw.time;
        rec.transitionCpuEnergy = sw.cpuEnergy;
        rec.transitionGpuEnergy = sw.gpuEnergy;
    }
    _platformConfig = decision.config;

    const auto m = _apu.run(inv.params, decision.config);
    rec.kernelTime = m.time;
    rec.kernelCpuEnergy = m.cpuEnergy;
    rec.kernelGpuEnergy = m.gpuEnergy;
    rec.instructions = m.instructions;

    if (!degraded) {
        sim::Observation obs;
        obs.index = i;
        obs.tag = inv.tag;
        obs.measurement = m;
        obs.kernelTruth = &inv.params;
        obs.nonKernelTime =
            rec.overheadTime + rec.cpuPhaseTime + rec.transitionTime;
        _governor->observe(obs);
    } else if (_telemetry) {
        // The governor was bypassed, so provenance is emitted here:
        // tag 'S' records that this invocation was shed to the
        // fail-safe configuration with no candidate evaluation.
        if (auto *sink = _telemetry->decisionSink()) {
            trace::DecisionRecord dr;
            dr.app = _app.name;
            dr.session = _id;
            dr.run = _run;
            dr.index = i;
            dr.tag = 'S';
            dr.configIndex = hw::denseConfigIndex(decision.config);
            dr.observed = true;
            dr.measuredTime = m.time;
            dr.measuredGpuPower =
                m.time > 0.0 ? m.gpuEnergy / m.time : 0.0;
            dr.measuredInstructions = m.instructions;
            dr.nonKernelTime = rec.cpuPhaseTime + rec.transitionTime;
            dr.targetThroughput = _target;
            sink->record(std::move(dr));
        }
    }

    DecisionRecord out;
    out.session = _id;
    out.run = _run;
    out.index = i;
    out.tag = rec.tag;
    out.configIndex = hw::denseConfigIndex(rec.config);
    out.kernelTime = rec.kernelTime;
    out.overheadTime = rec.overheadTime;
    out.cpuEnergy = rec.kernelCpuEnergy + rec.overheadCpuEnergy +
                    rec.cpuPhaseCpuEnergy + rec.transitionCpuEnergy;
    out.gpuEnergy = rec.kernelGpuEnergy + rec.overheadGpuEnergy +
                    rec.cpuPhaseGpuEnergy + rec.transitionGpuEnergy;
    out.evaluations = _lastEvent.evaluations;
    out.degraded = degraded;
    if (_model->name() != hw::paperApuName)
        out.hwModel = _model->name();

    // Powercap accounting: measured average chip power over this
    // step's wall time feeds the arbiter's violation windows, and the
    // thermal governor reacts to the die temperature the step left
    // behind. Both advance strictly in the session's own decision
    // stream, which is what keeps capped fleet runs deterministic.
    const Seconds wall = rec.kernelTime + rec.cpuPhaseTime +
                         rec.overheadTime + rec.transitionTime;
    out.measuredPower =
        wall > 0.0 ? (out.cpuEnergy + out.gpuEnergy) / wall : 0.0;
    if (std::isfinite(enforced_cap)) {
        out.cap = enforced_cap;
        out.capLimited = !degraded && _lastEvent.capLimited;
    }
    if (_capSlot != nullptr)
        _arbiter->report(_capSlot, out.measuredPower, enforced_cap);
    _thermalCap.update(_apu.thermal().temperature());

    _current.kernelTime += rec.kernelTime;
    _current.overheadTime += rec.overheadTime;
    _current.cpuPhaseTime += rec.cpuPhaseTime;
    _current.transitionTime += rec.transitionTime;
    _current.cpuEnergy += out.cpuEnergy;
    _current.gpuEnergy += out.gpuEnergy;
    _current.overheadEnergy +=
        rec.overheadCpuEnergy + rec.overheadGpuEnergy;
    _current.instructions += rec.instructions;
    _current.records.push_back(std::move(rec));

    ++_decisions;
    ++_invocation;
    if (_invocation >= _app.trace.size()) {
        // Deadline QoS: a run misses when its wall time exceeds the
        // Turbo baseline stretched by the slack factor. Checked at run
        // completion so the miss marks the run's last record.
        if (_opts.mpc.qos.kind == mpc::QosSpec::Kind::Deadline &&
            _current.totalTime() >
                _baselineTime * _opts.mpc.qos.deadlineFactor) {
            ++_deadlineMisses;
            out.deadlineMissed = true;
            if (_telemetry)
                _telemetry->counter("serve.deadline_misses").add(1);
        }
        _runs.push_back(std::move(_current));
        _current = {};
        _invocation = 0;
        ++_run;
    }
    return out;
}

} // namespace gpupm::serve
