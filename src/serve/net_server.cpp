#include "serve/net_server.hpp"

#include "common/logging.hpp"
#include "serve/wire.hpp"
#include "workload/benchmarks.hpp"

#ifdef __linux__

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gpupm::serve {

/**
 * Per-connection state. The epoll thread owns fd lifecycle, reads and
 * the tenant map; `mutex` guards everything worker completions touch:
 * the write buffer, the per-session step state and the closed flag. A
 * worker holding a shared_ptr to a closed connection simply observes
 * `closed` and drops its reply.
 */
struct NetServer::Connection
{
    int fd = -1;
    wire::FrameReader reader;

    std::mutex mutex;
    std::vector<std::uint8_t> writeBuf; ///< Guarded by mutex.
    bool closed = false;                ///< Guarded by mutex.
    struct SessionState
    {
        std::uint32_t remaining = 0;
        bool inflight = false;
    };
    /** Sessions opened on this connection; guarded by mutex. */
    std::unordered_map<SessionId, SessionState> sessions;

    /* Epoll-thread-only state below. */
    std::unordered_map<std::uint64_t, wire::OpenedMsg> tenants;
    bool wantWrite = false;
    bool pendingClose = false; ///< Close once writeBuf drains.
};

struct NetServer::Impl
{
    int listenFd = -1;
    int epollFd = -1;
    int eventFd = -1;
    std::atomic<bool> stopRequested{false};

    std::unordered_map<int, std::shared_ptr<Connection>> conns;

    std::mutex dirtyMutex;
    std::vector<std::shared_ptr<Connection>> dirty;

    ~Impl()
    {
        for (auto &entry : conns)
            ::close(entry.first);
        if (listenFd >= 0)
            ::close(listenFd);
        if (epollFd >= 0)
            ::close(epollFd);
        if (eventFd >= 0)
            ::close(eventFd);
    }

    void
    wake()
    {
        const std::uint64_t one = 1;
        // A full eventfd counter still wakes the loop; ignore EAGAIN.
        [[maybe_unused]] ssize_t n =
            ::write(eventFd, &one, sizeof(one));
    }

    void
    markDirty(const std::shared_ptr<Connection> &conn)
    {
        {
            std::lock_guard lock(dirtyMutex);
            dirty.push_back(conn);
        }
        wake();
    }
};

namespace {

bool
knownBenchmark(const std::string &name)
{
    const auto &names = workload::benchmarkNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

} // namespace

NetServer::NetServer(FleetServer &server, const NetServerOptions &opts)
    : _server(server), _opts(opts), _impl(std::make_unique<Impl>())
{
    _impl->listenFd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    GPUPM_ASSERT(_impl->listenFd >= 0, "socket() failed: ",
                 std::strerror(errno));

    const int one = 1;
    ::setsockopt(_impl->listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(_opts.port);
    GPUPM_ASSERT(::inet_pton(AF_INET, _opts.host.c_str(),
                             &addr.sin_addr) == 1,
                 "invalid listen address: ", _opts.host);
    GPUPM_ASSERT(::bind(_impl->listenFd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)) == 0,
                 "bind(", _opts.host, ":", _opts.port,
                 ") failed: ", std::strerror(errno));
    GPUPM_ASSERT(::listen(_impl->listenFd, _opts.backlog) == 0,
                 "listen() failed: ", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    GPUPM_ASSERT(::getsockname(_impl->listenFd,
                               reinterpret_cast<sockaddr *>(&bound),
                               &len) == 0,
                 "getsockname() failed: ", std::strerror(errno));
    _port = ntohs(bound.sin_port);

    _impl->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    GPUPM_ASSERT(_impl->epollFd >= 0, "epoll_create1 failed: ",
                 std::strerror(errno));
    _impl->eventFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    GPUPM_ASSERT(_impl->eventFd >= 0, "eventfd failed: ",
                 std::strerror(errno));

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = _impl->listenFd;
    GPUPM_ASSERT(::epoll_ctl(_impl->epollFd, EPOLL_CTL_ADD,
                             _impl->listenFd, &ev) == 0,
                 "epoll_ctl(listen) failed");
    ev.data.fd = _impl->eventFd;
    GPUPM_ASSERT(::epoll_ctl(_impl->epollFd, EPOLL_CTL_ADD,
                             _impl->eventFd, &ev) == 0,
                 "epoll_ctl(eventfd) failed");
}

NetServer::~NetServer()
{
    stop();
    // Drain the decision server before connection state goes away:
    // every in-flight completion holds a shared_ptr<Connection> and may
    // call markDirty on _impl, so workers must be joined first. (The
    // caller has already joined run(); stop() makes that return.)
    _server.stop();
}

void
NetServer::stop()
{
    _impl->stopRequested.store(true, std::memory_order_release);
    _impl->wake();
}

void
NetServer::run()
{
    eventLoop();
}

namespace {

/** epoll registration helper: (re)arm interest for one connection. */
void
armConnection(int epollFd, int fd, bool wantWrite)
{
    epoll_event ev{};
    ev.events = EPOLLIN | (wantWrite ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    GPUPM_ASSERT(::epoll_ctl(epollFd, EPOLL_CTL_MOD, fd, &ev) == 0,
                 "epoll_ctl(MOD) failed: ", std::strerror(errno));
}

} // namespace

void
NetServer::eventLoop()
{
    auto &impl = *_impl;

    auto closeConn = [&](const std::shared_ptr<Connection> &conn) {
        {
            std::lock_guard lock(conn->mutex);
            conn->closed = true;
        }
        ::epoll_ctl(impl.epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
        ::close(conn->fd);
        impl.conns.erase(conn->fd);
        // Sessions stay resident in their shards; the LRU evicts them
        // once the manager needs the slots.
    };

    /*
     * Flush a connection's write buffer (epoll thread only). Returns
     * false when the connection died. Short writes arm EPOLLOUT; a
     * drained buffer disarms it and completes any deferred close.
     */
    auto flushConn = [&](const std::shared_ptr<Connection> &conn) {
        bool drained = false;
        bool dead = false;
        {
            std::lock_guard lock(conn->mutex);
            if (conn->closed)
                return false;
            while (!conn->writeBuf.empty()) {
                const ssize_t n =
                    ::send(conn->fd, conn->writeBuf.data(),
                           conn->writeBuf.size(), MSG_NOSIGNAL);
                if (n > 0) {
                    conn->writeBuf.erase(
                        conn->writeBuf.begin(),
                        conn->writeBuf.begin() + n);
                    continue;
                }
                if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                    break;
                if (n < 0 && errno == EINTR)
                    continue;
                dead = true;
                break;
            }
            drained = conn->writeBuf.empty();
        }
        if (dead) {
            closeConn(conn);
            return false;
        }
        if (!drained && !conn->wantWrite) {
            conn->wantWrite = true;
            armConnection(impl.epollFd, conn->fd, true);
        } else if (drained && conn->wantWrite) {
            conn->wantWrite = false;
            armConnection(impl.epollFd, conn->fd, false);
        }
        if (drained && conn->pendingClose) {
            closeConn(conn);
            return false;
        }
        return true;
    };

    /** Queue a protocol Error and close once it is on the wire. */
    auto protocolError = [&](const std::shared_ptr<Connection> &conn,
                             const std::string &message) {
        {
            std::lock_guard lock(conn->mutex);
            wire::encodeError(conn->writeBuf, {message});
        }
        conn->pendingClose = true;
        flushConn(conn);
    };

    auto sendReject = [&](const std::shared_ptr<Connection> &conn,
                          SessionId session, wire::RejectReason why) {
        std::lock_guard lock(conn->mutex);
        wire::encodeReject(conn->writeBuf, {session, why});
    };

    auto handleOpen = [&](const std::shared_ptr<Connection> &conn,
                          const wire::OpenMsg &m) {
        // Idempotent per tenant: a retried Open re-sends the original
        // Opened instead of creating a second session.
        if (auto it = conn->tenants.find(m.tenant);
            it != conn->tenants.end()) {
            std::lock_guard lock(conn->mutex);
            wire::encodeOpened(conn->writeBuf, it->second);
            return;
        }
        if (!knownBenchmark(m.bench)) {
            // No session exists yet, so the tenant id travels in the
            // session slot for client-side correlation.
            sendReject(conn, m.tenant, wire::RejectReason::BadBench);
            return;
        }
        SessionOptions sopts = _opts.session;
        if (m.optimizedRuns > 0)
            sopts.optimizedRuns = m.optimizedRuns;
        if (m.kernelCacheCap > 0)
            sopts.kernelCacheCap = m.kernelCacheCap;
        // v2 extensions; v1 Opens decode with the defaults (empty model
        // name, uniform kind, value 0) and change nothing here.
        if (!m.hwModel.empty()) {
            sopts.model = hw::HardwareCatalog::instance().find(m.hwModel);
            if (!sopts.model) {
                sendReject(conn, m.tenant,
                           wire::RejectReason::BadModel);
                return;
            }
        }
        if (m.qosKind == wire::WireQosKind::Deadline) {
            if (!(m.qosValue > 0.0)) {
                sendReject(conn, m.tenant, wire::RejectReason::BadQos);
                return;
            }
            sopts.mpc.qos = mpc::QosSpec::deadline(m.qosValue);
        } else if (m.qosValue > 0.0) {
            sopts.mpc.qos = mpc::QosSpec::uniform(m.qosValue);
        }
        // Session creation runs the Turbo baseline inline here (event
        // loop thread); see the file comment for the trade-off.
        const workload::Application app =
            workload::makeBenchmark(m.bench);
        const SessionId id = _server.createSession(app, sopts);
        const auto total = static_cast<std::uint32_t>(
            (1 + sopts.optimizedRuns) * app.trace.size());
        const wire::OpenedMsg opened{m.tenant, id, total};
        conn->tenants.emplace(m.tenant, opened);
        {
            std::lock_guard lock(conn->mutex);
            conn->sessions.emplace(
                id, Connection::SessionState{total, false});
            wire::encodeOpened(conn->writeBuf, opened);
        }
    };

    auto handleStep = [&](const std::shared_ptr<Connection> &conn,
                          const wire::StepMsg &m) {
        {
            std::lock_guard lock(conn->mutex);
            auto it = conn->sessions.find(m.session);
            if (it == conn->sessions.end()) {
                wire::encodeReject(
                    conn->writeBuf,
                    {m.session, wire::RejectReason::UnknownSession});
                return;
            }
            if (it->second.inflight) {
                wire::encodeReject(
                    conn->writeBuf,
                    {m.session, wire::RejectReason::Busy});
                return;
            }
            if (it->second.remaining == 0) {
                wire::encodeReject(
                    conn->writeBuf,
                    {m.session, wire::RejectReason::Finished});
                return;
            }
            it->second.inflight = true;
        }

        Impl *impl_ = &impl;
        DecisionRequest req;
        req.session = m.session;
        req.onDone = [impl_, conn](SessionId id,
                                   const DecisionRecord *rec) {
            {
                std::lock_guard lock(conn->mutex);
                if (auto it = conn->sessions.find(id);
                    it != conn->sessions.end()) {
                    it->second.inflight = false;
                    if (rec != nullptr && it->second.remaining > 0)
                        --it->second.remaining;
                }
                if (conn->closed)
                    return;
                if (rec == nullptr) {
                    wire::encodeReject(
                        conn->writeBuf,
                        {id, wire::RejectReason::UnknownSession});
                } else {
                    wire::DecisionMsg d;
                    d.session = id;
                    d.run = static_cast<std::uint32_t>(rec->run);
                    d.index = static_cast<std::uint32_t>(rec->index);
                    d.configIndex =
                        static_cast<std::uint32_t>(rec->configIndex);
                    d.kernelTag =
                        static_cast<std::uint8_t>(rec->tag);
                    d.degraded = rec->degraded ? 1 : 0;
                    d.kernelTime = rec->kernelTime;
                    d.overheadTime = rec->overheadTime;
                    d.cpuEnergy = rec->cpuEnergy;
                    d.gpuEnergy = rec->gpuEnergy;
                    d.evaluations =
                        static_cast<std::uint32_t>(rec->evaluations);
                    wire::encodeDecision(conn->writeBuf, d);
                }
            }
            impl_->markDirty(conn);
        };

        if (!_server.trySubmit(std::move(req))) {
            std::lock_guard lock(conn->mutex);
            if (auto it = conn->sessions.find(m.session);
                it != conn->sessions.end())
                it->second.inflight = false;
            wire::encodeReject(
                conn->writeBuf,
                {m.session, wire::RejectReason::QueueFull});
        }
    };

    auto handleStats = [&](const std::shared_ptr<Connection> &conn) {
        const telemetry::Snapshot snap = _server.metrics();
        wire::StatsMsg stats;
        stats.entries.reserve(snap.counters.size() + 1);
        for (const auto &[name, value] : snap.counters)
            stats.entries.emplace_back(name, value);
        stats.entries.emplace_back("serve.connections", accepted());
        if (const auto *arbiter = _server.capArbiter()) {
            stats.fleetBudgetWatts = arbiter->budgetWatts();
            stats.capViolations = arbiter->violations();
            stats.arbiterTicks = arbiter->ticks();
        }
        if (const auto it =
                snap.counters.find("serve.deadline_misses");
            it != snap.counters.end())
            stats.deadlineMisses = it->second;
        std::lock_guard lock(conn->mutex);
        wire::encodeStats(conn->writeBuf, stats);
    };

    // Returns false when the connection was torn down mid-frame.
    auto handleFrame = [&](const std::shared_ptr<Connection> &conn,
                           const wire::Frame &frame) {
        switch (frame.type) {
        case wire::MsgType::Open:
            if (auto m = wire::decodeOpen(frame.payload)) {
                handleOpen(conn, *m);
                return true;
            }
            break;
        case wire::MsgType::Step:
            if (auto m = wire::decodeStep(frame.payload)) {
                handleStep(conn, *m);
                return true;
            }
            break;
        case wire::MsgType::StatsReq:
            if (frame.payload.empty()) {
                handleStats(conn);
                return true;
            }
            break;
        default:
            break;
        }
        protocolError(conn, "malformed or unexpected frame");
        return false;
    };

    auto handleReadable = [&](const std::shared_ptr<Connection> &conn) {
        std::uint8_t buf[65536];
        for (;;) {
            const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
            if (n > 0) {
                conn->reader.append(buf,
                                    static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                closeConn(conn);
                return;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            if (errno == EINTR)
                continue;
            closeConn(conn);
            return;
        }
        while (auto frame = conn->reader.next()) {
            if (!handleFrame(conn, *frame))
                return;
        }
        if (conn->reader.corrupt()) {
            protocolError(conn, "corrupt frame stream");
            return;
        }
        flushConn(conn);
    };

    auto handleAccept = [&] {
        for (;;) {
            const int fd = ::accept4(impl.listenFd, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return;
                if (errno == EINTR || errno == ECONNABORTED)
                    continue;
                GPUPM_PANIC("accept4 failed: ",
                            std::strerror(errno));
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            auto conn = std::make_shared<Connection>();
            conn->fd = fd;
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.fd = fd;
            GPUPM_ASSERT(::epoll_ctl(impl.epollFd, EPOLL_CTL_ADD, fd,
                                     &ev) == 0,
                         "epoll_ctl(ADD conn) failed");
            impl.conns.emplace(fd, std::move(conn));
            _accepted.fetch_add(1, std::memory_order_relaxed);
        }
    };

    std::array<epoll_event, 64> events;
    while (!impl.stopRequested.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(impl.epollFd, events.data(),
                                   static_cast<int>(events.size()),
                                   -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            GPUPM_PANIC("epoll_wait failed: ", std::strerror(errno));
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[static_cast<std::size_t>(i)].data.fd;
            const std::uint32_t ev =
                events[static_cast<std::size_t>(i)].events;
            if (fd == impl.listenFd) {
                handleAccept();
                continue;
            }
            if (fd == impl.eventFd) {
                std::uint64_t drain = 0;
                while (::read(impl.eventFd, &drain, sizeof(drain)) > 0)
                    ;
                std::vector<std::shared_ptr<Connection>> dirty;
                {
                    std::lock_guard lock(impl.dirtyMutex);
                    dirty.swap(impl.dirty);
                }
                for (const auto &conn : dirty) {
                    // A connection can be marked dirty after close;
                    // its fd is gone, so only live ones flush.
                    if (impl.conns.count(conn->fd) != 0 &&
                        impl.conns.at(conn->fd) == conn)
                        flushConn(conn);
                }
                continue;
            }
            auto it = impl.conns.find(fd);
            if (it == impl.conns.end())
                continue; // Closed earlier in this batch.
            std::shared_ptr<Connection> conn = it->second;
            if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
                closeConn(conn);
                continue;
            }
            if ((ev & EPOLLOUT) != 0 && !flushConn(conn))
                continue;
            if ((ev & EPOLLIN) != 0)
                handleReadable(conn);
        }
    }

    // Shutdown: close every connection so workers drop late replies.
    std::vector<std::shared_ptr<Connection>> open;
    open.reserve(impl.conns.size());
    for (auto &entry : impl.conns)
        open.push_back(entry.second);
    for (const auto &conn : open)
        closeConn(conn);
}

} // namespace gpupm::serve

#else // !__linux__

namespace gpupm::serve {

struct NetServer::Connection
{
};
struct NetServer::Impl
{
};

NetServer::NetServer(FleetServer &server, const NetServerOptions &opts)
    : _server(server), _opts(opts)
{
    GPUPM_PANIC("gpupm serve requires Linux (epoll); use the "
                "in-process fleet driver instead");
}

NetServer::~NetServer() = default;
void
NetServer::run()
{
}
void
NetServer::stop()
{
}
void
NetServer::eventLoop()
{
}

} // namespace gpupm::serve

#endif
