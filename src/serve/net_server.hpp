/**
 * @file
 * Epoll front end for the fleet decision server (`gpupm serve`).
 *
 * One event-loop thread owns the listening socket and every
 * connection's reads; decision work itself never runs here - Step
 * frames are admitted into the sharded FleetServer (trySubmit, i.e.
 * bounded queues with explicit rejection) and the server's worker
 * threads call back when a step completes. A completion appends the
 * Decision frame to the connection's write buffer under a small
 * per-connection mutex, marks the connection dirty, and kicks the
 * event loop through an eventfd; the loop flushes dirty buffers,
 * falling back to EPOLLOUT registration when a socket's send buffer
 * fills. So the wire path is: epoll thread parses and admits, worker
 * threads compute and enqueue replies, epoll thread writes.
 *
 * Backpressure is end-to-end explicit: a full shard queue surfaces as
 * Reject(QueueFull) - the wire face of load shedding - and a degraded
 * shard's decisions arrive marked degraded=1. The protocol itself is
 * in serve/wire.hpp.
 *
 * Session creation (Open) runs the Turbo baseline inline on the event
 * loop; that is milliseconds per new tenant and keeps the loop single
 * threaded. Fine for the load generator and CI smoke; a production
 * front end would hand Opens to the pool too.
 *
 * Linux-only (epoll + eventfd); other hosts get a panicking stub -
 * the in-process fleet driver works everywhere.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/server.hpp"

namespace gpupm::serve {

struct NetServerOptions
{
    std::string host = "127.0.0.1";
    /** 0 = kernel-assigned (the bound port is readable via port()). */
    std::uint16_t port = 0;
    /** Default session shape for Open frames that pass 0 values. */
    SessionOptions session;
    /** accept() backlog. */
    int backlog = 128;
};

class NetServer
{
  public:
    /**
     * Bind and listen immediately (fatal on bind failure, so a CLI
     * user sees the error before the loop starts); the event loop
     * itself runs in run().
     *
     * @param server The sharded decision server; must outlive this.
     */
    NetServer(FleetServer &server, const NetServerOptions &opts);
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /** The bound port (after construction; resolves port 0). */
    std::uint16_t port() const { return _port; }

    /** Run the event loop on the calling thread until stop(). */
    void run();

    /**
     * Request shutdown from any thread or a signal handler (one
     * eventfd write; async-signal-safe). Idempotent.
     */
    void stop();

    /** Connections accepted over the server's lifetime. */
    std::uint64_t accepted() const
    {
        return _accepted.load(std::memory_order_relaxed);
    }

  private:
    struct Connection;
    struct Impl;

    void eventLoop();

    FleetServer &_server;
    NetServerOptions _opts;
    std::uint16_t _port = 0;
    std::atomic<std::uint64_t> _accepted{0};
    std::unique_ptr<Impl> _impl;
};

} // namespace gpupm::serve
