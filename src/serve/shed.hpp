/**
 * @file
 * Windowed-error load-shed controller for the fleet decision server.
 *
 * Overload policy in the style of HPDCS/NAS-powercap's windowed error
 * accumulator with hysteresis (powercap heuristics: accumulate the
 * signed error against a setpoint over a fixed window, act only when
 * whole windows agree, and require sustained calm before acting
 * back): each shard samples its queue depth at admission, accumulates
 * `depth - targetDepth` over `window` samples, and flips into
 * *degraded* mode only after `sustain` consecutive over-target
 * windows. While degraded, workers skip the MPC governor and apply
 * the paper's fail-safe configuration [P7, NB2, DPM4, 8CU]
 * (hw::ConfigSpace::failSafe) so queued work drains at near-zero
 * decision cost instead of queuing unboundedly. The controller exits
 * degraded mode only after `recover` consecutive windows whose mean
 * depth sits below `recoverFraction * targetDepth` - the asymmetric
 * thresholds are the hysteresis band that keeps a loaded shard from
 * flapping between modes at window granularity.
 *
 * Thread model: sample() is called by every producer thread at
 * admission; window rollover is resolved under a small mutex (at most
 * once per `window` samples), and the degraded flag itself is a
 * relaxed atomic that workers read per decision without taking any
 * lock. Transitions bump the serve.shed_enters / serve.shed_exits
 * telemetry counters when a registry is attached.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace gpupm::telemetry {
class Registry;
}

namespace gpupm::serve {

/** Shed policy knobs; defaults follow the NAS-powercap idiom. */
struct ShedOptions
{
    /** Master switch; a disabled controller never degrades. */
    bool enabled = false;
    /** Admission samples per decision window. */
    std::size_t window = 64;
    /** Queue-depth setpoint: sustained depth above this sheds. */
    std::size_t targetDepth = 256;
    /**
     * Exit threshold as a fraction of targetDepth: a recovery window
     * must average below targetDepth * recoverFraction. The gap
     * between 1.0 and this fraction is the hysteresis band.
     */
    double recoverFraction = 0.25;
    /** Consecutive over-target windows required to enter shedding. */
    std::size_t sustain = 2;
    /** Consecutive calm windows required to exit shedding. */
    std::size_t recover = 2;
};

class ShedController
{
  public:
    explicit ShedController(const ShedOptions &opts,
                            telemetry::Registry *registry = nullptr);

    /**
     * Record one admission-time queue-depth observation and roll the
     * window over when it fills. Safe from any number of threads.
     */
    void sample(std::size_t depth);

    /** Whether decisions should currently run the fail-safe path. */
    bool degraded() const
    {
        return _degraded.load(std::memory_order_relaxed);
    }

    const ShedOptions &options() const { return _opts; }

    /** Completed enter/exit transition counts (tests, stats). */
    std::uint64_t enters() const
    {
        return _enters.load(std::memory_order_relaxed);
    }
    std::uint64_t exits() const
    {
        return _exits.load(std::memory_order_relaxed);
    }

  private:
    void rollWindowLocked();

    ShedOptions _opts;
    std::atomic<bool> _degraded{false};
    std::atomic<std::uint64_t> _enters{0};
    std::atomic<std::uint64_t> _exits{0};

    std::mutex _mutex;
    std::size_t _samples = 0;     ///< Samples in the open window.
    std::int64_t _netError = 0;   ///< Sum of depth - targetDepth.
    std::uint64_t _depthSum = 0;  ///< Sum of depths (mean at rollover).
    std::size_t _overWindows = 0; ///< Consecutive over-target windows.
    std::size_t _calmWindows = 0; ///< Consecutive recovery windows.

    telemetry::Registry *_registry = nullptr;
};

} // namespace gpupm::serve
