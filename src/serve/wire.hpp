/**
 * @file
 * Binary wire protocol for the fleet decision server.
 *
 * Frames are length-prefixed: a little-endian u32 byte count covering
 * everything after itself, then a u8 message type, then the typed
 * payload. All integers are little-endian regardless of host order
 * and all doubles travel as the IEEE-754 bit pattern in a u64, so a
 * decision stream round-trips bit-exactly - the wire never perturbs
 * the determinism contract (gpupm-client --verify leans on this).
 *
 * The protocol is deliberately small - a session-open handshake, a
 * step request, its decision reply, explicit rejections with typed
 * reasons (the visible face of load shedding), and a counters
 * snapshot:
 *
 *   client -> server   Open(tenant, optimizedRuns, kernelCacheCap,
 *                           bench name)
 *   server -> client   Opened(tenant, session id, totalDecisions)
 *   client -> server   Step(session)
 *   server -> client   Decision(session, run, index, config, tag,
 *                               degraded, times, energies, evals)
 *                    | Reject(session, reason)
 *   client -> server   StatsReq()
 *   server -> client   Stats(key/value counters, fleet powercap
 *                            state: budget watts, cap violations,
 *                            arbiter ticks)
 *   server -> client   Error(message)   (protocol violations; the
 *                                        server closes after sending)
 *
 * FrameReader reassembles frames from an arbitrary-sized byte stream
 * (nonblocking sockets deliver fragments); oversized or truncated-
 * length frames mark the stream corrupt, which the server answers
 * with Error + close. Parsing never throws and never reads out of
 * bounds: every decode returns nullopt on malformed payloads.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gpupm::serve::wire {

enum class MsgType : std::uint8_t
{
    Open = 1,
    Opened = 2,
    Step = 3,
    Decision = 4,
    Reject = 5,
    StatsReq = 6,
    Stats = 7,
    Error = 8,
};

/** Typed rejection causes (Reject frames). */
enum class RejectReason : std::uint8_t
{
    QueueFull = 0,      ///< Shard queue full: load shed at admission.
    Busy = 1,           ///< Session already has a step in flight.
    UnknownSession = 2, ///< Never opened or already evicted.
    Finished = 3,       ///< Session played all its runs.
    BadBench = 4,       ///< Open named an unknown benchmark.
    BadModel = 5,       ///< Open named a model absent from the catalog.
    BadQos = 6,         ///< Open carried an unusable QoS spec.
};

/**
 * Protocol version spoken by this build. Version 2 extends Open with a
 * hardware-model name and a QoS spec; every other frame is unchanged.
 * Version-1 Opens (no tail after the bench name) are still accepted and
 * resolve to the server's catalog default with uniform-slowdown QoS, so
 * old clients keep working against new servers.
 */
constexpr std::uint8_t kWireVersion = 2;

/** QoS kinds carried in a v2 Open tail (mirrors mpc::QosSpec::Kind). */
enum class WireQosKind : std::uint8_t
{
    UniformAlpha = 0, ///< qosValue = alpha; 0 keeps the server default.
    Deadline = 1,     ///< qosValue = deadline slack factor (> 0).
};

/** Upper bound on a frame's post-length bytes; larger = corrupt. */
constexpr std::size_t kMaxFrameBytes = 1u << 20;

struct Frame
{
    MsgType type = MsgType::Error;
    std::vector<std::uint8_t> payload;
};

struct OpenMsg
{
    std::uint64_t tenant = 0;
    std::uint32_t optimizedRuns = 2;
    std::uint32_t kernelCacheCap = 32;
    std::string bench;
    /**
     * Version this Open travels as. Encoding with 1 emits the legacy
     * frame (no tail) for compatibility tests and old-client emulation;
     * decode reports the version the peer actually sent.
     */
    std::uint8_t version = kWireVersion;
    /** Catalog model name; empty = the server's default model. */
    std::string hwModel;
    WireQosKind qosKind = WireQosKind::UniformAlpha;
    /** Alpha (UniformAlpha; 0 = server default) or deadline factor. */
    double qosValue = 0.0;
};

struct OpenedMsg
{
    std::uint64_t tenant = 0;
    std::uint64_t session = 0;
    std::uint32_t totalDecisions = 0;
};

struct StepMsg
{
    std::uint64_t session = 0;
};

struct DecisionMsg
{
    std::uint64_t session = 0;
    std::uint32_t run = 0;
    std::uint32_t index = 0;
    std::uint32_t configIndex = 0;
    std::uint8_t kernelTag = 0;
    std::uint8_t degraded = 0;
    double kernelTime = 0.0;
    double overheadTime = 0.0;
    double cpuEnergy = 0.0;
    double gpuEnergy = 0.0;
    std::uint32_t evaluations = 0;
};

struct RejectMsg
{
    std::uint64_t session = 0;
    RejectReason reason = RejectReason::UnknownSession;
};

struct StatsMsg
{
    std::vector<std::pair<std::string, std::uint64_t>> entries;
    // Fleet powercap state, appended after the counter list (a wire
    // format change: pre-powercap decoders reject the longer payload,
    // which is fine - client and server ship together).
    /** Configured fleet budget in watts; 0 = no arbiter. */
    double fleetBudgetWatts = 0.0;
    /** Measured-power-over-cap decisions across the fleet. */
    std::uint64_t capViolations = 0;
    /** Arbiter re-split ticks since server start. */
    std::uint64_t arbiterTicks = 0;
    /** Deadline-QoS runs that overran their slack, fleet-wide (v2). */
    std::uint64_t deadlineMisses = 0;
};

struct ErrorMsg
{
    std::string message;
};

/** Append one complete frame (length + type + payload) to @p out. */
void encodeOpen(std::vector<std::uint8_t> &out, const OpenMsg &m);
void encodeOpened(std::vector<std::uint8_t> &out, const OpenedMsg &m);
void encodeStep(std::vector<std::uint8_t> &out, const StepMsg &m);
void encodeDecision(std::vector<std::uint8_t> &out,
                    const DecisionMsg &m);
void encodeReject(std::vector<std::uint8_t> &out, const RejectMsg &m);
void encodeStatsReq(std::vector<std::uint8_t> &out);
void encodeStats(std::vector<std::uint8_t> &out, const StatsMsg &m);
void encodeError(std::vector<std::uint8_t> &out, const ErrorMsg &m);

/** Decode a frame payload; nullopt on any malformed byte layout. */
std::optional<OpenMsg> decodeOpen(std::span<const std::uint8_t> p);
std::optional<OpenedMsg> decodeOpened(std::span<const std::uint8_t> p);
std::optional<StepMsg> decodeStep(std::span<const std::uint8_t> p);
std::optional<DecisionMsg>
decodeDecision(std::span<const std::uint8_t> p);
std::optional<RejectMsg> decodeReject(std::span<const std::uint8_t> p);
std::optional<StatsMsg> decodeStats(std::span<const std::uint8_t> p);
std::optional<ErrorMsg> decodeError(std::span<const std::uint8_t> p);

/**
 * Incremental frame reassembly over a fragmented byte stream. Feed
 * whatever recv() produced; next() yields complete frames in order.
 * Consumed bytes are compacted lazily, so append/next are amortized
 * linear in the bytes received.
 */
class FrameReader
{
  public:
    explicit FrameReader(std::size_t maxFrame = kMaxFrameBytes)
        : _maxFrame(maxFrame)
    {
    }

    void append(const std::uint8_t *data, std::size_t n);

    /** The next complete frame, or nullopt until more bytes arrive. */
    std::optional<Frame> next();

    /** Sticky: a frame declared an impossible length. */
    bool corrupt() const { return _corrupt; }

    /** Bytes buffered but not yet consumed (tests/diagnostics). */
    std::size_t buffered() const { return _buf.size() - _pos; }

  private:
    std::size_t _maxFrame;
    std::vector<std::uint8_t> _buf;
    std::size_t _pos = 0;
    bool _corrupt = false;
};

} // namespace gpupm::serve::wire
