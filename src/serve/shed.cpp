#include "serve/shed.hpp"

#include "common/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace gpupm::serve {

ShedController::ShedController(const ShedOptions &opts,
                               telemetry::Registry *registry)
    : _opts(opts), _registry(registry)
{
    GPUPM_ASSERT(_opts.window > 0, "shed window must be positive");
    GPUPM_ASSERT(_opts.sustain > 0, "shed sustain must be positive");
    GPUPM_ASSERT(_opts.recover > 0, "shed recover must be positive");
    GPUPM_ASSERT(_opts.recoverFraction >= 0.0 &&
                     _opts.recoverFraction <= 1.0,
                 "shed recover fraction must be within [0, 1]");
}

void
ShedController::sample(std::size_t depth)
{
    if (!_opts.enabled)
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    _netError += static_cast<std::int64_t>(depth) -
                 static_cast<std::int64_t>(_opts.targetDepth);
    _depthSum += depth;
    if (++_samples >= _opts.window)
        rollWindowLocked();
}

void
ShedController::rollWindowLocked()
{
    const bool over = _netError > 0;
    const double mean = static_cast<double>(_depthSum) /
                        static_cast<double>(_samples);
    _samples = 0;
    _netError = 0;
    _depthSum = 0;

    if (over) {
        // Any over-target window resets the calm streak: recovery
        // requires `recover` *consecutive* quiet windows.
        _calmWindows = 0;
        if (!_degraded.load(std::memory_order_relaxed) &&
            ++_overWindows >= _opts.sustain) {
            _degraded.store(true, std::memory_order_relaxed);
            _enters.fetch_add(1, std::memory_order_relaxed);
            if (_registry != nullptr)
                _registry->counter("serve.shed_enters").add(1);
        }
        return;
    }
    _overWindows = 0;
    if (_degraded.load(std::memory_order_relaxed) &&
        mean < static_cast<double>(_opts.targetDepth) *
                   _opts.recoverFraction &&
        ++_calmWindows >= _opts.recover) {
        _degraded.store(false, std::memory_order_relaxed);
        _exits.fetch_add(1, std::memory_order_relaxed);
        _calmWindows = 0;
        if (_registry != nullptr)
            _registry->counter("serve.shed_exits").add(1);
    } else if (!(mean < static_cast<double>(_opts.targetDepth) *
                            _opts.recoverFraction)) {
        // Under target but above the recovery band: inside the
        // hysteresis gap. Not calm - restart the streak, so exiting
        // always means `recover` consecutive genuinely quiet windows.
        _calmWindows = 0;
    }
}

} // namespace gpupm::serve
