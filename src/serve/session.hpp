/**
 * @file
 * One fleet session: a governed application, steppable one kernel
 * invocation at a time.
 *
 * A session owns everything one tenant of the fleet server needs: its
 * application trace, its modeled APU (thermal state and platform DVFS
 * config advance within a run), its MpcGovernor (pattern extractor,
 * performance tracker, hill-climb optimizer), and its SessionPredictor
 * (per-kernel prediction cache routing misses through the shared
 * broker). Nothing is shared mutably between sessions except the
 * broker and telemetry (both internally synchronized), so sessions are
 * isolated: one session's decisions are bit-identical regardless of
 * what other sessions run - the foundation of the deterministic fleet
 * mode.
 *
 * step() executes exactly one invocation of the Simulator::run loop
 * body - decide, charge host phase and overhead, reconfigure, run the
 * kernel, observe - so a server can interleave many sessions at
 * single-decision granularity. A session plays the paper's repeated-
 * execution schedule: one PPK profiling run, then optimizedRuns MPC
 * runs, with the same fresh-APU-per-run semantics as Simulator::run.
 *
 * Not thread-safe: the server checks a session out to one worker at a
 * time.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "kernel/apu.hpp"
#include "mpc/governor.hpp"
#include "powercap/arbiter.hpp"
#include "powercap/thermal_governor.hpp"
#include "serve/session_predictor.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace gpupm::serve {

using SessionId = std::uint64_t;

struct SessionOptions
{
    /** Governor options; mpc.qos carries the session's QoS objective
     *  (uniform alpha, or a deadline with slack-driven headroom). */
    mpc::MpcOptions mpc;
    /** MPC-optimized runs after the PPK profiling run. */
    std::size_t optimizedRuns = 2;
    /** LRU cap on the session's per-kernel prediction cache. */
    std::size_t kernelCacheCap = 32;
    /** Priority weight for the arbiter's weighted split policy. */
    double capWeight = 1.0;
    /** Reactive thermal cap governor (disabled by default). */
    powercap::ThermalCapOptions thermalCap;
    /**
     * Hardware-model override for this session; null falls back to the
     * manager/server default. Heterogeneous fleets set this per
     * session (from the Open frame's model name over the wire).
     */
    hw::HardwareModelPtr model;
};

/** One decision's outcome, the unit of the fleet trace. */
struct DecisionRecord
{
    SessionId session = 0;
    std::size_t run = 0;   ///< 0 = profiling, 1.. = optimized.
    std::size_t index = 0; ///< Invocation index within the run.
    char tag = 'A';
    std::size_t configIndex = 0; ///< hw::denseConfigIndex of the choice.
    Seconds kernelTime = 0.0;
    Seconds overheadTime = 0.0; ///< Exposed decision latency.
    Joules cpuEnergy = 0.0;     ///< All components of this invocation.
    Joules gpuEnergy = 0.0;
    /** Predictor evaluations the decision charged (DecisionEvent). */
    std::size_t evaluations = 0;
    /** Shed fast path: the governor was bypassed for this step. */
    bool degraded = false;
    /** Power cap enforced for this step; < 0 when uncapped. */
    Watts cap = -1.0;
    /** The cap altered the decision (fail-safe substitution). */
    bool capLimited = false;
    /** Measured average chip power over this step's wall time. */
    Watts measuredPower = 0.0;
    /**
     * Hardware-model name; empty for the default "paper-apu" (records
     * of a homogeneous default fleet serialize exactly as before the
     * catalog existed).
     */
    std::string hwModel;
    /** Set on a run's last record when its deadline QoS was missed. */
    bool deadlineMissed = false;
};

class Session
{
  public:
    /**
     * @param id Server-assigned identity, stamped into records.
     * @param app Application trace (the Turbo Core baseline run that
     *        sets the MPC performance target happens here, once).
     * @param base Shared predictor backing the session's governor.
     * @param broker Shared broker for batched misses; may be null.
     * @param telemetry Registry for cache metrics; may be null.
     * @param handle Hot-swap publication point for online learning;
     *        null = static forests.
     * @param model Hardware model this session runs on (explicit; a
     *        heterogeneous fleet mixes models across sessions).
     * @param arbiter Fleet cap arbiter; null = no fleet budget. The
     *        session registers itself with its Turbo-baseline mean
     *        power as demand, its model's capFloorWatts as floor, and
     *        unregisters on destruction.
     */
    Session(SessionId id, workload::Application app,
            std::shared_ptr<const ml::PerfPowerPredictor> base,
            InferenceBroker *broker, const SessionOptions &opts,
            hw::HardwareModelPtr model,
            telemetry::Registry *telemetry = nullptr,
            const online::ForestHandle *handle = nullptr,
            powercap::FleetCapArbiter *arbiter = nullptr);

    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    SessionId id() const { return _id; }
    const std::string &appName() const { return _app.name; }
    Throughput target() const { return _target; }

    /** The hardware model this session runs on. */
    const hw::HardwareModelPtr &model() const { return _model; }

    /** Completed runs that exceeded the deadline QoS allowance. */
    std::size_t deadlineMisses() const { return _deadlineMisses; }

    /** Decisions per run (the trace length). */
    std::size_t runLength() const { return _app.trace.size(); }
    /** Total runs the session plays (1 profiling + optimizedRuns). */
    std::size_t totalRuns() const { return 1 + _opts.optimizedRuns; }
    std::size_t totalDecisions() const
    {
        return totalRuns() * runLength();
    }
    std::size_t decisionsMade() const { return _decisions; }
    bool finished() const { return _decisions >= totalDecisions(); }

    /**
     * Execute one kernel invocation (decide / charge / run / observe);
     * fatal when already finished.
     *
     * @param degraded Overload fast path: skip the MPC governor
     *        entirely and run the invocation at the paper's fail-safe
     *        configuration [P7, NB2, DPM4, 8CU] with zero decision
     *        overhead. The kernel still executes and all energy/time
     *        charges still accrue; the governor neither decides nor
     *        observes, so a shard under shed pressure drains its
     *        queue at near-zero decision cost. Degraded steps are
     *        marked in the returned record and traced with tag 'S'.
     */
    DecisionRecord step(bool degraded = false);

    /** Results of completed runs, in run order. */
    const std::vector<sim::RunResult> &completedRuns() const
    {
        return _runs;
    }

    /**
     * Discard all learned state (governor, prediction cache, run
     * progress); the session replays from its profiling run. The Turbo
     * baseline target is kept - it is a property of the app, not of
     * learning.
     */
    void reset();

    const SessionPredictor &predictor() const { return *_predictor; }

    /** Turbo-baseline mean chip power (the arbiter's demand signal). */
    Watts baselinePower() const { return _baselinePower; }

    /** Arbiter cap slot (null when no arbiter is attached). */
    const powercap::SessionCap *capSlot() const { return _capSlot; }

    /** Thermal cap governor state (disabled unless configured). */
    const powercap::ThermalCapGovernor &thermalCap() const
    {
        return _thermalCap;
    }

  private:
    void beginRun();

    SessionId _id;
    workload::Application _app;
    std::shared_ptr<const ml::PerfPowerPredictor> _base;
    InferenceBroker *_broker;
    const online::ForestHandle *_forestHandle;
    SessionOptions _opts;
    hw::HardwareModelPtr _model;
    telemetry::Registry *_telemetry;

    Throughput _target = 0.0;
    /** Turbo-baseline wall time (the deadline QoS reference). */
    Seconds _baselineTime = 0.0;
    std::size_t _deadlineMisses = 0;
    Watts _baselinePower = 0.0;
    powercap::FleetCapArbiter *_arbiter = nullptr;
    powercap::SessionCap *_capSlot = nullptr;
    powercap::ThermalCapGovernor _thermalCap;
    std::shared_ptr<SessionPredictor> _predictor;
    std::unique_ptr<mpc::MpcGovernor> _governor;
    kernel::Apu _apu;
    std::optional<hw::HwConfig> _platformConfig;
    mpc::DecisionEvent _lastEvent;

    std::size_t _run = 0;
    std::size_t _invocation = 0;
    std::size_t _decisions = 0;
    sim::RunResult _current;
    std::vector<sim::RunResult> _runs;
};

} // namespace gpupm::serve
