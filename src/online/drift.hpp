/**
 * @file
 * Prediction-drift detection over decision provenance.
 *
 * The offline Random Forest ships with known accuracy: the paper quotes
 * roughly 25% time and 12% power MAPE (Sec. VI-D). Every observed MPC
 * decision already records its per-decision prediction error
 * (trace::DecisionRecord::timeErrorPct), so drift - a workload or
 * hardware shift the offline model never saw - shows up as rolling
 * per-kernel error windows sitting persistently above that baseline.
 *
 * The detector maintains one fixed-size ring of |timeErrorPct| per
 * kernel signature and triggers when a window's rolling MAPE stays
 * above the threshold for `sustain` consecutive observations (a full
 * window of evidence plus persistence, so a single pathological launch
 * cannot trigger a retrain). After a trigger the signature disarms
 * until its rolling MAPE falls below rearmFraction * threshold:
 * hysteresis, so an error level oscillating around the threshold yields
 * one trigger, not a trigger per crossing.
 *
 * Determinism contract: observe() is a pure fold over the record
 * sequence - no clocks, no randomness, no allocation-order dependence -
 * so a given stream of records produces the same triggers with the same
 * ordinals every time (pinned by test_drift_detector). The detector
 * never feeds back into anything by itself; whoever consumes the
 * trigger decides whether to act.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "trace/decision.hpp"

namespace gpupm::online {

/** Drift-detection tuning. */
struct DriftOptions
{
    /** Rolling window length per kernel signature (observations). */
    std::size_t window = 32;
    /** Observations a signature needs before its MAPE is trusted. */
    std::size_t minSamples = 16;
    /** Rolling time-MAPE trigger threshold (%): the paper's offline
     *  time accuracy, so "worse than the model should be". */
    double timeThresholdPct = 25.0;
    /** Consecutive over-threshold observations required to trigger. */
    std::size_t sustain = 4;
    /** A disarmed signature re-arms when its rolling MAPE drops below
     *  rearmFraction * timeThresholdPct (hysteresis). */
    double rearmFraction = 0.8;
};

/** One sustained-drift trigger. */
struct DriftEvent
{
    /** 1-based trigger number, deterministic for a record stream. */
    std::uint64_t ordinal = 0;
    /** Kernel signature whose window triggered. */
    std::uint64_t signature = 0;
    /** The window's rolling MAPE (%) at the trigger. */
    double mapePct = 0.0;
    /** Scored observations consumed when the trigger fired. */
    std::size_t observation = 0;
};

/** Per-kernel-signature rolling-MAPE drift detector. */
class DriftDetector
{
  public:
    explicit DriftDetector(const DriftOptions &opts = {});

    /**
     * Fold one decision record into the detector. Unobserved records
     * and decisions made without a model prediction (profiling /
     * budget-out paths record predictedTime < 0) are ignored. Returns
     * the trigger event when this record completes a sustained drift.
     */
    std::optional<DriftEvent> observe(const trace::DecisionRecord &r);

    /** Scored (model-predicted, observed) records so far. */
    std::size_t observedCount() const { return _observed; }

    /** Triggers emitted so far. */
    std::uint64_t triggerCount() const { return _triggers; }

    /** Rolling MAPE (%) of a signature; nullopt below minSamples. */
    std::optional<double> mapeOf(std::uint64_t signature) const;

  private:
    struct Window
    {
        std::vector<double> errs; ///< Ring of |timeErrorPct|.
        std::size_t head = 0;
        std::size_t count = 0;
        std::size_t overStreak = 0;
        bool armed = true;
    };

    double rollingMape(const Window &w) const;

    DriftOptions _opts;
    std::unordered_map<std::uint64_t, Window> _windows;
    std::size_t _observed = 0;
    std::uint64_t _triggers = 0;
};

} // namespace gpupm::online
