#include "online/drift.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace gpupm::online {

DriftDetector::DriftDetector(const DriftOptions &opts) : _opts(opts)
{
    GPUPM_ASSERT(_opts.window > 0, "drift window must be positive");
    GPUPM_ASSERT(_opts.minSamples > 0 &&
                     _opts.minSamples <= _opts.window,
                 "drift minSamples must be in [1, window]");
    GPUPM_ASSERT(_opts.sustain > 0, "drift sustain must be positive");
    GPUPM_ASSERT(_opts.rearmFraction > 0.0 &&
                     _opts.rearmFraction <= 1.0,
                 "drift rearmFraction must be in (0, 1]");
}

double
DriftDetector::rollingMape(const Window &w) const
{
    // Recompute from the ring rather than maintaining a running sum:
    // the window is small (tens of entries) and a fresh summation keeps
    // the value exactly reproducible for a given ring content, with no
    // drift from long add/subtract chains.
    double s = 0.0;
    for (std::size_t i = 0; i < w.count; ++i)
        s += w.errs[i];
    return s / static_cast<double>(w.count);
}

std::optional<DriftEvent>
DriftDetector::observe(const trace::DecisionRecord &r)
{
    // Only decisions where a model actually predicted and the outcome
    // was measured carry an error sample; profiling ('P') and
    // budget-out ('B') paths record predictedTime < 0.
    if (!r.observed || r.predictedTime < 0.0 || r.measuredTime <= 0.0)
        return std::nullopt;
    ++_observed;

    Window &w = _windows[r.kernelSignature];
    if (w.errs.empty())
        w.errs.resize(_opts.window, 0.0);

    const double err = std::fabs(r.timeErrorPct);
    w.errs[w.head] = err;
    w.head = (w.head + 1) % _opts.window;
    if (w.count < _opts.window)
        ++w.count;

    if (w.count < _opts.minSamples)
        return std::nullopt;

    const double mape = rollingMape(w);
    if (!w.armed) {
        if (mape < _opts.rearmFraction * _opts.timeThresholdPct) {
            w.armed = true;
            w.overStreak = 0;
        }
        return std::nullopt;
    }

    if (mape <= _opts.timeThresholdPct) {
        w.overStreak = 0;
        return std::nullopt;
    }
    if (++w.overStreak < _opts.sustain)
        return std::nullopt;

    // Sustained drift: emit and disarm until the error recovers.
    w.armed = false;
    w.overStreak = 0;
    DriftEvent ev;
    ev.ordinal = ++_triggers;
    ev.signature = r.kernelSignature;
    ev.mapePct = mape;
    ev.observation = _observed;
    return ev;
}

std::optional<double>
DriftDetector::mapeOf(std::uint64_t signature) const
{
    const auto it = _windows.find(signature);
    if (it == _windows.end() || it->second.count < _opts.minSamples)
        return std::nullopt;
    return rollingMape(it->second);
}

} // namespace gpupm::online
