/**
 * @file
 * Closed-loop online learning: drift-triggered background retraining
 * with RCU forest hot-swap.
 *
 * The OnlineLearner sits in the decision-provenance path as a
 * DecisionSink. Every observed MPC decision already carries everything
 * a training row needs - the raw counters, the chosen configuration
 * (hw::denseConfigAt inverts the dense index) and the measured
 * time/power outcome - so the learner accumulates rows as decisions
 * stream in, folds each record into a DriftDetector, and when drift
 * sustains it refits both forests on a private background thread pool
 * and publishes the result through the ForestHandle. Serving never
 * pauses: publication is one atomic store, and readers pick the new
 * generation up at their next batch boundary.
 *
 * Determinism contract (pinned by the fleet golden test with
 * --online-learn on): the learner is an observer until the detector
 * triggers. record() forwards to the inner sink unchanged, row
 * accumulation and drift folding have no side channels into decision
 * logic, and a refit only happens after a trigger - so a drift-free
 * run produces byte-identical decisions with the learner attached or
 * not. Refits themselves are deterministic too: rows are snapshotted
 * in arrival order under the sink mutex, and the forest seed is
 * derived from (base seed, trigger ordinal).
 *
 * Threading: record() is called concurrently by fleet sessions; all
 * learner state is guarded by one mutex. Retrains run on the learner's
 * own single-thread pool - the fleet server's workers sit in blocking
 * request loops and would never run a posted task. At most one retrain
 * is in flight; triggers arriving while one runs are counted and
 * dropped (the refreshed forest reflects those rows anyway).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/thread_pool.hpp"
#include "ml/random_forest.hpp"
#include "online/drift.hpp"
#include "online/forest_handle.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/decision.hpp"

namespace gpupm::online {

/** Online-learning configuration. */
struct OnlineOptions
{
    DriftOptions drift{};
    /** Accumulated rows required before a trigger may refit. */
    std::size_t minRows = 256;
    /** Row-buffer capacity; oldest rows are dropped beyond it. */
    std::size_t maxRows = 16384;
    /** Forest shape for refits (trees, depth, mtry). */
    ml::ForestOptions forest = ml::ForestOptions::regressionDefaults();
    /** Base seed; refit g uses seed ^ g so generations differ but are
     *  reproducible. */
    std::uint64_t seed = 0x0b11e5ULL;
    /** Worker threads for the background refit (the learner's own
     *  pool; 1 is plenty for fleet-scale row counts). */
    std::size_t retrainJobs = 1;
    /**
     * Run refits inline inside record() instead of on the background
     * pool. For tests and benches that need the swap to have happened
     * at a known record boundary; serving paths leave this off.
     */
    bool synchronous = false;
};

/** Monotonic learner statistics (snapshot under the sink mutex). */
struct OnlineStats
{
    std::uint64_t observed = 0;  ///< Records folded into the detector.
    std::uint64_t rows = 0;      ///< Training rows accumulated (total).
    std::uint64_t triggers = 0;  ///< Drift triggers seen.
    std::uint64_t retrains = 0;  ///< Refits actually started.
    std::uint64_t suppressed = 0; ///< Triggers dropped (refit busy /
                                  ///< too few rows).
    std::uint64_t swaps = 0;     ///< Generations published.
};

/** Drift-triggered retraining sink; see file comment. */
class OnlineLearner : public trace::DecisionSink
{
  public:
    /**
     * @param handle Publication point shared with the serving side.
     * @param opts Tuning.
     * @param inner Downstream sink (trace export); forwarded first,
     *        unchanged. May be null.
     * @param telemetry Registry for online.* counters. May be null.
     */
    OnlineLearner(ForestHandle &handle, const OnlineOptions &opts,
                  trace::DecisionSink *inner = nullptr,
                  telemetry::Registry *telemetry = nullptr);

    /** Drains any in-flight refit. */
    ~OnlineLearner() override;

    void record(trace::DecisionRecord &&rec) override;

    /** Block until no refit is in flight (a test flush boundary). */
    void drain();

    OnlineStats stats() const;

  private:
    struct Row
    {
        ml::FeatureVector f;
        double timeTarget;
        double powerTarget;
    };

    void accumulateLocked(const trace::DecisionRecord &r);
    void onTriggerLocked(const DriftEvent &ev);
    void retrain(std::uint64_t trigger_ordinal,
                 std::vector<Row> rows);

    ForestHandle &_handle;
    const OnlineOptions _opts;
    trace::DecisionSink *const _inner;
    telemetry::Counter *_ctrTriggers = nullptr;
    telemetry::Counter *_ctrRetrains = nullptr;
    telemetry::Counter *_ctrSwaps = nullptr;
    telemetry::Counter *_ctrSuppressed = nullptr;

    mutable std::mutex _mutex;
    DriftDetector _detector;
    std::vector<Row> _rows;
    OnlineStats _stats;
    bool _retrainInFlight = false;

    /** Created lazily on the first background refit. */
    std::unique_ptr<exec::ThreadPool> _pool;
};

} // namespace gpupm::online
