#include "online/learner.hpp"

#include <cmath>
#include <utility>

#include "common/logging.hpp"
#include "hw/config.hpp"
#include "ml/features.hpp"
#include "trace/trace.hpp"

namespace gpupm::online {

OnlineLearner::OnlineLearner(ForestHandle &handle,
                             const OnlineOptions &opts,
                             trace::DecisionSink *inner,
                             telemetry::Registry *telemetry)
    : _handle(handle), _opts(opts), _inner(inner),
      _detector(opts.drift)
{
    GPUPM_ASSERT(_opts.minRows > 0 && _opts.maxRows >= _opts.minRows,
                 "online row bounds must satisfy 0 < minRows <= maxRows");
    if (telemetry) {
        _ctrTriggers = &telemetry->counter("online.drift_triggers");
        _ctrRetrains = &telemetry->counter("online.retrains");
        _ctrSwaps = &telemetry->counter("online.swaps");
        _ctrSuppressed = &telemetry->counter("online.suppressed");
    }
    _rows.reserve(_opts.maxRows);
}

OnlineLearner::~OnlineLearner()
{
    drain();
}

void
OnlineLearner::drain()
{
    // Destroying the pool drains queued refits; a fresh pool is created
    // if another trigger fires later.
    std::unique_ptr<exec::ThreadPool> pool;
    {
        std::lock_guard lock(_mutex);
        pool = std::move(_pool);
    }
    pool.reset();
}

void
OnlineLearner::record(trace::DecisionRecord &&rec)
{
    // Observer first: the downstream sink (trace export) sees exactly
    // the record stream it would see without online learning.
    if (_inner) {
        trace::DecisionRecord copy = rec;
        _inner->record(std::move(copy));
    }

    std::lock_guard lock(_mutex);
    accumulateLocked(rec);
    const auto ev = _detector.observe(rec);
    _stats.observed = _detector.observedCount();
    if (ev)
        onTriggerLocked(*ev);
}

void
OnlineLearner::accumulateLocked(const trace::DecisionRecord &r)
{
    if (!r.observed || r.measuredTime <= 0.0 ||
        r.measuredGpuPower <= 0.0)
        return;
    const double proxy = ml::instructionProxy(r.counters);
    if (proxy <= 0.0)
        return;

    Row row;
    row.f = ml::makeFeatures(r.counters,
                             hw::denseConfigAt(r.configIndex));
    // Same targets the offline trainer fits: log(seconds per proxy
    // instruction) for time, Watts for GPU-plane power.
    row.timeTarget = std::log(r.measuredTime / proxy);
    row.powerTarget = r.measuredGpuPower;

    if (_rows.size() >= _opts.maxRows)
        _rows.erase(_rows.begin()); // drop the oldest
    _rows.push_back(row);
    ++_stats.rows;
}

void
OnlineLearner::onTriggerLocked(const DriftEvent &ev)
{
    ++_stats.triggers;
    if (_ctrTriggers)
        _ctrTriggers->add();
    trace::Tracer::emit(trace::Category::Online, "online.drift",
                        trace::Tracer::nowNs(), 0, "signature",
                        static_cast<double>(ev.signature), "mape",
                        ev.mapePct);

    if (_retrainInFlight || _rows.size() < _opts.minRows) {
        ++_stats.suppressed;
        if (_ctrSuppressed)
            _ctrSuppressed->add();
        return;
    }

    _retrainInFlight = true;
    ++_stats.retrains;
    if (_ctrRetrains)
        _ctrRetrains->add();

    std::vector<Row> snapshot = _rows; // arrival order: deterministic
    const std::uint64_t ordinal = ev.ordinal;
    if (_opts.synchronous) {
        // Swap-at-a-known-record-boundary for tests and benches. The
        // sink mutex is already held by record(); retrain() touches no
        // learner state besides the completion bookkeeping below.
        retrain(ordinal, std::move(snapshot));
        ++_stats.swaps;
        if (_ctrSwaps)
            _ctrSwaps->add();
        _retrainInFlight = false;
        return;
    }
    if (!_pool)
        _pool = std::make_unique<exec::ThreadPool>(
            std::max<std::size_t>(1, _opts.retrainJobs));
    _pool->post([this, ordinal, rows = std::move(snapshot)]() mutable {
        retrain(ordinal, std::move(rows));
        std::lock_guard lock(_mutex);
        ++_stats.swaps;
        if (_ctrSwaps)
            _ctrSwaps->add();
        _retrainInFlight = false;
    });
}

/** Fit + publish only; completion bookkeeping is the caller's. */
void
OnlineLearner::retrain(std::uint64_t trigger_ordinal,
                       std::vector<Row> rows)
{
    trace::Span span(trace::Category::Online, "online.retrain", "rows",
                     static_cast<double>(rows.size()));

    ml::Dataset time_data, power_data;
    for (const Row &r : rows) {
        time_data.add(r.f, r.timeTarget);
        power_data.add(r.f, r.powerTarget);
    }

    ml::ForestOptions time_opts = _opts.forest;
    time_opts.jobs = 1; // fit serially on the learner's worker
    time_opts.seed = _opts.seed ^ (trigger_ordinal * 2);
    ml::ForestOptions power_opts = _opts.forest;
    power_opts.jobs = 1;
    power_opts.seed = _opts.seed ^ (trigger_ordinal * 2 + 1);

    ml::RandomForest time_forest;
    ml::RandomForest power_forest;
    time_forest.fit(time_data, time_opts);
    power_forest.fit(power_data, power_opts);

    // The refit carries the serving generation's inference engine
    // forward: a fleet running the quantized AVX2 path must not
    // silently swap to a scalar-float predictor (or vice versa) just
    // because the learner rebuilt the forests.
    const auto cur = _handle.acquire();
    const ml::SimdMode simd = cur && cur->predictor
                                  ? cur->predictor->simdMode()
                                  : ml::defaultSimdMode();
    auto next = std::make_shared<const ml::RandomForestPredictor>(
        std::move(time_forest), std::move(power_forest), simd);
    const std::uint64_t gen = _handle.publish(std::move(next));
    trace::Tracer::emit(trace::Category::Online, "online.swap",
                        trace::Tracer::nowNs(), 0, "generation",
                        static_cast<double>(gen), "rows",
                        static_cast<double>(rows.size()));
}

OnlineStats
OnlineLearner::stats() const
{
    std::lock_guard lock(_mutex);
    return _stats;
}

} // namespace gpupm::online
