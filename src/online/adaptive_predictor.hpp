/**
 * @file
 * PerfPowerPredictor facade over a hot-swappable ForestHandle.
 *
 * The broker-less paths (gpupm run, a fleet with batching disabled)
 * talk to a PerfPowerPredictor directly; this adapter lets them ride
 * the same RCU publication the broker uses. Each predict/predictBatch
 * call acquires one generation snapshot and evaluates entirely against
 * it, so a single governor decision never mixes generations - the same
 * batch-boundary pickup contract the broker provides per flush.
 *
 * The per-thread specialization memo inside RandomForestPredictor is
 * keyed on the predictor's instanceId, so a swap naturally invalidates
 * it on the next batch (a fresh predictor has a fresh id).
 */

#pragma once

#include "ml/predictor.hpp"
#include "online/forest_handle.hpp"

namespace gpupm::online {

/** Forwards every query to the handle's current generation. */
class AdaptivePredictor : public ml::PerfPowerPredictor
{
  public:
    explicit AdaptivePredictor(const ForestHandle &handle)
        : _handle(handle)
    {
    }

    ml::Prediction
    predict(const ml::PredictionQuery &q,
            const hw::HwConfig &c) const override
    {
        return _handle.acquire()->predictor->predict(q, c);
    }

    void
    predictBatch(const ml::PredictionQuery &q,
                 std::span<const hw::HwConfig> cs,
                 std::span<ml::Prediction> out) const override
    {
        // One acquire per decision batch: all candidates of a decision
        // are scored against the same generation.
        _handle.acquire()->predictor->predictBatch(q, cs, out);
    }

    std::string name() const override { return "RF-online"; }

  private:
    const ForestHandle &_handle;
};

} // namespace gpupm::online
