/**
 * @file
 * RCU-style publication point for hot-swappable Random Forests (the
 * gpupm::online subsystem).
 *
 * The online-learning loop retrains forests in the background while the
 * fleet server keeps serving predictions. The handle is the single
 * synchronization point between the two: a retrain publishes a new
 * immutable ForestGeneration with one atomic store, and readers (the
 * inference broker, session predictors, the adaptive run-path
 * predictor) acquire a snapshot with one atomic load. Nobody blocks,
 * ever - there is no reader registration, no grace period to wait out,
 * and no lock on either side; old generations stay alive until the last
 * shared_ptr drops.
 *
 * Consistency contract: a reader that acquires a generation at a batch
 * boundary and evaluates the whole batch against that snapshot gets
 * results bit-identical to that generation's forests regardless of
 * concurrent publishes (the generation is immutable). Per-kernel memos
 * must be keyed by ordinal() so a swap invalidates them (see
 * serve::SessionPredictor); the hot-swap fuzz test pins both
 * properties.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "ml/trainer.hpp"

namespace gpupm::online {

/** One immutable published forest generation. */
struct ForestGeneration
{
    /** Publication ordinal: 0 is the offline-trained baseline. */
    std::uint64_t ordinal = 0;
    std::shared_ptr<const ml::RandomForestPredictor> predictor;
};

/**
 * Atomic shared-pointer publication of the current generation.
 * acquire() and ordinal() are safe from any thread at any time;
 * publish() calls are externally ordered (one retraining loop).
 */
class ForestHandle
{
  public:
    explicit ForestHandle(
        std::shared_ptr<const ml::RandomForestPredictor> baseline)
    {
        auto g = std::make_shared<ForestGeneration>();
        g->ordinal = 0;
        g->predictor = std::move(baseline);
        _current.store(std::move(g), std::memory_order_release);
    }

    ForestHandle(const ForestHandle &) = delete;
    ForestHandle &operator=(const ForestHandle &) = delete;

    /** Snapshot of the current generation (never null). */
    std::shared_ptr<const ForestGeneration>
    acquire() const
    {
        return _current.load(std::memory_order_acquire);
    }

    /** Ordinal of the current generation. */
    std::uint64_t
    ordinal() const
    {
        return acquire()->ordinal;
    }

    /**
     * Publish @p next as the new current generation; returns its
     * ordinal (previous + 1). In-flight readers holding the previous
     * snapshot are unaffected.
     */
    std::uint64_t
    publish(std::shared_ptr<const ml::RandomForestPredictor> next)
    {
        auto g = std::make_shared<ForestGeneration>();
        g->ordinal = acquire()->ordinal + 1;
        g->predictor = std::move(next);
        const std::uint64_t ord = g->ordinal;
        _current.store(std::move(g), std::memory_order_release);
        return ord;
    }

  private:
    std::atomic<std::shared_ptr<const ForestGeneration>> _current;
};

} // namespace gpupm::online
