/**
 * @file
 * Fixed-configuration governor: runs every kernel at one configuration
 * with zero decision overhead. Used for characterization sweeps
 * (Fig. 2), tests and examples.
 */

#pragma once

#include "sim/governor.hpp"

namespace gpupm::policy {

class StaticGovernor : public sim::Governor
{
  public:
    explicit StaticGovernor(const hw::HwConfig &config)
        : _config(config)
    {
    }

    std::string
    name() const override
    {
        return "Static " + _config.toString();
    }

    sim::Decision
    decide(std::size_t) override
    {
        return {_config, 0.0};
    }

  private:
    hw::HwConfig _config;
};

} // namespace gpupm::policy
