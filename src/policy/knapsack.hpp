/**
 * @file
 * Multiple-choice knapsack solver for the Theoretically Optimal plan.
 *
 * The paper's TO scheme (Sec. III) minimizes total kernel energy
 * subject to total throughput matching the baseline - equivalently,
 * choose one (time, energy) option per kernel minimizing sum(E) with
 * sum(T) <= budget. The paper notes the exhaustive O(M^N) search is
 * NP-hard; we solve it with per-kernel Pareto pruning followed by
 * dynamic programming over discretized time, which is exact up to the
 * time quantum (tests verify equality with brute force on small cases).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace gpupm::policy {

/** One selectable option: an (execution time, energy) pair. */
struct KnapsackOption
{
    Seconds time = 0.0;
    Joules energy = 0.0;
    /** Caller-defined payload (e.g. configuration index). */
    std::size_t id = 0;
};

/** Solver result. */
struct KnapsackSolution
{
    /** Chosen option index (into the pruned-input vector) per item. */
    std::vector<std::size_t> choice;
    Seconds totalTime = 0.0;
    Joules totalEnergy = 0.0;
    /** False if even the fastest assignment exceeds the budget. */
    bool feasible = false;
};

/**
 * Keep only Pareto-optimal options (no other option is both faster and
 * lower energy). Result is sorted by increasing time.
 */
std::vector<KnapsackOption>
paretoPrune(std::vector<KnapsackOption> options);

/**
 * Minimize total energy subject to total time <= budget, choosing one
 * option per item.
 *
 * @param items Per-item option lists (not necessarily pruned).
 * @param budget Time budget in seconds.
 * @param time_bins Discretization resolution of the DP (quantization
 *        error is bounded by items.size() * budget / time_bins).
 *
 * When infeasible, returns the fastest assignment with feasible=false
 * (the paper's "even the highest-powered configuration does not
 * suffice" situation).
 */
KnapsackSolution
solveMinEnergy(const std::vector<std::vector<KnapsackOption>> &items,
               Seconds budget, std::size_t time_bins = 4000);

} // namespace gpupm::policy
