#include "policy/static_governor.hpp"

// StaticGovernor is header-only; this translation unit anchors the
// library target.
