/**
 * @file
 * PI feedback baseline: a classical proportional-integral controller
 * over the performance error.
 *
 * The rival every MPC paper is asked about: instead of predicting each
 * kernel's response to candidate configurations, track one scalar
 * actuation level u in [0, 1] and nudge it with a velocity-form PI law
 * on the relative throughput error. u = 1 maps every knob to its
 * highest-performance level; u = 0 to its lowest-power level;
 * intermediate values round each knob independently through the
 * hardware model's configuration space, so the controller generalizes
 * to any catalog model (heterogeneous spaces included) without
 * model-specific tuning.
 *
 * Like Turbo Core, decisions are cheap enough to live in firmware, so
 * no software overhead is charged - the comparison against MPC is then
 * purely about decision *quality*: the PI controller reacts only after
 * error accumulates and cannot anticipate kernel-to-kernel phase
 * changes, which is precisely the gap model-predictive control closes
 * (paper Sec. II).
 */

#pragma once

#include "hw/model.hpp"
#include "sim/governor.hpp"

namespace gpupm::policy {

struct PiOptions
{
    /** Proportional gain on the error delta (velocity form). */
    double kp = 0.5;
    /** Integral gain on the current error. */
    double ki = 0.2;
};

class PiGovernor : public sim::Governor
{
  public:
    explicit PiGovernor(hw::HardwareModelPtr model, PiOptions opts = {});

    std::string name() const override { return "PI"; }

    void beginRun(const std::string &app_name,
                  Throughput target) override;

    sim::Decision decide(std::size_t index) override;

    void observe(const sim::Observation &obs) override;

    /** Current actuation level in [0, 1] (diagnostics / tests). */
    double actuation() const { return _u; }

  private:
    /** Map the actuation level to a config in the model's space. */
    hw::HwConfig configFor(double u) const;

    hw::HardwareModelPtr _model;
    PiOptions _opts;

    Throughput _target = 0.0;
    double _u = 1.0;
    double _prevError = 0.0;
    /** Cumulative observed work and wall time (Eq. 4 accounting). */
    InstCount _instructions = 0.0;
    Seconds _elapsed = 0.0;
};

} // namespace gpupm::policy
